//! Workspace automation entry point (the `cargo xtask` pattern):
//! subcommands that are too repo-specific for clippy but too
//! mechanical to leave to review.
//!
//! ```text
//! cargo run -p xtask -- lint    # tree-wide invariant checks
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

mod lint;

fn usage() -> ExitCode {
    eprintln!("usage: cargo run -p xtask -- <command>");
    eprintln!();
    eprintln!("commands:");
    eprintln!("  lint    check repo invariants (SAFETY comments, unsafe allowlist,");
    eprintln!("          bench schema-tag registry, poison-aware locks in serve)");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let repo_root: PathBuf = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask lives one level under the repo root")
        .to_path_buf();

    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let violations = match lint::run(&repo_root) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("xtask lint: {e}");
                    return ExitCode::from(2);
                }
            };
            if violations.is_empty() {
                println!("xtask lint: ok");
                ExitCode::SUCCESS
            } else {
                for v in &violations {
                    eprintln!("{v}");
                }
                eprintln!("xtask lint: {} violation(s)", violations.len());
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}

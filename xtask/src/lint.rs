//! Tree-wide invariant checks that clippy cannot express.
//!
//! Four rules, each guarding a policy this workspace has adopted:
//!
//! * **R1 — SAFETY comments.** Every `unsafe` token must have a
//!   `// SAFETY:` (or rustdoc `# Safety` section) within the ten
//!   preceding lines. An unsafe block whose obligation is not written
//!   down decays into folklore.
//! * **R2 — unsafe allowlist.** `unsafe` may only appear in the
//!   modules listed in [`UNSAFE_ALLOWLIST`] — the hot-path files
//!   whose pointer arithmetic has been reviewed. New unsafe anywhere
//!   else is a deliberate, reviewed decision: extend the allowlist in
//!   the same commit.
//! * **R1b — deny escalation.** Any crate (or test binary) containing
//!   `unsafe` must carry `#![deny(unsafe_op_in_unsafe_fn)]` at its
//!   root, so an `unsafe fn` body cannot silently perform unsafe ops
//!   without an inner block to hang R1 on.
//! * **R3 — schema-tag registry.** Bench JSON schema tags
//!   (`"isi-…/vN"` string literals) may only be *defined* in
//!   `crates/bench/src/schema.rs`; everything else must import the
//!   registry constant. Scattered literals are how two writers drift
//!   one version apart.
//! * **R4 — poison-aware locks in serve and durable.** `crates/serve`
//!   and `crates/durable` must acquire locks through the
//!   `isi_core::sync` helpers (`plock`/`pread`/`pwrite`/`pwait`),
//!   never bare `.lock().unwrap()` — the helpers turn a poisoned lock
//!   into a tagged panic that names the protocol instead of an opaque
//!   `PoisonError`.
//! * **R5 — no ad-hoc stat atomics in serve.** `crates/serve/src` must
//!   not use `AtomicU64` directly: counters register through the
//!   `isi_obs` registry, whose registration-order snapshot contract
//!   is what keeps cross-counter invariants (`wal_syncs ≤
//!   wal_records`, flushes ≤ batches) coherent. A bare atomic field
//!   is invisible to snapshots and reintroduces the skew the registry
//!   exists to prevent.
//! * **R6 — run-stack deltas in serve.** `crates/serve/src` must not
//!   clone a delta per write (`delta.clone()`) or mutate a sorted
//!   entry vector in place (`.entries.insert`/`.entries.remove`/
//!   `.entries.clone()`): the write path publishes immutable runs
//!   (`Delta::push_run` + `Delta::share`), and the quadratic
//!   clone-the-whole-delta shape it replaced must not creep back in.
//! * **R7 — adaptive dispatch owns group sizes.** `crates/serve/src`
//!   must not hardcode an interleave group
//!   (`Interleave::Interleaved(<literal>)`) outside the adapt
//!   controller module: every group a dispatcher runs with must flow
//!   from `ServeConfig::policy` through the `Controller` and its
//!   `PolicyCell`, or the adaptive feedback loop silently stops
//!   governing that call site.
//!
//! Rules operate on an in-memory `(path, content)` list so the unit
//! tests below can prove each rule fires on a seeded violation, not
//! just that the current tree is clean.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Files allowed to contain `unsafe` (repo-relative, `/`-separated).
/// Extending this list is a reviewed decision: the new module's
/// invariants must be documented at its unsafe sites (R1 enforces
/// the comments; this list enforces the review).
const UNSAFE_ALLOWLIST: &[&str] = &[
    "crates/core/src/coro.rs",
    "crates/core/src/mem.rs",
    "crates/core/src/par.rs",
    "crates/core/src/prefetch.rs",
    "crates/core/src/sched.rs",
    "crates/core/src/stats.rs",
    "crates/core/src/topo.rs",
    "crates/core/tests/alloc_steady.rs",
    "crates/csb/src/lookup.rs",
    "crates/obs/tests/alloc_disabled.rs",
    "crates/serve/tests/alloc_adapt.rs",
    "crates/serve/tests/alloc_write.rs",
    "crates/hash/src/probe.rs",
    "crates/search/src/par.rs",
];

/// The one file allowed to spell out bench schema-tag literals.
const SCHEMA_REGISTRY: &str = "crates/bench/src/schema.rs";

/// Directories (relative to the repo root) the lint walks. `vendor/`
/// is deliberately excluded: the stubs mimic external crates and are
/// not covered by workspace policy.
const WALK_ROOTS: &[&str] = &["crates", "src", "examples", "xtask"];

/// One finding, formatted like a compiler diagnostic.
pub struct Violation {
    pub path: String,
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.msg
        )
    }
}

/// Walk the tree under `root` and run every rule.
pub fn run(root: &Path) -> io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    for dir in WALK_ROOTS {
        let dir = root.join(dir);
        if dir.is_dir() {
            collect_rs_files(root, &dir, &mut files)?;
        }
    }
    files.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(check_files(&files))
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .expect("walked path under root")
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, fs::read_to_string(&path)?));
        }
    }
    Ok(())
}

/// Run every rule over an in-memory file set (unit-testable core).
fn check_files(files: &[(String, String)]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (path, content) in files {
        check_unsafe_rules(path, content, files, &mut out);
        check_schema_registry(path, content, &mut out);
        check_serve_locks(path, content, &mut out);
        check_serve_stat_atomics(path, content, &mut out);
        check_serve_delta_clone(path, content, &mut out);
        check_serve_adapt_policy(path, content, &mut out);
    }
    out
}

// ---- source sanitization ----

/// Blank out comments (and optionally string/char literals) with
/// spaces, preserving line structure, so token scans cannot be fooled
/// by prose or data.
fn sanitize(content: &str, strip_strings: bool) -> String {
    let bytes = content.as_bytes();
    let mut out = bytes.to_vec();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    out[i] = b' ';
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if bytes[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
            }
            b'"' => i = skip_string(bytes, &mut out, i, strip_strings),
            b'r' if matches!(bytes.get(i + 1), Some(&b'"') | Some(&b'#')) => {
                i = skip_raw_string(bytes, &mut out, i, strip_strings);
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`): a lifetime's
                // identifier is not followed by a closing quote.
                let is_lifetime = bytes
                    .get(i + 1)
                    .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
                    && bytes.get(i + 2) != Some(&b'\'');
                if is_lifetime {
                    i += 1;
                } else {
                    let start = i;
                    i += 1;
                    while i < bytes.len() && bytes[i] != b'\'' {
                        if bytes[i] == b'\\' {
                            i += 1;
                        }
                        i += 1;
                    }
                    i = (i + 1).min(bytes.len());
                    if strip_strings {
                        for b in &mut out[start..i] {
                            if *b != b'\n' {
                                *b = b' ';
                            }
                        }
                    }
                }
            }
            _ => i += 1,
        }
    }
    String::from_utf8(out).expect("sanitizer only writes ASCII spaces")
}

fn skip_string(bytes: &[u8], out: &mut [u8], start: usize, strip: bool) -> usize {
    let mut i = start + 1;
    while i < bytes.len() && bytes[i] != b'"' {
        if bytes[i] == b'\\' {
            i += 1;
        }
        i += 1;
    }
    let end = (i + 1).min(bytes.len());
    if strip {
        for b in &mut out[start..end] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    }
    end
}

fn skip_raw_string(bytes: &[u8], out: &mut [u8], start: usize, strip: bool) -> usize {
    let mut hashes = 0;
    let mut i = start + 1;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        // `r#ident` (raw identifier), not a raw string.
        return start + 1;
    }
    i += 1;
    'scan: while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut j = i + 1;
            for _ in 0..hashes {
                if bytes.get(j) != Some(&b'#') {
                    i += 1;
                    continue 'scan;
                }
                j += 1;
            }
            i = j;
            break;
        }
        i += 1;
    }
    if strip {
        for b in &mut out[start..i.min(bytes.len())] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    }
    i
}

/// Does `line` contain `unsafe` as a standalone token?
fn has_unsafe_token(line: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find("unsafe") {
        let start = from + pos;
        let end = start + "unsafe".len();
        let pre_ok =
            start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let post_ok =
            end >= bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if pre_ok && post_ok {
            return true;
        }
        from = end;
    }
    false
}

// ---- R1 / R1b / R2: unsafe discipline ----

/// How far above an `unsafe` token a SAFETY comment may sit and still
/// count as "adjacent".
const SAFETY_WINDOW: usize = 10;

fn check_unsafe_rules(
    path: &str,
    content: &str,
    files: &[(String, String)],
    out: &mut Vec<Violation>,
) {
    let code = sanitize(content, true);
    let raw_lines: Vec<&str> = content.lines().collect();
    let mut any_unsafe = false;
    for (idx, line) in code.lines().enumerate() {
        if !has_unsafe_token(line) {
            continue;
        }
        any_unsafe = true;
        if !UNSAFE_ALLOWLIST.contains(&path) {
            out.push(Violation {
                path: path.to_string(),
                line: idx + 1,
                rule: "unsafe-allowlist",
                msg: "`unsafe` outside the reviewed allowlist (xtask/src/lint.rs \
                      UNSAFE_ALLOWLIST); keep unsafe in the designated hot-path modules"
                    .to_string(),
            });
        }
        let window_start = idx.saturating_sub(SAFETY_WINDOW);
        let documented = raw_lines[window_start..=idx.min(raw_lines.len() - 1)]
            .iter()
            .any(|l| l.contains("SAFETY:") || l.contains("# Safety"));
        if !documented {
            out.push(Violation {
                path: path.to_string(),
                line: idx + 1,
                rule: "safety-comment",
                msg: format!(
                    "`unsafe` without an adjacent `// SAFETY:` comment (within {SAFETY_WINDOW} \
                     lines); write down the obligation being discharged"
                ),
            });
        }
    }
    // R1b: a crate that uses unsafe anywhere must escalate
    // unsafe_op_in_unsafe_fn to deny at its root.
    if any_unsafe {
        let root = crate_root_of(path);
        let root_content = if root == path {
            Some(content)
        } else {
            files
                .iter()
                .find(|(p, _)| *p == root)
                .map(|(_, c)| c.as_str())
        };
        let has_deny = root_content.is_some_and(|c| c.contains("#![deny(unsafe_op_in_unsafe_fn)]"));
        if !has_deny {
            out.push(Violation {
                path: root.clone(),
                line: 1,
                rule: "deny-unsafe-op",
                msg: format!(
                    "crate root must carry #![deny(unsafe_op_in_unsafe_fn)] because \
                     {path} contains unsafe"
                ),
            });
        }
    }
}

/// The crate-root file responsible for `path`'s `#![...]` attributes.
/// Integration tests, benches, examples and `src/bin` files are their
/// own crate roots.
fn crate_root_of(path: &str) -> String {
    let own_root = path.contains("/tests/")
        || path.contains("/benches/")
        || path.contains("/examples/")
        || path.contains("/bin/")
        || path.ends_with("src/lib.rs")
        || path.ends_with("src/main.rs");
    if own_root {
        return path.to_string();
    }
    if let Some(pos) = path.rfind("/src/") {
        return format!("{}/src/lib.rs", &path[..pos]);
    }
    path.to_string()
}

// ---- R3: schema-tag registry ----

/// Find `isi-…/vN` schema tags in comment-stripped source (anything
/// left after stripping comments lives in a string literal — hyphens
/// and slashes cannot appear in identifiers).
fn find_schema_tag(line: &str) -> Option<usize> {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find("isi-") {
        let start = from + pos;
        let mut i = start + 4;
        while i < bytes.len()
            && (bytes[i].is_ascii_lowercase() || bytes[i].is_ascii_digit() || bytes[i] == b'-')
        {
            i += 1;
        }
        if i > start + 4
            && bytes.get(i) == Some(&b'/')
            && bytes.get(i + 1) == Some(&b'v')
            && bytes.get(i + 2).is_some_and(u8::is_ascii_digit)
        {
            return Some(start);
        }
        from = start + 4;
    }
    None
}

fn check_schema_registry(path: &str, content: &str, out: &mut Vec<Violation>) {
    // The registry defines the tags; the lint's own tests seed fake
    // tags as string fixtures.
    if path == SCHEMA_REGISTRY || path == "xtask/src/lint.rs" {
        return;
    }
    let code = sanitize(content, false); // keep strings: tags live there
    for (idx, line) in code.lines().enumerate() {
        if find_schema_tag(line).is_some() {
            out.push(Violation {
                path: path.to_string(),
                line: idx + 1,
                rule: "schema-registry",
                msg: format!(
                    "bench schema tag literal outside {SCHEMA_REGISTRY}; import the \
                     registry constant instead of respelling the tag"
                ),
            });
        }
    }
}

// ---- R4: poison-aware locks in serve and durable ----

/// Bare-unwrap lock patterns forbidden in the crates under R4 (the
/// poison-swallowing `.lock().unwrap()` family).
const BARE_LOCK_PATTERNS: &[&str] = &[".lock().unwrap()", ".read().unwrap()", ".write().unwrap()"];

/// Calls that must go through the `CondvarExt`/`MutexExt` helpers
/// when followed by `.unwrap()` nearby (chained across lines or not).
const BARE_WAIT_HEADS: &[&str] = &[".lock()", ".read()", ".write()", ".wait(", ".wait_timeout("];

fn check_serve_locks(path: &str, content: &str, out: &mut Vec<Violation>) {
    if !path.starts_with("crates/serve/") && !path.starts_with("crates/durable/") {
        return;
    }
    let code = sanitize(content, true);
    let lines: Vec<&str> = code.lines().collect();
    for (idx, line) in lines.iter().enumerate() {
        let single = BARE_LOCK_PATTERNS.iter().any(|p| line.contains(p));
        // A chained `.lock()\n.unwrap()` split across lines is the
        // same violation with rustfmt in the middle.
        let chained = BARE_WAIT_HEADS.iter().any(|head| {
            line.contains(head)
                && lines[idx..(idx + 3).min(lines.len())]
                    .iter()
                    .any(|l| l.contains(".unwrap()"))
        });
        if single || chained {
            out.push(Violation {
                path: path.to_string(),
                line: idx + 1,
                rule: "serve-poison-policy",
                msg:
                    "bare lock/wait unwrap in an R4 crate (serve/durable); use the isi_core::sync \
                      helpers (plock/pread/pwrite/pwait/pwait_timeout) so a poisoned \
                      lock panics with a protocol tag"
                        .to_string(),
            });
        }
    }
}

// ---- R5: no ad-hoc stat atomics in serve ----

/// Does `line` contain `AtomicU64` as a standalone token?
fn has_atomic_u64_token(line: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find("AtomicU64") {
        let start = from + pos;
        let end = start + "AtomicU64".len();
        let pre_ok =
            start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let post_ok =
            end >= bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if pre_ok && post_ok {
            return true;
        }
        from = end;
    }
    false
}

fn check_serve_stat_atomics(path: &str, content: &str, out: &mut Vec<Violation>) {
    // Production code only: test binaries may use raw atomics for
    // harness machinery (e.g. the counting global allocator in
    // `tests/alloc_write.rs`), which no registry snapshot covers.
    if !path.starts_with("crates/serve/src/") {
        return;
    }
    let code = sanitize(content, true);
    for (idx, line) in code.lines().enumerate() {
        if has_atomic_u64_token(line) {
            out.push(Violation {
                path: path.to_string(),
                line: idx + 1,
                rule: "serve-obs-registry",
                msg: "bare AtomicU64 in crates/serve; register a Counter/Gauge/Hist through \
                      the isi_obs registry instead, so snapshots keep cross-counter \
                      invariants coherent"
                    .to_string(),
            });
        }
    }
}

// ---- R6: run-stack deltas in serve ----

/// Quadratic-delta relics forbidden in `crates/serve/src`: cloning a
/// delta's entries per write run, or inserting/removing in a sorted
/// entry vector in place. The run-stack write path shares prior runs
/// (`Delta::share`) and pushes one immutable run per dispatch.
const DELTA_RELIC_PATTERNS: &[&str] = &[
    "delta.clone()",
    ".entries.insert",
    ".entries.remove",
    ".entries.clone()",
];

fn check_serve_delta_clone(path: &str, content: &str, out: &mut Vec<Violation>) {
    if !path.starts_with("crates/serve/src/") {
        return;
    }
    let code = sanitize(content, true);
    for (idx, line) in code.lines().enumerate() {
        if DELTA_RELIC_PATTERNS.iter().any(|p| line.contains(p)) {
            out.push(Violation {
                path: path.to_string(),
                line: idx + 1,
                rule: "serve-run-stack",
                msg: "clone-the-delta / in-place entry mutation in the serve write path; \
                      push an immutable run (`Delta::push_run`) and share prior runs \
                      (`Delta::share`) — the quadratic per-write delta copy is retired"
                    .to_string(),
            });
        }
    }
}

// ---- R7: adaptive dispatch owns group sizes ----

/// The one `crates/serve/src` module allowed to spell a literal
/// interleave group: the adapt controller, which normalizes `Fixed`
/// groups through `Interleave::from_group`.
const ADAPT_CONTROLLER: &str = "crates/serve/src/adapt.rs";

/// Does `line` hardcode `Interleave::Interleaved(<integer literal>)`?
/// A variable argument (`Interleaved(group)`) is fine — the lint only
/// rejects groups that cannot have flowed from configuration.
fn has_hardcoded_group(line: &str) -> Option<usize> {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find("Interleave::Interleaved(") {
        let start = from + pos;
        let mut i = start + "Interleave::Interleaved(".len();
        while bytes.get(i).is_some_and(u8::is_ascii_whitespace) {
            i += 1;
        }
        if bytes.get(i).is_some_and(u8::is_ascii_digit) {
            return Some(start);
        }
        from = i;
    }
    None
}

fn check_serve_adapt_policy(path: &str, content: &str, out: &mut Vec<Violation>) {
    if !path.starts_with("crates/serve/src/") || path == ADAPT_CONTROLLER {
        return;
    }
    let code = sanitize(content, true);
    for (idx, line) in code.lines().enumerate() {
        if has_hardcoded_group(line).is_some() {
            out.push(Violation {
                path: path.to_string(),
                line: idx + 1,
                rule: "serve-adapt-policy",
                msg: "hardcoded interleave group in crates/serve; derive the policy from \
                      ServeConfig through the adapt Controller (Interleave::from_group) so \
                      the density feedback loop governs every dispatch site"
                    .to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files(list: &[(&str, &str)]) -> Vec<(String, String)> {
        list.iter()
            .map(|(p, c)| (p.to_string(), c.to_string()))
            .collect()
    }

    fn rules_fired(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn clean_tree_passes() {
        let fs = files(&[
            (
                "crates/core/src/lib.rs",
                "#![deny(unsafe_op_in_unsafe_fn)]\npub mod par;\n",
            ),
            (
                "crates/core/src/par.rs",
                "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n",
            ),
            (
                "crates/bench/src/schema.rs",
                "pub const THROUGHPUT: &str = \"isi-throughput/v1\";\n",
            ),
            (
                "crates/serve/src/store.rs",
                "use isi_core::MutexExt;\nfn f(m: &std::sync::Mutex<u32>) -> u32 { *m.plock(\"shard\") }\n",
            ),
        ]);
        let v = check_files(&fs);
        assert!(v.is_empty(), "clean tree flagged: {:?}", rules_fired(&v));
    }

    #[test]
    fn unsafe_without_safety_comment_fires() {
        let fs = files(&[
            (
                "crates/core/src/lib.rs",
                "#![deny(unsafe_op_in_unsafe_fn)]\n",
            ),
            (
                "crates/core/src/par.rs",
                "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
            ),
        ]);
        let v = check_files(&fs);
        assert!(
            rules_fired(&v).contains(&"safety-comment"),
            "{:?}",
            rules_fired(&v)
        );
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn unsafe_outside_allowlist_fires() {
        let fs = files(&[(
            "crates/serve/src/store.rs",
            "// SAFETY: seeded violation for the lint's own test.\nfn f() { unsafe { std::hint::unreachable_unchecked() } }\n",
        )]);
        let v = check_files(&fs);
        assert!(
            rules_fired(&v).contains(&"unsafe-allowlist"),
            "{:?}",
            rules_fired(&v)
        );
    }

    #[test]
    fn missing_deny_attr_fires() {
        let fs = files(&[
            ("crates/core/src/lib.rs", "pub mod par;\n"),
            (
                "crates/core/src/par.rs",
                "fn f(p: *const u8) -> u8 {\n    // SAFETY: test.\n    unsafe { *p }\n}\n",
            ),
        ]);
        let v = check_files(&fs);
        assert!(
            rules_fired(&v).contains(&"deny-unsafe-op"),
            "{:?}",
            rules_fired(&v)
        );
        assert_eq!(v[0].path, "crates/core/src/lib.rs");
    }

    #[test]
    fn test_files_are_their_own_crate_root() {
        let fs = files(&[(
            "crates/core/tests/alloc_steady.rs",
            "// SAFETY: test.\nfn f(p: *const u8) -> u8 { unsafe { *p } }\n",
        )]);
        let v = check_files(&fs);
        assert!(
            rules_fired(&v).contains(&"deny-unsafe-op"),
            "{:?}",
            rules_fired(&v)
        );
        assert_eq!(v[0].path, "crates/core/tests/alloc_steady.rs");
    }

    #[test]
    fn unsafe_in_comments_and_strings_ignored() {
        let fs = files(&[(
            "crates/serve/src/store.rs",
            "// this comment says unsafe\nconst X: &str = \"unsafe\"; /* unsafe */\n",
        )]);
        assert!(check_files(&fs).is_empty());
    }

    #[test]
    fn schema_tag_outside_registry_fires() {
        let fs = files(&[(
            "crates/bench/src/serve.rs",
            "pub const SCHEMA: &str = \"isi-serve/v1\";\n",
        )]);
        let v = check_files(&fs);
        assert!(
            rules_fired(&v).contains(&"schema-registry"),
            "{:?}",
            rules_fired(&v)
        );
    }

    #[test]
    fn schema_tag_in_doc_comment_allowed() {
        let fs = files(&[(
            "crates/bench/src/serve.rs",
            "//! Emits `isi-serve/v1` documents.\nuse crate::schema;\n",
        )]);
        assert!(check_files(&fs).is_empty());
    }

    #[test]
    fn bare_lock_unwrap_in_serve_fires() {
        let fs = files(&[(
            "crates/serve/src/service.rs",
            "fn f(m: &std::sync::Mutex<u32>) -> u32 { *m.lock().unwrap() }\n",
        )]);
        let v = check_files(&fs);
        assert!(
            rules_fired(&v).contains(&"serve-poison-policy"),
            "{:?}",
            rules_fired(&v)
        );
    }

    #[test]
    fn chained_wait_unwrap_in_serve_fires() {
        let fs = files(&[(
            "crates/serve/src/service.rs",
            "fn f() {\n    let g = cv\n        .wait(guard)\n        .unwrap();\n}\n",
        )]);
        let v = check_files(&fs);
        assert!(
            rules_fired(&v).contains(&"serve-poison-policy"),
            "{:?}",
            rules_fired(&v)
        );
    }

    #[test]
    fn bare_lock_unwrap_in_durable_fires() {
        let fs = files(&[(
            "crates/durable/src/fault.rs",
            "fn f(m: &std::sync::Mutex<u32>) -> u32 { *m.lock().unwrap() }\n",
        )]);
        let v = check_files(&fs);
        assert!(
            rules_fired(&v).contains(&"serve-poison-policy"),
            "{:?}",
            rules_fired(&v)
        );
    }

    #[test]
    fn bare_lock_unwrap_outside_serve_allowed() {
        let fs = files(&[(
            "crates/core/src/par.rs",
            "fn f(m: &std::sync::Mutex<u32>) -> u32 { *m.lock().unwrap() }\n",
        )]);
        assert!(check_files(&fs).is_empty());
    }

    #[test]
    fn atomic_u64_in_serve_fires() {
        let fs = files(&[(
            "crates/serve/src/service.rs",
            "use std::sync::atomic::AtomicU64;\nstruct S { hits: AtomicU64 }\n",
        )]);
        let v = check_files(&fs);
        let fired = rules_fired(&v);
        assert!(fired.contains(&"serve-obs-registry"), "{fired:?}");
        assert_eq!(
            v.iter().filter(|x| x.rule == "serve-obs-registry").count(),
            2
        );
    }

    #[test]
    fn atomic_u64_outside_serve_allowed() {
        let fs = files(&[
            (
                "crates/core/src/stats.rs",
                "// SAFETY-free file\nuse std::sync::atomic::AtomicU64;\nstatic N: AtomicU64 = AtomicU64::new(0);\n",
            ),
            (
                "crates/serve/src/store.rs",
                "// AtomicU64 in a comment is fine\nconst X: &str = \"AtomicU64\";\nuse std::sync::atomic::AtomicU32 as _;\n",
            ),
        ]);
        assert!(check_files(&fs).is_empty());
    }

    #[test]
    fn delta_clone_in_serve_write_path_fires() {
        let fs = files(&[(
            "crates/serve/src/store.rs",
            "fn write(cur: &ShardVersion) {\n    let mut delta = cur.delta.clone();\n    delta.entries.insert(pos, (key, val));\n}\n",
        )]);
        let v = check_files(&fs);
        assert_eq!(
            v.iter().filter(|x| x.rule == "serve-run-stack").count(),
            2,
            "{:?}",
            rules_fired(&v)
        );
    }

    #[test]
    fn delta_relics_outside_serve_src_allowed() {
        let fs = files(&[
            // Tests may exercise whatever shapes they like.
            (
                "crates/serve/tests/prop_mixed.rs",
                "fn f(d: &Delta) -> Delta { d.delta.clone() }\n",
            ),
            // Other crates are not under the rule.
            (
                "crates/bench/src/serve.rs",
                "fn f(d: &D) -> D { d.delta.clone() }\n",
            ),
            // Comments and strings never fire.
            (
                "crates/serve/src/store.rs",
                "// the old path did delta.clone() per write\nconst X: &str = \"delta.clone()\";\n",
            ),
        ]);
        let v = check_files(&fs);
        assert!(
            !rules_fired(&v).contains(&"serve-run-stack"),
            "{:?}",
            rules_fired(&v)
        );
    }

    #[test]
    fn hardcoded_group_in_serve_fires() {
        let fs = files(&[(
            "crates/serve/src/service.rs",
            "fn f() -> Interleave {\n    Interleave::Interleaved(6)\n}\n",
        )]);
        let v = check_files(&fs);
        assert!(
            rules_fired(&v).contains(&"serve-adapt-policy"),
            "{:?}",
            rules_fired(&v)
        );
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn configured_groups_and_controller_module_allowed() {
        let fs = files(&[
            // A group that flows from a variable is configuration.
            (
                "crates/serve/src/store.rs",
                "fn f(g: usize) -> Interleave { Interleave::Interleaved(g) }\n",
            ),
            // The adapt controller normalizes Fixed groups itself.
            (
                "crates/serve/src/adapt.rs",
                "fn g() -> Interleave { Interleave::Interleaved(4) }\n",
            ),
            // Tests and other crates are outside the rule.
            (
                "crates/serve/tests/prop_mixed.rs",
                "const P: Interleave = Interleave::Interleaved(6);\n",
            ),
            (
                "crates/bench/src/serve.rs",
                "const P: Interleave = Interleave::Interleaved(6);\n",
            ),
            // Comments and strings never fire.
            (
                "crates/serve/src/plan.rs",
                "// e.g. Interleave::Interleaved(6)\nconst X: &str = \"Interleave::Interleaved(6)\";\n",
            ),
        ]);
        let v = check_files(&fs);
        assert!(
            !rules_fired(&v).contains(&"serve-adapt-policy"),
            "{:?}",
            rules_fired(&v)
        );
    }

    #[test]
    fn sanitizer_handles_lifetimes_and_raw_strings() {
        let src = "fn f<'a>(x: &'a str) -> char { let c = 'x'; let s = r#\"unsafe\"#; c }\n";
        let fs = files(&[("crates/serve/src/store.rs", src)]);
        assert!(check_files(&fs).is_empty());
    }
}

//! Cross-crate integration tests: the whole stack — workload generators,
//! search kernels, CSB+-tree, column store, hash join, schedulers and
//! the simulator — exercised together, checked against independent
//! oracles.

use coro_isi::columnstore::{execute_in, execute_in_naive, Column, Table};
use coro_isi::core::mem::DirectMem;
use coro_isi::core::Interleave;
use coro_isi::csb::{bulk_lookup_interleaved, CsbTree, DirectTreeStore};
use coro_isi::hash::{hash_join, nested_loop_join};
use coro_isi::memsim::{SharedMachine, SimArray};
use coro_isi::search::{bulk_rank_coro, rank_oracle, Str16};
use coro_isi::workloads as wl;

#[test]
fn full_table_lifecycle_with_interleaved_queries() {
    // Build a two-column table, query it in every phase of the
    // main/delta lifecycle, and cross-check with the naive oracle.
    let mut table = Table::new(&["zip", "qty"]);
    let zips = wl::tpcds_q8_zipcodes(500, 3);
    for i in 0..20_000u64 {
        table.insert(&[zips[(i * 7 % 500) as usize], Str16::from_index(i % 100)]);
    }
    let in_list: Vec<Str16> = zips.iter().step_by(13).copied().collect();

    let before_merge = table.select_in("zip", &in_list, Interleave::Interleaved(6));
    assert_eq!(
        before_merge.0,
        execute_in_naive(table.column("zip"), &in_list),
        "delta-resident rows"
    );

    table.merge_all_deltas();
    let after_merge = table.select_in("zip", &in_list, Interleave::Interleaved(6));
    assert_eq!(
        before_merge.0, after_merge.0,
        "merge must not change results"
    );

    // Post-merge appends land in a fresh delta.
    for i in 0..5_000u64 {
        table.insert(&[zips[(i % 500) as usize], Str16::from_index(i % 100)]);
    }
    let (rows, stats) = table.select_in("zip", &in_list, Interleave::Interleaved(6));
    assert_eq!(rows, execute_in_naive(table.column("zip"), &in_list));
    assert!(stats.main_matches > 0 && stats.rows > after_merge.1.rows);
}

#[test]
fn search_and_tree_agree_on_the_same_dictionary() {
    // The same sorted value set indexed two ways (sorted array and
    // CSB+-tree) must locate every value identically.
    let n = 50_000u32;
    let dict: Vec<u32> = (0..n).map(|i| i * 3 + 1).collect();
    let pairs: Vec<(u32, u32)> = dict
        .iter()
        .enumerate()
        .map(|(i, v)| (*v, i as u32))
        .collect();
    let tree = CsbTree::from_sorted(&pairs);
    let store = DirectTreeStore::new(&tree);
    let mem = DirectMem::new(&dict);

    let probes: Vec<u32> = wl::uniform_indices(dict.len(), 3000, 17)
        .into_iter()
        .map(|i| dict[i])
        .chain((0..500).map(|i| i * 7)) // misses too
        .collect();

    let mut ranks = vec![0u32; probes.len()];
    bulk_rank_coro(mem, &probes, 6, &mut ranks);
    let mut tree_out = vec![None; probes.len()];
    bulk_lookup_interleaved(store, &probes, 6, &mut tree_out);

    for (i, p) in probes.iter().enumerate() {
        let arr_code = (dict[ranks[i] as usize] == *p).then_some(ranks[i]);
        assert_eq!(arr_code, tree_out[i], "probe {p}");
        assert_eq!(ranks[i], rank_oracle(&dict, p));
    }
}

#[test]
fn hash_join_consistent_with_in_predicate_semantics() {
    // An IN-predicate is a semi-join: row ids from execute_in must equal
    // the probe-side matches of a hash join against the IN list.
    let rows: Vec<u32> = (0..30_000).map(|i| i % 997).collect();
    let column = Column::from_rows(&rows);
    let in_list: Vec<u32> = (0..200).map(|i| i * 5).collect();

    let (row_ids, _) = execute_in(&column, &in_list, Interleave::Interleaved(6));

    let build: Vec<(u32, ())> = in_list.iter().map(|v| (*v, ())).collect();
    let probe: Vec<(u32, u64)> = rows
        .iter()
        .enumerate()
        .map(|(i, v)| (*v, i as u64))
        .collect();
    let mut joined: Vec<u64> = hash_join(&build, &probe, Interleave::Interleaved(6))
        .into_iter()
        .map(|(_, _, row)| row)
        .collect();
    joined.sort_unstable();
    assert_eq!(row_ids, joined);

    // And the join itself agrees with the nested-loop oracle.
    let small_build = &build[..20];
    let small_probe = &probe[..500];
    assert_eq!(
        hash_join(small_build, small_probe, Interleave::Interleaved(4)),
        nested_loop_join(small_build, small_probe)
    );
}

#[test]
fn simulator_and_real_memory_agree_on_results() {
    // The same coroutine must produce identical ranks on DirectMem and
    // on the simulator (the backends differ only in cost accounting).
    let table: Vec<u32> = (0..200_000u32).collect();
    let lookups = wl::uniform_lookups(table.len(), 2000);

    let mut direct = vec![0u32; lookups.len()];
    bulk_rank_coro(DirectMem::new(&table), &lookups, 6, &mut direct);

    let machine = SharedMachine::haswell();
    let arr = SimArray::new(&machine, table);
    let mut simulated = vec![0u32; lookups.len()];
    bulk_rank_coro(arr.mem(), &lookups, 6, &mut simulated);

    assert_eq!(direct, simulated);
    assert!(machine.stats().loads > 0, "the simulator actually ran");
}

#[test]
fn string_and_int_columns_behave_identically() {
    // Str16::from_index is order-preserving, so a string column built
    // from indices must answer IN queries exactly like the int column.
    let int_rows: Vec<u64> = (0..10_000u64).map(|i| (i * 13) % 2000).collect();
    let str_rows: Vec<Str16> = int_rows.iter().map(|&v| Str16::from_index(v)).collect();
    let int_col = Column::from_rows(&int_rows);
    let str_col = Column::from_rows(&str_rows);

    let int_list: Vec<u64> = (0..100).map(|i| i * 19).collect();
    let str_list: Vec<Str16> = int_list.iter().map(|&v| Str16::from_index(v)).collect();

    let (int_ids, int_stats) = execute_in(&int_col, &int_list, Interleave::Interleaved(6));
    let (str_ids, str_stats) = execute_in(&str_col, &str_list, Interleave::Interleaved(6));
    assert_eq!(int_ids, str_ids);
    assert_eq!(int_stats, str_stats);
}

//! # coro-isi — interleaving with coroutines for robust index joins
//!
//! A from-scratch Rust reproduction of *Psaropoulos, Legler, May,
//! Ailamaki — "Interleaving with Coroutines: A Practical Approach for
//! Robust Index Joins" (PVLDB 11(2), 2017)*.
//!
//! Index lookups over data larger than the last-level cache spend most
//! of their time stalled on main memory. This library hides those
//! stalls by *instruction stream interleaving*: a group of independent
//! lookups runs as coroutines (`async fn` state machines), each issuing
//! a software prefetch for the line it is about to touch and suspending;
//! while the miss is in flight, the scheduler resumes the other lookups.
//! One source-level implementation serves both sequential and
//! interleaved execution — the paper's practicality argument.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`core`](isi_core) — suspension machinery, schedulers (Listing 7),
//!   prefetch, the Section 3 analytic model.
//! * [`search`](isi_search) — binary search five ways: `std`-style,
//!   branch-free baseline, GP, AMAC, CORO (Listings 2-5).
//! * [`csb`](isi_csb) — a cache-sensitive B+-tree with interleaved
//!   lookups (Listing 6).
//! * [`hash`](isi_hash) — chained hash table + hash join with
//!   interleaved probes (the Section 6 extension).
//! * [`columnstore`](isi_columnstore) — a HANA-style dictionary-encoded
//!   column store with Main/Delta parts and IN-predicate execution.
//! * [`memsim`](isi_memsim) — a software model of the paper's Haswell
//!   memory hierarchy for the microarchitectural experiments.
//! * [`serve`](isi_serve) — a sharded, admission-batched point-lookup
//!   service that coalesces concurrent single-key requests into
//!   interleaved batches.
//! * [`workloads`](isi_workloads) — the paper's data/lookup generators.
//!
//! ## Quickstart
//!
//! ```
//! use coro_isi::columnstore::{Column, Interleave, execute_in};
//!
//! // A dictionary-encoded column: 100k rows over 10k distinct values.
//! let rows: Vec<u32> = (0..100_000).map(|i| i % 10_000).collect();
//! let column = Column::from_rows(&rows);
//!
//! // SELECT ... WHERE col IN (...) with an interleaved encode phase.
//! let in_list: Vec<u32> = (0..500).map(|i| i * 20).collect();
//! let (row_ids, stats) = execute_in(&column, &in_list, Interleave::Interleaved(6));
//! assert_eq!(stats.rows, row_ids.len());
//! assert_eq!(row_ids.len(), 500 * 10); // each matched value appears 10x
//! ```

pub use isi_columnstore as columnstore;
pub use isi_core as core;
pub use isi_csb as csb;
pub use isi_hash as hash;
pub use isi_memsim as memsim;
pub use isi_search as search;
pub use isi_serve as serve;
pub use isi_workloads as workloads;

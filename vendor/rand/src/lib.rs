//! Offline stub of the `rand` 0.8 API surface used by this workspace.
//!
//! The build environment cannot reach crates.io, so this crate provides
//! the handful of items the workspace imports: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer
//! ranges, and [`Rng::gen`] for `f64`/integers. The generator is
//! xoshiro256++ seeded via SplitMix64 — deterministic per seed, which is
//! all the workloads and tests rely on (the exact stream differs from
//! upstream `rand`'s ChaCha12-based `StdRng`).

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: 64 bits at a time.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface; only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// A type samplable uniformly from the generator's raw output.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u32, u64, usize);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_range!(u32, u64, usize);

/// The user-facing extension trait, blanket-implemented for every
/// [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`: xoshiro256++
    /// with SplitMix64 seed expansion.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // xoshiro256++ requires a nonzero state; SplitMix64 cannot
            // produce all-zero output for any seed, but be explicit.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..=5);
            assert!(w <= 5);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}

//! Offline stub of the `criterion` 0.5 API surface used by this
//! workspace's benches.
//!
//! Each `Bencher::iter` call runs `WARMUP_ITERS` untimed warmup
//! iterations (to populate caches, branch predictors and lazy
//! allocations), then `MEDIAN_SAMPLES` timed samples of
//! `ceil(sample_size / MEDIAN_SAMPLES)` iterations each, and reports
//! the **median** sample's per-iteration time — the median discards
//! one-sided interference (preemption, page faults) that would skew an
//! average, so wall-clock numbers are reproducible on a noisy machine.
//! Output is one line, `bench group/id: <ns/iter> (<rate>)`. No
//! statistical analysis, plots, or CLI args — just enough to compile
//! and produce comparable wall-clock numbers offline.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Units for the per-iteration throughput line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark label: `function` plus an optional parameter, printed
/// as `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Passed to the closure given to `bench_function`; `iter` performs the
/// measurement.
pub struct Bencher<'a> {
    group: &'a str,
    id: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

/// Untimed iterations before measurement starts.
const WARMUP_ITERS: usize = 3;

/// Timed samples per benchmark; the median one is reported.
const MEDIAN_SAMPLES: usize = 5;

impl Bencher<'_> {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup: untimed iterations to settle caches and allocations.
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        // Median-of-k: split the `sample_size` iteration budget into
        // MEDIAN_SAMPLES timed batches and report the median batch.
        let batch = self.sample_size.div_ceil(MEDIAN_SAMPLES);
        let mut samples = [0f64; MEDIAN_SAMPLES];
        for sample in &mut samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            *sample = start.elapsed().as_nanos() as f64 / batch as f64;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let per_iter = samples[MEDIAN_SAMPLES / 2];
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!(" ({:.1} Melem/s)", n as f64 / per_iter * 1e3)
            }
            Some(Throughput::Bytes(n)) => {
                format!(" ({:.1} MB/s)", n as f64 / per_iter * 1e3)
            }
            None => String::new(),
        };
        let name = if self.group.is_empty() {
            self.id.clone()
        } else {
            format!("{}/{}", self.group, self.id)
        };
        println!("bench {name}: {per_iter:.0} ns/iter{rate}");
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id: BenchmarkId = id.into();
        let mut b = Bencher {
            group: &self.name,
            id: id.label,
            sample_size: self.sample_size,
            throughput: self.throughput,
        };
        f(&mut b);
        self
    }

    pub fn finish(self) {}
}

/// The top-level driver handed to each `criterion_group!` target.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id: BenchmarkId = id.into();
        let mut b = Bencher {
            group: "",
            id: id.label,
            sample_size: self.default_sample_size,
            throughput: None,
        };
        f(&mut b);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

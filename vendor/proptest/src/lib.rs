//! Offline stub of the `proptest` 1.x API surface used by this
//! workspace.
//!
//! Provides deterministic random-case generation for the `proptest!`
//! macro with the strategy combinators the tests use: integer ranges,
//! tuples, `prop_map`, `prop_oneof!`, `collection::vec` and
//! `collection::btree_map`. No shrinking: a failing case panics with
//! the case index and (via `prop_assert*`) the failed condition, which
//! is reproducible because generation is seeded deterministically.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic case generator — a thin wrapper over the sibling
    /// `rand` stub's [`StdRng`] so there is one RNG implementation in
    /// the vendored tree.
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        pub fn deterministic() -> Self {
            Self::from_seed(0x5EED_CAFE_F00D_D00D)
        }

        pub fn from_seed(state: u64) -> Self {
            TestRng {
                inner: StdRng::seed_from_u64(state),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            self.next_u64() % n
        }
    }

    /// A source of values for one test argument. Unlike upstream
    /// proptest there is no value tree / shrinking: `generate` yields a
    /// concrete value directly.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f }
        }
    }

    /// Object-safe generation, for `prop_oneof!`.
    pub trait DynStrategy {
        type Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    pub fn box_strategy<V>(
        s: impl DynStrategy<Value = V> + 'static,
    ) -> Box<dyn DynStrategy<Value = V>> {
        Box::new(s)
    }

    /// Uniform choice between alternatives; the expansion of
    /// `prop_oneof!`.
    pub struct OneOf<V> {
        choices: Vec<Box<dyn DynStrategy<Value = V>>>,
    }

    impl<V> OneOf<V> {
        pub fn new(choices: Vec<Box<dyn DynStrategy<Value = V>>>) -> Self {
            assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { choices }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.choices.len() as u64) as usize;
            self.choices[i].generate_dyn(rng)
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates in a row");
        }
    }

    /// Always produces a clone of the given value (`proptest::strategy::Just`).
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start + ((rng.next_u64() as u128) % span) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128) - (lo as u128) + 1;
                    lo + ((rng.next_u64() as u128) % span) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $S:ident),+))+) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy! {
        (0 S0)
        (0 S0, 1 S1)
        (0 S0, 1 S1, 2 S2)
        (0 S0, 1 S1, 2 S2, 3 S3)
        (0 S0, 1 S1, 2 S2, 3 S3, 4 S4)
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use std::collections::BTreeMap;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec`: a vector whose length is drawn from
    /// `size` and whose elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// `proptest::collection::btree_map`: up to `size` distinct keys
    /// (duplicates collapse, exactly like upstream).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            assert!(self.size.start < self.size.end, "empty size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            let mut out = BTreeMap::new();
            for _ in 0..len {
                out.insert(self.key.generate(rng), self.value.generate(rng));
            }
            out
        }
    }
}

pub mod test_runner {
    /// Failure raised by `prop_assert*`; carried as `Err` out of the
    /// generated test body.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Run-count knob; mirrors `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), format!($($fmt)+), l, r),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![$($crate::strategy::box_strategy($s)),+])
    };
}

/// The test-declaring macro. Supports the upstream surface the
/// workspace uses: an optional `#![proptest_config(..)]` header and
/// test functions whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@tests ($cfg); $($rest)*);
    };
    (@tests ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::strategy::TestRng::deterministic();
                for case in 0..config.cases {
                    $(let $p = $crate::strategy::Strategy::generate(&($s), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest case {}/{} failed: {}", case + 1, config.cases, e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@tests ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

//! Property-based tests: the CSB+-tree behaves exactly like a
//! `BTreeMap` under arbitrary interleavings of bulk-load, insert,
//! point-lookup and range-scan operations, and every structural
//! invariant (sorted nodes, separator bounds, arena accounting) holds
//! after every batch of mutations.

use proptest::prelude::*;
use std::collections::BTreeMap;

use isi_csb::{bulk_lookup_interleaved, CsbTree, DirectTreeStore};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn behaves_like_btreemap(
        bulk in proptest::collection::btree_map(0u32..2_000, 0u32..1_000_000, 0..400),
        inserts in proptest::collection::vec((0u32..2_000, 0u32..1_000_000), 0..300),
        probes in proptest::collection::vec(0u32..2_500, 0..100),
    ) {
        let pairs: Vec<(u32, u32)> = bulk.iter().map(|(k, v)| (*k, *v)).collect();
        let mut tree = CsbTree::from_sorted(&pairs);
        let mut model: BTreeMap<u32, u32> = bulk;

        for (k, v) in inserts {
            prop_assert_eq!(tree.insert(k, v), model.insert(k, v));
        }
        tree.validate();
        prop_assert_eq!(tree.len(), model.len());

        for p in probes {
            prop_assert_eq!(tree.get(&p), model.get(&p).copied());
        }

        // Full ordered iteration agrees.
        let items = tree.items();
        let expect: Vec<(u32, u32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(items, expect);
    }

    #[test]
    fn range_scans_match_model(
        inserts in proptest::collection::vec((0u32..5_000, 0u32..100), 1..500),
        lo in 0u32..5_000,
        width in 0u32..2_000,
    ) {
        let mut tree = CsbTree::new();
        let mut model = BTreeMap::new();
        for (k, v) in inserts {
            tree.insert(k, v);
            model.insert(k, v);
        }
        let hi = lo.saturating_add(width);
        let mut got = Vec::new();
        tree.for_each_in_range(&lo, &hi, |k, v| got.push((*k, *v)));
        let expect: Vec<(u32, u32)> = model.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn interleaved_lookup_agrees_with_get(
        inserts in proptest::collection::vec((0u32..3_000, 0u32..100), 1..400),
        probes in proptest::collection::vec(0u32..3_500, 1..120),
        group in 1usize..12,
    ) {
        let mut tree = CsbTree::new();
        for (k, v) in inserts {
            tree.insert(k, v);
        }
        let store = DirectTreeStore::new(&tree);
        let mut out = vec![None; probes.len()];
        bulk_lookup_interleaved(store, &probes, group, &mut out);
        for (i, p) in probes.iter().enumerate() {
            prop_assert_eq!(out[i], tree.get(p));
        }
    }

    #[test]
    fn rebuild_preserves_content(
        inserts in proptest::collection::vec((0u32..1_000, 0u32..50), 0..300),
    ) {
        let mut tree = CsbTree::new();
        for (k, v) in inserts {
            tree.insert(k, v);
        }
        let rebuilt = tree.rebuilt();
        rebuilt.validate();
        prop_assert_eq!(rebuilt.items(), tree.items());
        prop_assert_eq!(rebuilt.garbage(), (0, 0));
    }
}

//! Tree-lookup coroutines — the paper's Listing 6, plus an AMAC variant
//! and bulk drivers.
//!
//! The coroutine descends one level per suspension: it computes the
//! child with an in-node search (no cache misses — the node was
//! prefetched whole), issues a prefetch for every cache line of the
//! child, suspends, and continues in the child after resumption. The
//! root is assumed cache-resident (paper Listing 6 line 4), so the first
//! level is not prefetched.

use isi_core::coro::suspend;
use isi_core::sched::{run_interleaved, run_sequential, RunStats};

use crate::store::TreeStore;

/// Simulated cycles for the in-node search + child-address computation.
pub const NODE_SEARCH_COST: u32 = 12;

/// Simulated cycles for one suspend/resume switch (same state-management
/// cost as the binary-search coroutine).
pub const TREE_SWITCH_COST: u32 = isi_search::cost::CORO_SWITCH;

/// CSB+-tree lookup coroutine (paper Listing 6), unified
/// sequential/interleaved codepath.
///
/// With `INTERLEAVE = false` this monomorphizes to a plain recursive-
/// descent lookup; with `true`, each level's node is prefetched and the
/// coroutine suspends before touching it.
pub async fn lookup_coro<const INTERLEAVE: bool, K, V, S>(store: S, value: K) -> Option<V>
where
    K: Copy + Ord + Default,
    V: Copy + Default,
    S: TreeStore<K, V>,
{
    let mut idx = store.root();
    let mut level = store.height();
    let mut resumed = false;
    while level > 0 {
        let node = store.inner(idx);
        if INTERLEAVE && resumed {
            // Resume bookkeeping cannot overlap the miss it exposed.
            store.compute(TREE_SWITCH_COST);
        }
        store.compute(NODE_SEARCH_COST);
        let slot = node.child_slot(&value);
        let next = node.first_child + slot as u32;
        level -= 1;
        if INTERLEAVE {
            if level > 0 {
                store.prefetch_inner(next);
            } else {
                store.prefetch_leaf(next);
            }
            suspend().await;
            resumed = true;
        }
        idx = next;
    }
    let leaf = store.leaf(idx);
    if INTERLEAVE && resumed {
        store.compute(TREE_SWITCH_COST);
    }
    store.compute(NODE_SEARCH_COST);

    leaf.find(&value).map(|pos| leaf.values[pos])
}

/// Sequential point lookup through a store (equivalent to
/// `CsbTree::get`, but charged to the store's cost model).
pub fn lookup_seq<K, V, S>(store: &S, value: K) -> Option<V>
where
    K: Copy + Ord + Default,
    V: Copy + Default,
    S: TreeStore<K, V>,
{
    let mut idx = store.root();
    let mut level = store.height();
    while level > 0 {
        let node = store.inner(idx);
        store.compute(NODE_SEARCH_COST);
        idx = node.first_child + node.child_slot(&value) as u32;
        level -= 1;
    }
    let leaf = store.leaf(idx);
    store.compute(NODE_SEARCH_COST);
    leaf.find(&value).map(|pos| leaf.values[pos])
}

/// Bulk lookup, interleaved: `group_size` tree-traversal coroutines
/// time-share the core (paper Listing 7 applied to Listing 6).
///
/// # Panics
/// Panics if `out.len() != values.len()`.
pub fn bulk_lookup_interleaved<K, V, S>(
    store: S,
    values: &[K],
    group_size: usize,
    out: &mut [Option<V>],
) -> RunStats
where
    K: Copy + Ord + Default,
    V: Copy + Default,
    S: TreeStore<K, V> + Copy,
{
    assert_eq!(values.len(), out.len(), "output length mismatch");
    run_interleaved(
        group_size,
        values.iter().copied(),
        |v| lookup_coro::<true, K, V, S>(store, v),
        |i, r| out[i] = r,
    )
}

/// Bulk lookup, sequential execution of the same coroutine with
/// `INTERLEAVE = false`.
///
/// # Panics
/// Panics if `out.len() != values.len()`.
pub fn bulk_lookup_seq<K, V, S>(store: S, values: &[K], out: &mut [Option<V>]) -> RunStats
where
    K: Copy + Ord + Default,
    V: Copy + Default,
    S: TreeStore<K, V> + Copy,
{
    assert_eq!(values.len(), out.len(), "output length mismatch");
    run_sequential(
        values.iter().copied(),
        |v| lookup_coro::<false, K, V, S>(store, v),
        |i, r| out[i] = r,
    )
}

/// Morsel-parallel bulk lookup: worker threads claim morsels of the
/// probe batch and drive each through the *same* interleaved tree
/// coroutine ([`lookup_coro`]) with `group_size` in-flight traversals,
/// reusing one frame slab per worker across morsels (see
/// [`isi_core::par`]).
///
/// Returns the merged [`RunStats`] (totals sum; `peak_in_flight` is the
/// per-worker peak).
///
/// # Panics
/// Panics if `out.len() != values.len()`.
pub fn bulk_lookup_par<K, V, S>(
    store: S,
    values: &[K],
    group_size: usize,
    cfg: isi_core::par::ParConfig,
    out: &mut [Option<V>],
) -> RunStats
where
    K: Copy + Ord + Default + Sync,
    V: Copy + Default + Send,
    S: TreeStore<K, V> + Copy + Sync,
{
    assert_eq!(values.len(), out.len(), "output length mismatch");
    let sink = isi_core::par::DisjointOut::new(out);
    isi_core::par::run_interleaved_par(
        cfg,
        group_size,
        values,
        |v| lookup_coro::<true, K, V, S>(store, v),
        // SAFETY: the scheduler emits each claimed input index exactly
        // once, and claimed morsel ranges are disjoint across workers.
        |i, r| unsafe { sink.write(i, r) },
    )
}

/// AMAC-style tree lookup: the hand-written state machine the coroutine
/// replaces (kept as the comparison baseline; the paper argues they are
/// equivalent in capability and performance).
pub fn bulk_lookup_amac<K, V, S>(store: &S, values: &[K], group_size: usize, out: &mut [Option<V>])
where
    K: Copy + Ord + Default,
    V: Copy + Default,
    S: TreeStore<K, V>,
{
    assert_eq!(values.len(), out.len(), "output length mismatch");
    assert!(group_size > 0, "group_size must be positive");
    if values.is_empty() {
        return;
    }
    #[derive(Clone, Copy)]
    enum Stage {
        Init,
        Descend,
        Leaf,
        Done,
    }
    #[derive(Clone, Copy)]
    struct St<K> {
        value: K,
        input: usize,
        idx: u32,
        level: u32,
        stage: Stage,
    }
    let g = group_size.min(values.len());
    let mut buf: Vec<St<K>> = (0..g)
        .map(|_| St {
            value: values[0],
            input: 0,
            idx: 0,
            level: 0,
            stage: Stage::Init,
        })
        .collect();
    let mut next_input = 0usize;
    let mut not_done = g;
    let mut cursor = 0usize;
    while not_done > 0 {
        let st = &mut buf[cursor];
        match st.stage {
            Stage::Init => {
                if next_input < values.len() {
                    st.value = values[next_input];
                    st.input = next_input;
                    st.idx = store.root();
                    st.level = store.height();
                    next_input += 1;
                    st.stage = if st.level == 0 {
                        Stage::Leaf
                    } else {
                        Stage::Descend
                    };
                } else {
                    st.stage = Stage::Done;
                    not_done -= 1;
                }
            }
            Stage::Descend => {
                let node = store.inner(st.idx);
                store.compute(NODE_SEARCH_COST + TREE_SWITCH_COST);
                let next = node.first_child + node.child_slot(&st.value) as u32;
                st.idx = next;
                st.level -= 1;
                if st.level > 0 {
                    store.prefetch_inner(next);
                } else {
                    store.prefetch_leaf(next);
                    st.stage = Stage::Leaf;
                }
            }
            Stage::Leaf => {
                let leaf = store.leaf(st.idx);
                store.compute(NODE_SEARCH_COST + TREE_SWITCH_COST);
                out[st.input] = leaf.find(&st.value).map(|pos| leaf.values[pos]);
                st.stage = Stage::Init;
            }
            Stage::Done => {}
        }
        cursor += 1;
        if cursor == g {
            cursor = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::DirectTreeStore;
    use crate::tree::CsbTree;
    use isi_core::coro::run_to_completion;

    fn tree(n: u32) -> CsbTree<u32, u32> {
        CsbTree::from_sorted(&(0..n).map(|i| (i * 3, i)).collect::<Vec<_>>())
    }

    #[test]
    fn coro_lookup_matches_get_both_modes() {
        let t = tree(2000);
        let store = DirectTreeStore::new(&t);
        for probe in 0..6100u32 {
            let expect = t.get(&probe);
            let seq = run_to_completion(lookup_coro::<false, _, _, _>(store, probe));
            let inter = run_to_completion(lookup_coro::<true, _, _, _>(store, probe));
            assert_eq!(seq, expect, "probe={probe}");
            assert_eq!(inter, expect, "probe={probe}");
        }
    }

    #[test]
    fn bulk_lookup_all_variants_agree() {
        let t = tree(5000);
        let store = DirectTreeStore::new(&t);
        let probes: Vec<u32> = (0..997).map(|i| i * 17 % 16000).collect();
        let expect: Vec<Option<u32>> = probes.iter().map(|p| t.get(p)).collect();

        let mut seq = vec![None; probes.len()];
        bulk_lookup_seq(store, &probes, &mut seq);
        assert_eq!(seq, expect);

        for group in [1, 4, 6, 16] {
            let mut inter = vec![None; probes.len()];
            bulk_lookup_interleaved(store, &probes, group, &mut inter);
            assert_eq!(inter, expect, "group={group}");

            let mut amac = vec![None; probes.len()];
            bulk_lookup_amac(&store, &probes, group, &mut amac);
            assert_eq!(amac, expect, "amac group={group}");
        }
    }

    #[test]
    fn parallel_bulk_lookup_matches_sequential() {
        let t = tree(5000);
        let store = DirectTreeStore::new(&t);
        let probes: Vec<u32> = (0..2311).map(|i| i * 13 % 16000).collect();
        let expect: Vec<Option<u32>> = probes.iter().map(|p| t.get(p)).collect();
        for threads in [1, 2, 4] {
            let cfg = isi_core::par::ParConfig {
                threads,
                morsel_size: 256,
            };
            let mut out = vec![None; probes.len()];
            let stats = bulk_lookup_par(store, &probes, 6, cfg, &mut out);
            assert_eq!(out, expect, "threads={threads}");
            assert_eq!(stats.lookups, probes.len() as u64);
            assert!(stats.peak_in_flight <= 6);
        }
    }

    #[test]
    fn suspends_once_per_non_root_level() {
        let t = tree(5000);
        let store = DirectTreeStore::new(&t);
        let mut out = vec![None; 1];
        let stats = bulk_lookup_interleaved(store, &[42], 4, &mut out);
        assert_eq!(stats.switches as u32, t.height(), "one switch per level");
    }

    #[test]
    fn lookup_on_empty_and_tiny_trees() {
        let t = CsbTree::<u32, u32>::new();
        let store = DirectTreeStore::new(&t);
        assert_eq!(
            run_to_completion(lookup_coro::<true, _, _, _>(store, 1)),
            None
        );
        assert_eq!(lookup_seq(&store, 1), None);

        let t = tree(3); // single leaf
        let store = DirectTreeStore::new(&t);
        assert_eq!(
            run_to_completion(lookup_coro::<true, _, _, _>(store, 3)),
            Some(1)
        );
    }

    #[test]
    fn works_on_inserted_trees_with_garbage() {
        let mut t = CsbTree::<u32, u32>::new();
        for i in 0..3000u32 {
            t.insert(i.wrapping_mul(2654435761) % 50_000, i);
        }
        t.validate();
        let store = DirectTreeStore::new(&t);
        let mut out = vec![None; 50_000];
        let probes: Vec<u32> = (0..50_000).collect();
        bulk_lookup_interleaved(store, &probes, 6, &mut out);
        for p in 0..50_000u32 {
            assert_eq!(out[p as usize], t.get(&p));
        }
    }
}

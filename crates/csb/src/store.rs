//! Storage backends for tree traversal: direct memory (production /
//! wall-clock benchmarks) and simulated memory (microarchitectural
//! breakdowns), mirroring `isi_core::mem::IndexedMem` at node
//! granularity.

use isi_core::prefetch::prefetch_object_nta;
use isi_memsim::{SharedMachine, SimArray};

use crate::node::{InnerNode, LeafNode};
use crate::tree::CsbTree;

/// Node-granular access to a CSB+-tree: the traversal coroutines in
/// [`crate::lookup`] are generic over this, so one implementation serves
/// real and simulated memory.
pub trait TreeStore<K, V> {
    /// Access inner node `idx` (charges simulated cost for all its
    /// cache lines, if the backend models cost).
    fn inner(&self, idx: u32) -> &InnerNode<K>;
    /// Access leaf node `idx`.
    fn leaf(&self, idx: u32) -> &LeafNode<K, V>;
    /// Prefetch every cache line of inner node `idx`.
    fn prefetch_inner(&self, idx: u32);
    /// Prefetch every cache line of leaf node `idx`.
    fn prefetch_leaf(&self, idx: u32);
    /// Charge pure computation (no-op on real memory).
    #[inline(always)]
    fn compute(&self, cycles: u32) {
        let _ = cycles;
    }
    /// Root node index.
    fn root(&self) -> u32;
    /// Number of inner levels.
    fn height(&self) -> u32;
}

impl<K, V, S: TreeStore<K, V>> TreeStore<K, V> for &S {
    #[inline(always)]
    fn inner(&self, idx: u32) -> &InnerNode<K> {
        (**self).inner(idx)
    }
    #[inline(always)]
    fn leaf(&self, idx: u32) -> &LeafNode<K, V> {
        (**self).leaf(idx)
    }
    #[inline(always)]
    fn prefetch_inner(&self, idx: u32) {
        (**self).prefetch_inner(idx)
    }
    #[inline(always)]
    fn prefetch_leaf(&self, idx: u32) {
        (**self).prefetch_leaf(idx)
    }
    #[inline(always)]
    fn compute(&self, cycles: u32) {
        (**self).compute(cycles)
    }
    #[inline(always)]
    fn root(&self) -> u32 {
        (**self).root()
    }
    #[inline(always)]
    fn height(&self) -> u32 {
        (**self).height()
    }
}

/// Real-memory backend: borrows the tree arenas, prefetches with the
/// hardware instruction. Two words; `Copy`.
pub struct DirectTreeStore<'a, K, V> {
    tree: &'a CsbTree<K, V>,
}

impl<'a, K, V> Clone for DirectTreeStore<'a, K, V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'a, K, V> Copy for DirectTreeStore<'a, K, V> {}

impl<'a, K, V> DirectTreeStore<'a, K, V> {
    /// Wrap a tree.
    pub fn new(tree: &'a CsbTree<K, V>) -> Self {
        Self { tree }
    }
}

impl<'a, K, V> TreeStore<K, V> for DirectTreeStore<'a, K, V> {
    #[inline(always)]
    fn inner(&self, idx: u32) -> &InnerNode<K> {
        &self.tree.inners[idx as usize]
    }
    #[inline(always)]
    fn leaf(&self, idx: u32) -> &LeafNode<K, V> {
        &self.tree.leaves[idx as usize]
    }
    #[inline(always)]
    fn prefetch_inner(&self, idx: u32) {
        if let Some(node) = self.tree.inners.get(idx as usize) {
            prefetch_object_nta(node as *const _, std::mem::size_of::<InnerNode<K>>());
        }
    }
    #[inline(always)]
    fn prefetch_leaf(&self, idx: u32) {
        if let Some(node) = self.tree.leaves.get(idx as usize) {
            prefetch_object_nta(node as *const _, std::mem::size_of::<LeafNode<K, V>>());
        }
    }
    #[inline(always)]
    fn root(&self) -> u32 {
        self.tree.root()
    }
    #[inline(always)]
    fn height(&self) -> u32 {
        self.tree.height()
    }
}

/// Simulated-memory backend: the tree's arenas are copied into the
/// machine's synthetic address space, so traversals charge cache, TLB
/// and fill-buffer costs — node-granular (a 64-byte inner node is one
/// line; leaves span several).
pub struct SimTreeStore<K, V> {
    inners: SimArray<InnerNode<K>>,
    leaves: SimArray<LeafNode<K, V>>,
    root: u32,
    height: u32,
}

impl<K: Copy, V: Copy> SimTreeStore<K, V> {
    /// Copy `tree`'s arenas into `machine`'s address space.
    pub fn from_tree(machine: &SharedMachine, tree: &CsbTree<K, V>) -> Self {
        Self {
            inners: SimArray::new(machine, tree.inners.clone()),
            leaves: SimArray::new(machine, tree.leaves.clone()),
            root: tree.root(),
            height: tree.height(),
        }
    }
}

impl<K, V> TreeStore<K, V> for SimTreeStore<K, V> {
    fn inner(&self, idx: u32) -> &InnerNode<K> {
        use isi_core::mem::IndexedMem;
        // Charge the access through the cost model, then hand out a
        // reference tied to the arena itself.
        let _ = self.inners.mem().at(idx as usize);
        &self.inners.raw()[idx as usize]
    }
    fn leaf(&self, idx: u32) -> &LeafNode<K, V> {
        use isi_core::mem::IndexedMem;
        let _ = self.leaves.mem().at(idx as usize);
        &self.leaves.raw()[idx as usize]
    }
    fn prefetch_inner(&self, idx: u32) {
        use isi_core::mem::IndexedMem;
        self.inners.mem().prefetch(idx as usize);
    }
    fn prefetch_leaf(&self, idx: u32) {
        use isi_core::mem::IndexedMem;
        self.leaves.mem().prefetch(idx as usize);
    }
    fn compute(&self, cycles: u32) {
        self.inners.machine().compute(cycles);
    }
    fn root(&self) -> u32 {
        self.root
    }
    fn height(&self) -> u32 {
        self.height
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> CsbTree<u32, u32> {
        let pairs: Vec<(u32, u32)> = (0..500).map(|i| (i * 2, i)).collect();
        CsbTree::from_sorted(&pairs)
    }

    #[test]
    fn direct_store_exposes_tree_shape() {
        let t = sample_tree();
        let s = DirectTreeStore::new(&t);
        assert_eq!(s.root(), t.root());
        assert_eq!(s.height(), t.height());
        let root = s.inner(s.root());
        assert!(root.nkeys > 0);
        s.prefetch_inner(s.root());
        s.prefetch_leaf(0);
        s.prefetch_inner(u32::MAX); // out of bounds: harmless
        s.compute(10);
    }

    #[test]
    fn sim_store_charges_costs() {
        let t = sample_tree();
        let machine = SharedMachine::haswell();
        let s = SimTreeStore::from_tree(&machine, &t);
        assert_eq!(s.height(), t.height());
        let before = machine.stats();
        let _ = s.leaf(0);
        let after = machine.stats();
        assert!(after.loads > before.loads, "leaf access must charge loads");
        // A u32 leaf spans two cache lines.
        assert_eq!(after.loads - before.loads, 2);
        s.prefetch_leaf(1);
        assert!(machine.stats().prefetches >= 2);
        s.compute(5);
    }

    #[test]
    fn stores_agree_on_content() {
        let t = sample_tree();
        let machine = SharedMachine::haswell();
        let d = DirectTreeStore::new(&t);
        let s = SimTreeStore::from_tree(&machine, &t);
        let leaf_d = d.leaf(3);
        let leaf_s = s.leaf(3);
        assert_eq!(leaf_d.keys(), leaf_s.keys());
        assert_eq!(d.inner(t.root()).keys(), s.inner(t.root()).keys());
    }
}

//! [`CsbShard`]: the CSB+-tree [`ShardBackend`] — the serving layer's
//! "csb" main index.
//!
//! Batch lookups descend the tree through the interleaved traversal
//! coroutines ([`crate::lookup::bulk_lookup_par`], the paper's
//! Listing 6); range scans ride [`CsbTree::for_each_in_range`], which
//! prunes whole node groups outside the bounds; rebuilds bulk-load a
//! fresh fully-packed tree ([`CsbTree::from_sorted`]).

use std::sync::Arc;

use isi_core::backend::ShardBackend;
use isi_core::par::ParConfig;
use isi_core::policy::Interleave;
use isi_core::sched::RunStats;

use crate::store::DirectTreeStore;
use crate::tree::CsbTree;

/// A CSB+-tree over `u64 → u64`, servable in bulk by the interleaved
/// tree-descent drivers.
pub struct CsbShard {
    tree: CsbTree<u64, u64>,
}

impl CsbShard {
    /// Bulk-load from strictly-sorted, duplicate-free pairs.
    pub fn build(pairs: &[(u64, u64)]) -> Self {
        Self {
            tree: CsbTree::from_sorted(pairs),
        }
    }

    /// The underlying tree.
    pub fn tree(&self) -> &CsbTree<u64, u64> {
        &self.tree
    }
}

impl ShardBackend for CsbShard {
    fn len(&self) -> usize {
        self.tree.len()
    }

    fn get(&self, key: u64) -> Option<u64> {
        self.tree.get(&key)
    }

    fn probe_batch(
        &self,
        keys: &[u64],
        policy: Interleave,
        par: ParConfig,
        _scratch: &mut Vec<u32>,
        out: &mut [Option<u64>],
    ) -> RunStats {
        crate::lookup::bulk_lookup_par(
            DirectTreeStore::new(&self.tree),
            keys,
            policy.group_or_one(),
            par,
            out,
        )
    }

    fn scan_range(&self, lo: u64, hi: u64, out: &mut Vec<(u64, u64)>) {
        self.tree
            .for_each_in_range(&lo, &hi, |k, v| out.push((*k, *v)));
    }

    fn rebuild(&self, pairs: &[(u64, u64)]) -> Arc<dyn ShardBackend> {
        Arc::new(Self::build(pairs))
    }

    fn pairs(&self) -> Vec<(u64, u64)> {
        self.tree.items()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(n: u64) -> CsbShard {
        CsbShard::build(&(0..n).map(|i| (i * 3, i + 100)).collect::<Vec<_>>())
    }

    #[test]
    fn get_and_probe_agree() {
        let s = shard(2000);
        let probes: Vec<u64> = (0..2500).map(|i| i * 2).collect();
        let mut out = vec![None; probes.len()];
        let mut scratch = Vec::new();
        let stats = s.probe_batch(
            &probes,
            Interleave::Interleaved(6),
            ParConfig::with_threads(2),
            &mut scratch,
            &mut out,
        );
        assert_eq!(stats.lookups, probes.len() as u64);
        for (&k, &r) in probes.iter().zip(&out) {
            assert_eq!(r, s.get(k), "key={k}");
        }
    }

    #[test]
    fn scan_range_matches_filter() {
        let s = shard(500);
        for (lo, hi) in [(0, 0), (5, 100), (299, 1501), (0, u64::MAX), (200, 100)] {
            let mut got = Vec::new();
            s.scan_range(lo, hi, &mut got);
            let want: Vec<(u64, u64)> = s
                .pairs()
                .into_iter()
                .filter(|&(k, _)| lo <= k && k <= hi)
                .collect();
            assert_eq!(got, want, "[{lo}, {hi}]");
        }
    }

    #[test]
    fn rebuild_roundtrip_and_empty() {
        let s = shard(64);
        let rebuilt = s.rebuild(&s.pairs());
        assert_eq!(rebuilt.pairs(), s.pairs());
        let empty = CsbShard::build(&[]);
        assert!(empty.is_empty());
        let mut out = vec![None; 1];
        let mut scratch = Vec::new();
        empty.probe_batch(
            &[9],
            Interleave::Interleaved(4),
            ParConfig::default(),
            &mut scratch,
            &mut out,
        );
        assert_eq!(out, [None]);
    }
}

//! The CSB+-tree proper: arena storage, bulk load, insert with
//! node-group splits, point and range queries, and structural
//! validation.
//!
//! Nodes live in two arenas (`inners`, `leaves`) indexed by `u32`. All
//! children of an inner node are contiguous in the next level's arena
//! (the CSB+ node-group invariant), so splitting a child requires
//! *rebuilding the whole group* at the end of the arena — the classic
//! CSB+ insertion cost that Rao & Ross trade for faster lookups. Dead
//! groups are left behind and tracked in `dead_*` counters;
//! [`CsbTree::rebuilt`] compacts the tree when the garbage matters.
//!
//! Deletes are intentionally out of scope: the tree indexes the paper's
//! Delta dictionaries, which are append-only (a delta merge, not a
//! delete, shrinks them — see `isi-columnstore`).

use crate::node::{InnerNode, LeafNode, NODE_CAP};

/// A cache-sensitive B+-tree mapping `K` to `V`.
///
/// Keys must be `Copy + Ord + Default`; values `Copy + Default`. (The
/// intended use stores dictionary values/codes — plain integers or
/// fixed-width strings.)
#[derive(Debug, Clone)]
pub struct CsbTree<K, V> {
    pub(crate) inners: Vec<InnerNode<K>>,
    pub(crate) leaves: Vec<LeafNode<K, V>>,
    pub(crate) root: u32,
    /// Number of inner levels; 0 means the root is a leaf.
    pub(crate) height: u32,
    len: usize,
    dead_inners: usize,
    dead_leaves: usize,
}

impl<K: Copy + Ord + Default, V: Copy + Default> Default for CsbTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> CsbTree<K, V> {
    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of inner levels (0 = the root is a leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Root node index (into `inners` if `height > 0`, else `leaves`).
    pub fn root(&self) -> u32 {
        self.root
    }

    /// Arena nodes orphaned by group splits `(inners, leaves)`.
    pub fn garbage(&self) -> (usize, usize) {
        (self.dead_inners, self.dead_leaves)
    }
}

impl<K: Copy + Ord + Default, V: Copy + Default> CsbTree<K, V> {
    /// An empty tree.
    pub fn new() -> Self {
        Self {
            inners: Vec::new(),
            leaves: vec![LeafNode::new()],
            root: 0,
            height: 0,
            len: 0,
            dead_inners: 0,
            dead_leaves: 0,
        }
    }

    /// Bulk-load from key-sorted, de-duplicated pairs.
    ///
    /// Leaves are filled to capacity (read-optimized, like a fresh delta
    /// merge); the level above each contiguous run of children becomes
    /// one node group.
    ///
    /// # Panics
    /// Panics if `pairs` is not strictly sorted by key.
    pub fn from_sorted(pairs: &[(K, V)]) -> Self {
        for w in pairs.windows(2) {
            assert!(w[0].0 < w[1].0, "bulk load requires strictly sorted keys");
        }
        if pairs.is_empty() {
            return Self::new();
        }
        let mut leaves: Vec<LeafNode<K, V>> = Vec::with_capacity(pairs.len() / NODE_CAP + 1);
        for chunk in pairs.chunks(NODE_CAP) {
            let mut leaf = LeafNode::new();
            for (i, (k, v)) in chunk.iter().enumerate() {
                leaf.keys[i] = *k;
                leaf.values[i] = *v;
            }
            leaf.nkeys = chunk.len() as u16;
            leaves.push(leaf);
        }

        let mut inners: Vec<InnerNode<K>> = Vec::new();
        // Min key of every node on the current level.
        let mut level_mins: Vec<K> = leaves.iter().map(|l| l.min_key()).collect();
        let mut level_start = 0u32; // arena offset of current level (leaves: 0)
        let mut level_len = leaves.len();
        let mut height = 0u32;

        while level_len > 1 {
            let mut next_mins = Vec::with_capacity(level_len / (NODE_CAP + 1) + 1);
            let next_start = inners.len() as u32;
            let mut child = 0usize;
            while child < level_len {
                let group = (level_len - child).min(NODE_CAP + 1);
                let mut node = InnerNode::new(level_start + child as u32);
                node.keys[..group - 1].copy_from_slice(&level_mins[child + 1..child + group]);
                node.nkeys = (group - 1) as u16;
                next_mins.push(level_mins[child]);
                inners.push(node);
                child += group;
            }
            level_start = next_start;
            level_len = inners.len() - next_start as usize;
            level_mins = next_mins;
            height += 1;
        }

        let root = if height == 0 {
            0
        } else {
            (inners.len() - 1) as u32
        };
        Self {
            inners,
            leaves,
            root,
            height,
            len: pairs.len(),
            dead_inners: 0,
            dead_leaves: 0,
        }
    }

    /// Descend to the leaf for `key`, recording the inner-node path
    /// (top-down; `path.len() == height`).
    fn descend(&self, key: &K, path: &mut Vec<u32>) -> u32 {
        path.clear();
        let mut idx = self.root;
        for _ in 0..self.height {
            let node = &self.inners[idx as usize];
            path.push(idx);
            idx = node.first_child + node.child_slot(key) as u32;
        }
        idx
    }

    /// Point lookup.
    pub fn get(&self, key: &K) -> Option<V> {
        let mut idx = self.root;
        for _ in 0..self.height {
            let node = &self.inners[idx as usize];
            idx = node.first_child + node.child_slot(key) as u32;
        }
        let leaf = &self.leaves[idx as usize];
        leaf.find(key).map(|pos| leaf.values[pos])
    }

    /// Insert or replace; returns the previous value for `key`, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let mut path = Vec::with_capacity(self.height as usize);
        loop {
            let leaf_idx = self.descend(&key, &mut path);
            let leaf = &mut self.leaves[leaf_idx as usize];
            if let Some(pos) = leaf.find(&key) {
                let old = leaf.values[pos];
                leaf.values[pos] = value;
                return Some(old);
            }
            if (leaf.nkeys as usize) < NODE_CAP {
                let slot = leaf.insert_slot(&key);
                leaf.insert_at(slot, key, value);
                self.len += 1;
                return None;
            }
            // Leaf full: make room, then retry the descent (splits
            // relocate whole node groups, invalidating `path`).
            self.make_room(&path, leaf_idx);
        }
    }

    /// Create space on the path to a full leaf: split the leaf's group
    /// if its parent has key room; otherwise split the lowest full
    /// ancestor (growing a new root when even the root is full).
    fn make_room(&mut self, path: &[u32], leaf_idx: u32) {
        if self.height == 0 {
            // Root is the full leaf: grow a trivial root above it.
            self.grow_root();
            return;
        }
        let parent = *path.last().expect("height > 0 implies non-empty path");
        if (self.inners[parent as usize].nkeys as usize) < NODE_CAP {
            self.split_leaf_group(parent, leaf_idx);
            return;
        }
        // Parent is full. Find the lowest ancestor with key room and
        // split its (full) child group one level below it.
        let mut i = path.len() - 1;
        while i > 0 && self.inners[path[i - 1] as usize].nkeys as usize == NODE_CAP {
            i -= 1;
        }
        if i == 0 {
            // Every ancestor including the root is full.
            self.grow_root();
            return;
        }
        self.split_inner_group(path[i - 1], path[i]);
    }

    /// Copy the root into a fresh single-node group and hang a new empty
    /// root above it, increasing the height by one.
    fn grow_root(&mut self) {
        let old_root = self.root;
        let copied = if self.height == 0 {
            self.dead_leaves += 1;
            let idx = self.leaves.len() as u32;
            self.leaves.push(self.leaves[old_root as usize]);
            idx
        } else {
            self.dead_inners += 1;
            let idx = self.inners.len() as u32;
            self.inners.push(self.inners[old_root as usize]);
            idx
        };
        let new_root = InnerNode::new(copied);
        self.root = self.inners.len() as u32;
        self.inners.push(new_root);
        self.height += 1;
    }

    /// Rebuild `parent`'s leaf group with `full_leaf` split in two.
    /// `parent` must have key room.
    fn split_leaf_group(&mut self, parent: u32, full_leaf: u32) {
        let p = self.inners[parent as usize];
        debug_assert!((p.nkeys as usize) < NODE_CAP);
        let fc = p.first_child;
        let m = p.children();
        let s = (full_leaf - fc) as usize;
        debug_assert!(s < m, "leaf not in parent's group");

        let new_start = self.leaves.len() as u32;
        for j in 0..m {
            if j == s {
                let old = self.leaves[(fc as usize) + j];
                let (left, right) = split_leaf(&old);
                self.leaves.push(left);
                self.leaves.push(right);
            } else {
                self.leaves.push(self.leaves[(fc as usize) + j]);
            }
        }
        self.dead_leaves += m;

        let sep = self.leaves[new_start as usize + s + 1].min_key();
        let p = &mut self.inners[parent as usize];
        p.first_child = new_start;
        let nk = p.nkeys as usize;
        p.keys.copy_within(s..nk, s + 1);
        p.keys[s] = sep;
        p.nkeys += 1;
    }

    /// Rebuild `grandparent`'s inner group with `full_child` split in
    /// two. `grandparent` must have key room; `full_child` must be full.
    fn split_inner_group(&mut self, grandparent: u32, full_child: u32) {
        let gp = self.inners[grandparent as usize];
        debug_assert!((gp.nkeys as usize) < NODE_CAP);
        let fc = gp.first_child;
        let m = gp.children();
        let s = (full_child - fc) as usize;
        debug_assert!(s < m, "child not in grandparent's group");

        let new_start = self.inners.len() as u32;
        let mut sep = None;
        for j in 0..m {
            if j == s {
                let old = self.inners[(fc as usize) + j];
                let (left, promoted, right) = split_inner(&old);
                sep = Some(promoted);
                self.inners.push(left);
                self.inners.push(right);
            } else {
                self.inners.push(self.inners[(fc as usize) + j]);
            }
        }
        self.dead_inners += m;

        let sep = sep.expect("split produced a separator");
        let gp = &mut self.inners[grandparent as usize];
        gp.first_child = new_start;
        let nk = gp.nkeys as usize;
        gp.keys.copy_within(s..nk, s + 1);
        gp.keys[s] = sep;
        gp.nkeys += 1;
    }

    /// In-order traversal of all entries.
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        self.walk(self.root, self.height, &mut f);
    }

    fn walk(&self, idx: u32, level: u32, f: &mut impl FnMut(&K, &V)) {
        if level == 0 {
            let leaf = &self.leaves[idx as usize];
            for i in 0..leaf.nkeys as usize {
                f(&leaf.keys[i], &leaf.values[i]);
            }
        } else {
            let node = &self.inners[idx as usize];
            for c in 0..node.children() {
                self.walk(node.first_child + c as u32, level - 1, f);
            }
        }
    }

    /// All entries in key order (convenience for tests and rebuilds).
    pub fn items(&self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.len);
        self.for_each(|k, v| out.push((*k, *v)));
        out
    }

    /// Visit entries with `lo <= key <= hi` in key order.
    pub fn for_each_in_range(&self, lo: &K, hi: &K, mut f: impl FnMut(&K, &V)) {
        if lo > hi {
            return;
        }
        self.walk_range(self.root, self.height, lo, hi, &mut f);
    }

    fn walk_range(&self, idx: u32, level: u32, lo: &K, hi: &K, f: &mut impl FnMut(&K, &V)) {
        if level == 0 {
            let leaf = &self.leaves[idx as usize];
            for i in 0..leaf.nkeys as usize {
                let k = &leaf.keys[i];
                if k >= lo && k <= hi {
                    f(k, &leaf.values[i]);
                }
            }
        } else {
            let node = &self.inners[idx as usize];
            let first = node.child_slot(lo).min(node.children() - 1);
            // hi-bound: children after child_slot(hi) cannot contain keys <= hi.
            let last = node.child_slot(hi).min(node.children() - 1);
            for c in first..=last {
                self.walk_range(node.first_child + c as u32, level - 1, lo, hi, f);
            }
        }
    }

    /// Rebuild into a compact, garbage-free, fully-packed tree.
    pub fn rebuilt(&self) -> Self {
        Self::from_sorted(&self.items())
    }

    /// Check every structural invariant; panics with a description on
    /// violation. Used by tests (including property tests) after every
    /// mutation batch.
    pub fn validate(&self) {
        let mut count = 0usize;
        let mut live_inners = 0usize;
        let mut live_leaves = 0usize;
        self.validate_node(
            self.root,
            self.height,
            None,
            None,
            &mut count,
            &mut live_inners,
            &mut live_leaves,
        );
        assert_eq!(count, self.len, "len mismatch");
        assert_eq!(
            live_inners + self.dead_inners,
            self.inners.len(),
            "inner arena accounting"
        );
        assert_eq!(
            live_leaves + self.dead_leaves,
            self.leaves.len(),
            "leaf arena accounting"
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn validate_node(
        &self,
        idx: u32,
        level: u32,
        lo: Option<K>,
        hi: Option<K>,
        count: &mut usize,
        live_inners: &mut usize,
        live_leaves: &mut usize,
    ) {
        if level == 0 {
            *live_leaves += 1;
            let leaf = &self.leaves[idx as usize];
            let keys = leaf.keys();
            for w in keys.windows(2) {
                assert!(w[0] < w[1], "leaf keys not strictly sorted");
            }
            for k in keys {
                if let Some(lo) = &lo {
                    assert!(k >= lo, "leaf key below separator");
                }
                if let Some(hi) = &hi {
                    assert!(k < hi, "leaf key at/above next separator");
                }
            }
            *count += keys.len();
        } else {
            *live_inners += 1;
            let node = &self.inners[idx as usize];
            let keys = node.keys();
            for w in keys.windows(2) {
                assert!(w[0] < w[1], "separators not strictly sorted");
            }
            for c in 0..node.children() {
                let clo = if c == 0 { lo } else { Some(keys[c - 1]) };
                let chi = if c == node.children() - 1 {
                    hi
                } else {
                    Some(keys[c])
                };
                self.validate_node(
                    node.first_child + c as u32,
                    level - 1,
                    clo,
                    chi,
                    count,
                    live_inners,
                    live_leaves,
                );
            }
        }
    }
}

/// Split a full leaf into two halves.
fn split_leaf<K: Copy + Ord + Default, V: Copy + Default>(
    old: &LeafNode<K, V>,
) -> (LeafNode<K, V>, LeafNode<K, V>) {
    let n = old.nkeys as usize;
    let half = n / 2;
    let mut left = LeafNode::new();
    let mut right = LeafNode::new();
    left.keys[..half].copy_from_slice(&old.keys[..half]);
    left.values[..half].copy_from_slice(&old.values[..half]);
    left.nkeys = half as u16;
    right.keys[..n - half].copy_from_slice(&old.keys[half..n]);
    right.values[..n - half].copy_from_slice(&old.values[half..n]);
    right.nkeys = (n - half) as u16;
    (left, right)
}

/// Split a full inner node into two, promoting the middle separator.
/// Children are *not* moved: the left half keeps the group prefix, the
/// right half starts `half + 1` children in.
fn split_inner<K: Copy + Ord + Default>(old: &InnerNode<K>) -> (InnerNode<K>, K, InnerNode<K>) {
    let n = old.nkeys as usize;
    debug_assert_eq!(n, NODE_CAP);
    let half = n / 2;
    let promoted = old.keys[half];
    let mut left = InnerNode::new(old.first_child);
    left.keys[..half].copy_from_slice(&old.keys[..half]);
    left.nkeys = half as u16;
    let mut right = InnerNode::new(old.first_child + half as u32 + 1);
    right.keys[..n - half - 1].copy_from_slice(&old.keys[half + 1..n]);
    right.nkeys = (n - half - 1) as u16;
    (left, promoted, right)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let t = CsbTree::<u32, u32>::new();
        assert!(t.is_empty());
        assert_eq!(t.get(&5), None);
        assert_eq!(t.height(), 0);
        t.validate();
    }

    #[test]
    fn bulk_load_and_get() {
        let pairs: Vec<(u32, u64)> = (0..1000).map(|i| (i * 2, u64::from(i) * 10)).collect();
        let t = CsbTree::from_sorted(&pairs);
        t.validate();
        assert_eq!(t.len(), 1000);
        assert!(t.height() >= 2);
        for (k, v) in &pairs {
            assert_eq!(t.get(k), Some(*v), "k={k}");
        }
        for k in [1u32, 3, 999, 2001, u32::MAX] {
            assert_eq!(t.get(&k), None, "k={k}");
        }
    }

    #[test]
    fn bulk_load_single_leaf() {
        let pairs: Vec<(u32, u32)> = (0..5).map(|i| (i, i + 100)).collect();
        let t = CsbTree::from_sorted(&pairs);
        t.validate();
        assert_eq!(t.height(), 0);
        assert_eq!(t.get(&3), Some(103));
    }

    #[test]
    #[should_panic(expected = "strictly sorted")]
    fn bulk_load_rejects_unsorted() {
        CsbTree::from_sorted(&[(3u32, 0u32), (1, 0)]);
    }

    #[test]
    #[should_panic(expected = "strictly sorted")]
    fn bulk_load_rejects_duplicates() {
        CsbTree::from_sorted(&[(3u32, 0u32), (3, 1)]);
    }

    #[test]
    fn insert_into_empty_and_replace() {
        let mut t = CsbTree::<u32, u32>::new();
        assert_eq!(t.insert(5, 50), None);
        assert_eq!(t.insert(5, 51), Some(50));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&5), Some(51));
        t.validate();
    }

    #[test]
    fn ascending_inserts_grow_tree() {
        let mut t = CsbTree::<u32, u32>::new();
        for i in 0..2000 {
            assert_eq!(t.insert(i, i * 3), None);
        }
        t.validate();
        assert_eq!(t.len(), 2000);
        assert!(t.height() >= 2, "height {}", t.height());
        for i in 0..2000 {
            assert_eq!(t.get(&i), Some(i * 3));
        }
        assert_eq!(t.get(&2000), None);
    }

    #[test]
    fn descending_inserts() {
        let mut t = CsbTree::<u32, u32>::new();
        for i in (0..2000).rev() {
            t.insert(i, i);
        }
        t.validate();
        for i in 0..2000 {
            assert_eq!(t.get(&i), Some(i));
        }
    }

    #[test]
    fn pseudorandom_inserts_match_btreemap() {
        let mut t = CsbTree::<u64, u64>::new();
        let mut model = std::collections::BTreeMap::new();
        let mut x = 0x9E3779B97F4A7C15u64;
        for _ in 0..5000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = x % 3000; // plenty of replacements
            assert_eq!(t.insert(k, x), model.insert(k, x), "k={k}");
        }
        t.validate();
        assert_eq!(t.len(), model.len());
        for (k, v) in &model {
            assert_eq!(t.get(k), Some(*v));
        }
        let items = t.items();
        let expect: Vec<(u64, u64)> = model.into_iter().collect();
        assert_eq!(items, expect);
    }

    #[test]
    fn inserts_into_bulk_loaded_tree() {
        let pairs: Vec<(u32, u32)> = (0..500).map(|i| (i * 4, i)).collect();
        let mut t = CsbTree::from_sorted(&pairs);
        // Fill the gaps; every full leaf must split.
        for i in 0..500 {
            t.insert(i * 4 + 1, i + 10_000);
        }
        t.validate();
        assert_eq!(t.len(), 1000);
        for i in 0..500 {
            assert_eq!(t.get(&(i * 4)), Some(i));
            assert_eq!(t.get(&(i * 4 + 1)), Some(i + 10_000));
        }
        let (gi, gl) = t.garbage();
        assert!(gl > 0, "splits must orphan leaf groups ({gi}, {gl})");
    }

    #[test]
    fn range_query_matches_filter() {
        let pairs: Vec<(u32, u32)> = (0..300).map(|i| (i * 3, i)).collect();
        let t = CsbTree::from_sorted(&pairs);
        let mut got = Vec::new();
        t.for_each_in_range(&100, &200, |k, v| got.push((*k, *v)));
        let expect: Vec<(u32, u32)> = pairs
            .iter()
            .copied()
            .filter(|(k, _)| (100..=200).contains(k))
            .collect();
        assert_eq!(got, expect);
        // Empty and inverted ranges.
        let mut n = 0;
        t.for_each_in_range(&901, &902, |_, _| n += 1);
        assert_eq!(n, 0);
        t.for_each_in_range(&200, &100, |_, _| panic!("inverted range"));
    }

    #[test]
    fn rebuilt_tree_is_garbage_free_and_equal() {
        let mut t = CsbTree::<u32, u32>::new();
        for i in 0..3000 {
            t.insert((i * 2654435761u64 % 100_000) as u32, i as u32);
        }
        let r = t.rebuilt();
        r.validate();
        assert_eq!(r.garbage(), (0, 0));
        assert_eq!(r.items(), t.items());
        assert!(r.leaves.len() <= t.leaves.len());
    }

    #[test]
    fn for_each_visits_in_order() {
        let mut t = CsbTree::<u32, u32>::new();
        for i in [5u32, 1, 9, 3, 7, 2, 8] {
            t.insert(i, i * 10);
        }
        let items = t.items();
        assert_eq!(
            items,
            vec![
                (1, 10),
                (2, 20),
                (3, 30),
                (5, 50),
                (7, 70),
                (8, 80),
                (9, 90)
            ]
        );
    }
}

//! # isi-csb — a cache-sensitive B+-tree with interleaved lookups
//!
//! The CSB+-tree of Rao & Ross (SIGMOD 2000) is the index behind the
//! paper's Delta dictionaries: children of a node are stored in one
//! contiguous *node group*, so a node stores only a `first_child` index
//! and packs more keys per cache line. This crate implements the tree
//! from scratch — bulk load, inserts with node-group splits, range
//! scans — plus the paper's Listing 6: a lookup coroutine that
//! prefetches every cache line of the next node and suspends once per
//! level, and the AMAC state-machine equivalent.
//!
//! ```
//! use isi_csb::{CsbTree, DirectTreeStore, bulk_lookup_interleaved};
//!
//! let tree = CsbTree::from_sorted(&(0..10_000u32).map(|i| (i * 2, i)).collect::<Vec<_>>());
//! let store = DirectTreeStore::new(&tree);
//! let probes = [0u32, 42, 19_998, 5];
//! let mut out = vec![None; probes.len()];
//! bulk_lookup_interleaved(store, &probes, 6, &mut out);
//! assert_eq!(out, [Some(0), Some(21), Some(9_999), None]);
//! ```

// Escalated from the workspace-level warn: every unsafe fn body in
// this crate must discharge its obligations through explicit inner
// blocks (each carrying a SAFETY comment, enforced by xtask lint).
#![deny(unsafe_op_in_unsafe_fn)]

pub mod lookup;
pub mod node;
pub mod shard;
pub mod store;
pub mod tree;

pub use lookup::{
    bulk_lookup_amac, bulk_lookup_interleaved, bulk_lookup_par, bulk_lookup_seq, lookup_coro,
    lookup_seq,
};
pub use node::{InnerNode, LeafNode, NODE_CAP};
pub use shard::CsbShard;
pub use store::{DirectTreeStore, SimTreeStore, TreeStore};
pub use tree::CsbTree;

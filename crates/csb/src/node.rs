//! Cache-sensitive node layout, after Rao & Ross (SIGMOD 2000).
//!
//! A CSB+-tree keeps all children of a node in one contiguous *node
//! group*, so an inner node stores a single `first_child` index instead
//! of an array of child pointers. The space saved holds more keys per
//! cache line, and a child is reached by `first_child + slot`, which is
//! also what makes the whole node group prefetchable with one address.
//!
//! With `NODE_CAP = 14` keys, a `u32` inner node is exactly one 64-byte
//! cache line (2 + 2 + 4 + 14x4 = 64); leaves span two lines. The
//! coroutine lookup prefetches every line of the touched node (paper
//! Listing 6), so the in-node search never misses.

/// Maximum keys per node; an inner node has at most `NODE_CAP + 1`
/// children.
pub const NODE_CAP: usize = 14;

/// Minimum keys after a bulk-load split (kept simple: half).
pub const NODE_MIN: usize = NODE_CAP / 2;

/// An inner (branch) node: `nkeys` separator keys and a contiguous group
/// of `nkeys + 1` children starting at `first_child`.
///
/// `keys[i]` is the smallest key reachable under child `i + 1`; child 0
/// holds everything below `keys[0]`.
#[derive(Debug, Clone, Copy)]
#[repr(C)]
pub struct InnerNode<K> {
    /// Number of valid separator keys.
    pub nkeys: u16,
    /// Padding/versioning space (keeps the u32 aligned; reserved).
    pub _pad: u16,
    /// Index of child 0 in the next level's arena.
    pub first_child: u32,
    /// Separator keys; entries beyond `nkeys` are undefined.
    pub keys: [K; NODE_CAP],
}

impl<K: Copy + Ord + Default> InnerNode<K> {
    /// An empty inner node pointing at `first_child`.
    pub fn new(first_child: u32) -> Self {
        Self {
            nkeys: 0,
            _pad: 0,
            first_child,
            keys: [K::default(); NODE_CAP],
        }
    }

    /// Valid separator keys.
    #[inline]
    pub fn keys(&self) -> &[K] {
        &self.keys[..self.nkeys as usize]
    }

    /// Child slot to descend into for `value`: the number of separators
    /// `<= value`. Branch-free in-node search (the paper uses the
    /// non-suspending binary-search coroutine here; for 14 keys a
    /// branch-free linear pass has the same no-speculation property and
    /// fewer instructions).
    #[inline]
    pub fn child_slot(&self, value: &K) -> usize {
        let mut slot = 0usize;
        for k in self.keys() {
            slot += (k <= value) as usize;
        }
        slot
    }

    /// Number of children (`nkeys + 1`).
    #[inline]
    pub fn children(&self) -> usize {
        self.nkeys as usize + 1
    }
}

/// A leaf node: sorted keys with parallel values.
#[derive(Debug, Clone, Copy)]
#[repr(C)]
pub struct LeafNode<K, V> {
    /// Number of valid entries.
    pub nkeys: u16,
    /// Reserved padding.
    pub _pad: u16,
    /// Sorted keys; entries beyond `nkeys` are undefined.
    pub keys: [K; NODE_CAP],
    /// Values parallel to `keys`.
    pub values: [V; NODE_CAP],
}

impl<K: Copy + Ord + Default, V: Copy + Default> LeafNode<K, V> {
    /// An empty leaf.
    pub fn new() -> Self {
        Self {
            nkeys: 0,
            _pad: 0,
            keys: [K::default(); NODE_CAP],
            values: [V::default(); NODE_CAP],
        }
    }

    /// Valid keys.
    #[inline]
    pub fn keys(&self) -> &[K] {
        &self.keys[..self.nkeys as usize]
    }

    /// Valid values.
    #[inline]
    pub fn values(&self) -> &[V] {
        &self.values[..self.nkeys as usize]
    }

    /// Position of `value` in this leaf, if present (branch-free scan).
    #[inline]
    pub fn find(&self, value: &K) -> Option<usize> {
        let n = self.nkeys as usize;
        let mut lt = 0usize;
        for k in self.keys() {
            lt += (k < value) as usize;
        }
        (lt < n && &self.keys[lt] == value).then_some(lt)
    }

    /// Position where `value` would be inserted to keep the leaf sorted.
    #[inline]
    pub fn insert_slot(&self, value: &K) -> usize {
        let mut lt = 0usize;
        for k in self.keys() {
            lt += (k < value) as usize;
        }
        lt
    }

    /// Insert at `slot`, shifting the tail right.
    ///
    /// # Panics
    /// Panics if the leaf is full or `slot > nkeys`.
    pub fn insert_at(&mut self, slot: usize, key: K, value: V) {
        let n = self.nkeys as usize;
        assert!(n < NODE_CAP, "leaf full");
        assert!(slot <= n, "slot out of range");
        self.keys.copy_within(slot..n, slot + 1);
        self.values.copy_within(slot..n, slot + 1);
        self.keys[slot] = key;
        self.values[slot] = value;
        self.nkeys += 1;
    }

    /// Smallest key (the leaf's separator in its parent).
    ///
    /// # Panics
    /// Panics if the leaf is empty.
    #[inline]
    pub fn min_key(&self) -> K {
        assert!(self.nkeys > 0, "empty leaf has no min key");
        self.keys[0]
    }
}

impl<K: Copy + Ord + Default, V: Copy + Default> Default for LeafNode<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_inner_node_is_one_cache_line() {
        assert_eq!(std::mem::size_of::<InnerNode<u32>>(), 64);
    }

    #[test]
    fn child_slot_routes_correctly() {
        let mut n = InnerNode::<u32>::new(100);
        n.nkeys = 3;
        n.keys[..3].copy_from_slice(&[10, 20, 30]);
        assert_eq!(n.child_slot(&5), 0);
        assert_eq!(n.child_slot(&10), 1); // separator key goes right
        assert_eq!(n.child_slot(&15), 1);
        assert_eq!(n.child_slot(&20), 2);
        assert_eq!(n.child_slot(&99), 3);
        assert_eq!(n.children(), 4);
    }

    #[test]
    fn empty_inner_routes_everything_to_child_zero() {
        let n = InnerNode::<u32>::new(7);
        assert_eq!(n.child_slot(&0), 0);
        assert_eq!(n.child_slot(&u32::MAX), 0);
        assert_eq!(n.children(), 1);
    }

    #[test]
    fn leaf_find_and_insert() {
        let mut l = LeafNode::<u32, u64>::new();
        for (i, k) in [10u32, 30, 50].iter().enumerate() {
            let slot = l.insert_slot(k);
            l.insert_at(slot, *k, (i * 100) as u64);
        }
        // Out-of-order insert lands in the middle.
        let slot = l.insert_slot(&20);
        assert_eq!(slot, 1);
        l.insert_at(slot, 20, 999);
        assert_eq!(l.keys(), &[10, 20, 30, 50]);
        assert_eq!(l.find(&20), Some(1));
        assert_eq!(l.find(&25), None);
        assert_eq!(l.find(&10), Some(0));
        assert_eq!(l.find(&50), Some(3));
        assert_eq!(l.values()[1], 999);
        assert_eq!(l.min_key(), 10);
    }

    #[test]
    fn leaf_find_on_empty() {
        let l = LeafNode::<u32, u32>::new();
        assert_eq!(l.find(&1), None);
        assert_eq!(l.insert_slot(&1), 0);
    }

    #[test]
    #[should_panic(expected = "leaf full")]
    fn leaf_overflow_panics() {
        let mut l = LeafNode::<u32, u32>::new();
        for k in 0..=NODE_CAP as u32 {
            l.insert_at(l.insert_slot(&k), k, k);
        }
    }

    #[test]
    fn duplicate_keys_in_leaf_find_first() {
        // The tree itself never stores duplicates (insert replaces), but
        // the node primitive behaves sanely anyway.
        let mut l = LeafNode::<u32, u32>::new();
        l.insert_at(0, 5, 1);
        l.insert_at(1, 5, 2);
        assert_eq!(l.find(&5), Some(0));
    }
}

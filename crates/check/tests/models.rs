//! The protocol model suite: bounded-exhaustive checks of the four
//! serve-path protocols, plus calibration tests proving the explorer
//! actually *finds* known-bad variants and that printed seeds replay.

use isi_check::models;
use isi_check::{check, explore, replay, Config, Outcome};

#[test]
fn epoch_publish_never_torn() {
    let n = check(
        "epoch publish",
        Config::default(),
        models::epoch::publish_never_torn,
    );
    assert!(n > 1, "model has no concurrency ({n} interleaving)");
}

#[test]
fn merge_never_loses_a_write() {
    let n = check(
        "merge publish",
        Config::default(),
        models::merge::write_survives_merge,
    );
    assert!(n > 1, "model has no concurrency ({n} interleaving)");
}

#[test]
fn run_stack_never_loses_the_newest_write() {
    let n = check(
        "run-stack publish",
        Config::default(),
        models::runs::run_stack_preserves_newest,
    );
    assert!(n > 1, "model has no concurrency ({n} interleaving)");
}

/// Reading the run stack oldest-first must surface a stale value
/// under some interleaving — and the seed must replay it.
#[test]
fn explorer_catches_oldest_run_wins() {
    let outcome = explore(Config::default(), models::runs::oldest_run_wins);
    let Outcome::Violation(v) = outcome else {
        panic!("oldest-run-wins not caught: {outcome:?}");
    };
    assert!(
        v.message.contains("lost the newest write"),
        "unexpected violation: {}",
        v.message
    );
    let replayed = replay(Config::default(), &v.seed, models::runs::oldest_run_wins)
        .expect("replay seed did not reproduce the violation");
    assert!(
        replayed.contains("lost the newest write"),
        "replay diverged: {replayed}"
    );
}

#[test]
fn cache_invalidate_before_ack_no_stale_reads() {
    let n = check(
        "cache invalidate-before-ack",
        Config::default(),
        models::cache::invalidate_before_ack,
    );
    assert!(n > 1, "model has no concurrency ({n} interleaving)");
}

#[test]
fn queue_backpressure_no_deadlock() {
    check(
        "queue backpressure",
        Config::default(),
        models::queue::backpressure_no_deadlock,
    );
}

#[test]
fn queue_conditional_notify_no_lost_wakeup() {
    check(
        "queue conditional notify",
        Config::default(),
        models::queue::conditional_notify_no_lost_wakeup,
    );
}

#[test]
fn queue_timeout_notify_race() {
    check(
        "queue timeout race",
        Config::default(),
        models::queue::timeout_notify_race,
    );
}

#[test]
fn wal_group_commit_acked_writes_survive_truncation() {
    let n = check(
        "wal group commit",
        Config::default(),
        models::wal::group_commit_truncate_safe,
    );
    assert!(n > 1, "model has no concurrency ({n} interleaving)");
}

/// Truncating the WAL before the snapshot's fsync must lose an acked
/// write under some interleaving — and the seed must replay it.
#[test]
fn explorer_catches_truncate_before_snapshot_sync() {
    let outcome = explore(
        Config::default(),
        models::wal::truncate_before_snapshot_sync,
    );
    let Outcome::Violation(v) = outcome else {
        panic!("truncate-before-sync not caught: {outcome:?}");
    };
    assert!(
        v.message.contains("acked write lost"),
        "unexpected violation: {}",
        v.message
    );
    let replayed = replay(
        Config::default(),
        &v.seed,
        models::wal::truncate_before_snapshot_sync,
    )
    .expect("replay seed did not reproduce the violation");
    assert!(
        replayed.contains("acked write lost"),
        "replay diverged: {replayed}"
    );
}

#[test]
fn policy_retune_publish_never_torn() {
    let n = check(
        "policy retune publish",
        Config::default(),
        models::policy::retune_publish_never_torn,
    );
    assert!(n > 1, "model has no concurrency ({n} interleaving)");
}

/// The two-atomics PolicyCell refactor: a dispatcher scheduled
/// between the group and tag stores must observe a torn policy under
/// some interleaving — and the seed must replay it.
#[test]
fn explorer_catches_split_policy_publish() {
    let outcome = explore(Config::default(), models::policy::split_policy_publish);
    let Outcome::Violation(v) = outcome else {
        panic!("split-policy-publish not caught: {outcome:?}");
    };
    assert!(
        v.message.contains("torn policy observed"),
        "unexpected violation: {}",
        v.message
    );
    let replayed = replay(
        Config::default(),
        &v.seed,
        models::policy::split_policy_publish,
    )
    .expect("replay seed did not reproduce the violation");
    assert!(
        replayed.contains("torn policy observed"),
        "replay diverged: {replayed}"
    );
}

/// The deliberately broken EpochCell variant: the explorer must find
/// the torn snapshot and report a seed that deterministically replays
/// the same violation.
#[test]
fn explorer_catches_torn_publish_and_seed_replays() {
    let outcome = explore(Config::default(), models::epoch::torn_publish);
    let Outcome::Violation(v) = outcome else {
        panic!("torn-publish model not caught: {outcome:?}");
    };
    assert!(
        v.message.contains("torn publish"),
        "unexpected violation: {}",
        v.message
    );
    let replayed = replay(Config::default(), &v.seed, models::epoch::torn_publish)
        .expect("replay seed did not reproduce the violation");
    assert!(
        replayed.contains("torn publish"),
        "replay reproduced a different failure: {replayed}"
    );
}

/// The ack-before-invalidate cache ordering must violate
/// read-your-own-writes under some interleaving.
#[test]
fn explorer_catches_ack_before_invalidate() {
    let outcome = explore(Config::default(), models::cache::ack_before_invalidate);
    let Outcome::Violation(v) = outcome else {
        panic!("ack-before-invalidate not caught: {outcome:?}");
    };
    assert!(
        v.message.contains("stale read"),
        "unexpected: {}",
        v.message
    );
    let replayed = replay(
        Config::default(),
        &v.seed,
        models::cache::ack_before_invalidate,
    )
    .expect("replay seed did not reproduce the violation");
    assert!(
        replayed.contains("stale read"),
        "replay diverged: {replayed}"
    );
}

/// Deadlocks are violations too: two threads taking two locks in
/// opposite orders must be reported (with a seed), not hung on.
#[test]
fn explorer_reports_lock_order_deadlock() {
    use isi_check::sync::Mutex;
    use isi_check::vt;
    use std::sync::Arc;

    let outcome = explore(Config::default(), || {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let t = {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            vt::spawn(move || {
                let _ga = a.lock();
                let _gb = b.lock();
            })
        };
        let _gb = b.lock();
        let _ga = a.lock();
        drop(_ga);
        drop(_gb);
        t.join();
    });
    let Outcome::Violation(v) = outcome else {
        panic!("lock-order inversion not caught: {outcome:?}");
    };
    assert!(v.message.contains("deadlock"), "unexpected: {}", v.message);
}

/// Randomized exploration finds the torn publish too (with a usable
/// seed), for models too big to exhaust.
#[test]
fn random_exploration_finds_torn_publish() {
    let outcome = isi_check::explore_random(
        Config::default(),
        0xC0FFEE,
        500,
        models::epoch::torn_publish,
    );
    let Outcome::Violation(v) = outcome else {
        panic!("random exploration missed the torn publish: {outcome:?}");
    };
    let replayed = replay(Config::default(), &v.seed, models::epoch::torn_publish)
        .expect("random-found seed did not replay");
    assert!(
        replayed.contains("torn publish"),
        "replay diverged: {replayed}"
    );
}

/// The registry snapshot-ordering model: reading the covered side
/// (`syncs`) before the covering side (`records`) keeps every
/// interleaving's snapshot coherent.
#[test]
fn metrics_snapshot_ordering_is_coherent() {
    let n = check(
        "metrics snapshot ordering",
        Config::default(),
        models::metrics::snapshot_reads_covered_side_first,
    );
    assert!(n > 1, "model has no concurrency ({n} interleaving)");
}

/// The pre-registry `wal_stats()` read order (records first) must show
/// more syncs than records under some interleaving — and the printed
/// seed must replay it.
#[test]
fn explorer_catches_records_first_snapshot_skew() {
    let outcome = explore(
        Config::default(),
        models::metrics::snapshot_reads_records_first,
    );
    let Outcome::Violation(v) = outcome else {
        panic!("records-first snapshot skew not caught: {outcome:?}");
    };
    assert!(
        v.message.contains("skewed snapshot"),
        "unexpected violation: {}",
        v.message
    );
    let replayed = replay(
        Config::default(),
        &v.seed,
        models::metrics::snapshot_reads_records_first,
    )
    .expect("replay seed did not reproduce the violation");
    assert!(
        replayed.contains("skewed snapshot"),
        "replay diverged: {replayed}"
    );
}

//! The cooperative virtual-thread runtime under the model checker.
//!
//! One *execution* of a model runs every model ("virtual") thread on a
//! real OS thread, but the [`Controller`] allows exactly **one** of
//! them to run at any moment. Every shimmed synchronization operation
//! ([`crate::sync`]) calls [`Controller::sched_point`] first, which
//! hands control to the schedule [`Chooser`]: the set of schedulable
//! threads is collected, the chooser picks one, and everyone else
//! stays parked. Because models only communicate through the shims,
//! the chooser's decision sequence fully determines the execution —
//! which is what makes exhaustive exploration and replay possible
//! (see [`crate::explore`]).
//!
//! The runtime also understands *blocking*: a shim that cannot make
//! progress (a held mutex, an empty condvar) parks its thread as
//! [`VState::Blocked`], which removes it from the schedulable set
//! until the owning resource releases it. When **no** thread is
//! schedulable but some are still alive, the execution has deadlocked
//! — the runtime records that as a failure with the schedule that
//! produced it, exactly like an assertion violation in model code.
//!
//! Timed condvar waits ([`VState::TimedWait`]) stay schedulable: the
//! chooser may "fire the timeout" by scheduling the waiter directly,
//! which models every possible timeout/notify race without a clock.

use std::any::Any;
use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

use crate::explore::Config;

/// Schedule decision source: DFS frontier, seeded RNG, or a replayed
/// seed string. Called only at genuine decision points (2+ options).
pub(crate) trait Chooser: Send {
    /// Pick one of `options` (≥ 2) schedulable alternatives, or fail
    /// with a diagnostic (e.g. a replay seed that diverged).
    fn choose(&mut self, options: usize) -> Result<usize, String>;
}

/// Scheduling state of one virtual thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VState {
    /// Schedulable, waiting to be picked.
    Runnable,
    /// The one thread currently allowed to run.
    Running,
    /// Parked on a resource (mutex/rwlock/condvar/join); not
    /// schedulable until the resource wakes it.
    Blocked,
    /// Parked in a timed condvar wait: schedulable — scheduling it
    /// fires its timeout.
    TimedWait,
    /// Returned (or unwound); never schedulable again.
    Finished,
}

/// One virtual thread's runtime record.
struct VThread {
    state: VState,
    /// Set when a timed wait was woken by timeout rather than notify.
    timed_out: bool,
    /// Threads blocked in `join` on this one.
    joiners: Vec<usize>,
}

/// A model-level synchronization resource (allocated by the shims).
pub(crate) enum Resource {
    Mutex {
        locked: bool,
        waiters: Vec<usize>,
    },
    RwLock {
        readers: usize,
        writer: bool,
        waiters: Vec<usize>,
    },
    Condvar {
        /// `(thread, timed)` in wait order.
        waiters: Vec<(usize, bool)>,
    },
}

/// Why an execution stopped early.
#[derive(Debug, Clone)]
pub(crate) struct Failure {
    pub message: String,
    /// The decision sequence up to the failure (replay seed).
    pub schedule: Vec<u8>,
}

pub(crate) struct RtState {
    threads: Vec<VThread>,
    resources: Vec<Resource>,
    /// Unfinished virtual threads.
    live: usize,
    /// Chosen index at every decision point so far (the replay seed).
    schedule: Vec<u8>,
    /// Total sched points so far (bounded by `Config::max_steps`).
    steps: usize,
    failure: Option<Failure>,
    /// Set on failure: every parked thread unwinds out of model code.
    abort: bool,
    /// OS handles of spawned virtual threads (joined by the harness).
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

/// Shared coordinator of one execution.
pub(crate) struct Controller {
    state: StdMutex<RtState>,
    cv: StdCondvar,
    chooser: Arc<StdMutex<dyn Chooser>>,
    cfg: Config,
}

/// Panic payload used to unwind parked model threads when an
/// execution aborts; recognized (and swallowed) by the thread
/// wrappers.
pub(crate) struct Aborted;

fn is_abort(payload: &(dyn Any + Send)) -> bool {
    payload.is::<Aborted>()
}

/// Render a panic payload as a failure message.
fn payload_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model panicked with a non-string payload".to_string()
    }
}

thread_local! {
    /// The controller + virtual-thread id of the current OS thread,
    /// set while it is executing model code.
    static CTX: RefCell<Option<(Arc<Controller>, usize)>> = const { RefCell::new(None) };
}

/// The current thread's `(controller, vthread id)`.
///
/// # Panics
/// Panics if called outside a model execution (shims only work under
/// [`crate::explore`]/[`crate::check`]).
pub(crate) fn current() -> (Arc<Controller>, usize) {
    CTX.with(|ctx| {
        ctx.borrow()
            .clone()
            .expect("isi_check shim used outside a model execution")
    })
}

fn set_ctx(ctl: &Arc<Controller>, tid: usize) {
    CTX.with(|ctx| *ctx.borrow_mut() = Some((Arc::clone(ctl), tid)));
}

fn clear_ctx() {
    CTX.with(|ctx| *ctx.borrow_mut() = None);
}

impl Controller {
    fn new(chooser: Arc<StdMutex<dyn Chooser>>, cfg: Config) -> Self {
        Self {
            state: StdMutex::new(RtState {
                threads: vec![VThread {
                    state: VState::Running,
                    timed_out: false,
                    joiners: Vec::new(),
                }],
                resources: Vec::new(),
                live: 1,
                schedule: Vec::new(),
                steps: 0,
                failure: None,
                abort: false,
                os_handles: Vec::new(),
            }),
            cv: StdCondvar::new(),
            chooser,
            cfg,
        }
    }

    /// Lock the runtime state. The lock is never held while model code
    /// runs, only inside controller operations.
    fn lock(&self) -> std::sync::MutexGuard<'_, RtState> {
        // The state mutex can only be poisoned by a bug in the runtime
        // itself (model panics are caught before unwinding through
        // controller calls); recover the state to keep shutdown moving.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Record a failure (first one wins) and wake every parked thread
    /// so the execution unwinds.
    fn fail_locked(&self, st: &mut RtState, message: String) {
        if st.failure.is_none() {
            st.failure = Some(Failure {
                message,
                schedule: st.schedule.clone(),
            });
        }
        st.abort = true;
        self.cv.notify_all();
    }

    pub(crate) fn record_panic(&self, payload: &(dyn Any + Send)) {
        let mut st = self.lock();
        let msg = payload_message(payload);
        self.fail_locked(&mut st, msg);
    }

    /// Pick the next thread to run from the schedulable set (and fire
    /// a timeout if the pick is a timed waiter). No-op under abort.
    fn pick_next_locked(&self, st: &mut RtState) {
        if st.abort {
            return;
        }
        let options: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.state, VState::Runnable | VState::TimedWait))
            .map(|(i, _)| i)
            .collect();
        if options.is_empty() {
            if st.live > 0 {
                let stuck: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.state != VState::Finished)
                    .map(|(i, t)| format!("thread {i}: {:?}", t.state))
                    .collect();
                self.fail_locked(
                    st,
                    format!("deadlock: no schedulable thread ({})", stuck.join(", ")),
                );
            }
            return;
        }
        let idx = if options.len() == 1 {
            0
        } else {
            debug_assert!(options.len() <= 36, "seed alphabet exhausted");
            let picked = self
                .chooser
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .choose(options.len());
            match picked {
                Ok(i) => {
                    st.schedule.push(i as u8);
                    i
                }
                Err(msg) => {
                    self.fail_locked(st, msg);
                    return;
                }
            }
        };
        let tid = options[idx];
        if st.threads[tid].state == VState::TimedWait {
            // Scheduling a timed waiter = its timeout fires: leave the
            // condvar's wait list and resume (the wait path reacquires
            // the mutex and reports the timeout).
            for r in &mut st.resources {
                if let Resource::Condvar { waiters } = r {
                    waiters.retain(|&(t, _)| t != tid);
                }
            }
            st.threads[tid].timed_out = true;
        }
        st.threads[tid].state = VState::Running;
        self.cv.notify_all();
    }

    /// Park the calling thread until it is scheduled again (or the
    /// execution aborts, in which case it unwinds).
    fn park_locked<'a>(
        &'a self,
        mut st: std::sync::MutexGuard<'a, RtState>,
        tid: usize,
    ) -> std::sync::MutexGuard<'a, RtState> {
        while st.threads[tid].state != VState::Running {
            if st.abort {
                drop(st);
                resume_unwind(Box::new(Aborted));
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st
    }

    /// The interleaving point before every shimmed operation: offer
    /// the scheduler the chance to run any other schedulable thread.
    pub(crate) fn sched_point(&self, tid: usize) {
        let mut st = self.lock();
        if st.abort {
            drop(st);
            resume_unwind(Box::new(Aborted));
        }
        st.steps += 1;
        if st.steps > self.cfg.max_steps {
            self.fail_locked(
                &mut st,
                format!(
                    "step bound exceeded ({} sched points): livelock or unbounded model",
                    self.cfg.max_steps
                ),
            );
            drop(st);
            resume_unwind(Box::new(Aborted));
        }
        st.threads[tid].state = VState::Runnable;
        self.pick_next_locked(&mut st);
        let st = self.park_locked(st, tid);
        drop(st);
    }

    /// Allocate a model-level resource; shims store the returned id.
    pub(crate) fn alloc_resource(&self, r: Resource) -> usize {
        let mut st = self.lock();
        st.resources.push(r);
        st.resources.len() - 1
    }

    // ---- mutex ----

    /// Acquire mutex `id` for `tid`. `reacquire` skips the leading
    /// sched point (used when returning from a condvar wait, where the
    /// wakeup itself was the scheduling decision).
    pub(crate) fn mutex_lock(&self, tid: usize, id: usize, reacquire: bool) {
        if !reacquire {
            self.sched_point(tid);
        }
        let mut st = self.lock();
        loop {
            if st.abort {
                drop(st);
                resume_unwind(Box::new(Aborted));
            }
            let Resource::Mutex { locked, waiters } = &mut st.resources[id] else {
                unreachable!("resource {id} is not a mutex");
            };
            if !*locked {
                *locked = true;
                return;
            }
            waiters.push(tid);
            st.threads[tid].state = VState::Blocked;
            self.pick_next_locked(&mut st);
            st = self.park_locked(st, tid);
        }
    }

    /// Release mutex `id`; every waiter becomes schedulable and will
    /// retry (the next sched point decides who wins).
    pub(crate) fn mutex_unlock(&self, id: usize) {
        let mut st = self.lock();
        let Resource::Mutex { locked, waiters } = &mut st.resources[id] else {
            unreachable!("resource {id} is not a mutex");
        };
        *locked = false;
        let woken = std::mem::take(waiters);
        for w in woken {
            if st.threads[w].state == VState::Blocked {
                st.threads[w].state = VState::Runnable;
            }
        }
        self.cv.notify_all();
    }

    // ---- rwlock ----

    pub(crate) fn rwlock_lock(&self, tid: usize, id: usize, write: bool) {
        self.sched_point(tid);
        let mut st = self.lock();
        loop {
            if st.abort {
                drop(st);
                resume_unwind(Box::new(Aborted));
            }
            let Resource::RwLock {
                readers,
                writer,
                waiters,
            } = &mut st.resources[id]
            else {
                unreachable!("resource {id} is not a rwlock");
            };
            let free = if write {
                *readers == 0 && !*writer
            } else {
                !*writer
            };
            if free {
                if write {
                    *writer = true;
                } else {
                    *readers += 1;
                }
                return;
            }
            waiters.push(tid);
            st.threads[tid].state = VState::Blocked;
            self.pick_next_locked(&mut st);
            st = self.park_locked(st, tid);
        }
    }

    pub(crate) fn rwlock_unlock(&self, id: usize, write: bool) {
        let mut st = self.lock();
        let Resource::RwLock {
            readers,
            writer,
            waiters,
        } = &mut st.resources[id]
        else {
            unreachable!("resource {id} is not a rwlock");
        };
        if write {
            *writer = false;
        } else {
            *readers -= 1;
        }
        let woken = std::mem::take(waiters);
        for w in woken {
            if st.threads[w].state == VState::Blocked {
                st.threads[w].state = VState::Runnable;
            }
        }
        self.cv.notify_all();
    }

    // ---- condvar ----

    /// Atomically release `mutex` and park on condvar `cv` (timed or
    /// not). Returns whether the wakeup was a timeout. The caller must
    /// reacquire the mutex afterwards via `mutex_lock(.., true)`.
    pub(crate) fn condvar_wait(&self, tid: usize, cv: usize, mutex: usize, timed: bool) -> bool {
        // The wait itself is an observable operation (release + park).
        let mut st = self.lock();
        if st.abort {
            drop(st);
            resume_unwind(Box::new(Aborted));
        }
        let Resource::Condvar { waiters } = &mut st.resources[cv] else {
            unreachable!("resource {cv} is not a condvar");
        };
        waiters.push((tid, timed));
        st.threads[tid].state = if timed {
            VState::TimedWait
        } else {
            VState::Blocked
        };
        st.threads[tid].timed_out = false;
        // Release the mutex inline (same shape as mutex_unlock, under
        // the already-held state lock).
        {
            let Resource::Mutex { locked, waiters } = &mut st.resources[mutex] else {
                unreachable!("resource {mutex} is not a mutex");
            };
            *locked = false;
            let woken = std::mem::take(waiters);
            for w in woken {
                if st.threads[w].state == VState::Blocked {
                    st.threads[w].state = VState::Runnable;
                }
            }
        }
        self.pick_next_locked(&mut st);
        let st = self.park_locked(st, tid);
        st.threads[tid].timed_out
    }

    /// Wake one waiter (a scheduling decision when several wait) or
    /// all of them.
    pub(crate) fn condvar_notify(&self, tid: usize, cv: usize, all: bool) {
        self.sched_point(tid);
        let mut st = self.lock();
        if st.abort {
            drop(st);
            resume_unwind(Box::new(Aborted));
        }
        let Resource::Condvar { waiters } = &mut st.resources[cv] else {
            unreachable!("resource {cv} is not a condvar");
        };
        if waiters.is_empty() {
            return;
        }
        let woken: Vec<(usize, bool)> = if all || waiters.len() == 1 {
            std::mem::take(waiters)
        } else {
            // Which waiter wakes is nondeterministic in a real
            // condvar: make it a decision point.
            let n = waiters.len();
            let picked = self
                .chooser
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .choose(n);
            match picked {
                Ok(i) => {
                    st.schedule.push(i as u8);
                    // Reborrow after the chooser call.
                    let Resource::Condvar { waiters } = &mut st.resources[cv] else {
                        unreachable!();
                    };
                    vec![waiters.remove(i)]
                }
                Err(msg) => {
                    self.fail_locked(&mut st, msg);
                    drop(st);
                    resume_unwind(Box::new(Aborted));
                }
            }
        };
        for (w, _) in woken {
            if matches!(st.threads[w].state, VState::Blocked | VState::TimedWait) {
                st.threads[w].state = VState::Runnable;
                st.threads[w].timed_out = false;
            }
        }
        self.cv.notify_all();
    }

    // ---- threads ----

    /// Register a new virtual thread (Runnable, not yet picked).
    fn register_thread(&self) -> usize {
        let mut st = self.lock();
        assert!(
            st.threads.len() < self.cfg.max_threads,
            "model spawned more than max_threads ({}) virtual threads",
            self.cfg.max_threads
        );
        st.threads.push(VThread {
            state: VState::Runnable,
            timed_out: false,
            joiners: Vec::new(),
        });
        st.live += 1;
        st.threads.len() - 1
    }

    /// First park of a freshly spawned thread: wait to be scheduled.
    fn wait_first_schedule(&self, tid: usize) {
        let st = self.lock();
        // Entry state is Runnable; park until the scheduler picks us.
        let st = self.park_locked(st, tid);
        drop(st);
    }

    /// Mark `tid` finished and hand control onwards.
    pub(crate) fn finish_thread(&self, tid: usize) {
        let mut st = self.lock();
        st.threads[tid].state = VState::Finished;
        st.live -= 1;
        let joiners = std::mem::take(&mut st.threads[tid].joiners);
        for j in joiners {
            if st.threads[j].state == VState::Blocked {
                st.threads[j].state = VState::Runnable;
            }
        }
        self.pick_next_locked(&mut st);
        self.cv.notify_all();
    }

    /// Block until `target` finishes.
    pub(crate) fn join_thread(&self, tid: usize, target: usize) {
        self.sched_point(tid);
        let mut st = self.lock();
        loop {
            if st.abort {
                drop(st);
                resume_unwind(Box::new(Aborted));
            }
            if st.threads[target].state == VState::Finished {
                return;
            }
            st.threads[target].joiners.push(tid);
            st.threads[tid].state = VState::Blocked;
            self.pick_next_locked(&mut st);
            st = self.park_locked(st, tid);
        }
    }

    /// Spawn a virtual thread running `f` on its own OS thread.
    pub(crate) fn spawn(self: &Arc<Self>, parent: usize, f: Box<dyn FnOnce() + Send>) -> usize {
        let tid = self.register_thread();
        let ctl = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("isi-check-vt-{tid}"))
            .spawn(move || {
                set_ctx(&ctl, tid);
                ctl.wait_first_schedule(tid);
                let result = catch_unwind(AssertUnwindSafe(f));
                if let Err(payload) = result {
                    if !is_abort(payload.as_ref()) {
                        ctl.record_panic(payload.as_ref());
                    }
                }
                ctl.finish_thread(tid);
                clear_ctx();
            })
            .expect("spawn model thread");
        self.lock().os_handles.push(handle);
        // Spawning is itself a visible action: the child may run
        // before the parent's next operation.
        self.sched_point(parent);
        tid
    }

    /// True once `target` has finished (used by `JoinHandle::is_finished`).
    pub(crate) fn thread_finished(&self, target: usize) -> bool {
        self.lock().threads[target].state == VState::Finished
    }
}

/// The result of running a model once under a chooser: the failure
/// (with its own replay schedule) if one occurred.
pub(crate) struct RunResult {
    pub failure: Option<Failure>,
}

/// Run `model` once to completion (all virtual threads finished or
/// the execution aborted) under `chooser`.
pub(crate) fn run_once(
    model: &(dyn Fn() + Sync),
    chooser: Arc<StdMutex<dyn Chooser>>,
    cfg: Config,
) -> RunResult {
    let ctl = Arc::new(Controller::new(chooser, cfg));
    set_ctx(&ctl, 0);
    let result = catch_unwind(AssertUnwindSafe(model));
    if let Err(payload) = result {
        if !is_abort(payload.as_ref()) {
            ctl.record_panic(payload.as_ref());
        }
    }
    ctl.finish_thread(0);
    clear_ctx();
    // Join every OS thread (threads may spawn threads, so drain in a
    // loop until the list stays empty).
    loop {
        let handles = std::mem::take(&mut ctl.lock().os_handles);
        if handles.is_empty() {
            break;
        }
        for h in handles {
            let _ = h.join();
        }
    }
    let failure = ctl.lock().failure.take();
    RunResult { failure }
}

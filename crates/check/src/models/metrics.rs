//! Model of the `isi_obs` registry's snapshot-ordering contract.
//!
//! The registry exports pairs of counters with a cross-metric
//! invariant, e.g. `wal_syncs ≤ wal_records`: every sync covers a
//! record that was appended first. Nothing ties the two atomics
//! together — the contract is pure ordering:
//!
//! - the **writer** bumps the ≥-side (`records`) *before* the ≤-side
//!   (`syncs`);
//! - the **snapshot** reads the ≤-side *before* the ≥-side (in the
//!   real registry this is registration order: the ≤-side counter is
//!   registered first and `Registry::snapshot` samples in order).
//!
//! Read that way, any `syncs` value the snapshot observes was preceded
//! by at least that many `records` bumps, so the skew can only be
//! conservative. [`snapshot_reads_records_first`] is the **known-bad**
//! variant — the pre-registry `wal_stats()` bug, which loaded
//! `records` first and could observe a sync without the record it
//! covered; the explorer must find that interleaving and its seed
//! must replay it (see `tests/models.rs`).

use std::sync::Arc;

use crate::sync::atomic::AtomicU64;
use crate::sync::Ordering;
use crate::vt;

/// One writer doing `records += 1; syncs += 1` rounds, as the durable
/// write path does per group commit.
fn spawn_writer(records: &Arc<AtomicU64>, syncs: &Arc<AtomicU64>) -> vt::JoinHandle {
    let (records, syncs) = (Arc::clone(records), Arc::clone(syncs));
    vt::spawn(move || {
        for _ in 0..2 {
            records.fetch_add(1, Ordering::SeqCst);
            syncs.fetch_add(1, Ordering::SeqCst);
        }
    })
}

/// The faithful model: the snapshot reads the ≤-side (`syncs`) before
/// the ≥-side (`records`), so `syncs ≤ records` holds in every
/// interleaving.
pub fn snapshot_reads_covered_side_first() {
    let records = Arc::new(AtomicU64::new(0));
    let syncs = Arc::new(AtomicU64::new(0));
    let writer = spawn_writer(&records, &syncs);

    // The main virtual thread is the monitor taking snapshots.
    for _ in 0..2 {
        let s = syncs.load(Ordering::SeqCst);
        let r = records.load(Ordering::SeqCst);
        assert!(s <= r, "skewed snapshot: {s} syncs > {r} records");
    }
    writer.join();
}

/// The known-bad variant: reading `records` first (the old
/// field-by-field `wal_stats()` order) lets the writer complete a
/// whole round between the two loads, so some interleaving observes
/// more syncs than records. The explorer must catch it.
pub fn snapshot_reads_records_first() {
    let records = Arc::new(AtomicU64::new(0));
    let syncs = Arc::new(AtomicU64::new(0));
    let writer = spawn_writer(&records, &syncs);

    for _ in 0..2 {
        let r = records.load(Ordering::SeqCst);
        let s = syncs.load(Ordering::SeqCst);
        assert!(s <= r, "skewed snapshot: {s} syncs > {r} records");
    }
    writer.join();
}

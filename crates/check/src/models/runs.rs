//! Model of the immutable run-stack delta publish in `isi_serve::store`.
//!
//! The real delta is a stack of immutable sorted runs: every
//! dispatched write run is sorted once and pushed (newest last), and
//! when the stack exceeds `max_runs` the same critical section folds
//! it into a single fresh run keeping the per-key newest value.
//! The background merger snapshots the stack, folds the snapshot into
//! a rebuilt main outside any lock, and republishes a residual delta
//! that retains exactly the runs **not** in its snapshot — identity
//! (`Arc::ptr_eq` in the real code) decides residual membership,
//! never value comparison.
//!
//! The model collapses the shard to a single key and a run to an
//! `(id, value)` pair, where the `id` plays the `Arc` identity. A
//! writer pushes values 2 then 3 as fresh runs (folding past
//! `max_runs = 2` inside the same lock hold, as the real write path
//! does), racing a merger doing snapshot/rebuild/republish with the
//! identity-based residual filter. Invariant: after both finish, a
//! lookup (newest run first, then main) sees the writer's final
//! value — push, fold and merge, however interleaved, never lose the
//! newest write.
//!
//! [`oldest_run_wins`] is the same protocol with the lookup reading
//! the stack **oldest-first** — the known-bad calibration variant the
//! explorer must catch. It only fails when the merge republishes
//! *between* the two pushes, leaving an older residual run below the
//! newer push — a genuine interleaving, not every schedule.

use std::sync::Arc;

use crate::sync::Mutex;
use crate::vt;

/// Single-key run-stack shard state.
struct Shard {
    /// Delta: stack of immutable runs, newest last. Each run is
    /// `(id, value)`; the `id` models the run's `Arc` identity.
    /// Ids are assigned statically — identity only needs uniqueness,
    /// so the model spends no lock ops minting them.
    runs: Mutex<Vec<(u64, u64)>>,
    /// Merged value for the key (0 = never merged).
    main: Mutex<u64>,
}

/// The stack folds once it exceeds this many runs (the model's
/// `StoreConfig::max_runs`).
const MAX_RUNS: usize = 2;

/// The protocol under every interleaving; `oldest_first` flips the
/// final lookup's run order (the known-bad variant).
fn run_stack(oldest_first: bool) {
    let shard = Arc::new(Shard {
        // One pre-existing run holding value 1, as if a prior write
        // run already published.
        runs: Mutex::new(vec![(1, 1)]),
        main: Mutex::new(0),
    });

    // Writer: two dispatched write runs, values 2 then 3. Each is one
    // critical section: push the fresh run, then fold the whole stack
    // into a new identity if it crossed `MAX_RUNS` — exactly the real
    // `write_shard_run` under the shard's version lock. Writer runs
    // reuse their value as id; folded runs get ids from 100 up.
    let writer = {
        let shard = Arc::clone(&shard);
        vt::spawn(move || {
            for v in 2..=3u64 {
                let mut runs = shard.runs.lock();
                runs.push((v, v));
                if runs.len() > MAX_RUNS {
                    let newest = runs.last().expect("non-empty").1;
                    *runs = vec![(100 + v, newest)];
                }
            }
        })
    };

    // Merger: snapshot run identities + their folded value, rebuild
    // outside any lock, republish main, and retain exactly the runs
    // whose identity was *not* in the snapshot.
    let merger = {
        let shard = Arc::clone(&shard);
        vt::spawn(move || {
            // 1. Snapshot the stack (ids + per-key newest value).
            let (snap_ids, snap_val) = {
                let runs = shard.runs.lock();
                (
                    runs.iter().map(|r| r.0).collect::<Vec<_>>(),
                    runs.last().map(|r| r.1),
                )
            };
            // 2. Rebuild outside the locks (no shared ops).
            // 3. Republish: fold the snapshot into main, then drop
            //    precisely the snapshotted runs — identity, not value.
            let mut main = shard.main.lock();
            if let Some(v) = snap_val {
                *main = v;
            }
            let mut runs = shard.runs.lock();
            runs.retain(|r| !snap_ids.contains(&r.0));
        })
    };

    writer.join();
    merger.join();

    // Lookup: the run stack shadows main.
    let runs = shard.runs.lock().clone();
    let main = *shard.main.lock();
    let run_hit = if oldest_first {
        runs.first()
    } else {
        runs.last()
    };
    let seen = run_hit.map(|r| r.1).unwrap_or(main);
    assert_eq!(
        seen, 3,
        "run stack lost the newest write: lookup sees {seen} \
         (runs={runs:?}, main={main})"
    );
}

/// Good protocol: newest-run-first lookup over the residual stack
/// always sees the writer's final value.
pub fn run_stack_preserves_newest() {
    run_stack(false);
}

/// Known-bad variant: the lookup consults the **oldest** run first.
/// Under interleavings where the merge's residual leaves an older run
/// below a newer push, the stale value shadows the newest write.
pub fn oldest_run_wins() {
    run_stack(true);
}

//! Model of `isi_core::policy::PolicyCell` retune publication.
//!
//! The adaptive dispatcher republishes a shard's interleave policy
//! every retune interval while dispatched batches snapshot it per
//! read run. The real cell packs the whole policy into **one**
//! `AtomicU64` (`Interleave::Sequential` → 0, `Interleaved(g)` → g),
//! so a snapshot is a single load and can never mix two policies. The
//! model makes that directly assertable by widening the payload to a
//! `(group, tag)` pair where the tag is a function of the group —
//! packed into one word exactly as `PolicyCell` packs its encoding.
//! The invariants:
//!
//! 1. **Never torn** — every snapshot's tag matches its group: the
//!    reader sees some *complete* published policy, old or new.
//! 2. **Within clamps** — every observed group stays in
//!    `[1, calibrated]`, the range the controller's
//!    `group_for_density` guarantees.
//!
//! [`split_policy_publish`] is the deliberately broken variant: the
//! group and its tag live in two separate atomics — the shape a
//! "struct with two atomic fields" refactor of `PolicyCell` would
//! produce — so some interleaving *must* observe half of one retune
//! and half of another. The test suite uses it to prove the explorer
//! finds exactly that bug (see `tests/models.rs`).

use std::sync::Arc;

use crate::sync::atomic::AtomicU64;
use crate::sync::Ordering;
use crate::vt;

/// The calibrated ceiling the model's retuner clamps to.
const CALIBRATED: u64 = 6;

/// Tag function: what the packed word's high half must be for `g`.
fn tag_of(g: u64) -> u64 {
    g.wrapping_mul(1_000).wrapping_add(g)
}

fn pack(g: u64) -> u64 {
    (tag_of(g) << 32) | g
}

fn unpack(word: u64) -> (u64, u64) {
    (word & 0xffff_ffff, word >> 32)
}

/// The faithful model: the retuner republishes the policy as a single
/// word store (as `PolicyCell::store` does); the dispatcher's per-run
/// snapshot is a single load. No interleaving can tear the pair or
/// escape the clamps.
pub fn retune_publish_never_torn() {
    let cell = Arc::new(AtomicU64::new(pack(CALIBRATED)));

    let retuner = {
        let cell = Arc::clone(&cell);
        vt::spawn(move || {
            // Two retunes walking the group down, as a hot delta would.
            for g in [3u64, 1] {
                cell.store(pack(g), Ordering::SeqCst);
            }
        })
    };

    // The main virtual thread is the dispatcher snapshotting per run.
    for _ in 0..2 {
        let (g, tag) = unpack(cell.load(Ordering::SeqCst));
        assert_eq!(tag, tag_of(g), "torn policy: group {g} with tag {tag}");
        assert!(
            (1..=CALIBRATED).contains(&g),
            "group {g} outside [1, {CALIBRATED}]"
        );
    }
    retuner.join();
}

/// The known-bad variant: the group and its tag are published as two
/// independent atomic stores — the two-field struct a naive
/// `PolicyCell` replacement would use — so a dispatcher scheduled
/// between the stores observes a torn policy. The explorer must find
/// this (see `tests/models.rs`).
pub fn split_policy_publish() {
    let group = Arc::new(AtomicU64::new(CALIBRATED));
    let tag = Arc::new(AtomicU64::new(tag_of(CALIBRATED)));

    let retuner = {
        let (group, tag) = (Arc::clone(&group), Arc::clone(&tag));
        vt::spawn(move || {
            group.store(1, Ordering::SeqCst);
            tag.store(tag_of(1), Ordering::SeqCst);
        })
    };

    let g = group.load(Ordering::SeqCst);
    let t = tag.load(Ordering::SeqCst);
    assert_eq!(t, tag_of(g), "torn policy observed: group={g} tag={t}");
    retuner.join();
}

//! Model of the WAL group-commit + snapshot-truncate protocol in
//! `isi_durable`/`isi_serve::store`.
//!
//! The real write path appends one record per dispatched run, fsyncs,
//! and only then acknowledges the run's tickets (**ack ⇒ durable**).
//! The merger writes a snapshot covering a sequence cut, fsyncs and
//! renames it, and only then rewrites the WAL down to the residual
//! (**snapshot before truncate**). The model collapses a shard's disk
//! to sequence numbers: the WAL is a list of appended seqs with a
//! durable prefix length (an fsync extends it), the snapshot is a
//! covered seq with a separately-tracked durable seq (its fsync+rename
//! publishes it), and a "crash probe" computes what recovery would see
//! — the durable WAL prefix plus the durable snapshot — at whatever
//! point the scheduler places it. Invariants:
//!
//! 1. **No acked write is lost**: every acknowledged seq is in the
//!    durable WAL prefix or covered by the durable snapshot, at every
//!    probe point.
//! 2. **Recovery frontier is monotone**: successive probes never see
//!    the recoverable frontier (durable snapshot seq ⊔ durable WAL
//!    max) move backwards.
//!
//! [`truncate_before_snapshot_sync`] is the deliberately broken
//! variant — the merger truncates the WAL *before* the snapshot's
//! fsync — and some interleaving must lose an acked write between the
//! truncate and the sync. The test suite asserts the explorer finds
//! it.

use std::sync::Arc;

use crate::sync::Mutex;
use crate::vt;

/// One shard's disk, in sequence numbers.
struct Disk {
    /// Appended WAL record seqs (OS buffer; a crash keeps a prefix).
    wal: Vec<u64>,
    /// Length of the durable (fsynced) WAL prefix.
    wal_synced: usize,
    /// Snapshot tmp contents: covers all seqs ≤ this (not yet durable).
    snap_staged: u64,
    /// Durable snapshot cover (fsync + rename + dir sync done).
    snap_synced: u64,
    /// Seqs acknowledged to clients.
    acked: Vec<u64>,
}

impl Disk {
    fn new() -> Self {
        Disk {
            wal: Vec::new(),
            wal_synced: 0,
            snap_staged: 0,
            snap_synced: 0,
            acked: Vec::new(),
        }
    }

    /// What recovery would find if the machine died right now.
    fn probe(&self) -> (u64, Vec<u64>) {
        let durable: Vec<u64> = self.wal[..self.wal_synced].to_vec();
        let frontier = durable
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .max(self.snap_synced);
        (frontier, durable)
    }
}

/// Writer: one group-committed run, append → fsync → ack, as in
/// `DurableState::log_run` followed by ticket fulfillment. (One run
/// keeps the bounded-exhaustive state space small; the invariants
/// don't depend on run count.)
fn writer(disk: &Arc<Mutex<Disk>>) -> vt::JoinHandle {
    let disk = Arc::clone(disk);
    vt::spawn(move || {
        let seq = 1u64;
        disk.lock().wal.push(seq); // append the record
        {
            let mut d = disk.lock(); // fsync the log
            d.wal_synced = d.wal.len();
        }
        disk.lock().acked.push(seq); // fulfill the run's tickets
    })
}

/// One crash probe, run on the main virtual thread: the invariants
/// must hold for the durable image alone, wherever the scheduler
/// places it. Returns the recovery frontier for the monotonicity
/// check against a later probe.
fn probe(disk: &Arc<Mutex<Disk>>, last_frontier: u64) -> u64 {
    let d = disk.lock();
    let (frontier, durable) = d.probe();
    for &a in &d.acked {
        assert!(
            a <= d.snap_synced || durable.contains(&a),
            "acked write lost: seq {a} not durable \
             (snapshot covers {}, durable wal {durable:?})",
            d.snap_synced,
        );
    }
    assert!(
        frontier >= last_frontier,
        "recovery frontier went backwards: {frontier} < {last_frontier}"
    );
    frontier
}

/// The faithful protocol: the merger stages the snapshot, makes it
/// durable, and only then truncates the WAL. No interleaving can lose
/// an acked write or regress the recovery frontier.
pub fn group_commit_truncate_safe() {
    let disk = Arc::new(Mutex::new(Disk::new()));
    let w = writer(&disk);
    let merger = {
        let disk = Arc::clone(&disk);
        vt::spawn(move || {
            // Snapshot cut + tmp write: the cut is whatever has been
            // appended so far (the real merger reads (version,
            // wal_seq) under the write lock; replay past the cut is
            // idempotent), and the tmp write is invisible until
            // synced, so one critical section models both.
            let cover = {
                let mut d = disk.lock();
                let cover = d.wal.last().copied().unwrap_or(0);
                d.snap_staged = cover;
                cover
            };
            {
                let mut d = disk.lock(); // fsync + rename + dir sync
                d.snap_synced = d.snap_staged;
            }
            {
                let mut d = disk.lock(); // rewrite WAL to the residual
                d.wal.retain(|&s| s > cover);
                d.wal_synced = d.wal.len();
            }
        })
    };
    let frontier = probe(&disk, 0);
    w.join();
    merger.join();
    // Final probe after both threads are done: everything acked must
    // still be recoverable, and the frontier never regressed.
    probe(&disk, frontier);
}

/// The known-bad variant: the merger truncates the WAL **before** the
/// snapshot's fsync. A crash between the two loses every acked write
/// the staged-but-volatile snapshot was supposed to cover — the
/// explorer must find this (see `tests/models.rs`).
pub fn truncate_before_snapshot_sync() {
    let disk = Arc::new(Mutex::new(Disk::new()));
    let w = writer(&disk);
    let merger = {
        let disk = Arc::clone(&disk);
        vt::spawn(move || {
            let cover = {
                let mut d = disk.lock();
                let cover = d.wal.last().copied().unwrap_or(0);
                d.snap_staged = cover;
                cover
            };
            {
                let mut d = disk.lock(); // BUG: truncate first…
                d.wal.retain(|&s| s > cover);
                d.wal_synced = d.wal.len();
            }
            {
                let mut d = disk.lock(); // …sync the snapshot after
                d.snap_synced = d.snap_staged;
            }
        })
    };
    let frontier = probe(&disk, 0);
    w.join();
    merger.join();
    probe(&disk, frontier);
}

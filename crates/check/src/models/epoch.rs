//! Model of `isi_core::epoch::EpochCell` publication.
//!
//! The real cell is `RwLock<Arc<T>>` plus an `AtomicU64` epoch bumped
//! under the write lock. The model replaces the `Arc<T>` payload with
//! a `(value, tag)` pair whose tag is a function of the value, so a
//! torn publication (a reader observing half of one version and half
//! of another) is directly assertable. The invariants:
//!
//! 1. **Never torn** — every snapshot's tag matches its value.
//! 2. **Monotone** — a reader's successive snapshots never go
//!    backwards, and the epoch counter never runs behind a published
//!    value (publishing version *v* bumps the epoch to *v* before the
//!    write lock is released).
//!
//! [`torn_publish`] is the deliberately broken variant: the payload
//! halves live in two separate atomics with no lock around the pair,
//! so some interleaving *must* observe a mixed snapshot. The test
//! suite uses it to prove the explorer actually finds such bugs.

use std::sync::Arc;

use crate::sync::atomic::AtomicU64;
use crate::sync::{Ordering, RwLock};
use crate::vt;

/// Tag function: what the payload's second half must be for `v`.
fn tag_of(v: u64) -> u64 {
    v.wrapping_mul(1_000).wrapping_add(v)
}

/// The faithful model: publish under a write lock, epoch bumped
/// before release; snapshots are never torn and versions are
/// monotone.
pub fn publish_never_torn() {
    struct Cell {
        current: RwLock<(u64, u64)>,
        epoch: AtomicU64,
    }
    let cell = Arc::new(Cell {
        current: RwLock::new((0, tag_of(0))),
        epoch: AtomicU64::new(0),
    });

    let writer = {
        let cell = Arc::clone(&cell);
        vt::spawn(move || {
            for v in 1..=2u64 {
                let mut slot = cell.current.write();
                *slot = (v, tag_of(v));
                // Epoch bump under the write lock, as in EpochCell::store.
                cell.epoch.fetch_add(1, Ordering::SeqCst);
            }
        })
    };

    // The main virtual thread is the reader.
    let mut last = 0u64;
    for _ in 0..2 {
        let e_before = cell.epoch.load(Ordering::SeqCst);
        let (v, tag) = *cell.current.read();
        let e_after = cell.epoch.load(Ordering::SeqCst);
        assert_eq!(tag, tag_of(v), "torn snapshot: value {v} with tag {tag}");
        assert!(v >= last, "version went backwards: {v} < {last}");
        assert!(e_after >= v, "epoch {e_after} behind published version {v}");
        assert!(
            e_after >= e_before,
            "epoch went backwards: {e_after} < {e_before}"
        );
        last = v;
    }
    writer.join();
}

/// The known-bad variant: the two payload halves are published as two
/// independent atomic stores with no lock, so a reader scheduled
/// between them observes a torn snapshot. The explorer must find this
/// (see `tests/models.rs`).
pub fn torn_publish() {
    let lo = Arc::new(AtomicU64::new(0));
    let hi = Arc::new(AtomicU64::new(0));

    let writer = {
        let (lo, hi) = (Arc::clone(&lo), Arc::clone(&hi));
        vt::spawn(move || {
            lo.store(1, Ordering::SeqCst);
            hi.store(1, Ordering::SeqCst);
        })
    };

    let h = hi.load(Ordering::SeqCst);
    let l = lo.load(Ordering::SeqCst);
    assert_eq!(l, h, "torn publish observed: lo={l} hi={h}");
    writer.join();
}

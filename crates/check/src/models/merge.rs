//! Model of the Main/Delta merge publish in `isi_serve::store`.
//!
//! The real merger snapshots the delta under the write lock, rebuilds
//! the main structure *outside* any lock, then republishes: the new
//! main is swapped in and the delta is pruned with the **residual
//! filter** — an entry is dropped only if its current value still
//! equals the snapshotted value that was folded into the new main.
//! A write that lands mid-rebuild therefore survives as residual
//! delta and is never silently absorbed into a main that predates it.
//!
//! The model collapses the shard to a single key. Invariant: after
//! the merger and a concurrent writer (who writes 2 then 3) both
//! finish, a lookup (delta first, then main) returns the writer's
//! final value — the merge never loses a write, wherever it lands
//! relative to snapshot/rebuild/publish.

use std::sync::Arc;

use crate::sync::Mutex;
use crate::vt;

/// Single-key Main/Delta shard state.
struct Shard {
    /// Pending write for the key (`None` = no delta entry).
    delta: Mutex<Option<u64>>,
    /// Merged value for the key (0 = never merged).
    main: Mutex<u64>,
}

pub fn write_survives_merge() {
    let shard = Arc::new(Shard {
        delta: Mutex::new(Some(1)),
        main: Mutex::new(0),
    });

    let merger = {
        let shard = Arc::clone(&shard);
        vt::spawn(move || {
            // 1. Snapshot the delta.
            let snap = *shard.delta.lock();
            // 2. Rebuild outside the locks (no shared ops — invisible
            //    to the schedule, as in the real merger).
            // 3. Republish: swap in the new main, prune only delta
            //    entries the snapshot actually covered.
            let mut main = shard.main.lock();
            if let Some(v) = snap {
                *main = v;
            }
            let mut delta = shard.delta.lock();
            if *delta == snap {
                // Unchanged since the snapshot: absorbed into main.
                *delta = None;
            }
            // else: a concurrent write replaced it — keep as residual.
        })
    };

    let writer = {
        let shard = Arc::clone(&shard);
        vt::spawn(move || {
            for v in 2..=3u64 {
                *shard.delta.lock() = Some(v);
            }
        })
    };

    merger.join();
    writer.join();

    // Lookup: delta shadows main.
    let delta = *shard.delta.lock();
    let main = *shard.main.lock();
    let seen = delta.unwrap_or(main);
    assert_eq!(
        seen, 3,
        "merge lost a write: lookup sees {seen} (delta={delta:?}, main={main})"
    );
}

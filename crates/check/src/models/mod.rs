//! Executable models of the serve-path concurrency protocols.
//!
//! Each model is a small, closed re-statement of one protocol from
//! `isi_core`/`isi_serve`, built from the [`crate::sync`] shims so the
//! explorer can enumerate its interleavings, with the protocol's
//! invariant stated as plain `assert!`s. The models are deliberately
//! tiny — two or three virtual threads, a handful of operations — so
//! bounded-exhaustive DFS covers *every* interleaving in well under a
//! second; what they preserve from the real code is the *order of
//! lock/publish/notify operations*, which is exactly what the
//! invariants depend on.
//!
//! | model | protocol under test |
//! |---|---|
//! | [`epoch`] | `EpochCell` publish: snapshots never torn, epochs monotone |
//! | [`merge`] | Main/Delta merge publish: a mid-rebuild write survives as residual delta |
//! | [`runs`] | run-stack delta: compaction + identity-residual merge never lose the newest write |
//! | [`cache`] | hot-key cache: invalidate-before-ack ⇒ no stale read after own-write ack |
//! | [`queue`] | bounded admission queue: no lost wakeup / deadlock at backpressure |
//! | [`wal`] | WAL group commit + snapshot-truncate: acked ⇒ durable, frontier monotone |
//! | [`metrics`] | registry snapshot ordering: read ≤-side first ⇒ `syncs ≤ records` |
//! | [`policy`] | `PolicyCell` retune publish: per-run snapshots never torn, groups in clamps |
//!
//! [`epoch::torn_publish`], [`wal::truncate_before_snapshot_sync`],
//! [`metrics::snapshot_reads_records_first`],
//! [`runs::oldest_run_wins`] and [`policy::split_policy_publish`] are
//! **known-bad** models kept as calibration targets: the test suite
//! asserts the explorer *finds* their violations and that the printed
//! seeds replay them.

pub mod cache;
pub mod epoch;
pub mod merge;
pub mod metrics;
pub mod policy;
pub mod queue;
pub mod runs;
pub mod wal;

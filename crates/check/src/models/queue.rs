//! Model of the bounded admission queue in `isi_serve::service`.
//!
//! Producers enqueue under a mutex, park on a `space` condvar while
//! the queue is at capacity (the `max_delta`-style backpressure), and
//! signal a `work` condvar **conditionally** — only when the queue
//! transitions from empty — exactly like the real `enqueue`. The
//! dispatcher drains everything available before parking again, which
//! is the property that makes the conditional notify sound.
//!
//! The invariants are implicit in the runtime: a lost wakeup or a
//! notify/backpressure cycle shows up as a deadlock (no schedulable
//! thread with live threads remaining), which the checker reports
//! with a replay seed. The explicit asserts check that exactly the
//! produced items are consumed.
//!
//! Three variants:
//! * [`backpressure_no_deadlock`] — capacity 1, two producers: every
//!   producer must block at least somewhere in some interleaving, and
//!   all must still drain.
//! * [`conditional_notify_no_lost_wakeup`] — large capacity, so the
//!   second producer *skips* the notify; the dispatcher's
//!   drain-before-parking loop must still consume both items.
//! * [`timeout_notify_race`] — the dispatcher waits with a timeout
//!   (the real dispatch loop's deadline wait); the explorer schedules
//!   both the timeout firing and the notify in every order.

use std::sync::Arc;

use crate::sync::{Condvar, Mutex};
use crate::vt;

struct Queue {
    items: Mutex<Vec<u32>>,
    /// Dispatcher parks here when the queue is empty.
    work: Condvar,
    /// Producers park here when the queue is at capacity.
    space: Condvar,
}

/// Shared body: `producers` × one item each through a queue of
/// `capacity`; the main virtual thread is the dispatcher.
fn queue_model(producers: u32, capacity: usize, timed_wait: bool) {
    let q = Arc::new(Queue {
        items: Mutex::new(Vec::new()),
        work: Condvar::new(),
        space: Condvar::new(),
    });

    let handles: Vec<_> = (0..producers)
        .map(|p| {
            let q = Arc::clone(&q);
            vt::spawn(move || {
                let mut items = q.items.lock();
                while items.len() >= capacity {
                    items = q.space.wait(items);
                }
                items.push(p);
                if items.len() == 1 {
                    // Conditional notify, as in the real enqueue: only
                    // the empty→non-empty transition can have a parked
                    // dispatcher to wake.
                    q.work.notify_one();
                }
            })
        })
        .collect();

    // Dispatcher: drain everything available, then park; repeat until
    // every produced item was consumed.
    let mut consumed = Vec::new();
    // The scheduler may fire a timed wait's timeout instead of ever
    // running the producer; a bounded budget (then falling back to an
    // untimed wait) models fairness — otherwise "timeout fires
    // forever" is an explorable but meaningless livelock.
    let mut timeout_budget = 2u32;
    let mut items = q.items.lock();
    while (consumed.len() as u32) < producers {
        while items.is_empty() {
            items = if timed_wait && timeout_budget > 0 {
                // Deadline wait as in the real dispatch loop; the
                // scheduler may fire the timeout instead of a notify,
                // after which the loop re-checks the queue.
                let (guard, fired) = q.work.wait_timeout(items);
                if fired {
                    timeout_budget -= 1;
                }
                guard
            } else {
                q.work.wait(items)
            };
        }
        while let Some(item) = items.pop() {
            consumed.push(item);
            q.space.notify_one();
        }
    }
    drop(items);

    for h in handles {
        h.join();
    }
    consumed.sort_unstable();
    let expect: Vec<u32> = (0..producers).collect();
    assert_eq!(consumed, expect, "items lost or duplicated in the queue");
}

/// Capacity-1 queue with two producers: backpressure engages, nothing
/// deadlocks, both items drain.
pub fn backpressure_no_deadlock() {
    queue_model(2, 1, false);
}

/// Roomy queue, so the second producer skips its notify; the
/// dispatcher's drain loop must still consume everything (a lost
/// wakeup here would deadlock and be reported).
pub fn conditional_notify_no_lost_wakeup() {
    queue_model(2, 4, false);
}

/// Timed dispatcher wait racing a producer's notify: correct in every
/// timeout/notify order.
pub fn timeout_notify_race() {
    queue_model(1, 1, true);
}

//! Model of the hot-key cache write-invalidation protocol in
//! `isi_serve::service`.
//!
//! The serving layer answers repeated hot-key lookups from a small
//! cache in front of the authoritative shard state. On a write, the
//! writer must **invalidate the cached entry before acknowledging**
//! the write to the client; otherwise there is a window where the
//! client has been told "your write is durable" but a lookup still
//! returns the pre-write value from the cache — a
//! read-your-own-writes violation.
//!
//! [`invalidate_before_ack`] models the protocol the serve path
//! implements (invalidate, *then* ack): across every interleaving, a
//! client that has observed the ack never reads the stale cached
//! value. [`ack_before_invalidate`] flips the two steps and is
//! expected to violate — the test suite asserts the explorer finds
//! the stale read and that its seed replays.

use std::sync::Arc;

use crate::sync::atomic::AtomicBool;
use crate::sync::{Mutex, Ordering};
use crate::vt;

struct State {
    /// Authoritative value for the hot key.
    store: Mutex<u64>,
    /// Cached value (`None` = miss; filled from `store` on lookup).
    cache: Mutex<Option<u64>>,
    /// The client-visible write acknowledgement.
    acked: AtomicBool,
}

/// Shared body: writer updates the store and performs
/// invalidate/ack in the given order; the client, once it sees the
/// ack, must read its own write (2), never the stale cached 1.
fn cache_model(invalidate_first: bool) {
    let st = Arc::new(State {
        store: Mutex::new(1),
        // Pre-warmed with the old value: the dangerous starting point.
        cache: Mutex::new(Some(1)),
        acked: AtomicBool::new(false),
    });

    let writer = {
        let st = Arc::clone(&st);
        vt::spawn(move || {
            *st.store.lock() = 2;
            if invalidate_first {
                *st.cache.lock() = None;
                st.acked.store(true, Ordering::SeqCst);
            } else {
                st.acked.store(true, Ordering::SeqCst);
                *st.cache.lock() = None;
            }
        })
    };

    // The client (main virtual thread): a lookup that happens to land
    // after it observed its write's ack.
    if st.acked.load(Ordering::SeqCst) {
        let cached = *st.cache.lock();
        let v = match cached {
            Some(v) => v,
            None => {
                // Miss: read through and refill, as the dispatcher does.
                let v = *st.store.lock();
                *st.cache.lock() = Some(v);
                v
            }
        };
        assert_eq!(v, 2, "stale read after own-write ack (cache={cached:?})");
    }
    writer.join();
}

/// The implemented protocol: invalidate the cache entry, then ack.
pub fn invalidate_before_ack() {
    cache_model(true);
}

/// The broken ordering (known-bad): ack first, invalidate later —
/// some interleaving serves the stale cached value after the ack.
pub fn ack_before_invalidate() {
    cache_model(false);
}

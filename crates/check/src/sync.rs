//! Shimmed synchronization primitives: `std::sync` look-alikes whose
//! every operation is a scheduling point of the model checker.
//!
//! Model code uses these exactly like their `std` counterparts —
//! `Mutex`/`MutexGuard`, `RwLock`, `Condvar` (with timed waits), and
//! sequentially-consistent atomics — but each operation first hands
//! control to the schedule explorer ([`crate::explore`]), so every
//! interleaving the bounds allow is actually executed. Blocking
//! operations park the virtual thread in the runtime instead of the
//! OS, which is what lets the checker *see* deadlocks and lost
//! wakeups instead of hanging on them.
//!
//! Two deliberate simplifications versus `std` (and versus loom):
//!
//! * **Atomics are sequentially consistent.** The checker explores
//!   thread interleavings, not weak-memory reorderings; an `Ordering`
//!   parameter is accepted and ignored. Protocols relying on relaxed
//!   ordering subtleties need a weaker-memory checker (that is what
//!   the nightly ThreadSanitizer CI job is for).
//! * **No spurious wakeups.** `Condvar::wait` returns only on notify
//!   (or timeout for the timed variant). Code that is incorrect
//!   without the re-check loop will instead show up as an
//!   assertion/deadlock under some explored notify ordering.
//!
//! Poisoning does not exist here: a panicking model thread aborts the
//! whole execution and is reported as a violation, so guards never
//! observe a poisoned lock.

use std::sync::{Arc, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::sync::{RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::rt::{self, Controller, Resource};

/// Re-exported so models can `use isi_check::sync::Ordering` the way
/// real code uses `std::sync::atomic::Ordering` (the value is ignored
/// — see the [module docs](self)).
pub use std::sync::atomic::Ordering;

/// A mutual-exclusion lock whose acquire is a scheduling point and
/// whose contention parks the virtual thread in the model runtime.
pub struct Mutex<T> {
    ctl: Arc<Controller>,
    id: usize,
    /// The data lives in a real mutex, but the model-level lock
    /// serializes access, so this acquire never contends.
    data: StdMutex<T>,
}

/// RAII guard for [`Mutex`]; releases the model-level lock on drop.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a model mutex (must run inside a model execution).
    pub fn new(value: T) -> Self {
        let (ctl, _) = rt::current();
        let id = ctl.alloc_resource(Resource::Mutex {
            locked: false,
            waiters: Vec::new(),
        });
        Self {
            ctl,
            id,
            data: StdMutex::new(value),
        }
    }

    /// Acquire, parking the virtual thread while another holds it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let (ctl, tid) = rt::current();
        ctl.mutex_lock(tid, self.id, false);
        self.guard()
    }

    fn guard(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            lock: self,
            inner: Some(self.data.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard live")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the data lock before the model-level lock so the
        // next model-level owner finds the std mutex free.
        self.inner.take();
        self.lock.ctl.mutex_unlock(self.lock.id);
    }
}

/// A readers-writer lock with model-level scheduling (see [`Mutex`]).
pub struct RwLock<T> {
    ctl: Arc<Controller>,
    id: usize,
    data: StdRwLock<T>,
}

/// Shared-access guard for [`RwLock`].
pub struct ReadGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<RwLockReadGuard<'a, T>>,
}

/// Exclusive-access guard for [`RwLock`].
pub struct WriteGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<RwLockWriteGuard<'a, T>>,
}

impl<T> RwLock<T> {
    /// Create a model rwlock (must run inside a model execution).
    pub fn new(value: T) -> Self {
        let (ctl, _) = rt::current();
        let id = ctl.alloc_resource(Resource::RwLock {
            readers: 0,
            writer: false,
            waiters: Vec::new(),
        });
        Self {
            ctl,
            id,
            data: StdRwLock::new(value),
        }
    }

    /// Shared-acquire; parks while a writer holds the lock.
    pub fn read(&self) -> ReadGuard<'_, T> {
        let (ctl, tid) = rt::current();
        ctl.rwlock_lock(tid, self.id, false);
        ReadGuard {
            lock: self,
            inner: Some(self.data.read().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Exclusive-acquire; parks while any reader or writer holds it.
    pub fn write(&self) -> WriteGuard<'_, T> {
        let (ctl, tid) = rt::current();
        ctl.rwlock_lock(tid, self.id, true);
        WriteGuard {
            lock: self,
            inner: Some(self.data.write().unwrap_or_else(|e| e.into_inner())),
        }
    }
}

impl<T> std::ops::Deref for ReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live")
    }
}

impl<T> Drop for ReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner.take();
        self.lock.ctl.rwlock_unlock(self.lock.id, false);
    }
}

impl<T> std::ops::Deref for WriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live")
    }
}

impl<T> std::ops::DerefMut for WriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard live")
    }
}

impl<T> Drop for WriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner.take();
        self.lock.ctl.rwlock_unlock(self.lock.id, true);
    }
}

/// A condition variable whose wait/notify orderings the explorer
/// enumerates; timed waits model the timeout as a schedulable event,
/// so every timeout/notify race is covered without a clock.
pub struct Condvar {
    id: usize,
}

impl Condvar {
    /// Create a model condvar (must run inside a model execution).
    pub fn new() -> Self {
        let (ctl, _) = rt::current();
        let id = ctl.alloc_resource(Resource::Condvar {
            waiters: Vec::new(),
        });
        Self { id }
    }

    /// Release `guard`'s mutex, park until notified, reacquire.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.wait_inner(guard, false).0
    }

    /// Like [`wait`](Self::wait), but the scheduler may also fire the
    /// timeout (there is no model clock — any wait may time out).
    /// Returns the reacquired guard and whether the wakeup was a
    /// timeout.
    pub fn wait_timeout<'a, T>(&self, guard: MutexGuard<'a, T>) -> (MutexGuard<'a, T>, bool) {
        self.wait_inner(guard, true)
    }

    fn wait_inner<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        timed: bool,
    ) -> (MutexGuard<'a, T>, bool) {
        let (ctl, tid) = rt::current();
        let mutex = guard.lock;
        // Drop the data lock, atomically release the model lock and
        // park; then reacquire both.
        guard.inner.take();
        std::mem::forget(guard); // model-level release happens inside condvar_wait
        let timed_out = ctl.condvar_wait(tid, self.id, mutex.id, timed);
        ctl.mutex_lock(tid, mutex.id, true);
        (mutex.guard(), timed_out)
    }

    /// Wake one waiter. Which one is a scheduling decision.
    pub fn notify_one(&self) {
        let (ctl, tid) = rt::current();
        ctl.condvar_notify(tid, self.id, false);
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        let (ctl, tid) = rt::current();
        ctl.condvar_notify(tid, self.id, true);
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

/// Model atomics: every access is a scheduling point; all orderings
/// execute as sequentially consistent (see the [module docs](self)).
pub mod atomic {
    use super::Ordering;
    use crate::rt;

    macro_rules! model_atomic {
        ($name:ident, $prim:ty, $std:ty) => {
            /// A model atomic (see the [module docs](super)).
            pub struct $name {
                v: $std,
            }

            impl $name {
                /// Wrap an initial value (no scheduling point).
                pub fn new(v: $prim) -> Self {
                    Self { v: <$std>::new(v) }
                }

                /// Atomic load (scheduling point; SeqCst).
                pub fn load(&self, _order: Ordering) -> $prim {
                    let (ctl, tid) = rt::current();
                    ctl.sched_point(tid);
                    self.v.load(Ordering::SeqCst)
                }

                /// Atomic store (scheduling point; SeqCst).
                pub fn store(&self, val: $prim, _order: Ordering) {
                    let (ctl, tid) = rt::current();
                    ctl.sched_point(tid);
                    self.v.store(val, Ordering::SeqCst);
                }

                /// Atomic fetch-add (scheduling point; SeqCst).
                pub fn fetch_add(&self, val: $prim, _order: Ordering) -> $prim {
                    let (ctl, tid) = rt::current();
                    ctl.sched_point(tid);
                    self.v.fetch_add(val, Ordering::SeqCst)
                }

                /// Atomic swap (scheduling point; SeqCst).
                pub fn swap(&self, val: $prim, _order: Ordering) -> $prim {
                    let (ctl, tid) = rt::current();
                    ctl.sched_point(tid);
                    self.v.swap(val, Ordering::SeqCst)
                }
            }
        };
    }

    model_atomic!(AtomicU64, u64, std::sync::atomic::AtomicU64);
    model_atomic!(AtomicUsize, usize, std::sync::atomic::AtomicUsize);

    /// A model atomic boolean (see the [module docs](super)).
    pub struct AtomicBool {
        v: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Wrap an initial value (no scheduling point).
        pub fn new(v: bool) -> Self {
            Self {
                v: std::sync::atomic::AtomicBool::new(v),
            }
        }

        /// Atomic load (scheduling point; SeqCst).
        pub fn load(&self, _order: Ordering) -> bool {
            let (ctl, tid) = rt::current();
            ctl.sched_point(tid);
            self.v.load(Ordering::SeqCst)
        }

        /// Atomic store (scheduling point; SeqCst).
        pub fn store(&self, val: bool, _order: Ordering) {
            let (ctl, tid) = rt::current();
            ctl.sched_point(tid);
            self.v.store(val, Ordering::SeqCst);
        }
    }
}

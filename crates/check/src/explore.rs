//! Schedule exploration: exhaustive DFS, randomized sampling, and
//! seed replay over the virtual-thread runtime ([`crate::rt`]).
//!
//! An execution of a model is fully determined by the sequence of
//! choices the scheduler makes at its decision points (≥ 2 schedulable
//! threads, or ≥ 2 condvar waiters for a `notify_one`). That sequence
//! doubles as the **replay seed**: a violation is reported with the
//! seed that produced it, and [`replay`] re-runs exactly that
//! interleaving — so a failure found by the exhaustive or randomized
//! explorer is reproducible in a debugger with zero flakiness.
//!
//! * [`explore`] — bounded-exhaustive DFS: enumerate every decision
//!   sequence up to the configured bounds, backtracking like an
//!   iterative-deepening tree walk. Complete for models whose state
//!   space fits the bounds; [`Outcome::BoundExceeded`] (never a silent
//!   pass) when it does not.
//! * [`explore_random`] — seeded random walks for models whose space
//!   is too large to exhaust; still yields a deterministic replay seed
//!   on failure.
//! * [`check`] — `explore` + panic on anything but a clean pass, for
//!   use inside `#[test]`s. Prints the replay seed in the panic
//!   message.

use std::sync::{Arc, Mutex as StdMutex};

use crate::rt::{self, Chooser};

/// Exploration bounds. `Default` suits the in-tree protocol models;
/// raise the bounds for bigger models, or switch to
/// [`explore_random`].
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Per-execution scheduling-point budget; exceeding it fails the
    /// execution (livelock / unbounded model).
    pub max_steps: usize,
    /// Executions budget for [`explore`]; exceeding it returns
    /// [`Outcome::BoundExceeded`].
    pub max_executions: usize,
    /// Virtual-thread cap per execution (spawning more is a model bug
    /// and panics).
    pub max_threads: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            max_steps: 20_000,
            max_executions: 100_000,
            max_threads: 8,
        }
    }
}

/// What an exploration found.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Every explored interleaving upheld the model's assertions.
    Pass {
        /// Number of complete executions explored.
        executions: usize,
    },
    /// Some interleaving failed; `seed` replays it.
    Violation(Violation),
    /// The state space did not fit `Config::max_executions`; the model
    /// must shrink (or use [`explore_random`]). Never treated as a
    /// pass.
    BoundExceeded {
        /// Executions completed before giving up.
        executions: usize,
    },
}

/// A failing interleaving: the assertion/deadlock message plus the
/// replay seed that deterministically reproduces it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The model's assertion message, panic payload, or the runtime's
    /// deadlock/step-bound diagnostic.
    pub message: String,
    /// Decision sequence encoded for [`replay`].
    pub seed: String,
    /// Executions completed before this one failed.
    pub executions: usize,
}

/// Seed alphabet: one character per decision, index into the
/// schedulable set (the runtime asserts ≤ 36 options).
const ALPHABET: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyz";

/// Encode a decision sequence as a replay-seed string ("-" when the
/// execution had no decision points at all).
pub fn encode_seed(schedule: &[u8]) -> String {
    if schedule.is_empty() {
        return "-".to_string();
    }
    schedule
        .iter()
        .map(|&c| ALPHABET[c as usize] as char)
        .collect()
}

/// Decode a replay-seed string; `Err` names the offending character.
pub fn decode_seed(seed: &str) -> Result<Vec<u8>, String> {
    if seed == "-" {
        return Ok(Vec::new());
    }
    seed.bytes()
        .map(|b| {
            ALPHABET
                .iter()
                .position(|&a| a == b)
                .map(|i| i as u8)
                .ok_or_else(|| format!("invalid seed character {:?} in {seed:?}", b as char))
        })
        .collect()
}

/// DFS frontier: the decision prefix to replay on the next execution.
///
/// Each frame remembers the branch taken and the branching factor at
/// one decision point. Executions are deterministic given their
/// decision prefix, so re-running with an incremented last frame
/// walks the sibling subtree; popping exhausted frames backtracks.
struct DfsChooser {
    frames: Vec<Frame>,
    cursor: usize,
}

struct Frame {
    chosen: usize,
    options: usize,
}

impl DfsChooser {
    fn new() -> Self {
        Self {
            frames: Vec::new(),
            cursor: 0,
        }
    }

    /// Advance to the next unexplored decision prefix; `false` when
    /// the whole tree has been walked.
    fn advance(&mut self) -> bool {
        while let Some(last) = self.frames.last_mut() {
            if last.chosen + 1 < last.options {
                last.chosen += 1;
                self.cursor = 0;
                return true;
            }
            self.frames.pop();
        }
        false
    }
}

impl Chooser for DfsChooser {
    fn choose(&mut self, options: usize) -> Result<usize, String> {
        if self.cursor == self.frames.len() {
            self.frames.push(Frame { chosen: 0, options });
        }
        let frame = &self.frames[self.cursor];
        // Determinism check: the same prefix must reproduce the same
        // branching factor (a mismatch means the model does non-shim
        // communication, which the checker cannot explore soundly).
        if frame.options != options {
            return Err(format!(
                "nondeterministic model: decision {} had {} options, now {} \
                 (model communicates outside the isi_check shims)",
                self.cursor, frame.options, options
            ));
        }
        let pick = frame.chosen;
        self.cursor += 1;
        Ok(pick)
    }
}

/// SplitMix64-driven chooser for randomized exploration.
struct RandomChooser {
    state: u64,
}

impl RandomChooser {
    fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl Chooser for RandomChooser {
    fn choose(&mut self, options: usize) -> Result<usize, String> {
        Ok((self.next() % options as u64) as usize)
    }
}

/// Replays a recorded decision sequence; once the recording is
/// exhausted (the failure fired before the execution finished) it
/// falls back to the first option, which cannot diverge from any
/// recorded state.
struct ReplayChooser {
    seq: Vec<u8>,
    cursor: usize,
}

impl Chooser for ReplayChooser {
    fn choose(&mut self, options: usize) -> Result<usize, String> {
        let Some(&c) = self.seq.get(self.cursor) else {
            return Ok(0);
        };
        self.cursor += 1;
        if (c as usize) >= options {
            return Err(format!(
                "replay diverged: decision {} picks option {c} of {options} \
                 (seed from a different model or config?)",
                self.cursor - 1
            ));
        }
        Ok(c as usize)
    }
}

/// Exhaustively explore every interleaving of `model` within `cfg`'s
/// bounds.
///
/// The model closure is executed once per interleaving; it must build
/// all of its state internally (via [`crate::sync`] /
/// [`crate::vt`]) so each execution starts fresh.
pub fn explore(cfg: Config, model: impl Fn() + Sync) -> Outcome {
    let dfs = Arc::new(StdMutex::new(DfsChooser::new()));
    let mut executions = 0usize;
    loop {
        let chooser: Arc<StdMutex<dyn Chooser>> = Arc::clone(&dfs) as _;
        let result = rt::run_once(&model, chooser, cfg);
        executions += 1;
        if let Some(failure) = result.failure {
            return Outcome::Violation(Violation {
                message: failure.message,
                seed: encode_seed(&failure.schedule),
                executions,
            });
        }
        if executions >= cfg.max_executions {
            return Outcome::BoundExceeded { executions };
        }
        if !dfs.lock().unwrap_or_else(|e| e.into_inner()).advance() {
            return Outcome::Pass { executions };
        }
    }
}

/// Run `executions` random interleavings of `model` (SplitMix64
/// streams derived from `rng_seed`). Violations still carry an exact
/// replay seed. A clean pass here is evidence, not proof.
pub fn explore_random(
    cfg: Config,
    rng_seed: u64,
    executions: usize,
    model: impl Fn() + Sync,
) -> Outcome {
    for i in 0..executions {
        let chooser: Arc<StdMutex<dyn Chooser>> = Arc::new(StdMutex::new(RandomChooser::new(
            rng_seed.wrapping_add(i as u64),
        ))) as _;
        let result = rt::run_once(&model, chooser, cfg);
        if let Some(failure) = result.failure {
            return Outcome::Violation(Violation {
                message: failure.message,
                seed: encode_seed(&failure.schedule),
                executions: i + 1,
            });
        }
    }
    Outcome::Pass { executions }
}

/// Re-run `model` under the exact interleaving `seed` encodes.
/// Returns the failure message if the violation reproduces, `None` if
/// the execution completes cleanly.
pub fn replay(cfg: Config, seed: &str, model: impl Fn() + Sync) -> Option<String> {
    let seq = match decode_seed(seed) {
        Ok(seq) => seq,
        Err(msg) => return Some(msg),
    };
    let chooser: Arc<StdMutex<dyn Chooser>> =
        Arc::new(StdMutex::new(ReplayChooser { seq, cursor: 0 })) as _;
    rt::run_once(&model, chooser, cfg)
        .failure
        .map(|f| f.message)
}

/// Exhaustively check `model`, panicking (for use in `#[test]`s) on a
/// violation — with the replay seed in the message — or on a blown
/// exploration bound. Returns the number of interleavings explored.
pub fn check(name: &str, cfg: Config, model: impl Fn() + Sync) -> usize {
    match explore(cfg, model) {
        Outcome::Pass { executions } => executions,
        Outcome::Violation(v) => panic!(
            "model {name:?} violated after {} interleavings:\n  {}\n  replay seed: {}\n  \
             (isi_check::explore::replay(cfg, {:?}, model) reproduces it)",
            v.executions, v.message, v.seed, v.seed
        ),
        Outcome::BoundExceeded { executions } => panic!(
            "model {name:?} exceeded the exploration bound ({executions} executions): \
             shrink the model or raise Config::max_executions"
        ),
    }
}

//! # isi-check — deterministic concurrency model checking for the
//! serve path
//!
//! A hand-rolled, dependency-free (pure `std`) stateless model
//! checker in the CHESS/loom tradition, plus executable models of the
//! riskiest concurrency protocols in this workspace. The serving
//! layer (`isi_serve`) is a small zoo of hand-written protocols —
//! epoch-swapped publication, Main/Delta merges, conditional condvar
//! notifies, backpressure — whose bugs are exactly the kind that unit
//! tests and even sanitizers only catch when the OS scheduler happens
//! to cooperate. This crate removes the "happens to": it runs a model
//! under **every** bounded interleaving and replays any failure
//! deterministically from a printed seed.
//!
//! ## How it works
//!
//! * [`vt`] spawns *virtual threads*: real OS threads that the
//!   [`rt`]-internal controller gates so exactly one runs at a time.
//! * [`sync`] provides `Mutex`/`RwLock`/`Condvar`/atomic shims whose
//!   every operation is a scheduling point; blocking parks the
//!   virtual thread *in the runtime*, so deadlocks and lost wakeups
//!   are detected, not hung on.
//! * [`explore`] drives the schedule: bounded-exhaustive DFS
//!   ([`explore::explore`]/[`explore::check`]), randomized sampling
//!   ([`explore::explore_random`]), and deterministic replay
//!   ([`explore::replay`]) from the seed printed with every
//!   violation.
//! * [`models`] are the protocol models checked in CI; see its table.
//!
//! ## Writing a model
//!
//! ```
//! use isi_check::explore::{check, Config};
//! use isi_check::sync::Mutex;
//! use isi_check::vt;
//! use std::sync::Arc;
//!
//! let interleavings = check("two increments", Config::default(), || {
//!     let n = Arc::new(Mutex::new(0));
//!     let handles: Vec<_> = (0..2)
//!         .map(|_| {
//!             let n = Arc::clone(&n);
//!             vt::spawn(move || *n.lock() += 1)
//!         })
//!         .collect();
//!     handles.into_iter().for_each(|h| h.join());
//!     assert_eq!(*n.lock(), 2);
//! });
//! assert!(interleavings >= 2);
//! ```
//!
//! Keep models tiny: state spaces grow factorially in operations ×
//! threads, and the value of the checker is *exhaustiveness* within
//! its bounds. Model the order of lock/publish/notify operations —
//! that is what the invariants depend on — and elide everything else.

pub mod explore;
pub mod models;
mod rt;
pub mod sync;
pub mod vt;

pub use explore::{check, explore, explore_random, replay, Config, Outcome, Violation};

//! Virtual threads: the `std::thread` look-alike for model code.
//!
//! [`spawn`] creates a *virtual* thread — backed by an OS thread, but
//! scheduled exclusively by the model checker's [`crate::rt`] runtime,
//! so only one runs at a time and every handoff is a recorded
//! decision. [`JoinHandle::join`] parks the joiner in the runtime
//! (observable as blocking, so a join cycle is reported as a
//! deadlock, not a hang).

use std::sync::Arc;

use crate::rt::{self, Controller};

/// Handle to a spawned virtual thread.
pub struct JoinHandle {
    ctl: Arc<Controller>,
    tid: usize,
}

impl JoinHandle {
    /// Park until the thread finishes.
    ///
    /// Panics in the model (assertion failures) do not propagate
    /// through `join`; they abort the whole execution and are
    /// reported as the violation.
    pub fn join(self) {
        let (ctl, tid) = rt::current();
        debug_assert!(Arc::ptr_eq(&ctl, &self.ctl), "join across executions");
        ctl.join_thread(tid, self.tid);
    }

    /// Whether the thread has finished (a non-blocking probe; *not* a
    /// scheduling point).
    pub fn is_finished(&self) -> bool {
        self.ctl.thread_finished(self.tid)
    }
}

/// Spawn a virtual thread running `f`.
///
/// The spawn itself is a scheduling point: the child may run to
/// completion before the parent's next operation, or not start until
/// after the parent finishes — the explorer tries both.
pub fn spawn<F>(f: F) -> JoinHandle
where
    F: FnOnce() + Send + 'static,
{
    let (ctl, parent) = rt::current();
    let tid = ctl.spawn(parent, Box::new(f));
    JoinHandle { ctl, tid }
}

/// Voluntarily offer the scheduler a handoff (a bare scheduling
/// point). Useful to model a "the OS may preempt here" spot that has
/// no shimmed operation of its own.
pub fn yield_now() {
    let (ctl, tid) = rt::current();
    ctl.sched_point(tid);
}

//! The sequential and interleaved schedulers of the paper's Listing 7.
//!
//! Both schedulers are agnostic to the lookup coroutine: they take a
//! factory closure that turns an input item into a lookup future, and a
//! sink closure that receives `(input_index, result)` pairs. Any index
//! lookup — binary search, CSB+-tree traversal, hash probe — plugs in
//! unchanged, which is the paper's key maintainability claim.
//!
//! [`run_interleaved`] keeps the group's coroutine frames in a fixed-size
//! slab and reuses a completed lookup's slot for the next input. This is
//! the frame-recycling optimization that the paper applied manually
//! because MSVC could not yet elide frame allocations (Section 4,
//! "performance considerations"); in Rust the frames are plain values, so
//! the slab version performs **zero** heap allocations per lookup.
//! [`run_interleaved_boxed`] deliberately boxes every coroutine instead,
//! as an ablation quantifying what frame recycling buys.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

use crate::coro::noop_waker;

/// Counters reported by a scheduler run. All counts are totals over the
/// whole run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Number of lookups completed.
    pub lookups: u64,
    /// Number of `poll` calls (paper: resumptions). For sequential
    /// execution of non-suspending coroutines this equals `lookups`.
    pub resumes: u64,
    /// Number of instruction-stream switches, i.e. resumptions of a
    /// coroutine that had previously suspended.
    pub switches: u64,
    /// Peak number of in-flight (started, not completed) lookups.
    pub peak_in_flight: u64,
}

impl RunStats {
    /// Fold another run's counters into this one: `lookups`, `resumes`
    /// and `switches` are totals and sum; `peak_in_flight` is a maximum
    /// and maxes. Used when a bulk run is split across morsels and
    /// worker threads (see [`crate::par`]) — note the merged
    /// `peak_in_flight` is therefore the peak of any *single* worker,
    /// not the machine-wide total.
    #[inline]
    pub fn merge(&mut self, other: &RunStats) {
        self.lookups += other.lookups;
        self.resumes += other.resumes;
        self.switches += other.switches;
        self.peak_in_flight = self.peak_in_flight.max(other.peak_in_flight);
    }

    /// The counters as stable `(name, value)` pairs, for exporters
    /// (`isi_obs` renders these as engine gauges) — one place owns the
    /// names so metric output cannot drift from the struct.
    pub fn counters(&self) -> [(&'static str, u64); 4] {
        [
            ("lookups", self.lookups),
            ("resumes", self.resumes),
            ("switches", self.switches),
            ("peak_in_flight", self.peak_in_flight),
        ]
    }
}

/// Run the lookups one after another — the paper's `runSequential`.
///
/// Each coroutine is created and driven to completion before the next
/// starts. Lookup coroutines instantiated with `INTERLEAVE = false` never
/// suspend, so this compiles down to a plain loop over ordinary function
/// calls; coroutines that do suspend are still driven correctly (they are
/// resumed immediately), so the scheduler works for either mode.
///
/// `sink` receives `(input_index, result)` in input order.
pub fn run_sequential<I, F, S>(
    inputs: I,
    mut make: impl FnMut(I::Item) -> F,
    mut sink: S,
) -> RunStats
where
    I: IntoIterator,
    F: Future,
    S: FnMut(usize, F::Output),
{
    let waker = noop_waker();
    let mut cx = Context::from_waker(&waker);
    let mut stats = RunStats {
        peak_in_flight: 1,
        ..RunStats::default()
    };
    let mut any = false;
    for (i, item) in inputs.into_iter().enumerate() {
        any = true;
        let mut fut = std::pin::pin!(make(item));
        loop {
            stats.resumes += 1;
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(out) => {
                    stats.lookups += 1;
                    sink(i, out);
                    break;
                }
                Poll::Pending => stats.switches += 1,
            }
        }
    }
    if !any {
        stats.peak_in_flight = 0;
    }
    stats
}

/// A slab slot holding one in-flight lookup: the originating input index
/// and its coroutine frame, stored inline.
struct Slot<F> {
    input_index: usize,
    fut: F,
}

/// A reusable slab of coroutine-frame slots for [`run_interleaved_indexed`].
///
/// [`run_interleaved`] allocates one of these per call; callers that run
/// many batches of the *same* lookup type (e.g. the morsel-parallel
/// drivers in [`crate::par`]) create one slab per worker and reuse it
/// across batches, so steady-state execution performs no heap
/// allocations at all — the slab's buffer is allocated once and its
/// capacity is retained between runs.
pub struct FrameSlab<F> {
    slots: Vec<Option<Slot<F>>>,
}

impl<F> FrameSlab<F> {
    /// An empty slab; the buffer is allocated lazily by the first run.
    pub fn new() -> Self {
        Self { slots: Vec::new() }
    }

    /// Current buffer capacity in slots (0 before the first run).
    pub fn capacity(&self) -> usize {
        self.slots.capacity()
    }
}

impl<F> Default for FrameSlab<F> {
    fn default() -> Self {
        Self::new()
    }
}

/// Core of the interleaved scheduler, factored out so the coroutine
/// frame slab can be reused across calls and so inputs can carry
/// caller-chosen indices (a morsel of a larger batch passes its global
/// positions; see [`crate::par`]).
///
/// Semantics are identical to [`run_interleaved`] except that the sink
/// receives the index paired with each input item rather than a
/// 0-based enumeration.
pub fn run_interleaved_indexed<T, F, S>(
    slab: &mut FrameSlab<F>,
    group_size: usize,
    inputs: impl IntoIterator<Item = (usize, T)>,
    mut make: impl FnMut(T) -> F,
    mut sink: S,
) -> RunStats
where
    F: Future,
    S: FnMut(usize, F::Output),
{
    let group_size = group_size.max(1);
    let waker = noop_waker();
    let mut cx = Context::from_waker(&waker);
    let mut stats = RunStats::default();

    let mut inputs = inputs.into_iter();

    // Reset the slab and guarantee capacity while it holds no futures:
    // any growth happens here, before the first poll.
    let slots = &mut slab.slots;
    slots.clear();
    if slots.capacity() < group_size {
        slots.reserve(group_size);
    }
    for _ in 0..group_size {
        match inputs.next() {
            Some((i, item)) => slots.push(Some(Slot {
                input_index: i,
                fut: make(item),
            })),
            None => break,
        }
    }
    let mut not_done = slots.len();
    stats.peak_in_flight = not_done as u64;

    // Round-robin over the slab until every lookup has completed.
    while not_done > 0 {
        for slot in slots.iter_mut() {
            let Some(s) = slot.as_mut() else { continue };
            // SAFETY: the future lives inside the slab `Vec`, whose
            // capacity was ensured above while the `Vec` was empty and
            // which is never grown afterwards (pushes stop at
            // `group_size <= capacity`), and an occupied slot is only
            // ever overwritten *after* its future completed and was
            // dropped in place. Hence the future never moves between
            // its first poll and its drop, satisfying `Pin`'s contract.
            let fut = unsafe { Pin::new_unchecked(&mut s.fut) };
            stats.resumes += 1;
            match fut.poll(&mut cx) {
                Poll::Pending => {
                    stats.switches += 1;
                }
                Poll::Ready(out) => {
                    stats.lookups += 1;
                    sink(s.input_index, out);
                    // Frame recycling: start the next lookup in this slot.
                    match inputs.next() {
                        Some((i, item)) => {
                            *slot = Some(Slot {
                                input_index: i,
                                fut: make(item),
                            });
                        }
                        None => {
                            *slot = None;
                            not_done -= 1;
                        }
                    }
                }
            }
        }
    }
    stats
}

/// Run the lookups `group_size` at a time, switching streams at every
/// suspension — the paper's `runInterleaved` (Listing 7).
///
/// A slab of `group_size` slots holds the coroutine frames inline. The
/// scheduler cycles round-robin over the slots, resuming each unfinished
/// lookup; when a lookup completes, its result is emitted and its slot is
/// immediately refilled with the next input (frame recycling). The run
/// ends when all inputs have completed.
///
/// Results are emitted in completion order; the sink receives the input
/// index alongside each result so callers can scatter into an output
/// array (as the paper's pseudocode does with `store result to results`).
///
/// `group_size == 0` is treated as `1`. A `group_size` of 1 degenerates to
/// sequential execution plus switch overhead — the paper notes this
/// configuration "makes no sense" for performance but it is valid.
pub fn run_interleaved<I, F, S>(
    group_size: usize,
    inputs: I,
    make: impl FnMut(I::Item) -> F,
    sink: S,
) -> RunStats
where
    I: IntoIterator,
    F: Future,
    S: FnMut(usize, F::Output),
{
    let mut slab = FrameSlab::new();
    run_interleaved_indexed(
        &mut slab,
        group_size,
        inputs.into_iter().enumerate(),
        make,
        sink,
    )
}

/// Ablation variant of [`run_interleaved`] that heap-allocates (boxes)
/// every coroutine frame instead of recycling slab slots.
///
/// This reproduces the behaviour of a compiler that cannot elide or reuse
/// coroutine frame allocations — the situation the paper faced with MSVC
/// v14.1 — and is benchmarked against the slab scheduler to quantify the
/// cost (see `crates/bench/benches/binary_search.rs`).
pub fn run_interleaved_boxed<I, F, S>(
    group_size: usize,
    inputs: I,
    mut make: impl FnMut(I::Item) -> F,
    mut sink: S,
) -> RunStats
where
    I: IntoIterator,
    F: Future,
    S: FnMut(usize, F::Output),
{
    let group_size = group_size.max(1);
    let waker = noop_waker();
    let mut cx = Context::from_waker(&waker);
    let mut stats = RunStats::default();

    let mut inputs = inputs.into_iter().enumerate();
    let mut slots: Vec<Option<(usize, Pin<Box<F>>)>> = Vec::with_capacity(group_size);
    for _ in 0..group_size {
        match inputs.next() {
            Some((i, item)) => slots.push(Some((i, Box::pin(make(item))))),
            None => break,
        }
    }
    let mut not_done = slots.len();
    stats.peak_in_flight = not_done as u64;

    while not_done > 0 {
        for slot in slots.iter_mut() {
            let Some((idx, fut)) = slot.as_mut() else {
                continue;
            };
            stats.resumes += 1;
            match fut.as_mut().poll(&mut cx) {
                Poll::Pending => stats.switches += 1,
                Poll::Ready(out) => {
                    stats.lookups += 1;
                    sink(*idx, out);
                    match inputs.next() {
                        // A fresh allocation per lookup — deliberately.
                        Some((i, item)) => *slot = Some((i, Box::pin(make(item)))),
                        None => {
                            *slot = None;
                            not_done -= 1;
                        }
                    }
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coro::suspend;

    /// A lookup that suspends `value % 4` times and returns `value * 2`.
    async fn lookup(value: u32) -> u32 {
        for _ in 0..(value % 4) {
            suspend().await;
        }
        value * 2
    }

    fn collect_seq(values: &[u32]) -> Vec<u32> {
        let mut out = vec![0; values.len()];
        run_sequential(values.iter().copied(), lookup, |i, r| out[i] = r);
        out
    }

    fn collect_inter(group: usize, values: &[u32]) -> Vec<u32> {
        let mut out = vec![0; values.len()];
        run_interleaved(group, values.iter().copied(), lookup, |i, r| out[i] = r);
        out
    }

    #[test]
    fn sequential_matches_direct_computation() {
        let values: Vec<u32> = (0..100).collect();
        let expect: Vec<u32> = values.iter().map(|v| v * 2).collect();
        assert_eq!(collect_seq(&values), expect);
    }

    #[test]
    fn interleaved_matches_sequential_for_all_group_sizes() {
        let values: Vec<u32> = (0..57).rev().collect();
        let expect = collect_seq(&values);
        for group in [1, 2, 3, 5, 6, 10, 57, 100] {
            assert_eq!(collect_inter(group, &values), expect, "group={group}");
        }
    }

    #[test]
    fn boxed_scheduler_agrees_with_slab_scheduler() {
        let values: Vec<u32> = (0..41).collect();
        let expect = collect_seq(&values);
        for group in [1, 4, 8] {
            let mut out = vec![0; values.len()];
            run_interleaved_boxed(group, values.iter().copied(), lookup, |i, r| out[i] = r);
            assert_eq!(out, expect, "group={group}");
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let stats = run_sequential(std::iter::empty::<u32>(), lookup, |_, _| panic!());
        assert_eq!(stats.lookups, 0);
        assert_eq!(stats.peak_in_flight, 0);
        let stats = run_interleaved(8, std::iter::empty::<u32>(), lookup, |_, _| panic!());
        assert_eq!(stats.lookups, 0);
    }

    #[test]
    fn group_larger_than_input() {
        let values = [3u32, 1];
        let mut out = vec![0; 2];
        let stats = run_interleaved(64, values.iter().copied(), lookup, |i, r| out[i] = r);
        assert_eq!(out, [6, 2]);
        assert_eq!(stats.peak_in_flight, 2);
    }

    #[test]
    fn group_zero_is_clamped_to_one() {
        let values = [2u32, 5, 9];
        let mut out = vec![0; 3];
        run_interleaved(0, values.iter().copied(), lookup, |i, r| out[i] = r);
        assert_eq!(out, [4, 10, 18]);
    }

    #[test]
    fn stats_count_switches_and_lookups() {
        // value % 4 suspensions each: 0,1,2,3 -> 6 switches total.
        let values = [0u32, 1, 2, 3];
        let stats = run_sequential(values.iter().copied(), lookup, |_, _| {});
        assert_eq!(stats.lookups, 4);
        assert_eq!(stats.switches, 6);
        assert_eq!(stats.resumes, 4 + 6);

        let stats = run_interleaved(2, values.iter().copied(), lookup, |_, _| {});
        assert_eq!(stats.lookups, 4);
        assert_eq!(stats.switches, 6);
        assert_eq!(stats.peak_in_flight, 2);
    }

    #[test]
    fn non_suspending_coroutines_complete_in_one_round() {
        async fn immediate(v: u32) -> u32 {
            v + 1
        }
        let values: Vec<u32> = (0..10).collect();
        let mut out = vec![0; 10];
        let stats = run_interleaved(4, values.iter().copied(), immediate, |i, r| out[i] = r);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
        assert_eq!(stats.switches, 0);
        assert_eq!(stats.resumes, 10);
    }

    #[test]
    fn completion_order_can_differ_but_indices_are_correct() {
        // Lookup 0 suspends 3 times, lookup 1 none: with group 2, lookup 1
        // completes first. The sink must still see correct indices.
        async fn l(v: u32) -> u32 {
            for _ in 0..v {
                suspend().await;
            }
            v
        }
        let mut order = Vec::new();
        run_interleaved(2, [3u32, 0].iter().copied(), l, |i, r| order.push((i, r)));
        assert_eq!(order, vec![(1, 0), (0, 3)]);
    }

    #[test]
    fn slab_is_reusable_across_runs_without_regrowing() {
        let values: Vec<u32> = (0..40).collect();
        let expect = collect_seq(&values);
        let mut slab = FrameSlab::new();
        for round in 0..3 {
            let mut out = vec![0; values.len()];
            run_interleaved_indexed(
                &mut slab,
                8,
                values.iter().copied().enumerate(),
                lookup,
                |i, r| out[i] = r,
            );
            assert_eq!(out, expect, "round={round}");
        }
        // Capacity settled after the first run and never regrew.
        assert_eq!(slab.capacity(), 8);
        // A smaller group reuses the same buffer.
        let mut out = vec![0; values.len()];
        run_interleaved_indexed(
            &mut slab,
            3,
            values.iter().copied().enumerate(),
            lookup,
            |i, r| out[i] = r,
        );
        assert_eq!(out, expect);
        assert_eq!(slab.capacity(), 8);
    }

    #[test]
    fn indexed_runner_passes_caller_indices_through() {
        // A morsel covering global positions 100..104.
        let values = [3u32, 1, 0, 2];
        let mut slab = FrameSlab::new();
        let mut got = Vec::new();
        run_interleaved_indexed(
            &mut slab,
            2,
            values
                .iter()
                .copied()
                .enumerate()
                .map(|(i, v)| (100 + i, v)),
            lookup,
            |i, r| got.push((i, r)),
        );
        got.sort_unstable();
        assert_eq!(got, vec![(100, 6), (101, 2), (102, 0), (103, 4)]);
    }

    #[test]
    fn merge_sums_totals_and_maxes_peak() {
        let mut a = RunStats {
            lookups: 10,
            resumes: 30,
            switches: 20,
            peak_in_flight: 6,
        };
        let b = RunStats {
            lookups: 7,
            resumes: 9,
            switches: 2,
            peak_in_flight: 8,
        };
        a.merge(&b);
        assert_eq!(
            a,
            RunStats {
                lookups: 17,
                resumes: 39,
                switches: 22,
                peak_in_flight: 8,
            }
        );
        // Merging the empty stats is the identity.
        let before = a;
        a.merge(&RunStats::default());
        assert_eq!(a, before);
    }

    #[test]
    fn deeply_suspending_lookup_terminates() {
        async fn deep(_: u32) -> u32 {
            // Shrunk under Miri (interpreted): depth, not count, matters.
            for _ in 0..if cfg!(miri) { 200 } else { 10_000 } {
                suspend().await;
            }
            7
        }
        let mut out = 0;
        run_interleaved(3, [0u32].iter().copied(), deep, |_, r| out = r);
        assert_eq!(out, 7);
    }
}

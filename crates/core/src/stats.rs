//! Lightweight cycle/throughput measurement helpers shared by the
//! benchmark harnesses.
//!
//! The paper reports *cycles per search* (Figures 3-7). We measure
//! wall-clock time with `std::time::Instant` and convert to cycles using a
//! calibrated estimate of the TSC frequency, so harness output is in the
//! paper's units. (Reading the TSC directly via `_rdtsc` is also supported
//! on x86-64 and is what the calibration uses.)

use std::time::{Duration, Instant};

/// Read the processor timestamp counter, or 0 on non-x86-64 targets.
#[inline]
pub fn rdtsc() -> u64 {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        core::arch::x86_64::_rdtsc()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        0
    }
}

/// Estimate the TSC frequency in cycles per nanosecond by spinning for
/// `calib` wall time. Returns `None` where no TSC is available.
pub fn calibrate_tsc(calib: Duration) -> Option<f64> {
    let t0 = Instant::now();
    let c0 = rdtsc();
    if c0 == 0 {
        return None;
    }
    while t0.elapsed() < calib {
        std::hint::spin_loop();
    }
    let cycles = rdtsc().wrapping_sub(c0);
    let nanos = t0.elapsed().as_nanos() as f64;
    if nanos <= 0.0 || cycles == 0 {
        return None;
    }
    Some(cycles as f64 / nanos)
}

/// A stopwatch that reports both wall time and (where available) cycles.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
    start_cycles: u64,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
            start_cycles: rdtsc(),
        }
    }

    /// Elapsed wall time.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed TSC cycles (0 on targets without a TSC).
    pub fn elapsed_cycles(&self) -> u64 {
        rdtsc().wrapping_sub(self.start_cycles)
    }
}

/// Run `f` `reps` times and return the **minimum** per-rep duration.
///
/// The minimum is the standard robust estimator for microbenchmarks on a
/// noisy machine: external interference only ever adds time.
pub fn time_min<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    assert!(reps > 0, "need at least one repetition");
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let sw = Stopwatch::start();
        f();
        best = best.min(sw.elapsed());
    }
    best
}

/// Run `f` `reps` times and return the average per-rep duration, matching
/// the paper's "average runtime of 100 executions" methodology (§5.3).
pub fn time_avg<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    assert!(reps > 0, "need at least one repetition");
    let sw = Stopwatch::start();
    for _ in 0..reps {
        f();
    }
    sw.elapsed() / reps as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_something() {
        let sw = Stopwatch::start();
        let mut x = 0u64;
        for i in 0..10_000u64 {
            x = x.wrapping_add(std::hint::black_box(i));
        }
        std::hint::black_box(x);
        assert!(sw.elapsed() > Duration::ZERO);
        #[cfg(target_arch = "x86_64")]
        assert!(sw.elapsed_cycles() > 0);
    }

    #[test]
    fn time_min_le_time_avg() {
        let work = || {
            let mut x = 0u64;
            for i in 0..1000u64 {
                x = x.wrapping_add(std::hint::black_box(i));
            }
            std::hint::black_box(x);
        };
        let mn = time_min(5, work);
        let av = time_avg(5, work);
        // Minimum of reps cannot exceed ~the average by more than noise;
        // allow generous slack because the clock granularity is coarse.
        assert!(mn <= av * 3 + Duration::from_micros(50));
    }

    #[test]
    #[cfg(target_arch = "x86_64")]
    fn tsc_calibration_yields_plausible_frequency() {
        let ghz = calibrate_tsc(Duration::from_millis(10)).expect("x86-64 has a TSC");
        // Any real machine is between 0.5 and 6 GHz.
        assert!(ghz > 0.5 && ghz < 6.0, "implausible TSC frequency {ghz}");
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn time_min_rejects_zero_reps() {
        time_min(0, || {});
    }
}

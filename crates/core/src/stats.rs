//! Lightweight cycle/throughput measurement helpers shared by the
//! benchmark harnesses.
//!
//! The paper reports *cycles per search* (Figures 3-7). We measure
//! wall-clock time with `std::time::Instant` and convert to cycles using a
//! calibrated estimate of the TSC frequency, so harness output is in the
//! paper's units. (Reading the TSC directly via `_rdtsc` is also supported
//! on x86-64 and is what the calibration uses.)

use std::time::{Duration, Instant};

/// Read the processor timestamp counter, or 0 on non-x86-64 targets.
#[inline]
pub fn rdtsc() -> u64 {
    // SAFETY: RDTSC reads the timestamp counter register; it touches
    // no memory and has no preconditions. (Gated off under Miri, which
    // does not implement the intrinsic — callers already handle the
    // 0 = "no TSC" case for non-x86-64 targets.)
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    unsafe {
        core::arch::x86_64::_rdtsc()
    }
    #[cfg(not(all(target_arch = "x86_64", not(miri))))]
    {
        0
    }
}

/// Estimate the TSC frequency in cycles per nanosecond by spinning for
/// `calib` wall time. Returns `None` where no TSC is available.
pub fn calibrate_tsc(calib: Duration) -> Option<f64> {
    let t0 = Instant::now();
    let c0 = rdtsc();
    if c0 == 0 {
        return None;
    }
    while t0.elapsed() < calib {
        std::hint::spin_loop();
    }
    let cycles = rdtsc().wrapping_sub(c0);
    let nanos = t0.elapsed().as_nanos() as f64;
    if nanos <= 0.0 || cycles == 0 {
        return None;
    }
    Some(cycles as f64 / nanos)
}

/// A stopwatch that reports both wall time and (where available) cycles.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
    start_cycles: u64,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
            start_cycles: rdtsc(),
        }
    }

    /// Elapsed wall time.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed TSC cycles (0 on targets without a TSC).
    pub fn elapsed_cycles(&self) -> u64 {
        rdtsc().wrapping_sub(self.start_cycles)
    }
}

/// Run `f` `reps` times and return the **minimum** per-rep duration.
///
/// The minimum is the standard robust estimator for microbenchmarks on a
/// noisy machine: external interference only ever adds time.
pub fn time_min<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    assert!(reps > 0, "need at least one repetition");
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let sw = Stopwatch::start();
        f();
        best = best.min(sw.elapsed());
    }
    best
}

/// Run `f` `reps` times and return the average per-rep duration, matching
/// the paper's "average runtime of 100 executions" methodology (§5.3).
pub fn time_avg<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    assert!(reps > 0, "need at least one repetition");
    let sw = Stopwatch::start();
    for _ in 0..reps {
        f();
    }
    sw.elapsed() / reps as u32
}

/// Number of log₂ buckets in a [`LatencyHist`]: bucket 0 holds the
/// value 0, bucket `i` (1..=64) holds values in `[2^(i-1), 2^i)`.
pub const HIST_BUCKETS: usize = 65;

/// A log-bucketed latency histogram (nanosecond samples).
///
/// Power-of-two bucket boundaries give ≤ 2× relative quantile error
/// across the full `u64` range in a fixed 65-slot array — no
/// allocation on the record path, O(1) merge, and exact `min`/`max`/
/// `sum` on the side so means are not bucketed. This is the metrics
/// backbone of the serving layer (`isi_serve`), but has no dependency
/// on it: benches record into it directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHist {
    counts: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHist {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Reassemble a histogram from externally maintained state: bucket
    /// counts plus the exact side stats. The total count is derived
    /// from the buckets, which is what keeps a *weakly consistent*
    /// reader (e.g. `isi_obs` snapshotting per-bucket atomics while
    /// writers race) internally coherent — quantile ranks are computed
    /// against exactly the bucket mass that was read. `min`/`max` use
    /// the empty-histogram sentinels (`u64::MAX` / `0`) when nothing
    /// was recorded.
    pub fn from_raw(counts: [u64; HIST_BUCKETS], sum: u64, min: u64, max: u64) -> Self {
        let count = counts.iter().sum();
        Self {
            counts,
            count,
            sum,
            min: if count == 0 { u64::MAX } else { min },
            max,
        }
    }

    /// The per-bucket counts (see [`Self::bucket_of`] for the layout).
    pub fn counts(&self) -> &[u64; HIST_BUCKETS] {
        &self.counts
    }

    /// Sum of all recorded samples (saturating; exact, not bucketed).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The histogram of samples recorded *since* `earlier` was
    /// captured, assuming `earlier` is a previous snapshot of this
    /// histogram's lineage (bucket counts and sum grow monotonically).
    /// Bucket counts and the sum subtract (saturating, so a weakly
    /// consistent pair degrades to zeros instead of wrapping); `min`/
    /// `max` cannot be un-merged, so the delta keeps the cumulative
    /// values — quantiles of the delta stay clamped to the lifetime
    /// envelope. An empty delta reports as empty.
    pub fn saturating_delta(&self, earlier: &Self) -> Self {
        let mut counts = [0u64; HIST_BUCKETS];
        for (d, (a, b)) in counts
            .iter_mut()
            .zip(self.counts.iter().zip(&earlier.counts))
        {
            *d = a.saturating_sub(*b);
        }
        Self::from_raw(
            counts,
            self.sum.saturating_sub(earlier.sum),
            self.min,
            self.max,
        )
    }

    /// Bucket index for a sample: 0 for 0, else `64 - leading_zeros`
    /// (so bucket `i` spans `[2^(i-1), 2^i)`).
    #[inline]
    pub fn bucket_of(sample: u64) -> usize {
        (64 - sample.leading_zeros()) as usize
    }

    /// Inclusive upper bound of a bucket (`0` for bucket 0, else
    /// `2^i - 1`, saturating at `u64::MAX`).
    #[inline]
    pub fn bucket_upper(bucket: usize) -> u64 {
        match bucket {
            0 => 0,
            64.. => u64::MAX,
            i => (1u64 << i) - 1,
        }
    }

    /// Record one sample (nanoseconds).
    #[inline]
    pub fn record(&mut self, sample: u64) {
        self.counts[Self::bucket_of(sample)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(sample);
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHist) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples, exact (from the running sum).
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) as the inclusive upper bound of
    /// the first bucket whose cumulative count reaches `ceil(q·n)`,
    /// clamped to the exact observed `[min, max]`; `q = 0` returns the
    /// exact minimum. Returns 0 when empty.
    ///
    /// # Panics
    /// Panics if `q` is not within `0.0..=1.0`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of [0, 1]");
        if self.is_empty() {
            return 0;
        }
        if q == 0.0 {
            return self.min;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (see [`Self::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile (see [`Self::quantile`]).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (see [`Self::quantile`]).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_something() {
        let sw = Stopwatch::start();
        let mut x = 0u64;
        for i in 0..10_000u64 {
            x = x.wrapping_add(std::hint::black_box(i));
        }
        std::hint::black_box(x);
        assert!(sw.elapsed() > Duration::ZERO);
        #[cfg(target_arch = "x86_64")]
        assert!(sw.elapsed_cycles() > 0);
    }

    #[test]
    fn time_min_le_time_avg() {
        let work = || {
            let mut x = 0u64;
            for i in 0..1000u64 {
                x = x.wrapping_add(std::hint::black_box(i));
            }
            std::hint::black_box(x);
        };
        let mn = time_min(5, work);
        let av = time_avg(5, work);
        // Minimum of reps cannot exceed ~the average by more than noise;
        // allow generous slack because the clock granularity is coarse.
        assert!(mn <= av * 3 + Duration::from_micros(50));
    }

    #[test]
    #[cfg(target_arch = "x86_64")]
    fn tsc_calibration_yields_plausible_frequency() {
        let ghz = calibrate_tsc(Duration::from_millis(10)).expect("x86-64 has a TSC");
        // Any real machine is between 0.5 and 6 GHz.
        assert!(ghz > 0.5 && ghz < 6.0, "implausible TSC frequency {ghz}");
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn time_min_rejects_zero_reps() {
        time_min(0, || {});
    }

    #[test]
    fn hist_bucket_boundaries() {
        // Bucket 0: only the value 0. Bucket i: [2^(i-1), 2^i).
        assert_eq!(LatencyHist::bucket_of(0), 0);
        assert_eq!(LatencyHist::bucket_of(1), 1);
        assert_eq!(LatencyHist::bucket_of(2), 2);
        assert_eq!(LatencyHist::bucket_of(3), 2);
        assert_eq!(LatencyHist::bucket_of(4), 3);
        assert_eq!(LatencyHist::bucket_of(1023), 10);
        assert_eq!(LatencyHist::bucket_of(1024), 11);
        assert_eq!(LatencyHist::bucket_of(u64::MAX), 64);
        for i in 1..64usize {
            // Each bucket's upper bound lands back in the same bucket,
            // and upper+1 in the next.
            let hi = LatencyHist::bucket_upper(i);
            assert_eq!(LatencyHist::bucket_of(hi), i, "bucket {i}");
            assert_eq!(LatencyHist::bucket_of(hi + 1), i + 1, "bucket {i}");
        }
        assert_eq!(LatencyHist::bucket_upper(0), 0);
        assert_eq!(LatencyHist::bucket_upper(64), u64::MAX);
    }

    #[test]
    fn hist_records_exact_side_stats() {
        let mut h = LatencyHist::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        for v in [100u64, 200, 300, 400] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 100);
        assert_eq!(h.max(), 400);
        assert_eq!(h.mean(), 250.0);
    }

    #[test]
    fn hist_quantiles_respect_bucket_semantics() {
        let mut h = LatencyHist::new();
        // 90 samples in bucket [64, 128), 10 in bucket [1024, 2048).
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(1500);
        }
        // p50 and p90 fall in the low bucket: upper bound 127.
        assert_eq!(h.p50(), 127);
        assert_eq!(h.quantile(0.90), 127);
        // p95/p99 fall in the high bucket, clamped to observed max.
        assert_eq!(h.p95(), 1500);
        assert_eq!(h.p99(), 1500);
        // Extremes clamp to exact observed min/max.
        assert_eq!(h.quantile(0.0), 100);
        assert_eq!(h.quantile(1.0), 1500);
    }

    #[test]
    fn hist_single_sample_quantiles_are_exact() {
        let mut h = LatencyHist::new();
        h.record(777);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 777, "q={q}");
        }
    }

    #[test]
    fn hist_merge_equals_combined_recording() {
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        let mut combined = LatencyHist::new();
        for v in [1u64, 5, 9, 1000] {
            a.record(v);
            combined.record(v);
        }
        for v in [0u64, 70_000, 3] {
            b.record(v);
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a, combined);
        // Merging an empty histogram is the identity.
        a.merge(&LatencyHist::new());
        assert_eq!(a, combined);
    }

    #[test]
    #[should_panic(expected = "out of [0, 1]")]
    fn hist_rejects_out_of_range_quantile() {
        LatencyHist::new().quantile(1.5);
    }

    #[test]
    fn hist_from_raw_roundtrips() {
        let mut h = LatencyHist::new();
        for v in [0u64, 3, 100, 100, 70_000] {
            h.record(v);
        }
        let rebuilt = LatencyHist::from_raw(*h.counts(), h.sum(), h.min(), h.max());
        assert_eq!(rebuilt, h);
        // Empty raw state reports as a pristine empty histogram.
        let empty = LatencyHist::from_raw([0; HIST_BUCKETS], 0, 0, 0);
        assert_eq!(empty, LatencyHist::new());
        assert!(empty.is_empty());
    }

    #[test]
    fn hist_saturating_delta_recovers_the_increment() {
        let mut early = LatencyHist::new();
        for v in [10u64, 20, 30] {
            early.record(v);
        }
        let mut late = early.clone();
        for v in [100u64, 5000] {
            late.record(v);
        }
        let delta = late.saturating_delta(&early);
        assert_eq!(delta.count(), 2);
        assert_eq!(delta.sum(), 5100);
        // min/max keep the lifetime envelope (cannot be un-merged).
        assert_eq!(delta.max(), 5000);
        // Self-delta is empty; delta against a *later* snapshot
        // saturates to empty instead of wrapping.
        assert!(late.saturating_delta(&late).is_empty());
        assert!(early.saturating_delta(&late).is_empty());
    }
}

//! Coroutine primitives: the yield-once [`suspend`] future, a no-op waker,
//! and [`CoroHandle`] — the resume / is-done / get-result handle API of the
//! paper's Section 4.
//!
//! Rust `async fn` is a stackless coroutine in exactly the sense of the
//! C++ coroutines TS the paper builds on: the compiler splits the body at
//! suspension points and stores live variables in a state-machine frame.
//! Two differences matter for interleaving:
//!
//! * Rust frames are plain values (no mandatory heap allocation), so the
//!   scheduler can keep a group of frames in a fixed slab — this is the
//!   frame-recycling optimization the paper had to apply by hand.
//! * Resumption is `Future::poll`. Interleaving does not need a real event
//!   source, so we poll with a [no-op waker](noop_waker) and treat
//!   `Poll::Pending` as "suspended, resume me on the next round-robin
//!   pass".

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};

/// A future that suspends exactly once, then completes.
///
/// This is the Rust spelling of the paper's `co_await suspend_always()`
/// (Listing 5, line 11): the coroutine yields control to the scheduler
/// right after issuing a prefetch, and continues past the `.await` when
/// resumed.
#[derive(Debug, Default)]
pub struct Suspend {
    yielded: bool,
}

impl Future for Suspend {
    type Output = ();

    #[inline(always)]
    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            Poll::Pending
        }
    }
}

/// Suspend the current coroutine once: `suspend().await`.
#[inline(always)]
pub fn suspend() -> Suspend {
    Suspend::default()
}

const NOOP_VTABLE: RawWakerVTable = RawWakerVTable::new(
    |_| RawWaker::new(std::ptr::null(), &NOOP_VTABLE),
    |_| {},
    |_| {},
    |_| {},
);

/// A waker that does nothing.
///
/// Interleaved execution is cooperative time-sharing, not event-driven
/// I/O: a suspended lookup is always ready to be resumed, so wake-ups
/// carry no information and the scheduler simply polls round-robin.
#[inline]
pub fn noop_waker() -> Waker {
    // SAFETY: all vtable functions are no-ops (or clone the same no-op
    // waker), and the data pointer is never dereferenced, so every
    // RawWaker contract holds trivially.
    unsafe { Waker::from_raw(RawWaker::new(std::ptr::null(), &NOOP_VTABLE)) }
}

/// Poll `fut` once with a no-op waker. Returns `Poll::Ready(output)` if it
/// completed, `Poll::Pending` if it suspended.
#[inline(always)]
pub fn resume<F: Future>(fut: Pin<&mut F>) -> Poll<F::Output> {
    let waker = noop_waker();
    let mut cx = Context::from_waker(&waker);
    fut.poll(&mut cx)
}

/// Drive a future to completion on the current thread, resuming through
/// every suspension. The synchronous analogue of calling a coroutine with
/// `interleave = false` and looping on `resume()`.
#[inline]
pub fn run_to_completion<F: Future>(fut: F) -> F::Output {
    let mut fut = std::pin::pin!(fut);
    loop {
        if let Poll::Ready(out) = resume(fut.as_mut()) {
            return out;
        }
    }
}

/// An owning coroutine handle with the paper's API: `resume()`,
/// `is_done()`, `get_result()` (Section 4, "Binary search as a
/// coroutine").
///
/// This is the ergonomic, heap-pinned handle used in examples and tests.
/// The hot-path schedulers in [`crate::sched`] avoid the allocation by
/// storing frames inline in a slab; `CoroHandle` exists to demonstrate the
/// one-lookup-at-a-time API the paper describes.
pub struct CoroHandle<F: Future> {
    fut: Pin<Box<F>>,
    result: Option<F::Output>,
}

impl<F: Future> CoroHandle<F> {
    /// Create a handle for a not-yet-started coroutine.
    pub fn new(fut: F) -> Self {
        Self {
            fut: Box::pin(fut),
            result: None,
        }
    }

    /// Resume the coroutine (or start it, on first call). Returns `true`
    /// if the coroutine completed during this resumption.
    ///
    /// Resuming a completed coroutine is a no-op returning `true` (unlike
    /// C++, where it is undefined behaviour — one fewer footgun in the
    /// Rust spelling).
    pub fn resume(&mut self) -> bool {
        if self.result.is_some() {
            return true;
        }
        match resume(self.fut.as_mut()) {
            Poll::Ready(out) => {
                self.result = Some(out);
                true
            }
            Poll::Pending => false,
        }
    }

    /// True if the coroutine has run to completion.
    pub fn is_done(&self) -> bool {
        self.result.is_some()
    }

    /// Take the coroutine result.
    ///
    /// # Panics
    /// Panics if the coroutine has not completed — mirrors the paper's
    /// contract that `getResult` is only called after `isDone()`.
    pub fn get_result(&mut self) -> F::Output {
        self.result
            .take()
            .expect("get_result() called before the coroutine completed")
    }

    /// Drive this coroutine to completion and return its result.
    pub fn finish(mut self) -> F::Output {
        while !self.resume() {}
        self.get_result()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    async fn yields_n(n: u32) -> u32 {
        let mut sum = 0;
        for i in 0..n {
            sum += i;
            suspend().await;
        }
        sum
    }

    #[test]
    fn suspend_yields_exactly_once() {
        let mut s = std::pin::pin!(suspend());
        assert_eq!(resume(s.as_mut()), Poll::Pending);
        assert_eq!(resume(s.as_mut()), Poll::Ready(()));
        // Further polls stay ready (future is fused).
        assert_eq!(resume(s.as_mut()), Poll::Ready(()));
    }

    #[test]
    fn run_to_completion_resumes_through_all_suspensions() {
        assert_eq!(run_to_completion(yields_n(0)), 0);
        assert_eq!(run_to_completion(yields_n(5)), 1 + 2 + 3 + 4);
    }

    #[test]
    fn handle_api_matches_paper_contract() {
        let mut h = CoroHandle::new(yields_n(3));
        assert!(!h.is_done());
        // Three suspensions -> three `false` resumes, then completion.
        assert!(!h.resume());
        assert!(!h.resume());
        assert!(!h.resume());
        assert!(h.resume());
        assert!(h.is_done());
        assert_eq!(h.get_result(), 3);
    }

    #[test]
    fn handle_resume_after_done_is_noop() {
        let mut h = CoroHandle::new(yields_n(0));
        assert!(h.resume());
        assert!(h.resume()); // safe, unlike C++
        assert_eq!(h.get_result(), 0);
    }

    #[test]
    #[should_panic(expected = "before the coroutine completed")]
    fn get_result_before_done_panics() {
        let mut h = CoroHandle::new(yields_n(2));
        let _ = h.get_result();
    }

    #[test]
    fn finish_returns_result() {
        assert_eq!(CoroHandle::new(yields_n(4)).finish(), 6);
    }

    #[test]
    fn noop_waker_clone_and_wake_do_nothing() {
        let w = noop_waker();
        let w2 = w.clone();
        w.wake_by_ref();
        w2.wake();
    }

    #[test]
    fn non_suspending_coroutine_completes_on_first_poll() {
        // Paper Section 4: with interleave=false the coroutine behaves
        // like the original function — a single resume completes it.
        async fn immediate() -> u32 {
            42
        }
        let mut h = CoroHandle::new(immediate());
        assert!(h.resume());
        assert_eq!(h.get_result(), 42);
    }
}

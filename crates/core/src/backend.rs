//! [`ShardBackend`]: the contract between the serving layer and the
//! index structures that can serve one shard's immutable main.
//!
//! The serving layer (`isi-serve`) partitions a `u64 → u64` key/value
//! store into shards whose read-optimized **main** index is one of the
//! workspace's interleaved-friendly structures — a sorted column, a
//! CSB+-tree, or a chained hash table. Historically the store matched
//! on a private enum at every call site; this trait replaces that
//! scattered dispatch with one object-safe surface, implemented next
//! to each index (`isi_search::shard`, `isi_csb::shard`,
//! `isi_hash::shard`):
//!
//! * [`probe_batch`](ShardBackend::probe_batch) — the hot path: drive
//!   a dense key batch through the index's morsel-parallel interleaved
//!   bulk driver (`bulk_rank_coro_par` / `bulk_lookup_par` /
//!   `bulk_probe_par`).
//! * [`scan_range`](ShardBackend::scan_range) — ordered range read;
//!   natural for the sorted structures, sort-on-demand for the hash
//!   table.
//! * [`rebuild`](ShardBackend::rebuild) — build a replacement backend
//!   of the same kind from merged pairs; the maintenance layer calls
//!   this off the serve path and publishes the result through an
//!   [`EpochCell`](crate::epoch::EpochCell) swap.
//!
//! A backend is **immutable once built**: all methods take `&self`,
//! concurrent readers need no synchronization, and mutation happens
//! only by building a successor via `rebuild`. That immutability is
//! what lets the serving layer snapshot a backend with a plain `Arc`
//! clone and let in-flight batches finish on the version they started
//! with while a merge publishes the next one.

use std::sync::Arc;

use crate::par::ParConfig;
use crate::policy::Interleave;
use crate::sched::RunStats;

/// One shard's immutable main index: batched point probes through the
/// interleaved engine, ordered range scans, and merge-time rebuilds.
///
/// See the [module docs](self) for the immutability contract.
pub trait ShardBackend: Send + Sync {
    /// Number of pairs stored.
    fn len(&self) -> usize;

    /// True if no pairs are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sequential point lookup — the oracle the batched path must
    /// agree with.
    fn get(&self, key: u64) -> Option<u64>;

    /// Look up `keys[i]` into `out[i]` through the morsel-parallel
    /// interleaved engine, returning the engine's merged [`RunStats`].
    ///
    /// `scratch` is caller-owned scratch space (the sorted backend
    /// stores ranks there); reusing one vector across calls keeps the
    /// steady-state dispatch path allocation-free.
    ///
    /// # Panics
    /// Panics if `out.len() != keys.len()`.
    fn probe_batch(
        &self,
        keys: &[u64],
        policy: Interleave,
        par: ParConfig,
        scratch: &mut Vec<u32>,
        out: &mut [Option<u64>],
    ) -> RunStats;

    /// Append every pair with `lo <= key <= hi` to `out`, in ascending
    /// key order. An inverted range (`lo > hi`) appends nothing.
    fn scan_range(&self, lo: u64, hi: u64, out: &mut Vec<(u64, u64)>);

    /// Build a replacement backend of the same kind from
    /// strictly-sorted, duplicate-free pairs (a delta merge's output).
    fn rebuild(&self, pairs: &[(u64, u64)]) -> Arc<dyn ShardBackend>;

    /// Every pair in ascending key order (merge input). The default
    /// implementation is a full-range scan.
    fn pairs(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.len());
        self.scan_range(0, u64::MAX, &mut out);
        out
    }

    /// Estimated fraction of `sample`'s probe path that is already
    /// cache-resident, in `[0, 1]` — the adaptive dispatcher blends
    /// this with the observed delta-decided density to shrink its
    /// interleave group when prefetch-and-switch would only burn
    /// switches on hits. Backends without a residency signal (real
    /// hardware gives none) keep the default `0.0`: "assume misses",
    /// which preserves the calibrated group. Implementations must not
    /// allocate — this runs on the dispatch path.
    fn hint_density(&self, _sample: &[u64]) -> f64 {
        0.0
    }
}

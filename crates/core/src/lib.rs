//! # isi-core — instruction stream interleaving with coroutines
//!
//! This crate implements the primary contribution of *Psaropoulos et al.,
//! "Interleaving with Coroutines: A Practical Approach for Robust Index
//! Joins" (PVLDB 11(2), 2017)*: hiding the latency of main-memory accesses
//! in index lookups by interleaving the instruction streams of a group of
//! independent lookups, switching streams at every probable cache miss.
//!
//! The paper uses C++ coroutines TS (`co_await`); this crate uses Rust
//! `async fn`, which performs the same compiler transformation (the function
//! body becomes a state machine whose live variables are stored in an inline
//! frame). A lookup coroutine issues a software [`prefetch`](crate::prefetch)
//! for the cache line it is about to dereference and then
//! [`suspend`](crate::coro::suspend)s; the [interleaved
//! scheduler](crate::sched::run_interleaved) resumes the next lookup in the
//! group while the miss is in flight.
//!
//! ## Module map
//!
//! * [`prefetch`] — thin wrappers over the hardware prefetch instructions
//!   (`PREFETCHNTA`/`PREFETCHT0` on x86-64), no-ops elsewhere.
//! * [`mem`] — the [`IndexedMem`](mem::IndexedMem) abstraction that lets the
//!   *same* lookup code run against raw memory (for wall-clock benchmarks)
//!   or against a simulated memory hierarchy (crate `isi-memsim`).
//! * [`coro`] — `suspend()`, the yield-once future, and the
//!   [`CoroHandle`](coro::CoroHandle) resume/is-done/get-result API that
//!   mirrors the handle object of the paper's Section 4.
//! * [`sched`] — the `runSequential` / `runInterleaved` schedulers of the
//!   paper's Listing 7, generic over any lookup coroutine, with
//!   allocation-free frame recycling (Section 4, "performance
//!   considerations").
//! * [`par`] — morsel-driven thread-parallel execution of the same
//!   interleaved scheduler (the Section 5 multithreading composition):
//!   work-stealing morsel cursor, scoped workers, per-worker frame-slab
//!   reuse, merged [`RunStats`](sched::RunStats).
//! * [`model`] — the analytic interleaving model of Section 3
//!   (Inequality 1): estimating the optimal group size from per-stream
//!   compute, switch and stall cycles.
//! * [`policy`] — the shared [`Interleave`](policy::Interleave)
//!   execution-policy type (sequential vs interleaved-with-group-size)
//!   used by every operator in the workspace, plus the
//!   [`PolicyCell`](policy::PolicyCell) single-word atomic cell the
//!   adaptive serving layer republishes it through (torn-read-free
//!   snapshots for dispatchers, alloc-free swaps for the controller).
//! * [`topo`] — CPU [`Topology`](topo::Topology) probing and
//!   best-effort thread pinning (`sched_setaffinity` by raw syscall)
//!   for core-affine shard placement, with graceful single-core and
//!   unsupported-target fallbacks.
//! * [`backend`] — the [`ShardBackend`](backend::ShardBackend)
//!   contract between the serving layer and the index structures that
//!   serve one shard's main (batched probes, range scans, merge-time
//!   rebuilds).
//! * [`epoch`] — the [`EpochCell`](epoch::EpochCell) versioned-`Arc`
//!   swap the writable serving layer publishes merged shard versions
//!   through (readers snapshot, writers swap, nobody blocks long).
//! * [`stats`] — cycle/wall measurement helpers and the log-bucketed
//!   [`LatencyHist`](stats::LatencyHist) used by the serving layer.
//! * [`sync`] — the poison-aware lock helpers
//!   ([`MutexExt::plock`](sync::MutexExt::plock) and friends) that the
//!   serving layer is required (by `xtask lint`) to acquire locks
//!   through: a poisoned lock re-panics with a context tag instead of
//!   an opaque `PoisonError` unwrap.
//!
//! ## Quick start
//!
//! ```
//! use isi_core::mem::{DirectMem, IndexedMem};
//! use isi_core::coro::suspend;
//! use isi_core::sched::{run_sequential, run_interleaved};
//!
//! /// Binary-search coroutine: the sequential code plus one prefetch and
//! /// one suspension per probable cache miss (paper Listing 5).
//! async fn rank<const INTERLEAVE: bool, M: IndexedMem<u32>>(mem: M, value: u32) -> u32 {
//!     let mut size = mem.len();
//!     let mut low = 0usize;
//!     loop {
//!         let half = size / 2;
//!         if half == 0 {
//!             break;
//!         }
//!         let probe = low + half;
//!         if INTERLEAVE {
//!             mem.prefetch(probe);
//!             suspend().await;
//!         }
//!         if *mem.at(probe) <= value {
//!             low = probe;
//!         }
//!         size -= half;
//!     }
//!     low as u32
//! }
//!
//! let table: Vec<u32> = (0..1024).map(|i| i * 2).collect();
//! let lookups = [4u32, 100, 2046];
//! let mut out = vec![0u32; lookups.len()];
//!
//! // Sequential execution: the coroutine never suspends.
//! run_sequential(
//!     lookups.iter().copied(),
//!     |v| rank::<false, _>(DirectMem::new(&table), v),
//!     |i, r| out[i] = r,
//! );
//! assert_eq!(out, [2, 50, 1023]);
//!
//! // Interleaved execution: groups of 6 lookups time-share the core.
//! run_interleaved(
//!     6,
//!     lookups.iter().copied(),
//!     |v| rank::<true, _>(DirectMem::new(&table), v),
//!     |i, r| out[i] = r,
//! );
//! assert_eq!(out, [2, 50, 1023]);
//! ```

// Escalated from the workspace-level warn: every unsafe fn body in
// this crate must discharge its obligations through explicit inner
// blocks (each carrying a SAFETY comment, enforced by xtask lint).
#![deny(unsafe_op_in_unsafe_fn)]

pub mod backend;
pub mod coro;
pub mod epoch;
pub mod mem;
pub mod model;
pub mod par;
pub mod policy;
pub mod prefetch;
pub mod sched;
pub mod stats;
pub mod sync;
pub mod topo;

pub use backend::ShardBackend;
pub use coro::{suspend, CoroHandle, Suspend};
pub use epoch::EpochCell;
pub use mem::{DirectMem, IndexedMem};
pub use model::{optimal_group_size, StreamParams};
pub use par::{run_interleaved_par, DisjointOut, MorselCursor, ParConfig};
pub use policy::{Interleave, PolicyCell};
pub use sched::{
    run_interleaved, run_interleaved_boxed, run_interleaved_indexed, run_sequential, FrameSlab,
    RunStats,
};
pub use stats::LatencyHist;
pub use sync::{CondvarExt, MutexExt, RwLockExt};
pub use topo::Topology;

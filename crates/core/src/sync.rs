//! Poison-aware lock helpers: the workspace policy for panicking
//! lock acquisition.
//!
//! `Mutex::lock().unwrap()` turns a poisoned lock into an opaque
//! `PoisonError` panic with no hint of *which* lock was involved or
//! what protocol it protects. In a system with per-shard dispatcher
//! threads and a background merger, that turns one panicking thread
//! into a cascade of inscrutable secondary panics — or worse, a
//! silently wedged merger waiting on a condvar whose notifier died.
//!
//! The policy here is explicit: **propagate a tagged panic**. A
//! poisoned lock means some thread already panicked while holding it,
//! so the shared state may be mid-protocol and must not be trusted;
//! continuing is wrong, and swallowing the poison
//! (`unwrap_or_else(PoisonError::into_inner)`) would do exactly that.
//! Instead these helpers re-panic with the caller-supplied context
//! tag, so the secondary panic names the lock and the protocol it
//! guards, and the original panic remains the root cause in the
//! backtrace.
//!
//! `xtask lint` enforces that `crates/serve` acquires every lock
//! through these helpers rather than bare `.lock().unwrap()` — see
//! `xtask/src/lint.rs`.

use std::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

/// Poison-aware [`Mutex`] acquisition (see the [module docs](self)).
pub trait MutexExt<T> {
    /// Lock, panicking with `ctx` if the mutex is poisoned.
    fn plock(&self, ctx: &'static str) -> MutexGuard<'_, T>;
}

impl<T> MutexExt<T> for Mutex<T> {
    #[track_caller]
    fn plock(&self, ctx: &'static str) -> MutexGuard<'_, T> {
        self.lock()
            .unwrap_or_else(|_| panic!("{ctx}: mutex poisoned by a panicked thread"))
    }
}

/// Poison-aware [`RwLock`] acquisition (see the [module docs](self)).
pub trait RwLockExt<T> {
    /// Shared-lock, panicking with `ctx` if the lock is poisoned.
    fn pread(&self, ctx: &'static str) -> RwLockReadGuard<'_, T>;
    /// Exclusive-lock, panicking with `ctx` if the lock is poisoned.
    fn pwrite(&self, ctx: &'static str) -> RwLockWriteGuard<'_, T>;
}

impl<T> RwLockExt<T> for RwLock<T> {
    #[track_caller]
    fn pread(&self, ctx: &'static str) -> RwLockReadGuard<'_, T> {
        self.read()
            .unwrap_or_else(|_| panic!("{ctx}: rwlock poisoned by a panicked thread"))
    }

    #[track_caller]
    fn pwrite(&self, ctx: &'static str) -> RwLockWriteGuard<'_, T> {
        self.write()
            .unwrap_or_else(|_| panic!("{ctx}: rwlock poisoned by a panicked thread"))
    }
}

/// Poison-aware [`Condvar`] waits (see the [module docs](self)).
///
/// A condvar wait re-acquires the mutex on wakeup, so it can observe
/// poison exactly like a lock call; the same tagged-panic policy
/// applies.
pub trait CondvarExt {
    /// Wait on `guard`, panicking with `ctx` if the mutex was poisoned
    /// while parked.
    fn pwait<'a, T>(&self, guard: MutexGuard<'a, T>, ctx: &'static str) -> MutexGuard<'a, T>;

    /// Wait with a timeout; returns the reacquired guard and whether
    /// the wait timed out.
    fn pwait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
        ctx: &'static str,
    ) -> (MutexGuard<'a, T>, bool);
}

impl CondvarExt for Condvar {
    #[track_caller]
    fn pwait<'a, T>(&self, guard: MutexGuard<'a, T>, ctx: &'static str) -> MutexGuard<'a, T> {
        self.wait(guard)
            .unwrap_or_else(|_| panic!("{ctx}: mutex poisoned by a panicked thread"))
    }

    #[track_caller]
    fn pwait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
        ctx: &'static str,
    ) -> (MutexGuard<'a, T>, bool) {
        let (guard, res) = self
            .wait_timeout(guard, dur)
            .unwrap_or_else(|_| panic!("{ctx}: mutex poisoned by a panicked thread"));
        (guard, res.timed_out())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn helpers_behave_like_plain_locks_when_healthy() {
        let m = Mutex::new(5);
        *m.plock("test mutex") += 1;
        assert_eq!(*m.plock("test mutex"), 6);

        let rw = RwLock::new(7);
        assert_eq!(*rw.pread("test rwlock"), 7);
        *rw.pwrite("test rwlock") = 8;
        assert_eq!(*rw.pread("test rwlock"), 8);

        let cv = Condvar::new();
        let (guard, timed_out) =
            cv.pwait_timeout(m.plock("test mutex"), Duration::from_millis(1), "test cv");
        assert!(timed_out);
        assert_eq!(*guard, 6);
    }

    #[test]
    fn pwait_wakes_on_notify() {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let other = Arc::clone(&state);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*other;
            *m.plock("flag") = true;
            cv.notify_one();
        });
        let (m, cv) = &*state;
        let mut flag = m.plock("flag");
        while !*flag {
            flag = cv.pwait(flag, "flag");
        }
        t.join().unwrap();
    }

    #[test]
    fn poisoned_mutex_panics_with_the_tag() {
        let m = Arc::new(Mutex::new(0));
        let clone = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = clone.plock("victim");
            panic!("poisoner");
        })
        .join();
        let err = std::panic::catch_unwind(|| m.plock("shard queue")).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("shard queue"), "panic lost its tag: {msg}");
        assert!(msg.contains("poisoned"), "panic lost the cause: {msg}");
    }

    #[test]
    fn poisoned_rwlock_panics_with_the_tag() {
        let rw = Arc::new(RwLock::new(0));
        let clone = Arc::clone(&rw);
        let _ = std::thread::spawn(move || {
            let _guard = clone.pwrite("victim");
            panic!("poisoner");
        })
        .join();
        let err = std::panic::catch_unwind(|| drop(rw.pread("epoch cell"))).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("epoch cell"), "panic lost its tag: {msg}");
        let err = std::panic::catch_unwind(|| drop(rw.pwrite("epoch cell"))).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("epoch cell"), "panic lost its tag: {msg}");
    }
}

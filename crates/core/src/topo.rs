//! CPU topology probing and thread placement for core-affine shards.
//!
//! The serving layer runs one dispatcher thread per shard plus one
//! background merger per store. On a multi-core box, letting the
//! scheduler migrate those threads means a shard's batches (and the
//! merger's freshly rebuilt mains) keep crossing cores — every
//! migration cools the very caches the interleaved engine exists to
//! hide misses in. [`Topology`] probes the core count once and maps
//! shards onto cores round-robin; [`Topology::pin_current`] pins the
//! calling thread with a raw `sched_setaffinity` syscall (the
//! workspace is dependency-free, so no libc wrapper).
//!
//! Placement is **best-effort by design**: on a single-core host, a
//! non-`x86_64`/non-Linux target, under Miri, or when the kernel
//! refuses the affinity call, `pin_current` simply returns `false`
//! and the caller proceeds unpinned. Correctness never depends on
//! pinning — only locality does — so the fallback is silent. The CI
//! container has one core and therefore exercises exactly this path.

/// A probed view of the machine's CPU layout: how many cores are
/// available and which core each shard should own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    cores: usize,
}

impl Topology {
    /// Probe the host: [`std::thread::available_parallelism`], with a
    /// single-core fallback when the probe itself fails.
    pub fn probe() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self { cores }
    }

    /// A topology with an explicit core count (tests, simulations).
    pub fn with_cores(cores: usize) -> Self {
        Self {
            cores: cores.max(1),
        }
    }

    /// Number of usable cores (always ≥ 1).
    #[inline]
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// True when there is nothing to place (one core owns everything).
    #[inline]
    pub fn is_single_core(&self) -> bool {
        self.cores == 1
    }

    /// The core that owns `shard`: shards are laid out round-robin so
    /// every core serves an equal slice of the key space and a shard's
    /// dispatcher and its merger rebuilds land on the same core.
    #[inline]
    pub fn core_for_shard(&self, shard: usize) -> usize {
        shard % self.cores
    }

    /// Pin the **calling thread** to `core`. Returns `true` only when
    /// the kernel accepted the affinity mask; `false` on single-core
    /// hosts (nothing to pin), unsupported targets, or kernel refusal
    /// — callers must treat `false` as "run unpinned", never an error.
    pub fn pin_current(&self, core: usize) -> bool {
        if self.is_single_core() {
            return false;
        }
        pin_to_core(core % self.cores)
    }
}

impl Default for Topology {
    fn default() -> Self {
        Self::probe()
    }
}

/// `sched_setaffinity(0, sizeof(mask), &mask)` by raw syscall —
/// pid 0 means the calling thread. 1024 mask bits matches the
/// kernel's default `CONFIG_NR_CPUS` ceiling.
#[cfg(all(target_os = "linux", target_arch = "x86_64", not(miri)))]
fn pin_to_core(core: usize) -> bool {
    const MASK_WORDS: usize = 16; // 16 × 64 = 1024 CPUs
    if core >= MASK_WORDS * 64 {
        return false;
    }
    let mut mask = [0u64; MASK_WORDS];
    mask[core / 64] = 1u64 << (core % 64);
    let ret: i64;
    // SAFETY: `syscall` with nr 203 (sched_setaffinity on x86_64
    // Linux) reads `mask.len() * 8` bytes from `mask.as_ptr()`, which
    // is exactly the live length of the local array above; it writes
    // no user memory. rcx/r11 are declared clobbered (the syscall
    // instruction overwrites them) and the kernel preserves all other
    // registers, so no Rust-visible state is corrupted.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 203i64 => ret,
            in("rdi") 0usize,
            in("rsi") std::mem::size_of_val(&mask),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack, readonly),
        );
    }
    ret == 0
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64", not(miri))))]
fn pin_to_core(_core: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_reports_at_least_one_core() {
        let topo = Topology::probe();
        assert!(topo.cores() >= 1);
        assert_eq!(topo.is_single_core(), topo.cores() == 1);
    }

    #[test]
    fn shards_round_robin_over_cores() {
        let topo = Topology::with_cores(4);
        assert_eq!(topo.core_for_shard(0), 0);
        assert_eq!(topo.core_for_shard(3), 3);
        assert_eq!(topo.core_for_shard(4), 0);
        assert_eq!(topo.core_for_shard(7), 3);
        // Degenerate request is clamped, not panicked on.
        assert_eq!(Topology::with_cores(0).cores(), 1);
    }

    #[test]
    fn single_core_pin_is_a_silent_no_op() {
        let topo = Topology::with_cores(1);
        assert!(!topo.pin_current(0));
        assert!(!topo.pin_current(17));
    }

    #[test]
    fn pin_never_panics_and_round_trips_cores() {
        // On a multi-core Linux host this genuinely pins (and the
        // result is true); on the single-core CI container or other
        // targets it must fall back to false without error. Both
        // outcomes are legal — the contract is "best effort, no
        // panic".
        let topo = Topology::probe();
        let pinned = topo.pin_current(topo.core_for_shard(0));
        if topo.is_single_core() {
            assert!(!pinned);
        }
    }
}

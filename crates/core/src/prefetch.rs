//! Software prefetch wrappers.
//!
//! The paper issues `PREFETCHNTA` through the `_mm_prefetch(ptr,
//! _MM_HINT_NTA)` compiler intrinsic before every load that is likely to
//! miss (Section 5.1). On x86-64 these functions compile to exactly that
//! instruction; on other architectures they are no-ops so that the lookup
//! code stays portable.
//!
//! A prefetch never faults: it is safe to call with any address, including
//! addresses one-past-the-end of an allocation, which is why these wrappers
//! are safe functions even though they take raw pointers.

/// Cache line size assumed throughout the crate (bytes).
///
/// All mainstream x86-64 and AArch64 parts use 64-byte lines; the paper's
/// Haswell Xeon does too (Table 4).
pub const CACHE_LINE: usize = 64;

/// Prefetch the cache line containing `ptr` with the non-temporal hint
/// (`PREFETCHNTA`), the hint used by the paper.
///
/// Non-temporal prefetches fetch into L1D while minimizing pollution of the
/// outer cache levels, which is the right trade-off for index probes whose
/// lines are unlikely to be reused.
#[inline(always)]
pub fn prefetch_read_nta<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_NTA }>(ptr as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = ptr;
}

/// Prefetch the cache line containing `ptr` into all cache levels
/// (`PREFETCHT0`).
///
/// Used for data that will be reused soon, e.g. tree nodes close to the
/// root.
#[inline(always)]
pub fn prefetch_read_t0<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(ptr as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = ptr;
}

/// Prefetch every cache line of the `bytes`-byte object starting at `ptr`.
///
/// The paper's CSB+-tree coroutine (Listing 6) prefetches *all* cache lines
/// of a touched node before suspending, so that the in-node binary search
/// causes no further misses.
#[inline(always)]
pub fn prefetch_object_nta<T>(ptr: *const T, bytes: usize) {
    let start = ptr as usize;
    // First line is always fetched; step through subsequent lines.
    let mut addr = start;
    let end = start + bytes.max(1);
    while addr < end {
        prefetch_read_nta(addr as *const u8);
        addr += CACHE_LINE;
    }
}

/// Number of cache lines spanned by an object of `bytes` bytes starting at
/// address `addr`.
#[inline]
pub fn lines_spanned(addr: usize, bytes: usize) -> usize {
    if bytes == 0 {
        return 0;
    }
    let first = addr / CACHE_LINE;
    let last = (addr + bytes - 1) / CACHE_LINE;
    last - first + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_safe_on_any_address() {
        // Prefetch must not fault, even on null or dangling addresses.
        prefetch_read_nta(core::ptr::null::<u8>());
        prefetch_read_t0(0xdead_beef_usize as *const u8);
        let v = [1u8; 3];
        prefetch_object_nta(v.as_ptr(), 3);
    }

    #[test]
    fn prefetch_object_covers_all_lines() {
        // 200-byte object: must touch 4 lines when line-aligned.
        let buf = vec![0u8; 512];
        prefetch_object_nta(buf.as_ptr(), 200);
    }

    #[test]
    fn lines_spanned_counts_straddles() {
        assert_eq!(lines_spanned(0, 0), 0);
        assert_eq!(lines_spanned(0, 1), 1);
        assert_eq!(lines_spanned(0, 64), 1);
        assert_eq!(lines_spanned(0, 65), 2);
        // Object straddling a line boundary.
        assert_eq!(lines_spanned(60, 8), 2);
        assert_eq!(lines_spanned(63, 1), 1);
        assert_eq!(lines_spanned(63, 2), 2);
        assert_eq!(lines_spanned(0, 256), 4);
        assert_eq!(lines_spanned(32, 256), 5);
    }
}

//! Software prefetch wrappers.
//!
//! The paper issues `PREFETCHNTA` through the `_mm_prefetch(ptr,
//! _MM_HINT_NTA)` compiler intrinsic before every load that is likely to
//! miss (Section 5.1). On x86-64 these functions compile to exactly that
//! instruction; on other architectures they are no-ops so that the lookup
//! code stays portable.
//!
//! A prefetch never faults: it is safe to call with any address, including
//! addresses one-past-the-end of an allocation, which is why these wrappers
//! are safe functions even though they take raw pointers.

/// Cache line size assumed throughout the crate (bytes).
///
/// All mainstream x86-64 and AArch64 parts use 64-byte lines; the paper's
/// Haswell Xeon does too (Table 4).
pub const CACHE_LINE: usize = 64;

/// Prefetch the cache line containing `ptr` with the non-temporal hint
/// (`PREFETCHNTA`), the hint used by the paper.
///
/// Non-temporal prefetches fetch into L1D while minimizing pollution of the
/// outer cache levels, which is the right trade-off for index probes whose
/// lines are unlikely to be reused.
#[inline(always)]
pub fn prefetch_read_nta<T>(ptr: *const T) {
    // SAFETY: PREFETCHNTA is an architectural hint: it never faults,
    // never dereferences, and is defined for any address value, so
    // there is no obligation on `ptr`. (Gated off under Miri, which
    // does not model the intrinsic.)
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_NTA }>(ptr as *const i8);
    }
    #[cfg(not(all(target_arch = "x86_64", not(miri))))]
    let _ = ptr;
}

/// Prefetch the cache line containing `ptr` into all cache levels
/// (`PREFETCHT0`).
///
/// Used for data that will be reused soon, e.g. tree nodes close to the
/// root.
#[inline(always)]
pub fn prefetch_read_t0<T>(ptr: *const T) {
    // SAFETY: PREFETCHT0 is an architectural hint — never faults,
    // never dereferences; no obligation on `ptr` (Miri-gated as above).
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(ptr as *const i8);
    }
    #[cfg(not(all(target_arch = "x86_64", not(miri))))]
    let _ = ptr;
}

/// Prefetch every cache line of the `bytes`-byte object starting at `ptr`.
///
/// The paper's CSB+-tree coroutine (Listing 6) prefetches *all* cache lines
/// of a touched node before suspending, so that the in-node binary search
/// causes no further misses.
#[inline(always)]
pub fn prefetch_object_nta<T>(ptr: *const T, bytes: usize) {
    for line in object_lines(ptr as usize, bytes) {
        prefetch_read_nta(line as *const u8);
    }
}

/// Base addresses of every cache line spanned by a `bytes`-byte object
/// at address `start` — the walk [`prefetch_object_nta`] performs.
///
/// The walk is aligned down to the line boundary: stepping by
/// `CACHE_LINE` from an unaligned `start` would cover `bytes` of
/// addresses but could stop short of the object's final line (e.g.
/// `start = 60`, `bytes = 8` spans lines 0 and 1, yet an unaligned walk
/// ends at address 68 having only touched line 0). Prefetch operates on
/// whole lines, so the iteration must too. Zero-sized objects get their
/// first line anyway — matching the historical "first line is always
/// fetched" behaviour, and a prefetch never faults.
#[inline(always)]
fn object_lines(start: usize, bytes: usize) -> impl Iterator<Item = usize> {
    let first = start & !(CACHE_LINE - 1);
    let last = (start + bytes.max(1) - 1) & !(CACHE_LINE - 1);
    (first..=last).step_by(CACHE_LINE)
}

/// Number of cache lines spanned by an object of `bytes` bytes starting at
/// address `addr`.
#[inline]
pub fn lines_spanned(addr: usize, bytes: usize) -> usize {
    if bytes == 0 {
        return 0;
    }
    let first = addr / CACHE_LINE;
    let last = (addr + bytes - 1) / CACHE_LINE;
    last - first + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_safe_on_any_address() {
        // Prefetch must not fault, even on null or dangling addresses.
        prefetch_read_nta(core::ptr::null::<u8>());
        prefetch_read_t0(0xdead_beef_usize as *const u8);
        let v = [1u8; 3];
        prefetch_object_nta(v.as_ptr(), 3);
    }

    #[test]
    fn prefetch_object_covers_all_lines() {
        // 200-byte object: must touch 4 lines when line-aligned.
        let buf = vec![0u8; 512];
        prefetch_object_nta(buf.as_ptr(), 200);
        // Unaligned starts must still reach the final line.
        // SAFETY: 60 + 8 <= 512, in bounds of `buf`; only used as a
        // prefetch hint.
        prefetch_object_nta(unsafe { buf.as_ptr().add(60) }, 8);
    }

    #[test]
    fn object_walk_agrees_with_lines_spanned() {
        // The walk must visit exactly the lines the object spans, for
        // every in-line offset and a spread of sizes — including the
        // straddle cases an unaligned fixed-stride walk misses.
        for offset in 0..CACHE_LINE {
            let start = 10 * CACHE_LINE + offset;
            for bytes in [1, 2, 7, 8, 63, 64, 65, 128, 200, 1000] {
                let lines: Vec<usize> = object_lines(start, bytes).collect();
                assert_eq!(
                    lines.len(),
                    lines_spanned(start, bytes),
                    "start={start} bytes={bytes}"
                );
                // Every visited address is line-aligned, consecutive,
                // and the first/last lines contain the object's ends.
                assert!(lines.iter().all(|l| l % CACHE_LINE == 0));
                assert!(lines.windows(2).all(|w| w[1] == w[0] + CACHE_LINE));
                assert_eq!(lines[0], start / CACHE_LINE * CACHE_LINE);
                assert_eq!(
                    *lines.last().unwrap(),
                    (start + bytes - 1) / CACHE_LINE * CACHE_LINE
                );
            }
        }
    }

    #[test]
    fn object_walk_regression_unaligned_straddle() {
        // The historical bug: start=60, bytes=8 stepped 60 -> 124 and
        // never touched line 1, though the object ends at byte 67.
        let lines: Vec<usize> = object_lines(60, 8).collect();
        assert_eq!(lines, vec![0, 64]);
        // Zero-sized objects still touch their first line (never fault).
        assert_eq!(object_lines(130, 0).collect::<Vec<_>>(), vec![128]);
    }

    #[test]
    fn lines_spanned_counts_straddles() {
        assert_eq!(lines_spanned(0, 0), 0);
        assert_eq!(lines_spanned(0, 1), 1);
        assert_eq!(lines_spanned(0, 64), 1);
        assert_eq!(lines_spanned(0, 65), 2);
        // Object straddling a line boundary.
        assert_eq!(lines_spanned(60, 8), 2);
        assert_eq!(lines_spanned(63, 1), 1);
        assert_eq!(lines_spanned(63, 2), 2);
        assert_eq!(lines_spanned(0, 256), 4);
        assert_eq!(lines_spanned(32, 256), 5);
    }
}

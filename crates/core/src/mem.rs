//! The memory-access abstraction that lets one lookup implementation run
//! against either real memory or a simulated memory hierarchy.
//!
//! All index-lookup algorithms in this workspace (binary search, CSB+-tree
//! traversal, hash probes) are generic over [`IndexedMem`], an indexed
//! array of elements. Two families of implementations exist:
//!
//! * [`DirectMem`] (here): a zero-cost wrapper around a slice, whose
//!   `prefetch` issues the real hardware prefetch instruction. Used for
//!   wall-clock benchmarks and production execution.
//! * `SimMem` (crate `isi-memsim`): records every access in a software
//!   model of the cache hierarchy, reproducing the paper's
//!   microarchitectural breakdowns (Figures 5-6, Tables 1-2).
//!
//! Keeping a single algorithm codepath for both backends follows the
//! paper's core argument: the measured code *is* the shipped code.

use crate::prefetch::prefetch_read_nta;

/// An indexed, randomly accessible array of `T` with explicit prefetch and
/// compute-cost hooks.
///
/// `at` returns a reference so that large elements (e.g. 256-byte tree
/// nodes) are not copied on access. Implementations charge the access cost
/// (if they model cost at all) for **all** cache lines spanned by the
/// element, matching the paper's "prefetch all cache lines of a touched
/// node" policy.
pub trait IndexedMem<T> {
    /// Number of elements.
    fn len(&self) -> usize;

    /// True if the array has no elements.
    #[inline]
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Access element `idx`. Panics if out of bounds.
    fn at(&self, idx: usize) -> &T;

    /// Hint that element `idx` will be accessed soon. Never faults, even
    /// out of bounds (out-of-bounds prefetches are ignored).
    fn prefetch(&self, idx: usize);

    /// Charge `cycles` of pure computation to this instruction stream.
    ///
    /// No-op on real memory (the hardware counts its own cycles); the
    /// simulator advances its clock and books the cycles as *retiring*.
    /// Lookup algorithms call this once per loop iteration with their
    /// per-iteration instruction estimate so that simulated breakdowns
    /// have a realistic compute component.
    #[inline(always)]
    fn compute(&self, cycles: u32) {
        let _ = cycles;
    }

    /// Would a load of element `idx` (probably) hit in the cache?
    ///
    /// `None` means the backend cannot tell — which is the state of
    /// real hardware today: the paper's Section 6 wishes for "an
    /// instruction that tells if a memory address is cached" to skip
    /// pointless suspensions. The simulator implements the hypothetical
    /// instruction, enabling the adaptive-suspension ablation
    /// (`isi-search`'s `rank_coro_adaptive`).
    #[inline(always)]
    fn probably_cached(&self, idx: usize) -> Option<bool> {
        let _ = idx;
        None
    }

    /// Does this backend implement the residency instruction at all?
    ///
    /// `false` (the default — real hardware) promises that
    /// [`probably_cached`](Self::probably_cached) answers `None` for
    /// every index, which lets density pilots skip their probe walk
    /// entirely instead of measuring an inevitable 0.0 the hard way.
    /// Backends that override `probably_cached` must override this too.
    #[inline(always)]
    fn has_residency_hint(&self) -> bool {
        false
    }

    /// Record a data-dependent conditional branch with outcome `taken`.
    ///
    /// Branchy algorithms (e.g. `std::lower_bound`-style binary search)
    /// call this where the hardware would speculate on a comparison
    /// result. No-op on real memory; the simulator's branch-predictor
    /// model charges mispredictions to the *bad speculation* pipeline-slot
    /// category (paper Section 2.2). Branch-free (conditional-move)
    /// algorithms never call this.
    #[inline(always)]
    fn branch(&self, taken: bool) {
        let _ = taken;
    }
}

/// Real-memory backend: a borrowed slice plus hardware prefetch.
///
/// This type is `Copy` so it can be captured by value in lookup coroutines
/// without borrowing headaches; it is two words (pointer + length).
#[derive(Debug)]
pub struct DirectMem<'a, T> {
    data: &'a [T],
}

impl<'a, T> Clone for DirectMem<'a, T> {
    #[inline]
    fn clone(&self) -> Self {
        *self
    }
}
impl<'a, T> Copy for DirectMem<'a, T> {}

impl<'a, T> DirectMem<'a, T> {
    /// Wrap a slice.
    #[inline]
    pub fn new(data: &'a [T]) -> Self {
        Self { data }
    }

    /// The underlying slice.
    #[inline]
    pub fn as_slice(&self) -> &'a [T] {
        self.data
    }
}

impl<'a, T> IndexedMem<T> for DirectMem<'a, T> {
    #[inline(always)]
    fn len(&self) -> usize {
        self.data.len()
    }

    #[inline(always)]
    fn at(&self, idx: usize) -> &T {
        &self.data[idx]
    }

    #[inline(always)]
    fn prefetch(&self, idx: usize) {
        if idx < self.data.len() {
            // SAFETY: `idx < len` was just checked, so `add(idx)` stays
            // within the slice's allocation; the pointer is only used as
            // a prefetch hint, never dereferenced.
            prefetch_read_nta(unsafe { self.data.as_ptr().add(idx) });
        }
    }
}

/// Blanket impl so `&M` can be passed where `M: IndexedMem<T>` is expected
/// (e.g. shared references captured by coroutines).
impl<T, M: IndexedMem<T>> IndexedMem<T> for &M {
    #[inline(always)]
    fn len(&self) -> usize {
        (**self).len()
    }
    #[inline(always)]
    fn at(&self, idx: usize) -> &T {
        (**self).at(idx)
    }
    #[inline(always)]
    fn prefetch(&self, idx: usize) {
        (**self).prefetch(idx)
    }
    #[inline(always)]
    fn compute(&self, cycles: u32) {
        (**self).compute(cycles)
    }
    #[inline(always)]
    fn branch(&self, taken: bool) {
        (**self).branch(taken)
    }
    #[inline(always)]
    fn probably_cached(&self, idx: usize) -> Option<bool> {
        (**self).probably_cached(idx)
    }
    #[inline(always)]
    fn has_residency_hint(&self) -> bool {
        (**self).has_residency_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_mem_reads_elements() {
        let v = vec![10u32, 20, 30];
        let m = DirectMem::new(&v);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(*m.at(0), 10);
        assert_eq!(*m.at(2), 30);
        assert_eq!(m.as_slice(), &v[..]);
    }

    #[test]
    fn direct_mem_empty() {
        let v: Vec<u64> = vec![];
        let m = DirectMem::new(&v);
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        // Prefetch out of bounds must be a harmless no-op.
        m.prefetch(0);
        m.prefetch(usize::MAX);
    }

    #[test]
    #[should_panic]
    fn direct_mem_out_of_bounds_panics() {
        let v = vec![1u8];
        let m = DirectMem::new(&v);
        let _ = m.at(1);
    }

    #[test]
    fn compute_is_noop_on_direct() {
        let v = vec![1u32];
        let m = DirectMem::new(&v);
        m.compute(1000); // must not do anything observable
        assert_eq!(*m.at(0), 1);
    }

    #[test]
    fn reference_forwarding() {
        let v = vec![5u32, 6];
        let m = DirectMem::new(&v);
        let r = &m;
        assert_eq!(IndexedMem::len(&r), 2);
        assert_eq!(*IndexedMem::at(&r, 1), 6);
        IndexedMem::prefetch(&r, 0);
        IndexedMem::compute(&r, 1);
    }
}

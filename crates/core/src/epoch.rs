//! [`EpochCell`]: an epoch-stamped `Arc` swap for publish/subscribe
//! versioned state.
//!
//! The writable serving layer needs one primitive: a cell holding the
//! current immutable version of a structure, where
//!
//! * **readers** take a cheap snapshot (`load` clones the inner `Arc`)
//!   and keep using it for as long as they like — an in-flight batch
//!   dispatched against version *n* finishes against version *n* even
//!   if a merge publishes version *n+1* midway, because the snapshot
//!   keeps the old allocation alive;
//! * **writers** publish a fully-built replacement with a single
//!   pointer `store` — they never mutate shared state in place, so
//!   readers never observe a torn or half-merged version.
//!
//! `load` holds a shared lock only long enough to clone the `Arc`
//! (a reference-count increment) and `store` holds the exclusive lock
//! only for one pointer assignment, so neither side can stall the
//! other behind long-running work. Every `store` bumps a monotonically
//! increasing **epoch**, which readers can use to detect that a swap
//! happened between two snapshots (e.g. to count merges or to verify
//! that a cached derivation is still current).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::sync::RwLockExt;

/// A versioned cell: the current `Arc<T>` plus a swap counter.
///
/// See the [module docs](self) for the reader/writer contract.
#[derive(Debug)]
pub struct EpochCell<T> {
    current: RwLock<Arc<T>>,
    epoch: AtomicU64,
}

impl<T> EpochCell<T> {
    /// Wrap `value` as epoch 0.
    pub fn new(value: T) -> Self {
        Self::from_arc(Arc::new(value))
    }

    /// Wrap an existing `Arc` as epoch 0 (avoids a reallocation when
    /// the caller already holds one).
    pub fn from_arc(value: Arc<T>) -> Self {
        Self {
            current: RwLock::new(value),
            epoch: AtomicU64::new(0),
        }
    }

    /// Snapshot the current version. The returned `Arc` stays valid
    /// (and unchanged) across any number of subsequent [`store`]s.
    ///
    /// [`store`]: Self::store
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&self.current.pread("EpochCell::load"))
    }

    /// Publish `value` as the new current version and return the new
    /// epoch. Readers holding older snapshots are unaffected.
    pub fn store(&self, value: Arc<T>) -> u64 {
        let mut slot = self.current.pwrite("EpochCell::store");
        *slot = value;
        // Bump under the write lock so epoch order matches publication
        // order (two concurrent stores cannot observe swapped stamps).
        self.epoch.fetch_add(1, Ordering::Release) + 1
    }

    /// Number of [`store`](Self::store)s so far (0 for a fresh cell).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_roundtrip_and_epoch_counts() {
        let cell = EpochCell::new(10u64);
        assert_eq!(cell.epoch(), 0);
        assert_eq!(*cell.load(), 10);
        assert_eq!(cell.store(Arc::new(11)), 1);
        assert_eq!(cell.store(Arc::new(12)), 2);
        assert_eq!(*cell.load(), 12);
        assert_eq!(cell.epoch(), 2);
    }

    #[test]
    fn old_snapshots_survive_swaps() {
        let cell = EpochCell::new(vec![1, 2, 3]);
        let before = cell.load();
        cell.store(Arc::new(vec![9]));
        // The snapshot taken before the swap still reads the old data.
        assert_eq!(*before, vec![1, 2, 3]);
        assert_eq!(*cell.load(), vec![9]);
    }

    #[test]
    fn concurrent_readers_see_monotone_versions() {
        // A writer publishes 1..=N in order; readers must only ever
        // observe non-decreasing values (no torn or reordered
        // publication).
        // Miri interprets every access; a short run still crosses many
        // reader/writer interleavings. (Exhaustive interleaving coverage
        // of this protocol lives in isi_check's epoch model.)
        const N: u64 = if cfg!(miri) { 50 } else { 2_000 };
        let cell = EpochCell::new(0u64);
        std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                for v in 1..=N {
                    cell.store(Arc::new(v));
                }
            });
            for _ in 0..3 {
                scope.spawn(|| {
                    let mut last = 0u64;
                    while last < N {
                        let v = *cell.load();
                        assert!(v >= last, "version went backwards: {v} < {last}");
                        last = last.max(v);
                    }
                });
            }
            writer.join().unwrap();
        });
        assert_eq!(cell.epoch(), N);
    }
}

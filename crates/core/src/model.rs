//! The analytic interleaving model of the paper's Section 3.
//!
//! An instruction stream `i` is characterized by three per-miss cycle
//! counts: `T_compute` (useful work between two misses), `T_switch`
//! (overhead of suspending + resuming the stream), and `T_stall` (the
//! memory stall the miss would cause if nothing overlapped it). After
//! switching, `T_target = T_stall - T_switch` stall cycles remain to hide.
//!
//! The stall of stream `i` is fully hidden iff the other `G - 1` streams
//! provide enough work:
//!
//! ```text
//! T_i,target <= sum_{j != i} (T_j,compute + T_j,switch)
//! ```
//!
//! For identical streams this reduces to the paper's Inequality 1, the
//! minimum group size that eliminates stalls:
//!
//! ```text
//! G >= T_target / (T_compute + T_switch) + 1
//! ```
//!
//! Interleaving more streams than that does not help and may hurt (cache
//! conflicts, and the hardware supports only ~10 outstanding misses —
//! Section 5.4.5).

/// Per-instruction-stream cycle parameters of the interleaving model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamParams {
    /// Useful computation between two consecutive misses (cycles).
    pub t_compute: f64,
    /// Suspend + resume overhead per switch (cycles).
    pub t_switch: f64,
    /// Memory stall a miss would incur without interleaving (cycles).
    pub t_stall: f64,
}

impl StreamParams {
    /// Construct parameters; negative inputs are clamped to zero.
    pub fn new(t_compute: f64, t_switch: f64, t_stall: f64) -> Self {
        Self {
            t_compute: t_compute.max(0.0),
            t_switch: t_switch.max(0.0),
            t_stall: t_stall.max(0.0),
        }
    }

    /// Residual stall to hide after the switch overhead overlapped part of
    /// it: `T_target = max(0, T_stall - T_switch)`.
    pub fn t_target(&self) -> f64 {
        (self.t_stall - self.t_switch).max(0.0)
    }
}

/// Minimum group size that eliminates stalls for identical streams —
/// the paper's Inequality 1: `G >= T_target / (T_compute + T_switch) + 1`.
///
/// Returns at least 1. If a stream has no compute and no switch cost but a
/// positive stall, no finite group hides the stall; we saturate at
/// `usize::MAX` in that (degenerate) case.
pub fn optimal_group_size(p: StreamParams) -> usize {
    let denom = p.t_compute + p.t_switch;
    let target = p.t_target();
    if target <= 0.0 {
        return 1;
    }
    if denom <= 0.0 {
        return usize::MAX;
    }
    let g = (target / denom + 1.0).ceil();
    if g < 1.0 {
        1
    } else if g >= usize::MAX as f64 {
        usize::MAX
    } else {
        g as usize
    }
}

/// Group-size estimate clamped by the hardware's memory-level parallelism.
///
/// Section 5.4.5: Haswell has 10 line-fill buffers, so more than ~10
/// outstanding misses cannot proceed in parallel; the estimated `G` for GP
/// (12) was capped at 10 in practice.
pub fn optimal_group_size_capped(p: StreamParams, lfb_entries: usize) -> usize {
    optimal_group_size(p).min(lfb_entries.max(1))
}

/// For heterogeneous streams: is stream `i`'s stall fully hidden by the
/// other streams of the group? (Section 3, general removal condition.)
pub fn stall_hidden(streams: &[StreamParams], i: usize) -> bool {
    assert!(i < streams.len(), "stream index out of range");
    let others: f64 = streams
        .iter()
        .enumerate()
        .filter(|(j, _)| *j != i)
        .map(|(_, s)| s.t_compute + s.t_switch)
        .sum();
    streams[i].t_target() <= others
}

/// True if every stream in the group has its stall fully hidden.
pub fn all_stalls_hidden(streams: &[StreamParams]) -> bool {
    (0..streams.len()).all(|i| stall_hidden(streams, i))
}

/// Predicted cycles per lookup for a group of `g` identical streams, each
/// performing `misses_per_lookup` misses.
///
/// With `g = 1` there is no interleaving: each miss costs
/// `T_compute + T_stall`. With `g > 1`, each miss costs
/// `T_compute + T_switch` plus whatever part of `T_target` the other
/// streams could not cover. This is the model used to sanity-check the
/// measured group-size sweep of Figure 7.
pub fn predicted_cycles_per_lookup(p: StreamParams, g: usize, misses_per_lookup: f64) -> f64 {
    let g = g.max(1);
    if g == 1 {
        return misses_per_lookup * (p.t_compute + p.t_stall);
    }
    let cover = (g as f64 - 1.0) * (p.t_compute + p.t_switch);
    let residual = (p.t_target() - cover).max(0.0);
    misses_per_lookup * (p.t_compute + p.t_switch + residual)
}

/// Derive [`StreamParams`] from profile measurements of a *sequential*
/// baseline and an interleaved implementation at group size 1, following
/// Section 5.4.5:
///
/// * `T_stall` = memory-stall cycles per miss of the baseline;
/// * `T_compute` = all other baseline cycles per miss;
/// * `T_switch` = difference in retiring cycles (per miss) between the
///   interleaved implementation at `G = 1` and the baseline.
pub fn params_from_profile(
    baseline_stall_per_miss: f64,
    baseline_other_per_miss: f64,
    interleaved_retiring_per_miss_g1: f64,
    baseline_retiring_per_miss: f64,
) -> StreamParams {
    StreamParams::new(
        baseline_other_per_miss,
        (interleaved_retiring_per_miss_g1 - baseline_retiring_per_miss).max(0.0),
        baseline_stall_per_miss,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_reproduce_section_5_4_5() {
        // Section 5.4.5 derives G_GP >= 12 and G_AMAC = G_CORO >= 6 for a
        // 256 MB int array. With a ~170-cycle residual stall: GP's shared
        // loop has tiny per-stream compute+switch (~15 cycles), while
        // AMAC/CORO carry ~35 cycles of state management per switch.
        let gp = StreamParams::new(10.0, 5.0, 175.0);
        assert_eq!(optimal_group_size(gp), 13); // >= 12, same ballpark
        assert_eq!(optimal_group_size_capped(gp, 10), 10); // LFB cap, as measured

        let coro = StreamParams::new(12.0, 23.0, 200.0);
        assert_eq!(optimal_group_size(coro), 7); // paper observed 5-6
    }

    #[test]
    fn no_stall_means_group_of_one() {
        let p = StreamParams::new(100.0, 10.0, 0.0);
        assert_eq!(optimal_group_size(p), 1);
        // Stall smaller than switch overhead: also fully absorbed.
        let p = StreamParams::new(1.0, 50.0, 40.0);
        assert_eq!(optimal_group_size(p), 1);
    }

    #[test]
    fn degenerate_zero_work_stream_saturates() {
        let p = StreamParams::new(0.0, 0.0, 100.0);
        assert_eq!(optimal_group_size(p), usize::MAX);
        assert_eq!(optimal_group_size_capped(p, 10), 10);
    }

    #[test]
    fn negative_inputs_clamped() {
        let p = StreamParams::new(-5.0, -1.0, -3.0);
        assert_eq!(p.t_compute, 0.0);
        assert_eq!(p.t_switch, 0.0);
        assert_eq!(p.t_stall, 0.0);
    }

    #[test]
    fn t_target_subtracts_switch_overlap() {
        let p = StreamParams::new(10.0, 30.0, 100.0);
        assert_eq!(p.t_target(), 70.0);
    }

    #[test]
    fn heterogeneous_removal_condition() {
        // Stream 0 stalls 100 cycles (target 90); streams 1 and 2 offer
        // 40+10 and 50+10 cycles of cover -> 110 >= 90: hidden.
        let streams = [
            StreamParams::new(5.0, 10.0, 100.0),
            StreamParams::new(40.0, 10.0, 0.0),
            StreamParams::new(50.0, 10.0, 0.0),
        ];
        assert!(stall_hidden(&streams, 0));
        assert!(all_stalls_hidden(&streams));

        // Remove stream 2: only 50 cycles of cover for a 90-cycle target.
        let streams = &streams[..2];
        assert!(!stall_hidden(streams, 0));
        assert!(!all_stalls_hidden(streams));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn stall_hidden_checks_bounds() {
        stall_hidden(&[], 0);
    }

    #[test]
    fn predicted_cycles_monotone_down_then_flat() {
        let p = StreamParams::new(10.0, 20.0, 182.0);
        let misses = 20.0;
        let g_star = optimal_group_size(p);
        let mut prev = f64::INFINITY;
        for g in 1..=g_star {
            let c = predicted_cycles_per_lookup(p, g, misses);
            assert!(c <= prev, "cycles must not increase up to G*");
            prev = c;
        }
        // Beyond G*, the model predicts no further improvement.
        let at_star = predicted_cycles_per_lookup(p, g_star, misses);
        let beyond = predicted_cycles_per_lookup(p, g_star + 5, misses);
        assert!((at_star - beyond).abs() < 1e-9);
        // And the floor is stall-free execution.
        assert!((beyond - misses * (p.t_compute + p.t_switch)).abs() < 1e-9);
    }

    #[test]
    fn params_from_profile_computes_switch_cost() {
        let p = params_from_profile(150.0, 12.0, 40.0, 12.0);
        assert_eq!(p.t_stall, 150.0);
        assert_eq!(p.t_compute, 12.0);
        assert_eq!(p.t_switch, 28.0);
        // Retiring can only grow with interleaving; clamp guards noise.
        let p = params_from_profile(150.0, 12.0, 10.0, 12.0);
        assert_eq!(p.t_switch, 0.0);
    }
}

//! Morsel-driven parallel execution of interleaved bulk lookups.
//!
//! The paper's Section 5 multithreading discussion observes that
//! instruction-stream interleaving composes with thread-level
//! parallelism: each hardware thread hides its own cache-miss latency
//! within its slice of the batch. This module supplies that composition
//! without changing a single lookup coroutine:
//!
//! * the input batch is partitioned into contiguous **morsels**
//!   (cache-friendly ranges of a few thousand lookups, after Leis et
//!   al.'s morsel-driven parallelism);
//! * a pool of scoped worker threads claims morsels from a shared
//!   [`MorselCursor`] — an atomic fetch-add, so fast workers steal work
//!   from slow ones and skew cannot strand a thread;
//! * every worker drives its morsels through the *existing* interleaved
//!   scheduler ([`run_interleaved_indexed`]), reusing one
//!   [`FrameSlab`] across all the morsels it claims, so the
//!   zero-allocation-per-lookup slab discipline of the sequential
//!   engine holds across morsel boundaries too;
//! * per-worker [`RunStats`] are merged at the join
//!   ([`RunStats::merge`]).
//!
//! Everything is `std`: scoped threads, one atomic counter, no work
//! queues, no new dependencies.

use std::future::Future;
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::sched::{run_interleaved_indexed, FrameSlab, RunStats};

/// Default morsel size (lookups per work-stealing unit).
///
/// Large enough that the atomic claim and the per-morsel group
/// drain/refill are amortized to noise, small enough that tail
/// imbalance is bounded by one morsel per worker.
pub const DEFAULT_MORSEL_SIZE: usize = 4096;

/// Thread-count and morsel-size knobs for the parallel drivers.
///
/// `threads == 0` means "use [`std::thread::available_parallelism`]";
/// `morsel_size == 0` means [`DEFAULT_MORSEL_SIZE`]. The struct is
/// `Copy` so call sites can pass it by value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParConfig {
    /// Worker threads (0 = one per available hardware thread).
    pub threads: usize,
    /// Lookups per morsel (0 = [`DEFAULT_MORSEL_SIZE`]).
    pub morsel_size: usize,
}

impl ParConfig {
    /// `threads` workers with the default morsel size.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            morsel_size: 0,
        }
    }

    /// Resolved worker count: explicit, or the machine's available
    /// parallelism (at least 1).
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// Resolved morsel size (never 0).
    pub fn effective_morsel_size(&self) -> usize {
        if self.morsel_size > 0 {
            self.morsel_size
        } else {
            DEFAULT_MORSEL_SIZE
        }
    }
}

impl Default for ParConfig {
    /// All-default: machine parallelism, [`DEFAULT_MORSEL_SIZE`].
    fn default() -> Self {
        Self {
            threads: 0,
            morsel_size: 0,
        }
    }
}

/// Work-stealing dispenser of contiguous input ranges.
///
/// One atomic fetch-add per claim; ranges are disjoint and cover
/// `0..total` exactly. Workers loop on [`claim`](MorselCursor::claim)
/// until it returns `None`, which naturally balances skewed
/// per-morsel costs.
pub struct MorselCursor {
    next: AtomicUsize,
    total: usize,
    morsel: usize,
}

impl MorselCursor {
    /// Cursor over `total` items in morsels of `morsel_size`
    /// (clamped to at least 1).
    pub fn new(total: usize, morsel_size: usize) -> Self {
        Self {
            next: AtomicUsize::new(0),
            total,
            morsel: morsel_size.max(1),
        }
    }

    /// Claim the next unprocessed range, or `None` when the input is
    /// exhausted. Safe to call from any number of threads.
    pub fn claim(&self) -> Option<Range<usize>> {
        let start = self.next.fetch_add(self.morsel, Ordering::Relaxed);
        if start >= self.total {
            return None;
        }
        Some(start..(start + self.morsel).min(self.total))
    }

    /// Number of morsels this cursor will hand out in total.
    pub fn num_morsels(&self) -> usize {
        self.total.div_ceil(self.morsel)
    }
}

/// Shared mutable output buffer for scatter writes from worker threads.
///
/// The morsel protocol guarantees each index belongs to exactly one
/// claimed range and each range to exactly one worker, so writes never
/// alias — but the borrow checker cannot see through the dynamic
/// claiming, hence the unsafe constructor-free escape hatch below.
/// Callers uphold the disjointness contract; everything else (bounds,
/// lifetime) is checked.
pub struct DisjointOut<'a, T> {
    ptr: *mut T,
    len: usize,
    _borrow: PhantomData<&'a mut [T]>,
}

// SAFETY: the wrapper only allows writes, under the caller-upheld
// contract that concurrently touched indices are disjoint; `T: Send`
// is required because values of `T` are moved into the buffer from
// worker threads (and old values dropped there).
unsafe impl<T: Send> Send for DisjointOut<'_, T> {}
unsafe impl<T: Send> Sync for DisjointOut<'_, T> {}

impl<'a, T> DisjointOut<'a, T> {
    /// Wrap an output slice. The exclusive borrow is held for `'a`, so
    /// no one else can observe the buffer while workers scatter into it.
    pub fn new(out: &'a mut [T]) -> Self {
        Self {
            ptr: out.as_mut_ptr(),
            len: out.len(),
            _borrow: PhantomData,
        }
    }

    /// Buffer length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Write `value` at `idx` (bounds-checked).
    ///
    /// # Safety
    /// No other thread may read or write `idx` concurrently. The morsel
    /// drivers satisfy this by writing only indices inside ranges
    /// claimed from a [`MorselCursor`].
    pub unsafe fn write(&self, idx: usize, value: T) {
        assert!(idx < self.len, "DisjointOut index {idx} out of bounds");
        // SAFETY: in-bounds by the assert; exclusive by the caller's
        // disjointness contract.
        unsafe { *self.ptr.add(idx) = value };
    }

    /// Reborrow a sub-range as a mutable slice (bounds-checked).
    ///
    /// # Safety
    /// Ranges handed to concurrently running threads must be disjoint;
    /// the caller must not hold two overlapping slices at once. The
    /// morsel drivers pass each claimed range to exactly one worker.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, range: Range<usize>) -> &mut [T] {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "DisjointOut range {range:?} out of bounds (len {})",
            self.len
        );
        // SAFETY: in-bounds by the assert; exclusive by the caller's
        // disjointness contract.
        unsafe {
            std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.end - range.start)
        }
    }
}

/// Run `threads` workers — `worker(0)` on the calling thread, the rest
/// as scoped spawns — and collect their results. Running worker 0
/// inline means `threads == 1` is exactly the sequential engine (no
/// spawn, no synchronization) and a pool of N costs N-1 spawns with no
/// thread ever parked in `join` while work remains.
pub fn run_workers<R, W>(threads: usize, worker: W) -> Vec<R>
where
    R: Send,
    W: Fn(usize) -> R + Sync,
{
    let threads = threads.max(1);
    if threads == 1 {
        return vec![worker(0)];
    }
    std::thread::scope(|scope| {
        let worker = &worker;
        let handles: Vec<_> = (1..threads)
            .map(|w| scope.spawn(move || worker(w)))
            .collect();
        let mut results = vec![worker(0)];
        results.extend(
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel lookup worker panicked")),
        );
        results
    })
}

/// Morsel-parallel driver for *non-coroutine* bulk kernels (branch-free
/// search, GP, AMAC): workers claim ranges and invoke `body(range)` for
/// each. `body` typically runs an existing bulk kernel over
/// `inputs[range]` and a [`DisjointOut::slice_mut`] of the output.
pub fn for_each_morsel<B>(cfg: ParConfig, total: usize, body: B)
where
    B: Fn(Range<usize>) + Sync,
{
    if total == 0 {
        return;
    }
    let cursor = MorselCursor::new(total, cfg.effective_morsel_size());
    let threads = cfg.effective_threads().min(cursor.num_morsels());
    run_workers(threads, |_| {
        while let Some(range) = cursor.claim() {
            body(range);
        }
    });
}

/// Morsel-parallel interleaved execution — the parallel analogue of
/// [`run_interleaved`](crate::sched::run_interleaved).
///
/// Each worker owns one [`FrameSlab`] for its whole lifetime and drives
/// every morsel it claims through [`run_interleaved_indexed`] with
/// `group_size` in-flight coroutines — the same coroutines, the same
/// memory backends, the same single codepath as the sequential engine.
/// The sink receives **global** input indices and is called from worker
/// threads; results within a worker arrive in completion order, and
/// workers interleave arbitrarily (scatter by index, as the sequential
/// drivers already do).
///
/// Returns the merged [`RunStats`]: totals sum, `peak_in_flight` is the
/// maximum over workers.
pub fn run_interleaved_par<T, F, Mk, S>(
    cfg: ParConfig,
    group_size: usize,
    inputs: &[T],
    make: Mk,
    sink: S,
) -> RunStats
where
    T: Copy + Sync,
    F: Future,
    Mk: Fn(T) -> F + Sync,
    S: Fn(usize, F::Output) + Sync,
{
    if inputs.is_empty() {
        return RunStats::default();
    }
    let cursor = MorselCursor::new(inputs.len(), cfg.effective_morsel_size());
    let threads = cfg.effective_threads().min(cursor.num_morsels());
    let per_worker = run_workers(threads, |_| {
        let mut slab = FrameSlab::new();
        let mut local = RunStats::default();
        while let Some(range) = cursor.claim() {
            let stats = run_interleaved_indexed(
                &mut slab,
                group_size,
                range.clone().map(|i| (i, inputs[i])),
                &make,
                &sink,
            );
            local.merge(&stats);
        }
        local
    });
    let mut merged = RunStats::default();
    for s in &per_worker {
        merged.merge(s);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coro::suspend;
    use crate::sched::run_interleaved;
    use std::collections::HashSet;
    use std::sync::Mutex;

    async fn lookup(v: u32) -> u32 {
        for _ in 0..(v % 5) {
            suspend().await;
        }
        v.wrapping_mul(3)
    }

    fn par_out(values: &[u32], cfg: ParConfig, group: usize) -> (Vec<u32>, RunStats) {
        let mut out = vec![0u32; values.len()];
        let sink = DisjointOut::new(&mut out);
        // SAFETY: the driver passes each input index exactly once and
        // `i < out.len()`, so the disjoint-writes contract holds.
        let stats = run_interleaved_par(cfg, group, values, lookup, |i, r| unsafe {
            sink.write(i, r)
        });
        (out, stats)
    }

    #[test]
    fn cursor_ranges_are_disjoint_and_exhaustive() {
        let cursor = MorselCursor::new(1000, 64);
        assert_eq!(cursor.num_morsels(), 16);
        let mut seen = HashSet::new();
        let mut claims = 0;
        while let Some(r) = cursor.claim() {
            claims += 1;
            for i in r {
                assert!(seen.insert(i), "index {i} claimed twice");
            }
        }
        assert_eq!(claims, 16);
        assert_eq!(seen.len(), 1000);
        // Exhausted cursors stay exhausted.
        assert_eq!(cursor.claim(), None);
    }

    #[test]
    fn cursor_handles_empty_and_tiny_inputs() {
        let cursor = MorselCursor::new(0, 64);
        assert_eq!(cursor.num_morsels(), 0);
        assert_eq!(cursor.claim(), None);
        let cursor = MorselCursor::new(3, 64);
        assert_eq!(cursor.claim(), Some(0..3));
        assert_eq!(cursor.claim(), None);
        // morsel_size 0 is clamped.
        let cursor = MorselCursor::new(2, 0);
        assert_eq!(cursor.claim(), Some(0..1));
    }

    #[test]
    fn parallel_matches_sequential_across_thread_counts() {
        // Shrunk under Miri: interpreted coroutines are ~100x slower.
        let n: u32 = if cfg!(miri) { 300 } else { 10_000 };
        let values: Vec<u32> = (0..n).map(|i| i * 7 % 997).collect();
        let mut expect = vec![0u32; values.len()];
        run_interleaved(6, values.iter().copied(), lookup, |i, r| expect[i] = r);
        for threads in [1, 2, 4, 8] {
            let cfg = ParConfig {
                threads,
                morsel_size: 512,
            };
            let (out, stats) = par_out(&values, cfg, 6);
            assert_eq!(out, expect, "threads={threads}");
            assert_eq!(stats.lookups, values.len() as u64);
        }
    }

    #[test]
    fn merged_stats_match_sequential_totals() {
        // Totals (lookups, resumes, switches) are partition-invariant:
        // every input suspends a fixed number of times regardless of
        // which worker or morsel runs it.
        let values: Vec<u32> = (0..5_000).collect();
        let seq = run_interleaved(6, values.iter().copied(), lookup, |_, _| {});
        let cfg = ParConfig {
            threads: 4,
            morsel_size: 256,
        };
        let (_, par) = par_out(&values, cfg, 6);
        assert_eq!(par.lookups, seq.lookups);
        assert_eq!(par.resumes, seq.resumes);
        assert_eq!(par.switches, seq.switches);
        // Peak is per worker: bounded by the group size.
        assert!(par.peak_in_flight <= 6);
    }

    #[test]
    fn empty_input_returns_empty_stats_without_spawning() {
        let (out, stats) = par_out(&[], ParConfig::with_threads(8), 4);
        assert!(out.is_empty());
        assert_eq!(stats, RunStats::default());
    }

    #[test]
    fn threads_are_clamped_to_morsel_count() {
        // 10 inputs in one morsel: only one worker has work; the rest
        // must not be spawned (run_workers is handed threads=1).
        let values: Vec<u32> = (0..10).collect();
        let cfg = ParConfig {
            threads: 8,
            morsel_size: 4096,
        };
        let (out, stats) = par_out(&values, cfg, 4);
        assert_eq!(out, values.iter().map(|v| v * 3).collect::<Vec<_>>());
        assert_eq!(stats.lookups, 10);
    }

    #[test]
    fn sink_sees_every_global_index_exactly_once() {
        let values: Vec<u32> = (0..3_000).collect();
        let seen = Mutex::new(HashSet::new());
        run_interleaved_par(
            ParConfig {
                threads: 4,
                morsel_size: 128,
            },
            5,
            &values,
            lookup,
            |i, _| {
                assert!(seen.lock().unwrap().insert(i), "index {i} emitted twice");
            },
        );
        assert_eq!(seen.lock().unwrap().len(), values.len());
    }

    #[test]
    fn for_each_morsel_covers_output_via_subslices() {
        let values: Vec<u32> = (0..2_500).collect();
        let mut out = vec![0u32; values.len()];
        let sink = DisjointOut::new(&mut out);
        for_each_morsel(
            ParConfig {
                threads: 3,
                morsel_size: 100,
            },
            values.len(),
            |range| {
                // SAFETY: morsel ranges partition 0..len, so no two
                // workers receive overlapping ranges.
                let dst = unsafe { sink.slice_mut(range.clone()) };
                for (o, i) in dst.iter_mut().zip(range) {
                    *o = values[i] + 1;
                }
            },
        );
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32 + 1));
    }

    #[test]
    fn config_resolution() {
        let cfg = ParConfig::default();
        assert!(cfg.effective_threads() >= 1);
        assert_eq!(cfg.effective_morsel_size(), DEFAULT_MORSEL_SIZE);
        let cfg = ParConfig {
            threads: 3,
            morsel_size: 7,
        };
        assert_eq!(cfg.effective_threads(), 3);
        assert_eq!(cfg.effective_morsel_size(), 7);
        assert_eq!(ParConfig::with_threads(5).effective_threads(), 5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn disjoint_out_bounds_checked() {
        let mut buf = [0u32; 4];
        let out = DisjointOut::new(&mut buf);
        assert_eq!(out.len(), 4);
        assert!(!out.is_empty());
        // SAFETY: deliberately out of bounds — the call must panic on
        // the bounds check before any write happens (should_panic).
        unsafe { out.write(4, 1) };
    }
}

//! The shared interleaving policy type.
//!
//! Every operator in the workspace offers the same execution choice —
//! run its lookup coroutines one at a time, or interleave a group of
//! them to hide cache-miss latency. [`Interleave`] is that choice,
//! expressed once: the hash join, the IN-predicate query, the
//! dictionary `locate` strategies and the serving layer all take it
//! instead of growing their own structurally identical enums.

/// Execution policy for a batch of lookup coroutines: sequential, or
/// interleaved with a given group size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interleave {
    /// One lookup at a time (coroutines with `INTERLEAVE = false`).
    Sequential,
    /// This many lookups in flight, switching at every probable miss.
    Interleaved(usize),
}

impl Interleave {
    /// The group size, or `None` when sequential.
    #[inline]
    pub fn group(self) -> Option<usize> {
        match self {
            Interleave::Sequential => None,
            Interleave::Interleaved(g) => Some(g),
        }
    }

    /// The group size as a scheduler knob: 1 when sequential (a group
    /// of one *is* sequential execution), never 0.
    #[inline]
    pub fn group_or_one(self) -> usize {
        self.group().unwrap_or(1).max(1)
    }

    /// True if this policy interleaves (group size > 1).
    #[inline]
    pub fn is_interleaved(self) -> bool {
        matches!(self, Interleave::Interleaved(g) if g > 1)
    }

    /// Policy from a group size: 0 or 1 means sequential.
    #[inline]
    pub fn from_group(group: usize) -> Self {
        if group <= 1 {
            Interleave::Sequential
        } else {
            Interleave::Interleaved(group)
        }
    }
}

impl Default for Interleave {
    /// The paper's best coroutine group size (6) as a sensible default.
    fn default() -> Self {
        Interleave::Interleaved(6)
    }
}

impl std::fmt::Display for Interleave {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Interleave::Sequential => write!(f, "seq"),
            Interleave::Interleaved(g) => write!(f, "coro{g}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_accessors() {
        assert_eq!(Interleave::Sequential.group(), None);
        assert_eq!(Interleave::Interleaved(6).group(), Some(6));
        assert_eq!(Interleave::Sequential.group_or_one(), 1);
        assert_eq!(Interleave::Interleaved(0).group_or_one(), 1);
        assert_eq!(Interleave::Interleaved(8).group_or_one(), 8);
    }

    #[test]
    fn from_group_normalizes_degenerate_sizes() {
        assert_eq!(Interleave::from_group(0), Interleave::Sequential);
        assert_eq!(Interleave::from_group(1), Interleave::Sequential);
        assert_eq!(Interleave::from_group(6), Interleave::Interleaved(6));
    }

    #[test]
    fn interleaved_predicate() {
        assert!(!Interleave::Sequential.is_interleaved());
        assert!(!Interleave::Interleaved(1).is_interleaved());
        assert!(Interleave::Interleaved(2).is_interleaved());
    }

    #[test]
    fn display_labels() {
        assert_eq!(Interleave::Sequential.to_string(), "seq");
        assert_eq!(Interleave::Interleaved(6).to_string(), "coro6");
    }
}

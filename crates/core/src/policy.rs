//! The shared interleaving policy type.
//!
//! Every operator in the workspace offers the same execution choice —
//! run its lookup coroutines one at a time, or interleave a group of
//! them to hide cache-miss latency. [`Interleave`] is that choice,
//! expressed once: the hash join, the IN-predicate query, the
//! dictionary `locate` strategies and the serving layer all take it
//! instead of growing their own structurally identical enums.
//!
//! [`PolicyCell`] is the concurrent home of an `Interleave`: a single
//! atomic word a retuning controller can republish through while
//! dispatchers snapshot it per run, with no possibility of a torn
//! (half-old, half-new) read and no allocation on either side.

/// Execution policy for a batch of lookup coroutines: sequential, or
/// interleaved with a given group size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interleave {
    /// One lookup at a time (coroutines with `INTERLEAVE = false`).
    Sequential,
    /// This many lookups in flight, switching at every probable miss.
    Interleaved(usize),
}

impl Interleave {
    /// The group size, or `None` when sequential.
    #[inline]
    pub fn group(self) -> Option<usize> {
        match self {
            Interleave::Sequential => None,
            Interleave::Interleaved(g) => Some(g),
        }
    }

    /// The group size as a scheduler knob: 1 when sequential (a group
    /// of one *is* sequential execution), never 0.
    #[inline]
    pub fn group_or_one(self) -> usize {
        self.group().unwrap_or(1).max(1)
    }

    /// True if this policy interleaves (group size > 1).
    #[inline]
    pub fn is_interleaved(self) -> bool {
        matches!(self, Interleave::Interleaved(g) if g > 1)
    }

    /// Policy from a group size: 0 or 1 means sequential.
    #[inline]
    pub fn from_group(group: usize) -> Self {
        if group <= 1 {
            Interleave::Sequential
        } else {
            Interleave::Interleaved(group)
        }
    }
}

impl Default for Interleave {
    /// The paper's best coroutine group size (6) as a sensible default.
    fn default() -> Self {
        Interleave::Interleaved(6)
    }
}

impl std::fmt::Display for Interleave {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Interleave::Sequential => write!(f, "seq"),
            Interleave::Interleaved(g) => write!(f, "coro{g}"),
        }
    }
}

/// A torn-read-free, alloc-free published [`Interleave`] policy.
///
/// The whole policy is encoded into **one** `AtomicU64` — `0` for
/// [`Interleave::Sequential`], the group size for
/// [`Interleave::Interleaved`] (decode normalizes through
/// [`Interleave::from_group`], so the two representations of "a group
/// of one" collapse to the same policy). A single-word load can never
/// observe half of an old policy and half of a new one, which is the
/// property the serve-path retune controller relies on: a dispatcher
/// snapshots the cell once per run and the whole run executes under
/// exactly one published policy, however many retunes race it.
///
/// Ordering is `Release` on store / `Acquire` on load so a policy
/// published after a controller's density computation is never
/// observed before the writes that justified it.
#[derive(Debug)]
pub struct PolicyCell {
    encoded: std::sync::atomic::AtomicU64,
}

impl PolicyCell {
    /// A cell initially publishing `policy`.
    pub fn new(policy: Interleave) -> Self {
        Self {
            encoded: std::sync::atomic::AtomicU64::new(Self::encode(policy)),
        }
    }

    #[inline]
    fn encode(policy: Interleave) -> u64 {
        match policy {
            Interleave::Sequential => 0,
            Interleave::Interleaved(g) => g as u64,
        }
    }

    /// Snapshot the currently published policy (one atomic load).
    #[inline]
    pub fn load(&self) -> Interleave {
        let v = self.encoded.load(std::sync::atomic::Ordering::Acquire);
        Interleave::from_group(v as usize)
    }

    /// Publish a new policy (one atomic store; no allocation).
    #[inline]
    pub fn store(&self, policy: Interleave) {
        self.encoded
            .store(Self::encode(policy), std::sync::atomic::Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_accessors() {
        assert_eq!(Interleave::Sequential.group(), None);
        assert_eq!(Interleave::Interleaved(6).group(), Some(6));
        assert_eq!(Interleave::Sequential.group_or_one(), 1);
        assert_eq!(Interleave::Interleaved(0).group_or_one(), 1);
        assert_eq!(Interleave::Interleaved(8).group_or_one(), 8);
    }

    #[test]
    fn from_group_normalizes_degenerate_sizes() {
        assert_eq!(Interleave::from_group(0), Interleave::Sequential);
        assert_eq!(Interleave::from_group(1), Interleave::Sequential);
        assert_eq!(Interleave::from_group(6), Interleave::Interleaved(6));
    }

    #[test]
    fn interleaved_predicate() {
        assert!(!Interleave::Sequential.is_interleaved());
        assert!(!Interleave::Interleaved(1).is_interleaved());
        assert!(Interleave::Interleaved(2).is_interleaved());
    }

    #[test]
    fn display_labels() {
        assert_eq!(Interleave::Sequential.to_string(), "seq");
        assert_eq!(Interleave::Interleaved(6).to_string(), "coro6");
    }

    #[test]
    fn policy_cell_round_trips_and_normalizes() {
        let cell = PolicyCell::new(Interleave::Sequential);
        assert_eq!(cell.load(), Interleave::Sequential);
        cell.store(Interleave::Interleaved(6));
        assert_eq!(cell.load(), Interleave::Interleaved(6));
        // Degenerate group sizes decode through from_group.
        cell.store(Interleave::Interleaved(1));
        assert_eq!(cell.load(), Interleave::Sequential);
        cell.store(Interleave::from_group(8));
        assert_eq!(cell.load(), Interleave::Interleaved(8));
    }

    #[test]
    fn policy_cell_is_shared_across_threads() {
        let cell = std::sync::Arc::new(PolicyCell::new(Interleave::from_group(6)));
        let writer = {
            let cell = std::sync::Arc::clone(&cell);
            std::thread::spawn(move || {
                for g in 1..=64usize {
                    cell.store(Interleave::from_group(g));
                }
            })
        };
        // Every snapshot is a valid, whole policy — never torn.
        for _ in 0..1024 {
            let p = cell.load();
            assert_eq!(p, Interleave::from_group(p.group_or_one()));
            assert!(p.group_or_one() <= 64);
        }
        writer.join().unwrap();
        assert_eq!(cell.load(), Interleave::Interleaved(64));
    }
}

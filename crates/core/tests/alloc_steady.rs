//! Steady-state allocation discipline of the parallel engine.
//!
//! The interleaved scheduler's frame slab makes sequential bulk lookups
//! allocation-free per lookup; the morsel-parallel engine must preserve
//! that across morsel boundaries by reusing each worker's slab. This
//! test pins the property with a counting global allocator: the number
//! of heap allocations performed by a parallel bulk run must not grow
//! with the number of lookups (and hence not with the number of
//! morsels) — only per-call setup (thread spawns, the per-worker slab)
//! may allocate.

#![deny(unsafe_op_in_unsafe_fn)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use isi_core::coro::suspend;
use isi_core::par::{run_interleaved_par, DisjointOut, ParConfig};
use isi_core::sched::{run_interleaved_indexed, FrameSlab};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

// SAFETY: pure pass-through to the `System` allocator (which upholds
// the GlobalAlloc contract); the only addition is a relaxed counter
// bump, which allocates nothing and cannot unwind.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: same contract as ours; layout is forwarded verbatim.
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` came from our `alloc`, which forwarded
        // to `System`, so returning them to `System` is well-paired.
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: `ptr`/`layout` came from our pass-through `alloc`;
        // the caller guarantees `new_size` per the trait contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The counter is process-global, so tests in this binary must not
/// overlap: each one holds this lock around its counted sections.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Count allocations during `f`.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let r = f();
    COUNTING.store(false, Ordering::SeqCst);
    (ALLOCS.load(Ordering::SeqCst), r)
}

/// A lookup coroutine with data-dependent suspensions, like a real
/// binary search.
async fn lookup(v: u32) -> u32 {
    for _ in 0..(v % 7) {
        suspend().await;
    }
    v ^ 0x5555
}

fn run_par(values: &[u32], out: &mut [u32], threads: usize, morsel: usize) {
    let sink = DisjointOut::new(out);
    run_interleaved_par(
        ParConfig {
            threads,
            morsel_size: morsel,
        },
        8,
        values,
        lookup,
        // SAFETY: `run_interleaved_par` passes each input index exactly
        // once, and `i < out.len()` by construction, so the disjoint
        // writes contract of `DisjointOut::write` holds.
        |i, r| unsafe { sink.write(i, r) },
    );
}

/// Allocations of a parallel bulk run are independent of the lookup
/// count: 8x the lookups (and 8x the morsels) must not add a single
/// allocation, for both the single-threaded fast path and the
/// multi-worker path.
#[test]
fn parallel_allocs_do_not_scale_with_lookups() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let small: Vec<u32> = (0..8_192).collect();
    let large: Vec<u32> = (0..65_536).collect();
    let mut out_small = vec![0u32; small.len()];
    let mut out_large = vec![0u32; large.len()];

    for threads in [1usize, 4] {
        // Warm up once (first call may lazily initialize thread-spawn
        // machinery inside std).
        run_par(&small, &mut out_small, threads, 256);

        // 8k lookups in 32 morsels vs 64k lookups in 256 morsels: with
        // slab reuse the extra 224 morsels contribute zero allocations.
        // The only run-to-run variance is which workers happen to claim
        // a morsel at all (a worker that claims none never allocates
        // its slab), so the counts may differ by a few per-worker
        // setups — never by anything proportional to the morsel count.
        let (allocs_small, _) = count_allocs(|| run_par(&small, &mut out_small, threads, 256));
        let (allocs_large, _) = count_allocs(|| run_par(&large, &mut out_large, threads, 256));
        let delta = allocs_large.abs_diff(allocs_small);
        assert!(
            delta <= 2 * threads as u64,
            "threads={threads}: allocation count grew with the morsel \
             count ({allocs_small} -> {allocs_large}; 224 extra morsels): \
             slabs are not being reused across morsels"
        );
    }
    assert!(out_large
        .iter()
        .enumerate()
        .all(|(i, &r)| r == i as u32 ^ 0x5555));
}

/// The single-thread path allocates nothing beyond the one slab buffer.
#[test]
fn single_thread_steady_state_is_allocation_free() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let values: Vec<u32> = (0..4_096).collect();
    let mut out = vec![0u32; values.len()];
    let mut slab = FrameSlab::new();
    // First run allocates the slab buffer once.
    run_interleaved_indexed(
        &mut slab,
        8,
        values.iter().copied().enumerate(),
        lookup,
        |i, r| out[i] = r,
    );
    // Steady state: repeated morsels through the same slab, zero allocs.
    let (allocs, _) = count_allocs(|| {
        for _ in 0..16 {
            run_interleaved_indexed(
                &mut slab,
                8,
                values.iter().copied().enumerate(),
                lookup,
                |i, r| out[i] = r,
            );
        }
    });
    assert_eq!(allocs, 0, "steady-state interleaving must not allocate");
}

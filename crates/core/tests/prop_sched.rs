//! Property-based tests for the schedulers: for *any* set of coroutines
//! with arbitrary suspension counts and any group size, interleaved
//! execution must produce exactly the same input-indexed results as
//! sequential execution, complete every lookup exactly once, and count
//! switches exactly.

use proptest::prelude::*;

use isi_core::coro::suspend;
use isi_core::sched::{run_interleaved, run_interleaved_boxed, run_sequential};

/// A coroutine that suspends `susp` times and returns `tag`.
async fn worker(susp: u8, tag: u32) -> u32 {
    for _ in 0..susp {
        suspend().await;
    }
    tag
}

proptest! {
    // Interpreted execution under Miri is ~100x slower than native;
    // a handful of cases still exercises every code path, and the
    // native run keeps the full 256.
    #![proptest_config(ProptestConfig::with_cases(if cfg!(miri) { 4 } else { 256 }))]

    #[test]
    fn interleaved_equals_sequential(
        suspensions in proptest::collection::vec(0u8..12, 0..80),
        group in 1usize..20,
    ) {
        let items: Vec<(u8, u32)> = suspensions
            .iter()
            .enumerate()
            .map(|(i, s)| (*s, i as u32 * 7))
            .collect();

        let mut seq = vec![u32::MAX; items.len()];
        let seq_stats = run_sequential(
            items.iter().copied(),
            |(s, t)| worker(s, t),
            |i, r| seq[i] = r,
        );

        let mut inter = vec![u32::MAX; items.len()];
        let inter_stats = run_interleaved(
            group,
            items.iter().copied(),
            |(s, t)| worker(s, t),
            |i, r| inter[i] = r,
        );

        let mut boxed = vec![u32::MAX; items.len()];
        let boxed_stats = run_interleaved_boxed(
            group,
            items.iter().copied(),
            |(s, t)| worker(s, t),
            |i, r| boxed[i] = r,
        );

        prop_assert_eq!(&seq, &inter);
        prop_assert_eq!(&seq, &boxed);

        // Exact accounting: every lookup completes once; switches equal
        // the total suspension count regardless of scheduling.
        let total_susp: u64 = suspensions.iter().map(|&s| s as u64).sum();
        for stats in [seq_stats, inter_stats, boxed_stats] {
            prop_assert_eq!(stats.lookups, items.len() as u64);
            prop_assert_eq!(stats.switches, total_susp);
            prop_assert_eq!(stats.resumes, items.len() as u64 + total_susp);
        }
        prop_assert!(inter_stats.peak_in_flight <= group.max(1) as u64);
    }
}

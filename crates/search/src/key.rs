//! Key types for the search benchmarks: primitive integers and the
//! fixed-width 15-character strings of the paper's Section 5.3.

/// A totally ordered, copyable key with a (simulated) comparison cost.
///
/// `COMPARE_COST` feeds the cycle model of `isi-memsim`: integer compares
/// are a cycle; 15-character string compares are a short loop. The paper
/// notes the two "do not differ significantly" (§5.4.5) — a handful of
/// cycles either way.
pub trait SearchKey: Copy + Ord {
    /// Approximate cycles to compare two keys (charged via
    /// `IndexedMem::compute` by instrumented algorithms).
    const COMPARE_COST: u32;
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {
        $(impl SearchKey for $t {
            const COMPARE_COST: u32 = 1;
        })*
    };
}
impl_int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A fixed-width byte string, ordered lexicographically.
///
/// The paper's string arrays hold 15-character values derived from the
/// array index; we use `N = 16` so an element is exactly 16 bytes (four
/// elements per cache line, vs sixteen for `u32` — strings therefore miss
/// more). Shorter strings are zero-padded on the left... see
/// [`FixedStr::from_index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FixedStr<const N: usize>(pub [u8; N]);

/// The paper's 15-character string key (plus one padding byte).
pub type Str16 = FixedStr<16>;

impl<const N: usize> FixedStr<N> {
    /// Build from a `&str`, truncating or right-padding with NUL bytes.
    pub fn from_str_lossy(s: &str) -> Self {
        let mut buf = [0u8; N];
        let bytes = s.as_bytes();
        let n = bytes.len().min(N);
        buf[..n].copy_from_slice(&bytes[..n]);
        Self(buf)
    }

    /// The paper's value scheme (§5.3): "for string arrays we convert the
    /// index to a string of 15 characters, suffixing characters as
    /// necessary". We render the index as a zero-padded decimal so that
    /// lexicographic order coincides with numeric order, then suffix with
    /// `x` up to 15 characters.
    pub fn from_index(i: u64) -> Self {
        let mut buf = [b'x'; N];
        if N > 15 {
            for b in &mut buf[15..] {
                *b = 0;
            }
        }
        let digits = 10.min(N);
        let mut v = i;
        for slot in (0..digits).rev() {
            buf[slot] = b'0' + (v % 10) as u8;
            v /= 10;
        }
        Self(buf)
    }

    /// Borrow the raw bytes.
    pub fn as_bytes(&self) -> &[u8; N] {
        &self.0
    }
}

impl<const N: usize> Default for FixedStr<N> {
    /// All-zero bytes: the smallest value in the ordering.
    fn default() -> Self {
        Self([0; N])
    }
}

impl<const N: usize> std::fmt::Display for FixedStr<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for &b in &self.0 {
            if b == 0 {
                break;
            }
            write!(f, "{}", b as char)?;
        }
        Ok(())
    }
}

impl<const N: usize> SearchKey for FixedStr<N> {
    // A 16-byte memcmp resolves in a few cycles on modern cores.
    const COMPARE_COST: u32 = 3;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_index_preserves_numeric_order() {
        let mut prev = Str16::from_index(0);
        for i in 1..2000u64 {
            let cur = Str16::from_index(i);
            assert!(cur > prev, "order broken at {i}");
            prev = cur;
        }
        // Also across magnitude boundaries.
        assert!(Str16::from_index(9) < Str16::from_index(10));
        assert!(Str16::from_index(99) < Str16::from_index(100));
        assert!(Str16::from_index(999_999_999) < Str16::from_index(1_000_000_000));
    }

    #[test]
    fn from_index_is_15_chars() {
        let s = Str16::from_index(42);
        let txt = s.to_string();
        assert_eq!(txt.len(), 15);
        assert_eq!(txt, "0000000042xxxxx");
        assert_eq!(s.as_bytes()[15], 0, "16th byte is padding");
    }

    #[test]
    fn from_str_lossy_truncates_and_pads() {
        let s = FixedStr::<4>::from_str_lossy("abcdef");
        assert_eq!(&s.0, b"abcd");
        let s = FixedStr::<4>::from_str_lossy("a");
        assert_eq!(&s.0, &[b'a', 0, 0, 0]);
        assert_eq!(s.to_string(), "a");
    }

    #[test]
    fn equality_and_ordering_are_bytewise() {
        let a = FixedStr::<8>::from_str_lossy("apple");
        let b = FixedStr::<8>::from_str_lossy("banana");
        assert!(a < b);
        assert_eq!(a, FixedStr::<8>::from_str_lossy("apple"));
    }

    #[test]
    fn compare_costs_are_positive() {
        // Read through variables so the (intentional) constant
        // comparison exercises the trait rather than tripping lints.
        let int_cost = u32::COMPARE_COST;
        let str_cost = Str16::COMPARE_COST;
        assert!(int_cost >= 1);
        assert!(str_cost > int_cost);
    }
}

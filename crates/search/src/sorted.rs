//! Rank for *sorted* lookup lists: exploiting the Figure 4
//! preprocessing beyond temporal locality.
//!
//! The paper sorts the lookup list and measures the cache-side benefit:
//! consecutive searches touch monotonically increasing positions, so
//! earlier lookups warm the lines for later ones (§5.3). Sorting also
//! enables an *algorithmic* improvement the paper leaves on the table:
//! since `values[i] <= values[i+1]`, lookup `i+1` can start its binary
//! search at `low = rank(values[i])` instead of 0, shrinking the probe
//! chain — and the narrowing variant still composes with interleaving.

use isi_core::coro::suspend;
use isi_core::mem::IndexedMem;
use isi_core::sched::{run_interleaved, RunStats};

use crate::cost;
use crate::key::SearchKey;

/// Bulk rank over an ascending lookup list, narrowing the search range
/// with each result. Output identical to any other rank implementation.
///
/// # Panics
/// Panics if `out.len() != values.len()` or `values` is not ascending.
pub fn bulk_rank_sorted<K: SearchKey, M: IndexedMem<K>>(mem: &M, values: &[K], out: &mut [u32]) {
    assert_eq!(values.len(), out.len(), "output length mismatch");
    for w in values.windows(2) {
        assert!(w[0] <= w[1], "lookup list must be ascending");
    }
    let n = mem.len();
    let mut floor = 0usize; // rank of the previous (smaller) value
    for (v, o) in values.iter().zip(out.iter_mut()) {
        // Search [floor, n): the previous rank lower-bounds this one...
        let mut low = floor;
        let mut size = n - floor;
        loop {
            let half = size / 2;
            if half == 0 {
                break;
            }
            let probe = low + half;
            mem.compute(cost::BASE_ITER + K::COMPARE_COST);
            let le = (*mem.at(probe) <= *v) as usize;
            low = le * probe + (1 - le) * low;
            size -= half;
        }
        // ...except when the probe never moved and the true rank is the
        // clamped 0 of an all-greater table; keep the clamp semantics.
        *o = low as u32;
        floor = low;
    }
}

/// Interleaved rank over a sorted list, partitioned across the group:
/// the list is cut into `group_size` contiguous chunks, each chunk
/// narrowing independently, and the chunk coroutines are interleaved.
/// Combines the algorithmic narrowing with miss hiding.
///
/// # Panics
/// Panics if `out.len() != values.len()`, `values` is not ascending, or
/// `group_size == 0`.
pub fn bulk_rank_sorted_interleaved<K: SearchKey, M: IndexedMem<K> + Copy>(
    mem: M,
    values: &[K],
    group_size: usize,
    out: &mut [u32],
) -> RunStats {
    assert_eq!(values.len(), out.len(), "output length mismatch");
    assert!(group_size > 0, "group_size must be positive");
    for w in values.windows(2) {
        assert!(w[0] <= w[1], "lookup list must be ascending");
    }
    let chunk = values.len().div_ceil(group_size).max(1);

    // One coroutine per contiguous chunk; each narrows within its chunk
    // and suspends at every probe, exactly like `rank_coro`.
    async fn chunk_rank<K: SearchKey, M: IndexedMem<K>>(mem: M, values: Vec<K>) -> Vec<u32> {
        let n = mem.len();
        let mut floor = 0usize;
        let mut out = Vec::with_capacity(values.len());
        for v in values {
            let mut low = floor;
            let mut size = n - floor;
            loop {
                let half = size / 2;
                if half == 0 {
                    break;
                }
                let probe = low + half;
                mem.prefetch(probe);
                suspend().await;
                mem.compute(cost::CORO_ITER + cost::CORO_SWITCH + K::COMPARE_COST);
                let le = (*mem.at(probe) <= v) as usize;
                low = le * probe + (1 - le) * low;
                size -= half;
            }
            out.push(low as u32);
            floor = low;
        }
        out
    }

    let chunks: Vec<Vec<K>> = values.chunks(chunk).map(|c| c.to_vec()).collect();
    let mut results: Vec<Vec<u32>> = vec![Vec::new(); chunks.len()];
    let stats = run_interleaved(
        group_size,
        chunks,
        |c| chunk_rank(mem, c),
        |i, r| results[i] = r,
    );
    let mut pos = 0;
    for r in results {
        out[pos..pos + r.len()].copy_from_slice(&r);
        pos += r.len();
    }
    debug_assert_eq!(pos, out.len());
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::rank_oracle;
    use isi_core::mem::DirectMem;

    fn sorted_probes(n: u32, count: usize) -> Vec<u32> {
        let mut v: Vec<u32> = (0..count as u64)
            .map(|i| ((i * 2654435761) % (2 * n as u64)) as u32)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn narrowing_agrees_with_oracle() {
        let table: Vec<u32> = (0..5000).map(|i| i * 3).collect();
        let values = sorted_probes(15_000, 700);
        let mem = DirectMem::new(&table);
        let mut out = vec![0u32; values.len()];
        bulk_rank_sorted(&mem, &values, &mut out);
        for (i, v) in values.iter().enumerate() {
            assert_eq!(out[i], rank_oracle(&table, v), "v={v}");
        }
    }

    #[test]
    fn interleaved_narrowing_agrees_with_oracle() {
        let table: Vec<u32> = (0..5000).map(|i| i * 3).collect();
        let values = sorted_probes(15_000, 700);
        let mem = DirectMem::new(&table);
        for group in [1, 3, 6, 13] {
            let mut out = vec![0u32; values.len()];
            bulk_rank_sorted_interleaved(mem, &values, group, &mut out);
            for (i, v) in values.iter().enumerate() {
                assert_eq!(out[i], rank_oracle(&table, v), "v={v} group={group}");
            }
        }
    }

    #[test]
    fn duplicates_in_lookup_list() {
        let table: Vec<u32> = (0..100).collect();
        let values = vec![5u32, 5, 5, 50, 50, 99, 99];
        let mem = DirectMem::new(&table);
        let mut out = vec![0u32; values.len()];
        bulk_rank_sorted(&mem, &values, &mut out);
        assert_eq!(out, [5, 5, 5, 50, 50, 99, 99]);
    }

    #[test]
    fn narrowing_probes_fewer_elements() {
        // Count accesses via the sim-free route: charge compute (no-op)
        // but compare probe counts through a counting wrapper.
        use std::cell::Cell;
        struct Counting<'a> {
            inner: DirectMem<'a, u32>,
            probes: &'a Cell<u64>,
        }
        impl<'a> isi_core::mem::IndexedMem<u32> for Counting<'a> {
            fn len(&self) -> usize {
                self.inner.len()
            }
            fn at(&self, idx: usize) -> &u32 {
                self.probes.set(self.probes.get() + 1);
                self.inner.at(idx)
            }
            fn prefetch(&self, idx: usize) {
                self.inner.prefetch(idx)
            }
        }
        let table: Vec<u32> = (0..1 << 16).collect();
        let values = sorted_probes(1 << 16, 1000);
        let probes = Cell::new(0);
        let mem = Counting {
            inner: DirectMem::new(&table),
            probes: &probes,
        };
        let mut out = vec![0u32; values.len()];
        bulk_rank_sorted(&mem, &values, &mut out);
        let narrowed = probes.get();
        probes.set(0);
        crate::seq::bulk_rank_branchfree(&mem, &values, &mut out);
        let full = probes.get();
        assert!(
            narrowed < full * 3 / 4,
            "narrowing should save probes: {narrowed} vs {full}"
        );
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_input_rejected() {
        let table: Vec<u32> = (0..10).collect();
        let mem = DirectMem::new(&table);
        bulk_rank_sorted(&mem, &[5, 3], &mut [0, 0]);
    }

    #[test]
    fn empty_inputs() {
        let table: Vec<u32> = (0..10).collect();
        let mem = DirectMem::new(&table);
        bulk_rank_sorted(&mem, &[], &mut []);
        bulk_rank_sorted_interleaved(mem, &[], 4, &mut []);
        let empty: Vec<u32> = vec![];
        let mem = DirectMem::new(&empty);
        let mut out = [9u32; 2];
        bulk_rank_sorted(&mem, &[1, 2], &mut out);
        assert_eq!(out, [0, 0]);
    }
}

//! `locate`: the dictionary access method built on rank.
//!
//! A sorted dictionary array supports `locate(value) -> code` by binary
//! search (paper Section 2.1): the code of `value` is its array position
//! if present, or "absent" otherwise. `locate` composes any of the five
//! rank implementations with one equality check on the rank position.

use isi_core::mem::IndexedMem;

use crate::coro::{bulk_rank_coro, bulk_rank_coro_seq};
use crate::key::SearchKey;
use crate::seq::{rank_branchfree, rank_branchy};

/// Code returned by bulk locate for values absent from the dictionary
/// (the paper's "special code that denotes absence").
pub const NOT_FOUND: u32 = u32::MAX;

/// Resolve a computed rank into a code: `Some(rank)` iff the element at
/// `rank` equals `value`.
#[inline]
pub fn resolve_rank<K: SearchKey, M: IndexedMem<K>>(mem: &M, rank: u32, value: K) -> Option<u32> {
    if mem.is_empty() {
        return None;
    }
    (*mem.at(rank as usize) == value).then_some(rank)
}

/// Sequential locate via the branch-free baseline search.
pub fn locate<K: SearchKey, M: IndexedMem<K>>(mem: &M, value: K) -> Option<u32> {
    let r = rank_branchfree(mem, value);
    resolve_rank(mem, r, value)
}

/// Sequential locate via the branchy (`std`-style) search.
pub fn locate_branchy<K: SearchKey, M: IndexedMem<K>>(mem: &M, value: K) -> Option<u32> {
    let r = rank_branchy(mem, value);
    resolve_rank(mem, r, value)
}

/// Bulk locate, sequential coroutine execution. Absent values map to
/// [`NOT_FOUND`].
///
/// # Panics
/// Panics if `out.len() != values.len()`.
pub fn bulk_locate_seq<K: SearchKey, M: IndexedMem<K> + Copy>(
    mem: M,
    values: &[K],
    out: &mut [u32],
) {
    bulk_rank_coro_seq(mem, values, out);
    finish_bulk(mem, values, out);
}

/// Bulk locate, interleaved coroutine execution. Absent values map to
/// [`NOT_FOUND`].
///
/// # Panics
/// Panics if `out.len() != values.len()`.
pub fn bulk_locate_interleaved<K: SearchKey, M: IndexedMem<K> + Copy>(
    mem: M,
    values: &[K],
    group_size: usize,
    out: &mut [u32],
) {
    bulk_rank_coro(mem, values, group_size, &mut out[..]);
    finish_bulk(mem, values, out);
}

/// Turn in-place ranks into codes by equality check. The rank position is
/// hot in cache right after the search touched it, so this pass is cheap.
fn finish_bulk<K: SearchKey, M: IndexedMem<K>>(mem: M, values: &[K], out: &mut [u32]) {
    if mem.is_empty() {
        out.fill(NOT_FOUND);
        return;
    }
    for (o, v) in out.iter_mut().zip(values) {
        if *mem.at(*o as usize) != *v {
            *o = NOT_FOUND;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isi_core::mem::DirectMem;

    #[test]
    fn locate_finds_present_values() {
        let dict: Vec<u32> = (0..100).map(|i| i * 2).collect();
        let mem = DirectMem::new(&dict);
        for (code, v) in dict.iter().enumerate() {
            assert_eq!(locate(&mem, *v), Some(code as u32));
            assert_eq!(locate_branchy(&mem, *v), Some(code as u32));
        }
    }

    #[test]
    fn locate_rejects_absent_values() {
        let dict: Vec<u32> = (0..100).map(|i| i * 2).collect();
        let mem = DirectMem::new(&dict);
        for v in [1u32, 3, 77, 199, 200, u32::MAX] {
            assert_eq!(locate(&mem, v), None, "v={v}");
            assert_eq!(locate_branchy(&mem, v), None);
        }
    }

    #[test]
    fn locate_on_empty_dictionary() {
        let dict: Vec<u32> = vec![];
        let mem = DirectMem::new(&dict);
        assert_eq!(locate(&mem, 5), None);
        assert_eq!(locate_branchy(&mem, 5), None);
    }

    #[test]
    fn bulk_locate_matches_scalar_paths() {
        let dict: Vec<u32> = (0..512).map(|i| i * 3).collect();
        let mem = DirectMem::new(&dict);
        let values: Vec<u32> = (0..200).collect(); // mix of hits and misses
        let expect: Vec<u32> = values
            .iter()
            .map(|v| locate(&mem, *v).unwrap_or(NOT_FOUND))
            .collect();

        let mut seq = vec![0u32; values.len()];
        bulk_locate_seq(mem, &values, &mut seq);
        assert_eq!(seq, expect);

        for group in [1, 6, 32] {
            let mut inter = vec![0u32; values.len()];
            bulk_locate_interleaved(mem, &values, group, &mut inter);
            assert_eq!(inter, expect, "group={group}");
        }
    }

    #[test]
    fn bulk_locate_on_empty_dictionary_fills_not_found() {
        let dict: Vec<u32> = vec![];
        let mem = DirectMem::new(&dict);
        let mut out = vec![0u32; 3];
        bulk_locate_seq(mem, &[1, 2, 3], &mut out);
        assert_eq!(out, [NOT_FOUND; 3]);
        bulk_locate_interleaved(mem, &[1, 2, 3], 2, &mut out);
        assert_eq!(out, [NOT_FOUND; 3]);
    }

    #[test]
    fn duplicates_locate_to_last_occurrence() {
        let dict = vec![1u32, 5, 5, 9];
        let mem = DirectMem::new(&dict);
        assert_eq!(locate(&mem, 5), Some(2));
    }
}

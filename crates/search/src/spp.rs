//! Software-pipelined prefetching (SPP) — Chen et al.'s second static
//! technique, which the paper *deliberately omits*: "We have not yet
//! investigated how to form a pipeline with variable size, so we do not
//! provide an SPP implementation" (footnote 2).
//!
//! This module closes that gap. The observation the paper itself makes
//! for GP applies equally to SPP: for binary searches over one table,
//! the number of halving iterations is a function of the table size
//! alone, so every instruction stream executes the *same* number of
//! stages and a classic rotating software pipeline is well-formed.
//!
//! SPP runs `D + 1` lookups in a rotating window at staggered depths:
//! on each tick, the stream in its prefetch slot issues the prefetch for
//! its current probe, and the stream `D` positions behind consumes the
//! element it prefetched `D` ticks ago. Compared to GP, the prefetch
//! distance is constant and tunable instead of depending on the group's
//! position in the loop; compared to AMAC/CORO, streams remain coupled
//! (same iteration counter modulo stage offset), keeping per-stream
//! state minimal.

use isi_core::mem::IndexedMem;

use crate::cost;
use crate::key::SearchKey;

/// Maximum pipeline depth accepted.
pub const MAX_DEPTH: usize = 32;

/// Number of halving iterations of the shared rank loop for a table of
/// `n` elements (the fixed stage count that makes SPP well-formed).
pub fn rank_iterations(n: usize) -> usize {
    let mut size = n;
    let mut iters = 0;
    while size / 2 > 0 {
        size -= size / 2;
        iters += 1;
    }
    iters
}

/// Bulk rank with software-pipelined prefetching at pipeline depth
/// `depth` (prefetch-to-consume distance, in streams). Writes `out[i]`
/// = rank of `values[i]` — identical results to every other
/// implementation in this crate.
///
/// # Panics
/// Panics if `out.len() != values.len()` or `depth` is 0 or exceeds
/// [`MAX_DEPTH`].
pub fn bulk_rank_spp<K: SearchKey, M: IndexedMem<K>>(
    mem: &M,
    values: &[K],
    depth: usize,
    out: &mut [u32],
) {
    assert_eq!(values.len(), out.len(), "output length mismatch");
    assert!(
        (1..=MAX_DEPTH).contains(&depth),
        "depth must be in 1..={MAX_DEPTH}"
    );
    let n = mem.len();
    let iters = rank_iterations(n);
    if values.is_empty() {
        return;
    }
    if iters == 0 {
        out.fill(0);
        return;
    }

    // Per-stream pipeline state: input index, current low, remaining
    // size, iterations completed.
    #[derive(Clone, Copy)]
    struct St {
        input: usize,
        low: usize,
        size: usize,
        done_iters: usize,
    }
    let width = (depth + 1).min(values.len());
    let mut pipe: Vec<St> = (0..width)
        .map(|i| St {
            input: i,
            low: 0,
            size: n,
            done_iters: 0,
        })
        .collect();
    // Prologue: issue the first prefetch for every resident stream.
    for st in &pipe {
        mem.compute(cost::GP_PREFETCH);
        mem.prefetch(st.low + st.size / 2);
    }

    let mut next_input = width;
    let mut remaining = values.len();
    // Steady state: consume the oldest outstanding prefetch, advance
    // that stream, and issue its next prefetch (or retire and refill).
    let mut slot = 0usize;
    while remaining > 0 {
        let st = &mut pipe[slot];
        if st.input >= values.len() {
            slot = (slot + 1) % width;
            continue;
        }
        let half = st.size / 2;
        let probe = st.low + half;
        let le = (*mem.at(probe) <= values[st.input]) as usize;
        mem.compute(cost::GP_ITER + K::COMPARE_COST);
        st.low = le * probe + (1 - le) * st.low;
        st.size -= half;
        st.done_iters += 1;

        if st.done_iters == iters {
            out[st.input] = st.low as u32;
            remaining -= 1;
            // Refill the slot with the next lookup (epilogue leaves the
            // slot idle when inputs run out).
            if next_input < values.len() {
                *st = St {
                    input: next_input,
                    low: 0,
                    size: n,
                    done_iters: 0,
                };
                next_input += 1;
                mem.compute(cost::GP_PREFETCH);
                mem.prefetch(st.size / 2);
            } else {
                st.input = usize::MAX;
            }
        } else {
            mem.compute(cost::GP_PREFETCH);
            mem.prefetch(st.low + st.size / 2);
        }
        slot = (slot + 1) % width;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::rank_oracle;
    use isi_core::mem::DirectMem;

    fn check(table: &[u32], values: &[u32], depth: usize) {
        let mem = DirectMem::new(table);
        let mut out = vec![u32::MAX; values.len()];
        bulk_rank_spp(&mem, values, depth, &mut out);
        for (i, v) in values.iter().enumerate() {
            assert_eq!(out[i], rank_oracle(table, v), "v={v} depth={depth}");
        }
    }

    #[test]
    fn rank_iterations_matches_loop() {
        assert_eq!(rank_iterations(0), 0);
        assert_eq!(rank_iterations(1), 0);
        assert_eq!(rank_iterations(2), 1);
        assert_eq!(rank_iterations(3), 2);
        assert_eq!(rank_iterations(1024), 10);
        assert_eq!(rank_iterations(1000), 10); // not a power of two
    }

    #[test]
    fn agrees_with_oracle_across_depths() {
        let table: Vec<u32> = (0..777).map(|i| i * 2 + 1).collect();
        let values: Vec<u32> = (0..250).map(|i| i * 7).collect();
        for depth in [1, 2, 4, 6, 9, 32] {
            check(&table, &values, depth);
        }
    }

    #[test]
    fn fewer_values_than_pipeline_width() {
        let table: Vec<u32> = (0..64).collect();
        check(&table, &[5, 60], 9);
        check(&table, &[5], 4);
    }

    #[test]
    fn empty_inputs_and_tiny_tables() {
        let table: Vec<u32> = (0..64).collect();
        check(&table, &[], 4);
        check(&[], &[1, 2, 3], 4);
        check(&[42], &[0, 42, 100], 4);
        check(&[1, 9], &[0, 1, 5, 9, 10], 3);
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn zero_depth_rejected() {
        let t = vec![1u32];
        let mem = DirectMem::new(&t);
        bulk_rank_spp(&mem, &[1], 0, &mut [0]);
    }

    #[test]
    fn string_keys_work() {
        use crate::key::Str16;
        let table: Vec<Str16> = (0..321).map(|i| Str16::from_index(i * 2)).collect();
        let mem = DirectMem::new(&table);
        let values: Vec<Str16> = (0..90).map(|i| Str16::from_index(i * 7 + 1)).collect();
        let mut out = vec![0u32; values.len()];
        bulk_rank_spp(&mem, &values, 6, &mut out);
        for (i, v) in values.iter().enumerate() {
            assert_eq!(out[i], rank_oracle(&table, v));
        }
    }

    #[test]
    fn matches_gp_exactly() {
        use crate::gp::bulk_rank_gp;
        let table: Vec<u32> = (0..4096).collect();
        let values: Vec<u32> = (0..500).map(|i| i * 13 % 5000).collect();
        let mem = DirectMem::new(&table);
        let mut spp = vec![0u32; values.len()];
        let mut gp = vec![0u32; values.len()];
        bulk_rank_spp(&mem, &values, 9, &mut spp);
        bulk_rank_gp(&mem, &values, 10, &mut gp);
        assert_eq!(spp, gp);
    }
}

//! Morsel-parallel bulk drivers for all five search implementations.
//!
//! Thin layers over [`isi_core::par`]: the batch is split into morsels,
//! worker threads claim morsels through a work-stealing cursor, and
//! each morsel runs through the *same* kernel as the single-threaded
//! drivers — `rank_branchy`/`rank_branchfree` loops, the GP and AMAC
//! group engines, or the coroutine scheduler with a per-worker
//! [`FrameSlab`](isi_core::sched::FrameSlab) reused across morsels
//! (zero heap allocations per lookup in steady state).
//!
//! Every function writes `out[i]` = rank of `values[i]`, exactly as the
//! sequential drivers do; with `cfg.threads == 1` they degenerate to a
//! morsel loop on the calling thread.

use isi_core::mem::IndexedMem;
use isi_core::par::{for_each_morsel, run_interleaved_par, DisjointOut, ParConfig};
use isi_core::sched::RunStats;

use crate::amac::bulk_rank_amac;
use crate::coro::rank_coro;
use crate::gp::bulk_rank_gp;
use crate::key::SearchKey;
use crate::seq::{rank_branchfree, rank_branchy};

/// Morsel-parallel [`rank_branchy`](crate::seq::rank_branchy) (`std`).
///
/// # Panics
/// Panics if `out.len() != values.len()`.
pub fn bulk_rank_branchy_par<K, M>(mem: &M, values: &[K], cfg: ParConfig, out: &mut [u32])
where
    K: SearchKey + Sync,
    M: IndexedMem<K> + Sync,
{
    assert_eq!(values.len(), out.len(), "output length mismatch");
    let sink = DisjointOut::new(out);
    for_each_morsel(cfg, values.len(), |range| {
        // SAFETY: morsel ranges are disjoint and each is processed by
        // exactly one worker.
        let dst = unsafe { sink.slice_mut(range.clone()) };
        for (o, v) in dst.iter_mut().zip(&values[range]) {
            *o = rank_branchy(mem, *v);
        }
    });
}

/// Morsel-parallel [`rank_branchfree`](crate::seq::rank_branchfree)
/// (`Baseline`).
///
/// # Panics
/// Panics if `out.len() != values.len()`.
pub fn bulk_rank_branchfree_par<K, M>(mem: &M, values: &[K], cfg: ParConfig, out: &mut [u32])
where
    K: SearchKey + Sync,
    M: IndexedMem<K> + Sync,
{
    assert_eq!(values.len(), out.len(), "output length mismatch");
    let sink = DisjointOut::new(out);
    for_each_morsel(cfg, values.len(), |range| {
        // SAFETY: morsel ranges are disjoint and each is processed by
        // exactly one worker.
        let dst = unsafe { sink.slice_mut(range.clone()) };
        for (o, v) in dst.iter_mut().zip(&values[range]) {
            *o = rank_branchfree(mem, *v);
        }
    });
}

/// Morsel-parallel group prefetching: each worker runs the GP engine
/// over its claimed morsels (group state stays worker-local on the
/// stack).
///
/// # Panics
/// Panics if `out.len() != values.len()`, `group_size == 0` or
/// `group_size > `[`MAX_GROUP`](crate::gp::MAX_GROUP).
pub fn bulk_rank_gp_par<K, M>(
    mem: &M,
    values: &[K],
    group_size: usize,
    cfg: ParConfig,
    out: &mut [u32],
) where
    K: SearchKey + Sync,
    M: IndexedMem<K> + Sync,
{
    assert_eq!(values.len(), out.len(), "output length mismatch");
    assert!(
        (1..=crate::gp::MAX_GROUP).contains(&group_size),
        "group_size must be in 1..={}",
        crate::gp::MAX_GROUP
    );
    let sink = DisjointOut::new(out);
    for_each_morsel(cfg, values.len(), |range| {
        // SAFETY: morsel ranges are disjoint and each is processed by
        // exactly one worker.
        let dst = unsafe { sink.slice_mut(range.clone()) };
        bulk_rank_gp(mem, &values[range], group_size, dst);
    });
}

/// Morsel-parallel AMAC: each worker services its own circular buffer
/// of stream states over its claimed morsels.
///
/// # Panics
/// Panics if `out.len() != values.len()` or `group_size == 0`.
pub fn bulk_rank_amac_par<K, M>(
    mem: &M,
    values: &[K],
    group_size: usize,
    cfg: ParConfig,
    out: &mut [u32],
) where
    K: SearchKey + Sync,
    M: IndexedMem<K> + Sync,
{
    assert_eq!(values.len(), out.len(), "output length mismatch");
    assert!(group_size > 0, "group_size must be positive");
    let sink = DisjointOut::new(out);
    for_each_morsel(cfg, values.len(), |range| {
        // SAFETY: morsel ranges are disjoint and each is processed by
        // exactly one worker.
        let dst = unsafe { sink.slice_mut(range.clone()) };
        bulk_rank_amac(mem, &values[range], group_size, dst);
    });
}

/// Morsel-parallel coroutine interleaving — the paper's CORO composed
/// with thread-level parallelism. The same
/// [`rank_coro`](crate::coro::rank_coro) coroutine and the same
/// interleaved scheduler run on every worker; each worker reuses one
/// frame slab across all the morsels it claims.
///
/// Returns the merged [`RunStats`] (totals sum; `peak_in_flight` is the
/// per-worker peak).
///
/// # Panics
/// Panics if `out.len() != values.len()`.
pub fn bulk_rank_coro_par<K, M>(
    mem: M,
    values: &[K],
    group_size: usize,
    cfg: ParConfig,
    out: &mut [u32],
) -> RunStats
where
    K: SearchKey + Sync,
    M: IndexedMem<K> + Copy + Sync,
{
    assert_eq!(values.len(), out.len(), "output length mismatch");
    let sink = DisjointOut::new(out);
    run_interleaved_par(
        cfg,
        group_size,
        values,
        |v| rank_coro::<true, K, M>(mem, v),
        // SAFETY: the scheduler emits each claimed input index exactly
        // once, and claimed morsel ranges are disjoint across workers.
        |i, r| unsafe { sink.write(i, r) },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::rank_oracle;
    use isi_core::mem::DirectMem;

    fn cfg(threads: usize) -> ParConfig {
        ParConfig {
            threads,
            morsel_size: 128,
        }
    }

    #[test]
    fn all_parallel_variants_agree_with_oracle() {
        let table: Vec<u32> = (0..4096).map(|i| i * 3).collect();
        let values: Vec<u32> = (0..1777).map(|i| i * 7 % 13_000).collect();
        let expect: Vec<u32> = values.iter().map(|v| rank_oracle(&table, v)).collect();
        let mem = DirectMem::new(&table);
        for threads in [1, 2, 4] {
            let c = cfg(threads);
            let mut out = vec![u32::MAX; values.len()];
            bulk_rank_branchy_par(&mem, &values, c, &mut out);
            assert_eq!(out, expect, "branchy threads={threads}");

            out.fill(u32::MAX);
            bulk_rank_branchfree_par(&mem, &values, c, &mut out);
            assert_eq!(out, expect, "branchfree threads={threads}");

            out.fill(u32::MAX);
            bulk_rank_gp_par(&mem, &values, 10, c, &mut out);
            assert_eq!(out, expect, "gp threads={threads}");

            out.fill(u32::MAX);
            bulk_rank_amac_par(&mem, &values, 6, c, &mut out);
            assert_eq!(out, expect, "amac threads={threads}");

            out.fill(u32::MAX);
            let stats = bulk_rank_coro_par(mem, &values, 6, c, &mut out);
            assert_eq!(out, expect, "coro threads={threads}");
            assert_eq!(stats.lookups, values.len() as u64);
        }
    }

    #[test]
    fn empty_values_are_fine() {
        let table: Vec<u32> = (0..16).collect();
        let mem = DirectMem::new(&table);
        let mut out: Vec<u32> = vec![];
        bulk_rank_branchy_par(&mem, &[], cfg(4), &mut out);
        bulk_rank_gp_par(&mem, &[], 4, cfg(4), &mut out);
        let stats = bulk_rank_coro_par(mem, &[], 4, cfg(4), &mut out);
        assert_eq!(stats, RunStats::default());
    }

    #[test]
    fn string_keys_work_in_parallel() {
        use crate::key::Str16;
        let table: Vec<Str16> = (0..600).map(|i| Str16::from_index(i * 2)).collect();
        let values: Vec<Str16> = (0..300).map(|i| Str16::from_index(i * 5 + 1)).collect();
        let mem = DirectMem::new(&table);
        let mut out = vec![0u32; values.len()];
        bulk_rank_coro_par(mem, &values, 6, cfg(4), &mut out);
        for (i, v) in values.iter().enumerate() {
            assert_eq!(out[i], rank_oracle(&table, v));
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let table: Vec<u32> = (0..8).collect();
        let mem = DirectMem::new(&table);
        bulk_rank_coro_par(mem, &[1, 2], 4, cfg(2), &mut [0u32]);
    }

    #[test]
    #[should_panic(expected = "group_size")]
    fn gp_group_bounds_enforced_before_spawning() {
        let table: Vec<u32> = (0..8).collect();
        let mem = DirectMem::new(&table);
        bulk_rank_gp_par(&mem, &[1], crate::gp::MAX_GROUP + 1, cfg(2), &mut [0]);
    }
}

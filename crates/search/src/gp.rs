//! Group prefetching (GP) — the paper's Listing 3, after Chen et al.
//!
//! GP is *static* interleaving: the binary-search loop is shared by the
//! whole group, so all instruction streams advance in lock-step through
//! the same `size` sequence. Each iteration first issues the prefetch for
//! every stream's probe position, then performs every stream's load and
//! comparison — by which time the earlier prefetches have (partially)
//! completed. Coupling the streams keeps per-stream state minimal (just
//! `low`; `probe` is recomputed), which is why GP has the lowest switch
//! overhead of the three techniques (§5.4.4) — but it only applies when
//! every stream executes the same stage sequence.

use isi_core::mem::IndexedMem;

use crate::cost;
use crate::key::SearchKey;

/// Maximum group size accepted (a GP group shares one state array; huge
/// groups would only thrash the cache — §5.4.5).
pub const MAX_GROUP: usize = 64;

// [table5:gp:begin]
/// Bulk rank with group prefetching. Processes `values` in groups of
/// `group_size`, writing `out[i]` = rank of `values[i]`.
///
/// # Panics
/// Panics if `out.len() != values.len()` or `group_size == 0` or
/// `group_size > MAX_GROUP`.
pub fn bulk_rank_gp<K: SearchKey, M: IndexedMem<K>>(
    mem: &M,
    values: &[K],
    group_size: usize,
    out: &mut [u32],
) {
    assert_eq!(values.len(), out.len(), "output length mismatch");
    assert!(
        (1..=MAX_GROUP).contains(&group_size),
        "group_size must be in 1..={MAX_GROUP}"
    );
    let n = mem.len();
    let mut lows = [0usize; MAX_GROUP];

    let mut base = 0;
    for group in values.chunks(group_size) {
        let g = group.len();
        lows[..g].fill(0);
        // The search loop is shared by the whole group (stream coupling).
        let mut size = n;
        loop {
            let half = size / 2;
            if half == 0 {
                break;
            }
            // Prefetch stage: issue every stream's probe.
            for low in &lows[..g] {
                mem.compute(cost::GP_PREFETCH);
                mem.prefetch(low + half);
            }
            // Load stage: by now the first prefetches have had `g - 1`
            // streams' worth of work to complete.
            for (i, low) in lows[..g].iter_mut().enumerate() {
                let probe = *low + half;
                let le = (*mem.at(probe) <= group[i]) as usize;
                mem.compute(cost::GP_ITER + K::COMPARE_COST);
                *low = le * probe + (1 - le) * *low;
            }
            size -= half;
        }
        for (i, low) in lows[..g].iter().enumerate() {
            out[base + i] = *low as u32;
        }
        base += g;
    }
}
// [table5:gp:end]

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::rank_oracle;
    use isi_core::mem::DirectMem;

    fn check(table: &[u32], values: &[u32], group: usize) {
        let mem = DirectMem::new(table);
        let mut out = vec![0u32; values.len()];
        bulk_rank_gp(&mem, values, group, &mut out);
        for (i, v) in values.iter().enumerate() {
            assert_eq!(out[i], rank_oracle(table, v), "v={v} group={group}");
        }
    }

    #[test]
    fn agrees_with_oracle_across_group_sizes() {
        let table: Vec<u32> = (0..257).map(|i| i * 3).collect();
        let values: Vec<u32> = (0..100).map(|i| i * 7 + 1).collect();
        for group in [1, 2, 3, 5, 8, 10, 16, 64] {
            check(&table, &values, group);
        }
    }

    #[test]
    fn partial_final_group() {
        // 10 values with group 4 leaves a final group of 2.
        let table: Vec<u32> = (0..64).collect();
        let values: Vec<u32> = (0..10).map(|i| i * 5).collect();
        check(&table, &values, 4);
    }

    #[test]
    fn empty_values() {
        let table: Vec<u32> = (0..8).collect();
        check(&table, &[], 4);
    }

    #[test]
    fn empty_table_ranks_zero() {
        let table: Vec<u32> = vec![];
        let mem = DirectMem::new(&table);
        let mut out = vec![9u32; 3];
        bulk_rank_gp(&mem, &[1, 2, 3], 2, &mut out);
        assert_eq!(out, [0, 0, 0]);
    }

    #[test]
    fn single_element_table() {
        check(&[42], &[0, 42, 100], 2);
    }

    #[test]
    #[should_panic(expected = "group_size")]
    fn zero_group_rejected() {
        let t = vec![1u32];
        let mem = DirectMem::new(&t);
        bulk_rank_gp(&mem, &[1], 0, &mut [0]);
    }

    #[test]
    #[should_panic(expected = "group_size")]
    fn oversized_group_rejected() {
        let t = vec![1u32];
        let mem = DirectMem::new(&t);
        bulk_rank_gp(&mem, &[1], MAX_GROUP + 1, &mut [0]);
    }

    #[test]
    fn string_keys_work() {
        use crate::key::Str16;
        let table: Vec<Str16> = (0..100).map(|i| Str16::from_index(i * 2)).collect();
        let mem = DirectMem::new(&table);
        let values: Vec<Str16> = (0..40).map(|i| Str16::from_index(i * 5 + 1)).collect();
        let mut out = vec![0u32; values.len()];
        bulk_rank_gp(&mem, &values, 6, &mut out);
        for (i, v) in values.iter().enumerate() {
            assert_eq!(out[i], rank_oracle(&table, v));
        }
    }
}

//! Asynchronous memory access chaining (AMAC) — the paper's Listing 4,
//! after Kocberber et al. (PVLDB 9(4), 2015).
//!
//! AMAC is *dynamic* interleaving by hand: the binary search is rewritten
//! as an explicit finite state machine, one `match` arm per stage, and a
//! circular buffer of per-stream states is serviced round-robin. Each
//! stream carries its complete loop state (`value`, `low`, `probe`,
//! `size`, `stage`), so streams progress independently — the flexibility
//! the paper's coroutines match without the manual rewrite. This module
//! exists both as a baseline for the performance comparison and as the
//! "very high added code complexity" exhibit of Table 3: compare its
//! bulk lookup with the six added lines of [`crate::coro::rank_coro`].

use isi_core::mem::IndexedMem;

use crate::cost;
use crate::key::SearchKey;

// [table5:amac:begin]
/// Stage of one AMAC instruction stream (Listing 4's `enum stage`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// Pick up the next input value, or retire the slot.
    Init,
    /// Compute the probe, issue its prefetch, halve the range.
    Prefetch,
    /// Consume the prefetched element and fold it into `low`.
    Access,
    /// Slot has no more work.
    Done,
}

/// Per-stream state, the hand-maintained analogue of a coroutine frame.
#[derive(Debug, Clone, Copy)]
struct State<K> {
    value: K,
    input: usize,
    low: usize,
    probe: usize,
    size: usize,
    stage: Stage,
}

/// Bulk rank with AMAC. Writes `out[i]` = rank of `values[i]`.
///
/// # Panics
/// Panics if `out.len() != values.len()` or `group_size == 0`.
pub fn bulk_rank_amac<K: SearchKey, M: IndexedMem<K>>(
    mem: &M,
    values: &[K],
    group_size: usize,
    out: &mut [u32],
) {
    assert_eq!(values.len(), out.len(), "output length mismatch");
    assert!(group_size > 0, "group_size must be positive");
    if values.is_empty() {
        return;
    }
    let n = mem.len();
    let g = group_size.min(values.len());

    // Circular buffer of stream states (Listing 4 line 14).
    let mut buf: Vec<State<K>> = (0..g)
        .map(|_| State {
            value: values[0],
            input: 0,
            low: 0,
            probe: 0,
            size: 0,
            stage: Stage::Init,
        })
        .collect();
    let mut next_input = 0usize;
    let mut not_done = g;
    let mut cursor = 0usize;

    while not_done > 0 {
        let st = &mut buf[cursor];
        match st.stage {
            Stage::Init => {
                if next_input < values.len() {
                    st.value = values[next_input];
                    st.input = next_input;
                    st.low = 0;
                    st.size = n;
                    st.stage = Stage::Prefetch;
                    next_input += 1;
                    // Fall through to Prefetch on the next visit; charge
                    // the state-management cost of this visit.
                    mem.compute(cost::AMAC_ITER / 2);
                } else {
                    st.stage = Stage::Done;
                    not_done -= 1;
                }
            }
            Stage::Prefetch => {
                let half = st.size / 2;
                if half > 0 {
                    st.probe = st.low + half;
                    mem.compute(cost::AMAC_ITER / 2);
                    mem.prefetch(st.probe);
                    st.size -= half;
                    st.stage = Stage::Access;
                } else {
                    // Output the result and start the next lookup.
                    out[st.input] = st.low as u32;
                    st.stage = Stage::Init;
                }
            }
            Stage::Access => {
                let le = (*mem.at(st.probe) <= st.value) as usize;
                // State writeback to the circular buffer cannot overlap
                // the miss it just consumed.
                mem.compute(cost::AMAC_ITER / 2 + K::COMPARE_COST);
                st.low = le * st.probe + (1 - le) * st.low;
                st.stage = Stage::Prefetch;
            }
            Stage::Done => {}
        }
        cursor += 1;
        if cursor == g {
            cursor = 0;
        }
    }
}
// [table5:amac:end]

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::rank_oracle;
    use isi_core::mem::DirectMem;

    fn check(table: &[u32], values: &[u32], group: usize) {
        let mem = DirectMem::new(table);
        let mut out = vec![u32::MAX; values.len()];
        bulk_rank_amac(&mem, values, group, &mut out);
        for (i, v) in values.iter().enumerate() {
            assert_eq!(out[i], rank_oracle(table, v), "v={v} group={group}");
        }
    }

    #[test]
    fn agrees_with_oracle_across_group_sizes() {
        let table: Vec<u32> = (0..300).map(|i| i * 2 + 1).collect();
        let values: Vec<u32> = (0..120).map(|i| i * 5).collect();
        for group in [1, 2, 3, 6, 10, 32, 120, 500] {
            check(&table, &values, group);
        }
    }

    #[test]
    fn group_larger_than_input_is_clamped() {
        check(&[1, 2, 3], &[0, 2, 9], 64);
    }

    #[test]
    fn empty_values_return_immediately() {
        let table: Vec<u32> = (0..8).collect();
        check(&table, &[], 4);
    }

    #[test]
    fn empty_table_ranks_zero() {
        let table: Vec<u32> = vec![];
        let mem = DirectMem::new(&table);
        let mut out = vec![9u32; 2];
        bulk_rank_amac(&mem, &[4, 5], 2, &mut out);
        assert_eq!(out, [0, 0]);
    }

    #[test]
    fn every_output_slot_is_written() {
        let table: Vec<u32> = (0..1000).collect();
        let values: Vec<u32> = (0..77).map(|i| i * 13).collect();
        let mem = DirectMem::new(&table);
        let mut out = vec![u32::MAX; values.len()];
        bulk_rank_amac(&mem, &values, 6, &mut out);
        assert!(out.iter().all(|&o| o != u32::MAX));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_group_rejected() {
        let t = vec![1u32];
        let mem = DirectMem::new(&t);
        bulk_rank_amac(&mem, &[1], 0, &mut [0]);
    }

    #[test]
    fn string_keys_work() {
        use crate::key::Str16;
        let table: Vec<Str16> = (0..128).map(|i| Str16::from_index(i * 3)).collect();
        let mem = DirectMem::new(&table);
        let values: Vec<Str16> = (0..50).map(|i| Str16::from_index(i * 7)).collect();
        let mut out = vec![0u32; values.len()];
        bulk_rank_amac(&mem, &values, 6, &mut out);
        for (i, v) in values.iter().enumerate() {
            assert_eq!(out[i], rank_oracle(&table, v));
        }
    }

    #[test]
    fn streams_progress_independently() {
        // A table of 1 element finishes in zero iterations while a big
        // range takes many: mixing lookups over the same table with very
        // different convergence is handled by per-stream state.
        let table: Vec<u32> = (0..1 << 14).collect();
        let values: Vec<u32> = vec![0, 1 << 13, 3, 16000, 42, 9999, 1, 12345];
        check(&table, &values, 3);
    }
}

//! Group-size auto-tuning: pick the interleaving group size at runtime.
//!
//! The paper derives the optimal group size from a profiling session
//! plus Inequality 1 (§5.4.5) — fine for a lab, awkward in production.
//! A database engine would rather calibrate on a small sample of the
//! actual lookup stream. [`autotune_group_size`] does exactly that:
//! measure the bulk-lookup throughput of a pilot sample at increasing
//! group sizes and stop when an additional stream stops paying for
//! itself, mirroring the flattening the paper observes in Figure 7.

use std::time::Instant;

use isi_core::mem::IndexedMem;

use crate::coro::bulk_rank_coro;
use crate::key::SearchKey;

/// Result of one calibration run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunePoint {
    /// Group size measured.
    pub group: usize,
    /// Nanoseconds per lookup at that group size.
    pub ns_per_lookup: f64,
}

/// Outcome of the calibration sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneResult {
    /// Chosen group size.
    pub best_group: usize,
    /// The whole measured curve, for diagnostics.
    pub curve: Vec<TunePoint>,
}

/// Calibrate the coroutine group size on a pilot sample.
///
/// Sweeps `G = 1..=max_group`, measuring the pilot's per-lookup time,
/// and returns the smallest group whose time is within `tolerance`
/// (e.g. 0.05 = 5%) of the best seen — preferring smaller groups, which
/// use less cache, when the curve has flattened (§5.4.5: beyond the
/// optimum "performance may deteriorate due to cache conflicts").
///
/// # Panics
/// Panics if `pilot` is empty or `max_group` is 0.
pub fn autotune_group_size<K: SearchKey, M: IndexedMem<K> + Copy>(
    mem: M,
    pilot: &[K],
    max_group: usize,
    tolerance: f64,
) -> TuneResult {
    assert!(!pilot.is_empty(), "need a non-empty pilot sample");
    assert!(max_group >= 1, "max_group must be at least 1");
    let mut out = vec![0u32; pilot.len()];
    // Warm-up pass so the first measured point is not penalized.
    bulk_rank_coro(mem, pilot, 1, &mut out);

    let mut curve = Vec::with_capacity(max_group);
    let mut best = f64::INFINITY;
    for group in 1..=max_group {
        let t = Instant::now();
        bulk_rank_coro(mem, pilot, group, &mut out);
        std::hint::black_box(&mut out);
        let ns = t.elapsed().as_nanos() as f64 / pilot.len() as f64;
        best = best.min(ns);
        curve.push(TunePoint {
            group,
            ns_per_lookup: ns,
        });
    }
    let best_group = curve
        .iter()
        .find(|p| p.ns_per_lookup <= best * (1.0 + tolerance))
        .map(|p| p.group)
        .unwrap_or(1);
    TuneResult { best_group, curve }
}

/// Scale a calibrated group size by an observed *density*: the
/// fraction of probes that will not stall on memory and therefore
/// contribute no miss for interleaving to hide. Two producers of that
/// number exist today: the serve path's per-shard delta-decided
/// fraction (planned keys never reach the engine — see
/// `LookupService::suggested_groups` in `isi_serve`) and the adaptive
/// backend's cache-residency hint rate
/// ([`hint_density`](crate::adaptive::hint_density)).
///
/// A group of `G` streams exists to keep `G` misses in flight; if a
/// fraction `density` of probes complete without missing, only
/// `G · (1 − density)` streams do useful overlapping, so the group
/// shrinks proportionally (never below 1, never above `calibrated` —
/// §5.4.5's cache-conflict ceiling still applies).
///
/// `density` outside `[0, 1]` (including NaN) is clamped.
pub fn group_for_density(calibrated: usize, density: f64) -> usize {
    assert!(calibrated >= 1, "calibrated group must be at least 1");
    let density = if density.is_nan() {
        0.0
    } else {
        density.clamp(0.0, 1.0)
    };
    let scaled = (calibrated as f64 * (1.0 - density)).ceil() as usize;
    scaled.clamp(1, calibrated)
}

/// Delta-decided density from raw counters: the fraction of probed
/// keys the plan stage answered out of the delta (`delta_hits`) of all
/// keys that entered the lookup path (`delta_hits + engine_lookups`).
///
/// The zero-denominator case — an empty-main shard that has served no
/// reads yet, or a window with no read traffic — returns `0.0`
/// ("assume misses"), so [`group_for_density`] keeps the calibrated
/// group instead of receiving a NaN from `0 / 0`. Every consumer of a
/// counter-derived density (`LookupService::suggested_groups`, the
/// retune controller) must come through here rather than dividing
/// inline.
pub fn density_for_counts(delta_hits: u64, engine_lookups: u64) -> f64 {
    let total = delta_hits + engine_lookups;
    if total == 0 {
        0.0
    } else {
        delta_hits as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isi_core::mem::DirectMem;

    #[test]
    fn density_scales_the_calibrated_group() {
        // Nothing cached: the calibration stands.
        assert_eq!(group_for_density(8, 0.0), 8);
        // Everything answered before the engine: interleaving buys
        // nothing, fall to a single stream.
        assert_eq!(group_for_density(8, 1.0), 1);
        // Half the probes miss: half the streams still pay.
        assert_eq!(group_for_density(8, 0.5), 4);
        // Ceil keeps a fractional residual stream alive.
        assert_eq!(group_for_density(6, 0.9), 1);
        assert_eq!(group_for_density(10, 0.85), 2);
        // Out-of-range and NaN densities clamp instead of panicking.
        assert_eq!(group_for_density(8, -3.0), 8);
        assert_eq!(group_for_density(8, 7.0), 1);
        assert_eq!(group_for_density(8, f64::NAN), 8);
    }

    #[test]
    #[should_panic(expected = "calibrated group")]
    fn zero_calibrated_group_rejected() {
        group_for_density(0, 0.5);
    }

    #[test]
    fn counter_density_handles_the_extremes() {
        // Empty shard / no traffic: zero denominator must yield 0.0
        // (keep the calibrated group), not NaN.
        assert_eq!(density_for_counts(0, 0), 0.0);
        assert_eq!(group_for_density(8, density_for_counts(0, 0)), 8);
        // All-delta: every key decided by the plan stage, density 1,
        // group clamps to a single stream without panicking.
        assert_eq!(density_for_counts(100, 0), 1.0);
        assert_eq!(group_for_density(8, density_for_counts(100, 0)), 1);
        // Mixed traffic is a plain fraction.
        assert_eq!(density_for_counts(25, 75), 0.25);
        assert_eq!(density_for_counts(0, 50), 0.0);
    }

    #[test]
    fn tuner_returns_a_valid_group() {
        let table: Vec<u32> = (0..1 << 20).collect();
        let pilot: Vec<u32> = (0..2000).map(|i| i * 523 % (1 << 20)).collect();
        let mem = DirectMem::new(&table);
        let r = autotune_group_size(mem, &pilot, 12, 0.05);
        assert!((1..=12).contains(&r.best_group));
        assert_eq!(r.curve.len(), 12);
        assert!(r.curve.iter().all(|p| p.ns_per_lookup > 0.0));
    }

    #[test]
    fn tolerance_prefers_smaller_groups() {
        // With an enormous tolerance, group 1 is always "good enough".
        let table: Vec<u32> = (0..1 << 16).collect();
        let pilot: Vec<u32> = (0..500).collect();
        let mem = DirectMem::new(&table);
        let r = autotune_group_size(mem, &pilot, 8, 1000.0);
        assert_eq!(r.best_group, 1);
    }

    #[test]
    #[should_panic(expected = "non-empty pilot")]
    fn empty_pilot_rejected() {
        let table: Vec<u32> = vec![1];
        let mem = DirectMem::new(&table);
        autotune_group_size(mem, &[], 8, 0.05);
    }
}

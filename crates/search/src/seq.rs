//! Sequential binary-search implementations: the branchy
//! `std::lower_bound`-style search and the branch-free `Baseline` of the
//! paper's Listing 2.
//!
//! All searches in this crate share one result convention, **rank**: the
//! largest index `i` with `table[i] <= value`, or `0` if no such index
//! exists (callers distinguish the two zero cases via
//! [`locate`](crate::locate::locate)). The convention matches the paper's
//! listings, which track a `low` cursor moved by `table[probe] <= value`
//! comparisons, and makes every implementation's output byte-identical —
//! the property the cross-implementation tests assert.

use isi_core::mem::IndexedMem;

use crate::cost;
use crate::key::SearchKey;

/// Branchy binary search in the style of `std::lower_bound`.
///
/// The comparison result steers an actual conditional branch, which the
/// hardware predicts with ~50% accuracy on uniform lookups — the *bad
/// speculation* the paper profiles in Section 2.2. On the simulator the
/// branch is reported via [`IndexedMem::branch`]; pair it with a
/// speculative memory handle (`SimArray::mem_speculative`) to model the
/// stall overlap speculation buys (§5.4.1).
pub fn rank_branchy<K: SearchKey, M: IndexedMem<K>>(mem: &M, value: K) -> u32 {
    let mut lo = 0usize;
    let mut size = mem.len();
    while size > 0 {
        let half = size / 2;
        let mid = lo + half;
        mem.compute(cost::BRANCHY_ITER + K::COMPARE_COST);
        let taken = *mem.at(mid) <= value;
        mem.branch(taken);
        if taken {
            lo = mid + 1;
            size -= half + 1;
        } else {
            size = half;
        }
    }
    lo.saturating_sub(1) as u32
}

// [table5:baseline:begin]
/// Branch-free binary search — the paper's `Baseline` (Listing 2 with the
/// conditional move the text describes).
///
/// The comparison selects the new `low` arithmetically, so no branch is
/// speculated and no pipeline slots are wasted; the price is that the
/// dependent load cannot issue before the comparison resolves, which is
/// exactly why `std` overtakes `Baseline` once the array outgrows the
/// cache (§5.4.1).
pub fn rank_branchfree<K: SearchKey, M: IndexedMem<K>>(mem: &M, value: K) -> u32 {
    let mut low = 0usize;
    let mut size = mem.len();
    loop {
        let half = size / 2;
        if half == 0 {
            break;
        }
        let probe = low + half;
        mem.compute(cost::BASE_ITER + K::COMPARE_COST);
        // Branch-free select: on x86-64 this lowers to CMOV.
        let le = (*mem.at(probe) <= value) as usize;
        low = le * probe + (1 - le) * low;
        size -= half;
    }
    low as u32
}
// [table5:baseline:end]

/// Bulk wrapper over [`rank_branchy`]: one output rank per value.
///
/// # Panics
/// Panics if `out.len() != values.len()`.
pub fn bulk_rank_branchy<K: SearchKey, M: IndexedMem<K>>(mem: &M, values: &[K], out: &mut [u32]) {
    assert_eq!(values.len(), out.len(), "output length mismatch");
    for (v, o) in values.iter().zip(out.iter_mut()) {
        *o = rank_branchy(mem, *v);
    }
}

/// Bulk wrapper over [`rank_branchfree`].
///
/// # Panics
/// Panics if `out.len() != values.len()`.
pub fn bulk_rank_branchfree<K: SearchKey, M: IndexedMem<K>>(
    mem: &M,
    values: &[K],
    out: &mut [u32],
) {
    assert_eq!(values.len(), out.len(), "output length mismatch");
    for (v, o) in values.iter().zip(out.iter_mut()) {
        *o = rank_branchfree(mem, *v);
    }
}

/// Reference implementation via the standard library, used by tests as an
/// oracle: `partition_point` gives the first index with `table[i] >
/// value`; rank is the element before it (clamped to 0).
pub fn rank_oracle<K: Ord>(table: &[K], value: &K) -> u32 {
    table.partition_point(|x| x <= value).saturating_sub(1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use isi_core::mem::DirectMem;

    fn check_all(table: &[u32]) {
        let mem = DirectMem::new(table);
        // Probe every present value, every gap, and both extremes.
        let mut probes: Vec<u32> = table.to_vec();
        probes.extend(table.iter().map(|v| v.wrapping_add(1)));
        probes.extend([0, u32::MAX]);
        for v in probes {
            let expect = rank_oracle(table, &v);
            assert_eq!(rank_branchy(&mem, v), expect, "branchy, v={v}, t={table:?}");
            assert_eq!(rank_branchfree(&mem, v), expect, "branchfree, v={v}");
        }
    }

    #[test]
    fn agrees_with_oracle_on_small_tables() {
        check_all(&[]);
        check_all(&[5]);
        check_all(&[1, 3]);
        check_all(&[1, 3, 3, 9]); // duplicates
        check_all(&[0, 2, 4, 6, 8, 10, 12]);
        check_all(&(0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_table_ranks_zero() {
        let t: Vec<u32> = vec![];
        let mem = DirectMem::new(&t);
        assert_eq!(rank_branchy(&mem, 7), 0);
        assert_eq!(rank_branchfree(&mem, 7), 0);
    }

    #[test]
    fn value_below_minimum_ranks_zero() {
        let t = vec![10u32, 20, 30];
        let mem = DirectMem::new(&t);
        assert_eq!(rank_branchy(&mem, 5), 0);
        assert_eq!(rank_branchfree(&mem, 5), 0);
    }

    #[test]
    fn value_above_maximum_ranks_last() {
        let t = vec![10u32, 20, 30];
        let mem = DirectMem::new(&t);
        assert_eq!(rank_branchy(&mem, 99), 2);
        assert_eq!(rank_branchfree(&mem, 99), 2);
    }

    #[test]
    fn duplicates_rank_to_last_occurrence() {
        let t = vec![1u32, 5, 5, 5, 9];
        let mem = DirectMem::new(&t);
        assert_eq!(rank_branchy(&mem, 5), 3);
        assert_eq!(rank_branchfree(&mem, 5), 3);
    }

    #[test]
    fn bulk_wrappers_match_scalar() {
        let t: Vec<u32> = (0..64).map(|i| i * 2).collect();
        let mem = DirectMem::new(&t);
        let values: Vec<u32> = vec![0, 1, 63, 64, 126, 127, 200];
        let mut a = vec![0u32; values.len()];
        let mut b = vec![0u32; values.len()];
        bulk_rank_branchy(&mem, &values, &mut a);
        bulk_rank_branchfree(&mem, &values, &mut b);
        for (i, v) in values.iter().enumerate() {
            assert_eq!(a[i], rank_oracle(&t, v));
            assert_eq!(b[i], rank_oracle(&t, v));
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn bulk_checks_lengths() {
        let t = vec![1u32];
        let mem = DirectMem::new(&t);
        bulk_rank_branchy(&mem, &[1, 2], &mut [0u32]);
    }

    #[test]
    fn works_with_string_keys() {
        use crate::key::Str16;
        let t: Vec<Str16> = (0..50).map(|i| Str16::from_index(i * 2)).collect();
        let mem = DirectMem::new(&t);
        for probe in 0..100u64 {
            let v = Str16::from_index(probe);
            let expect = rank_oracle(&t, &v);
            assert_eq!(rank_branchy(&mem, v), expect);
            assert_eq!(rank_branchfree(&mem, v), expect);
        }
    }
}

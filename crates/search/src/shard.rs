//! [`SortedShard`]: the sorted-column [`ShardBackend`] — the serving
//! layer's "sorted" main index.
//!
//! A key column and an aligned value column, both sorted by key. Batch
//! lookups rank through the interleaved binary-search coroutines
//! ([`crate::par::bulk_rank_coro_par`]) and resolve rank → value with
//! one equality check; range scans are two `partition_point`s and a
//! slice copy — the cheapest `scan_range` of the three backends.

use std::sync::Arc;

use isi_core::backend::ShardBackend;
use isi_core::mem::DirectMem;
use isi_core::par::ParConfig;
use isi_core::policy::Interleave;
use isi_core::sched::RunStats;

/// A sorted key column plus aligned value column, servable in bulk by
/// the interleaved binary-search drivers.
pub struct SortedShard {
    keys: Vec<u64>,
    vals: Vec<u64>,
}

impl SortedShard {
    /// Build from strictly-sorted, duplicate-free pairs.
    pub fn build(pairs: &[(u64, u64)]) -> Self {
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 < w[1].0),
            "pairs must be strictly sorted by key"
        );
        Self {
            keys: pairs.iter().map(|&(k, _)| k).collect(),
            vals: pairs.iter().map(|&(_, v)| v).collect(),
        }
    }

    /// The sorted key column.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }
}

impl ShardBackend for SortedShard {
    fn len(&self) -> usize {
        self.keys.len()
    }

    fn get(&self, key: u64) -> Option<u64> {
        self.keys.binary_search(&key).ok().map(|i| self.vals[i])
    }

    fn probe_batch(
        &self,
        keys: &[u64],
        policy: Interleave,
        par: ParConfig,
        scratch: &mut Vec<u32>,
        out: &mut [Option<u64>],
    ) -> RunStats {
        assert_eq!(keys.len(), out.len(), "output length mismatch");
        if self.keys.is_empty() {
            out.fill(None);
            return RunStats::default();
        }
        // Rank via the interleaved binary-search coroutines, then
        // resolve rank -> value with one equality check (the rank
        // position is cache-hot right after the search touched it).
        let mem = DirectMem::new(&self.keys);
        scratch.clear();
        scratch.resize(keys.len(), 0);
        let stats = crate::par::bulk_rank_coro_par(mem, keys, policy.group_or_one(), par, scratch);
        for ((o, &r), &k) in out.iter_mut().zip(scratch.iter()).zip(keys) {
            *o = (self.keys[r as usize] == k).then(|| self.vals[r as usize]);
        }
        stats
    }

    fn scan_range(&self, lo: u64, hi: u64, out: &mut Vec<(u64, u64)>) {
        if lo > hi {
            return;
        }
        let a = self.keys.partition_point(|&k| k < lo);
        let b = self.keys.partition_point(|&k| k <= hi);
        out.extend(
            self.keys[a..b]
                .iter()
                .copied()
                .zip(self.vals[a..b].iter().copied()),
        );
    }

    fn rebuild(&self, pairs: &[(u64, u64)]) -> Arc<dyn ShardBackend> {
        Arc::new(Self::build(pairs))
    }

    fn hint_density(&self, sample: &[u64]) -> f64 {
        // DirectMem has no residency instruction
        // (`has_residency_hint` is false on real hardware), so this
        // answers 0.0 without walking a single probe path — but a
        // simulated memory backend wired through the same call reports
        // the genuine hint rate. Probe paths only; no allocation.
        crate::adaptive::hint_density(DirectMem::new(&self.keys), sample)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(n: u64) -> SortedShard {
        SortedShard::build(&(0..n).map(|i| (i * 3, i + 100)).collect::<Vec<_>>())
    }

    #[test]
    fn get_and_probe_agree() {
        let s = shard(1000);
        let probes: Vec<u64> = (0..1500).map(|i| i * 2).collect();
        let mut out = vec![None; probes.len()];
        let mut scratch = Vec::new();
        let stats = s.probe_batch(
            &probes,
            Interleave::Interleaved(6),
            ParConfig::with_threads(2),
            &mut scratch,
            &mut out,
        );
        assert_eq!(stats.lookups, probes.len() as u64);
        for (&k, &r) in probes.iter().zip(&out) {
            assert_eq!(r, s.get(k), "key={k}");
        }
    }

    #[test]
    fn scan_range_matches_filter() {
        let s = shard(300);
        for (lo, hi) in [(0, 0), (5, 100), (99, 301), (0, u64::MAX), (200, 100)] {
            let mut got = Vec::new();
            s.scan_range(lo, hi, &mut got);
            let want: Vec<(u64, u64)> = s
                .pairs()
                .into_iter()
                .filter(|&(k, _)| lo <= k && k <= hi)
                .collect();
            assert_eq!(got, want, "[{lo}, {hi}]");
        }
    }

    #[test]
    fn hint_density_is_zero_on_real_memory() {
        // DirectMem exposes no residency hint, so the measured density
        // is 0.0 ("assume misses") — the adaptive controller keeps the
        // calibrated group on real hardware.
        let s = shard(100);
        assert_eq!(ShardBackend::hint_density(&s, &[0, 3, 9, 250]), 0.0);
        assert_eq!(ShardBackend::hint_density(&s, &[]), 0.0);
    }

    #[test]
    fn rebuild_roundtrip_and_empty() {
        let s = shard(50);
        let rebuilt = s.rebuild(&s.pairs());
        assert_eq!(rebuilt.pairs(), s.pairs());
        let empty = SortedShard::build(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.get(7), None);
        let mut out = vec![None; 2];
        let mut scratch = Vec::new();
        empty.probe_batch(
            &[1, 2],
            Interleave::Sequential,
            ParConfig::default(),
            &mut scratch,
            &mut out,
        );
        assert_eq!(out, [None, None]);
    }
}

//! Per-iteration instruction-cost constants charged to the simulator.
//!
//! The paper measures (§5.4.4) that, relative to the branch-free
//! `Baseline`, GP executes 1.8x, AMAC 4.4x and CORO 5.4x more
//! instructions — the overhead of switching instruction streams, which
//! "mainly consists of managing state". These constants encode that
//! hierarchy as per-iteration compute cycles; they are no-ops on real
//! memory (`DirectMem`) and only drive `isi-memsim` accounting.
//!
//! Calibration: `Baseline` spends ~5 cycles/iteration of pure compute
//! (a 1 MB int array costs ~100-200 cycles for ~17 iterations in
//! Figure 3a). The interleaved implementations then follow the measured
//! instruction ratios, and the resulting Section 3 model estimates
//! (Inequality 1) land on the paper's group sizes: ~6 for AMAC/CORO and
//! LFB-capped ~10 for GP (§5.4.5).

/// Branch-free baseline: loop control + conditional move.
pub const BASE_ITER: u32 = 5;

/// Branchy (`std::lower_bound`-style): slightly leaner loop body — the
/// work of the comparison branch itself is modelled separately by the
/// branch predictor.
pub const BRANCHY_ITER: u32 = 4;

/// GP adds a second pass over the group and probe recomputation, but
/// shares the loop across streams: ~1.8x Baseline.
pub const GP_ITER: u32 = 9;

/// Cost of the GP prefetch stage per stream (address computation +
/// prefetch issue).
pub const GP_PREFETCH: u32 = 2;

/// AMAC: full state machine — load state from the circular buffer,
/// dispatch on stage, write state back: ~4.4x Baseline.
pub const AMAC_ITER: u32 = 22;

/// CORO: body work per iteration, excluding the switch.
pub const CORO_ITER: u32 = 4;

/// CORO: suspend + resume, "equivalent to two function calls" (§4) plus
/// scheduler bookkeeping. The paper measures CORO executing *more*
/// instructions than AMAC (5.4x vs 4.4x Baseline) yet running slightly
/// *faster* thanks to compiler optimization of the generated state
/// machine; we model the net effect: CORO's per-iteration cycle cost
/// lands just below AMAC's.
pub const CORO_SWITCH: u32 = 17;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_ratios_match_section_5_4_4() {
        let base = BASE_ITER as f64;
        let gp = (GP_ITER + GP_PREFETCH) as f64 / base;
        let amac = AMAC_ITER as f64 / base;
        let coro = (CORO_ITER + CORO_SWITCH) as f64 / base;
        assert!((1.5..=2.5).contains(&gp), "GP ratio {gp} vs paper 1.8x");
        assert!(
            (3.8..=5.0).contains(&amac),
            "AMAC ratio {amac} vs paper 4.4x"
        );
        assert!(
            (3.5..=5.5).contains(&coro),
            "CORO ratio {coro} vs paper 5.4x"
        );
        assert!(gp < amac && gp < coro, "GP has the least overhead");
        // Net cycle cost: CORO at or slightly below AMAC (§5.3).
        assert!(coro <= amac);
    }

    #[test]
    fn model_estimates_paper_group_sizes() {
        use isi_core::model::{optimal_group_size, optimal_group_size_capped, StreamParams};
        // 182-cycle DRAM latency (paper §2.2) minus the ~35 cycles the
        // out-of-order window hides on its own: the stall interleaving
        // must cover.
        let stall = 182.0 - 35.0;
        let coro = StreamParams::new(CORO_ITER as f64, CORO_SWITCH as f64, stall);
        let g_coro = optimal_group_size(coro);
        assert!(
            (5..=8).contains(&g_coro),
            "CORO estimate {g_coro}, paper ~6"
        );
        let gp = StreamParams::new((GP_ITER + GP_PREFETCH) as f64, 1.0, stall);
        let g_gp = optimal_group_size_capped(gp, 10);
        assert_eq!(g_gp, 10, "GP is LFB-capped at 10, as observed in Fig. 7");
        assert!(optimal_group_size(gp) >= 12, "uncapped GP estimate >= 12");
    }
}

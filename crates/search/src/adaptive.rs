//! Adaptive suspension — the paper's Section 6 "hardware support for
//! interleaving" hypothesis, made testable.
//!
//! The paper: *"we could conditionally switch instruction streams with
//! hardware support in the form of an instruction [that] tells if a
//! memory address is cached; with such an instruction, we could avoid
//! suspension when the data is cached and unnecessary overhead."*
//!
//! [`rank_coro_adaptive`] is the CORO binary search with exactly that
//! change: before suspending it consults
//! [`IndexedMem::probably_cached`]; if the backend answers
//! `Some(true)`, the lookup loads directly — no prefetch, no switch. On
//! real hardware the hint is unavailable (`None` — always suspend, i.e.
//! plain CORO); on the simulator the hint reads the modelled caches, so
//! the `hwhint` harness quantifies what the proposed instruction would
//! buy: the upper index levels stop paying switch overhead while the
//! cold leaf levels keep interleaving.

use isi_core::coro::suspend;
use isi_core::mem::IndexedMem;
use isi_core::sched::{run_interleaved, RunStats};

use crate::cost;
use crate::key::SearchKey;

/// Binary-search coroutine with conditional suspension: suspend only
/// when the (hypothetical) cache-residency instruction says the probe
/// would miss. Identical results to every other rank implementation.
pub async fn rank_coro_adaptive<K: SearchKey, M: IndexedMem<K>>(mem: M, value: K) -> u32 {
    let mut size = mem.len();
    let mut low = 0usize;
    loop {
        let half = size / 2;
        if half == 0 {
            break;
        }
        let probe = low + half;
        // `Some(true)` => skip the suspension entirely.
        let cached = mem.probably_cached(probe) == Some(true);
        if !cached {
            mem.prefetch(probe);
            suspend().await;
        }
        mem.compute(cost::CORO_ITER + K::COMPARE_COST);
        let le = (*mem.at(probe) <= value) as usize;
        if !cached {
            mem.compute(cost::CORO_SWITCH);
        }
        low = le * probe + (1 - le) * low;
        size -= half;
    }
    low as u32
}

/// Bulk rank through the adaptive coroutine.
///
/// # Panics
/// Panics if `out.len() != values.len()`.
pub fn bulk_rank_coro_adaptive<K: SearchKey, M: IndexedMem<K> + Copy>(
    mem: M,
    values: &[K],
    group_size: usize,
    out: &mut [u32],
) -> RunStats {
    assert_eq!(values.len(), out.len(), "output length mismatch");
    run_interleaved(
        group_size,
        values.iter().copied(),
        |v| rank_coro_adaptive::<K, M>(mem, v),
        |i, r| out[i] = r,
    )
}

/// The observed cache-residency density of `mem` over a pilot sample:
/// the fraction of binary-search probes for which
/// [`IndexedMem::probably_cached`] answers `Some(true)` — exactly the
/// probes [`rank_coro_adaptive`] executes without suspending. Feed the
/// result to
/// [`autotune::group_for_density`](crate::autotune::group_for_density)
/// to shrink the interleaving group when the hint says most probes are
/// already hot. Backends without a hint
/// ([`IndexedMem::has_residency_hint`] is `false`, i.e. real hardware)
/// answer 0.0 *without walking*: every probe would report `None`, so
/// the pilot's data-dependent loads would only pollute the caches it is
/// trying to measure. Returns 0.0 for an empty pilot or a table too
/// small to probe.
pub fn hint_density<K: SearchKey, M: IndexedMem<K> + Copy>(mem: M, values: &[K]) -> f64 {
    if !mem.has_residency_hint() {
        return 0.0;
    }
    let mut probes = 0u64;
    let mut hot = 0u64;
    for v in values {
        let mut size = mem.len();
        let mut low = 0usize;
        loop {
            let half = size / 2;
            if half == 0 {
                break;
            }
            let probe = low + half;
            probes += 1;
            if mem.probably_cached(probe) == Some(true) {
                hot += 1;
            }
            let le = (*mem.at(probe) <= *v) as usize;
            low = le * probe + (1 - le) * low;
            size -= half;
        }
    }
    if probes == 0 {
        0.0
    } else {
        hot as f64 / probes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::rank_oracle;
    use isi_core::mem::DirectMem;

    /// `DirectMem` with the hypothetical residency instruction bolted
    /// on: the top `hot_above` slots of the table report cached.
    #[derive(Clone, Copy)]
    struct HintedMem<'a> {
        inner: DirectMem<'a, u32>,
        hot_above: usize,
    }

    impl IndexedMem<u32> for HintedMem<'_> {
        fn len(&self) -> usize {
            self.inner.len()
        }
        fn at(&self, idx: usize) -> &u32 {
            self.inner.at(idx)
        }
        fn prefetch(&self, idx: usize) {
            self.inner.prefetch(idx);
        }
        fn probably_cached(&self, idx: usize) -> Option<bool> {
            Some(idx >= self.hot_above)
        }
        fn has_residency_hint(&self) -> bool {
            true
        }
    }

    #[test]
    fn hint_density_measures_the_hint_rate() {
        let table: Vec<u32> = (0..4096).map(|i| i * 2).collect();
        let values: Vec<u32> = (0..200).map(|i| i * 37 % 9000).collect();
        // No hint at all: density 0, and an empty pilot is also 0.
        assert_eq!(hint_density(DirectMem::new(&table), &values), 0.0);
        assert_eq!(hint_density(DirectMem::new(&table), &[]), 0.0);
        // Everything hot vs everything cold brackets the range.
        let all_hot = HintedMem {
            inner: DirectMem::new(&table),
            hot_above: 0,
        };
        assert_eq!(hint_density(all_hot, &values), 1.0);
        let all_cold = HintedMem {
            inner: DirectMem::new(&table),
            hot_above: usize::MAX,
        };
        assert_eq!(hint_density(all_cold, &values), 0.0);
        // A partial hint lands strictly between — and feeds the group
        // scaler the way the serve path feeds its delta density.
        let half_hot = HintedMem {
            inner: DirectMem::new(&table),
            hot_above: 2048,
        };
        let d = hint_density(half_hot, &values);
        assert!(d > 0.0 && d < 1.0, "density {d} not in (0, 1)");
        let g = crate::autotune::group_for_density(8, d);
        assert!((1..=8).contains(&g));
    }

    #[test]
    fn adaptive_agrees_with_oracle_on_direct_memory() {
        // DirectMem has no hint (None) -> behaves exactly like CORO.
        let table: Vec<u32> = (0..4096).map(|i| i * 2).collect();
        let values: Vec<u32> = (0..300).map(|i| i * 31 % 9000).collect();
        let mem = DirectMem::new(&table);
        let mut out = vec![0u32; values.len()];
        let stats = bulk_rank_coro_adaptive(mem, &values, 6, &mut out);
        for (i, v) in values.iter().enumerate() {
            assert_eq!(out[i], rank_oracle(&table, v));
        }
        // Without a hint every iteration suspends, like plain CORO.
        assert!(stats.switches > 0);
    }

    #[test]
    fn empty_and_tiny_tables() {
        let empty: Vec<u32> = vec![];
        let mem = DirectMem::new(&empty);
        let mut out = vec![9u32; 1];
        bulk_rank_coro_adaptive(mem, &[5], 4, &mut out);
        assert_eq!(out, [0]);

        let one = vec![7u32];
        let mem = DirectMem::new(&one);
        bulk_rank_coro_adaptive(mem, &[7], 4, &mut out);
        assert_eq!(out, [0]);
    }
}

//! Adaptive suspension — the paper's Section 6 "hardware support for
//! interleaving" hypothesis, made testable.
//!
//! The paper: *"we could conditionally switch instruction streams with
//! hardware support in the form of an instruction [that] tells if a
//! memory address is cached; with such an instruction, we could avoid
//! suspension when the data is cached and unnecessary overhead."*
//!
//! [`rank_coro_adaptive`] is the CORO binary search with exactly that
//! change: before suspending it consults
//! [`IndexedMem::probably_cached`]; if the backend answers
//! `Some(true)`, the lookup loads directly — no prefetch, no switch. On
//! real hardware the hint is unavailable (`None` — always suspend, i.e.
//! plain CORO); on the simulator the hint reads the modelled caches, so
//! the `hwhint` harness quantifies what the proposed instruction would
//! buy: the upper index levels stop paying switch overhead while the
//! cold leaf levels keep interleaving.

use isi_core::coro::suspend;
use isi_core::mem::IndexedMem;
use isi_core::sched::{run_interleaved, RunStats};

use crate::cost;
use crate::key::SearchKey;

/// Binary-search coroutine with conditional suspension: suspend only
/// when the (hypothetical) cache-residency instruction says the probe
/// would miss. Identical results to every other rank implementation.
pub async fn rank_coro_adaptive<K: SearchKey, M: IndexedMem<K>>(mem: M, value: K) -> u32 {
    let mut size = mem.len();
    let mut low = 0usize;
    loop {
        let half = size / 2;
        if half == 0 {
            break;
        }
        let probe = low + half;
        // `Some(true)` => skip the suspension entirely.
        let cached = mem.probably_cached(probe) == Some(true);
        if !cached {
            mem.prefetch(probe);
            suspend().await;
        }
        mem.compute(cost::CORO_ITER + K::COMPARE_COST);
        let le = (*mem.at(probe) <= value) as usize;
        if !cached {
            mem.compute(cost::CORO_SWITCH);
        }
        low = le * probe + (1 - le) * low;
        size -= half;
    }
    low as u32
}

/// Bulk rank through the adaptive coroutine.
///
/// # Panics
/// Panics if `out.len() != values.len()`.
pub fn bulk_rank_coro_adaptive<K: SearchKey, M: IndexedMem<K> + Copy>(
    mem: M,
    values: &[K],
    group_size: usize,
    out: &mut [u32],
) -> RunStats {
    assert_eq!(values.len(), out.len(), "output length mismatch");
    run_interleaved(
        group_size,
        values.iter().copied(),
        |v| rank_coro_adaptive::<K, M>(mem, v),
        |i, r| out[i] = r,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::rank_oracle;
    use isi_core::mem::DirectMem;

    #[test]
    fn adaptive_agrees_with_oracle_on_direct_memory() {
        // DirectMem has no hint (None) -> behaves exactly like CORO.
        let table: Vec<u32> = (0..4096).map(|i| i * 2).collect();
        let values: Vec<u32> = (0..300).map(|i| i * 31 % 9000).collect();
        let mem = DirectMem::new(&table);
        let mut out = vec![0u32; values.len()];
        let stats = bulk_rank_coro_adaptive(mem, &values, 6, &mut out);
        for (i, v) in values.iter().enumerate() {
            assert_eq!(out[i], rank_oracle(&table, v));
        }
        // Without a hint every iteration suspends, like plain CORO.
        assert!(stats.switches > 0);
    }

    #[test]
    fn empty_and_tiny_tables() {
        let empty: Vec<u32> = vec![];
        let mem = DirectMem::new(&empty);
        let mut out = vec![9u32; 1];
        bulk_rank_coro_adaptive(mem, &[5], 4, &mut out);
        assert_eq!(out, [0]);

        let one = vec![7u32];
        let mem = DirectMem::new(&one);
        bulk_rank_coro_adaptive(mem, &[7], 4, &mut out);
        assert_eq!(out, [0]);
    }
}

//! Interleaving with coroutines — the paper's Listing 5 and its
//! schedulers, the headline technique.
//!
//! [`rank_coro`] is the sequential branch-free binary search *plus two
//! lines*: a prefetch and a suspension before the memory access that
//! would miss. The `INTERLEAVE` const generic is the paper's `interleave`
//! template parameter: it is resolved at monomorphization time, so the
//! sequential instantiation compiles to exactly the original loop (no
//! suspension machinery survives), and one source-level implementation
//! serves both execution modes — the paper's CORO-U.
//!
//! [`rank_coro_separate`] is CORO-S: a dedicated interleaved-only variant
//! kept for the code-footprint comparison of Table 5 and for the ablation
//! measuring what the unified abstraction costs (nothing, after
//! monomorphization — see `benches/binary_search.rs`).
//!
//! The `table5` markers around the functions are consumed by the LoC
//! analyzer that regenerates Table 5 (`isi-bench`, `bin/table5`).

use isi_core::coro::suspend;
use isi_core::mem::IndexedMem;
use isi_core::sched::{run_interleaved, run_sequential, RunStats};

use crate::cost;
use crate::key::SearchKey;

// [table5:coro-u:begin]
/// Binary-search coroutine, unified sequential/interleaved codepath
/// (paper Listing 5; CORO-U).
pub async fn rank_coro<const INTERLEAVE: bool, K: SearchKey, M: IndexedMem<K>>(
    mem: M,
    value: K,
) -> u32 {
    let mut size = mem.len();
    let mut low = 0usize;
    loop {
        let half = size / 2;
        if half == 0 {
            break;
        }
        let probe = low + half;
        if INTERLEAVE {
            mem.prefetch(probe);
            suspend().await;
        }
        mem.compute(cost::CORO_ITER + K::COMPARE_COST);
        let le = (*mem.at(probe) <= value) as usize;
        if INTERLEAVE {
            // Suspend/resume bookkeeping executes after the value is
            // consumed (it cannot overlap the miss it just exposed).
            mem.compute(cost::CORO_SWITCH);
        }
        low = le * probe + (1 - le) * low;
        size -= half;
    }
    low as u32
}
// [table5:coro-u:end]

// [table5:coro-s:begin]
/// Binary-search coroutine, interleaved-only variant (CORO-S): kept
/// alongside a separate sequential implementation when unified codegen
/// cannot be trusted (the situation the paper faced with MSVC v14.1).
pub async fn rank_coro_separate<K: SearchKey, M: IndexedMem<K>>(mem: M, value: K) -> u32 {
    let mut size = mem.len();
    let mut low = 0usize;
    loop {
        let half = size / 2;
        if half == 0 {
            break;
        }
        let probe = low + half;
        mem.prefetch(probe);
        suspend().await;
        mem.compute(cost::CORO_ITER + K::COMPARE_COST);
        let le = (*mem.at(probe) <= value) as usize;
        mem.compute(cost::CORO_SWITCH);
        low = le * probe + (1 - le) * low;
        size -= half;
    }
    low as u32
}
// [table5:coro-s:end]

/// Bulk rank, interleaved execution: `group_size` coroutine frames are
/// recycled in the scheduler's slab (paper Listing 7, `runInterleaved`).
///
/// # Panics
/// Panics if `out.len() != values.len()`.
pub fn bulk_rank_coro<K: SearchKey, M: IndexedMem<K> + Copy>(
    mem: M,
    values: &[K],
    group_size: usize,
    out: &mut [u32],
) -> RunStats {
    assert_eq!(values.len(), out.len(), "output length mismatch");
    run_interleaved(
        group_size,
        values.iter().copied(),
        |v| rank_coro::<true, K, M>(mem, v),
        |i, r| out[i] = r,
    )
}

/// Bulk rank, sequential execution of the *same* coroutine with
/// `INTERLEAVE = false` (paper Listing 7, `runSequential`).
///
/// # Panics
/// Panics if `out.len() != values.len()`.
pub fn bulk_rank_coro_seq<K: SearchKey, M: IndexedMem<K> + Copy>(
    mem: M,
    values: &[K],
    out: &mut [u32],
) -> RunStats {
    assert_eq!(values.len(), out.len(), "output length mismatch");
    run_sequential(
        values.iter().copied(),
        |v| rank_coro::<false, K, M>(mem, v),
        |i, r| out[i] = r,
    )
}

/// Bulk rank through the CORO-S variant (always interleaved).
///
/// # Panics
/// Panics if `out.len() != values.len()`.
pub fn bulk_rank_coro_separate<K: SearchKey, M: IndexedMem<K> + Copy>(
    mem: M,
    values: &[K],
    group_size: usize,
    out: &mut [u32],
) -> RunStats {
    assert_eq!(values.len(), out.len(), "output length mismatch");
    run_interleaved(
        group_size,
        values.iter().copied(),
        |v| rank_coro_separate::<K, M>(mem, v),
        |i, r| out[i] = r,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::rank_oracle;
    use isi_core::coro::CoroHandle;
    use isi_core::mem::DirectMem;

    fn check_bulk(table: &[u32], values: &[u32], group: usize) {
        let mem = DirectMem::new(table);
        let mut out = vec![u32::MAX; values.len()];
        bulk_rank_coro(mem, values, group, &mut out);
        for (i, v) in values.iter().enumerate() {
            assert_eq!(out[i], rank_oracle(table, v), "v={v} group={group}");
        }
    }

    #[test]
    fn interleaved_agrees_with_oracle() {
        let table: Vec<u32> = (0..500).map(|i| i * 2).collect();
        let values: Vec<u32> = (0..173).map(|i| i * 7).collect();
        for group in [1, 2, 6, 10, 64] {
            check_bulk(&table, &values, group);
        }
    }

    #[test]
    fn sequential_coroutine_never_suspends() {
        let table: Vec<u32> = (0..1000).collect();
        let values: Vec<u32> = (0..50).map(|i| i * 17).collect();
        let mem = DirectMem::new(&table);
        let mut out = vec![0u32; values.len()];
        let stats = bulk_rank_coro_seq(mem, &values, &mut out);
        assert_eq!(stats.switches, 0, "INTERLEAVE=false must not suspend");
        assert_eq!(stats.resumes, values.len() as u64);
        for (i, v) in values.iter().enumerate() {
            assert_eq!(out[i], rank_oracle(&table, v));
        }
    }

    #[test]
    fn interleaved_coroutine_suspends_once_per_iteration() {
        // Table of 1024 elements: the rank loop runs exactly 10 halvings.
        let table: Vec<u32> = (0..1024).collect();
        let mem = DirectMem::new(&table);
        let mut out = vec![0u32; 1];
        let stats = bulk_rank_coro(mem, &[512], 4, &mut out);
        assert_eq!(stats.switches, 10);
    }

    #[test]
    fn separate_variant_agrees_with_unified() {
        let table: Vec<u32> = (0..333).map(|i| i * 3 + 1).collect();
        let values: Vec<u32> = (0..90).map(|i| i * 11).collect();
        let mem = DirectMem::new(&table);
        let mut a = vec![0u32; values.len()];
        let mut b = vec![0u32; values.len()];
        bulk_rank_coro(mem, &values, 6, &mut a);
        bulk_rank_coro_separate(mem, &values, 6, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn handle_api_drives_a_single_lookup() {
        // The paper's per-lookup API: create, resume until done, fetch.
        let table: Vec<u32> = (0..64).collect();
        let mem = DirectMem::new(&table);
        let mut h = CoroHandle::new(rank_coro::<true, _, _>(mem, 40));
        let mut resumes = 0;
        while !h.resume() {
            resumes += 1;
        }
        assert_eq!(h.get_result(), 40);
        assert_eq!(resumes, 6); // log2(64) halvings
    }

    #[test]
    fn empty_and_singleton_tables() {
        let empty: Vec<u32> = vec![];
        check_bulk(&empty, &[3, 4], 2);
        check_bulk(&[7], &[0, 7, 9], 2);
    }

    #[test]
    fn string_keys_work() {
        use crate::key::Str16;
        let table: Vec<Str16> = (0..200).map(|i| Str16::from_index(i * 2)).collect();
        let values: Vec<Str16> = (0..60).map(|i| Str16::from_index(i * 7 + 1)).collect();
        let mem = DirectMem::new(&table);
        let mut out = vec![0u32; values.len()];
        bulk_rank_coro(mem, &values, 6, &mut out);
        for (i, v) in values.iter().enumerate() {
            assert_eq!(out[i], rank_oracle(&table, v));
        }
    }
}

//! # isi-search — binary search five ways
//!
//! The microbenchmark subjects of the paper's Section 5: five binary
//! search implementations over a sorted array, two sequential and three
//! interleaved, all generic over the key type ([`key::SearchKey`]) and
//! the memory backend ([`isi_core::mem::IndexedMem`]):
//!
//! | paper name | module / function | kind |
//! |---|---|---|
//! | `std`      | [`seq::rank_branchy`]     | sequential, speculative branch |
//! | `Baseline` | [`seq::rank_branchfree`]  | sequential, conditional move (Listing 2) |
//! | `GP`       | [`gp::bulk_rank_gp`]      | static interleaving (Listing 3) |
//! | `AMAC`     | [`amac::bulk_rank_amac`]  | dynamic interleaving, hand-written state machine (Listing 4) |
//! | `CORO`     | [`coro::rank_coro`]       | dynamic interleaving, compiler-generated state machine (Listing 5) |
//!
//! Every implementation computes the same **rank** function — largest
//! index `i` with `table[i] <= value`, clamped to 0 — so their outputs
//! are interchangeable and cross-checked in the test suite.
//! [`locate`](locate::locate) builds the dictionary access method on top.
//! [`par`] layers morsel-parallel `*_par` variants over every bulk
//! driver (same kernels, worker threads claiming morsels).

// Escalated from the workspace-level warn: every unsafe fn body in
// this crate must discharge its obligations through explicit inner
// blocks (each carrying a SAFETY comment, enforced by xtask lint).
#![deny(unsafe_op_in_unsafe_fn)]

pub mod adaptive;
pub mod amac;
pub mod autotune;
pub mod coro;
pub mod cost;
pub mod gp;
pub mod key;
pub mod locate;
pub mod par;
pub mod seq;
pub mod shard;
pub mod sorted;
pub mod spp;

pub use adaptive::{bulk_rank_coro_adaptive, rank_coro_adaptive};
pub use amac::bulk_rank_amac;
pub use autotune::{autotune_group_size, TuneResult};
pub use coro::{bulk_rank_coro, bulk_rank_coro_seq, rank_coro};
pub use gp::bulk_rank_gp;
pub use key::{FixedStr, SearchKey, Str16};
pub use locate::{bulk_locate_interleaved, bulk_locate_seq, locate, NOT_FOUND};
pub use par::{
    bulk_rank_amac_par, bulk_rank_branchfree_par, bulk_rank_branchy_par, bulk_rank_coro_par,
    bulk_rank_gp_par,
};
pub use seq::{
    bulk_rank_branchfree, bulk_rank_branchy, rank_branchfree, rank_branchy, rank_oracle,
};
pub use shard::SortedShard;
pub use sorted::{bulk_rank_sorted, bulk_rank_sorted_interleaved};
pub use spp::bulk_rank_spp;

//! Property tests for the morsel-parallel bulk drivers: on arbitrary
//! sorted tables, probe lists, group sizes and morsel sizes, every
//! `*_par` variant produces byte-identical output to its
//! single-threaded driver across thread counts {1, 2, 4, 8}, and the
//! merged `RunStats` of the parallel coroutine engine preserves the
//! sequential totals.

use proptest::prelude::*;

use isi_core::mem::DirectMem;
use isi_core::par::ParConfig;
use isi_search::{
    bulk_rank_amac, bulk_rank_amac_par, bulk_rank_branchfree, bulk_rank_branchfree_par,
    bulk_rank_branchy, bulk_rank_branchy_par, bulk_rank_coro, bulk_rank_coro_par, bulk_rank_gp,
    bulk_rank_gp_par,
};

/// Strategy: a sorted (possibly duplicated) u32 table and probe values
/// covering hits, misses and extremes.
fn table_and_probes() -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
    (
        proptest::collection::vec(0u32..10_000, 0..300),
        proptest::collection::vec(0u32..12_000, 1..400),
    )
        .prop_map(|(mut t, p)| {
            t.sort_unstable();
            (t, p)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn parallel_drivers_match_sequential_drivers(
        (table, probes) in table_and_probes(),
        group in 1usize..16,
        morsel in 1usize..512,
    ) {
        let mem = DirectMem::new(&table);
        let n = probes.len();

        // Sequential reference outputs, one per variant.
        let mut seq = vec![0u32; n];
        let mut par = vec![u32::MAX; n];

        for threads in [1usize, 2, 4, 8] {
            let cfg = ParConfig { threads, morsel_size: morsel };

            bulk_rank_branchy(&mem, &probes, &mut seq);
            par.fill(u32::MAX);
            bulk_rank_branchy_par(&mem, &probes, cfg, &mut par);
            prop_assert_eq!(&par, &seq, "branchy threads={} morsel={}", threads, morsel);

            bulk_rank_branchfree(&mem, &probes, &mut seq);
            par.fill(u32::MAX);
            bulk_rank_branchfree_par(&mem, &probes, cfg, &mut par);
            prop_assert_eq!(&par, &seq, "branchfree threads={} morsel={}", threads, morsel);

            bulk_rank_gp(&mem, &probes, group, &mut seq);
            par.fill(u32::MAX);
            bulk_rank_gp_par(&mem, &probes, group, cfg, &mut par);
            prop_assert_eq!(&par, &seq, "gp threads={} morsel={}", threads, morsel);

            bulk_rank_amac(&mem, &probes, group, &mut seq);
            par.fill(u32::MAX);
            bulk_rank_amac_par(&mem, &probes, group, cfg, &mut par);
            prop_assert_eq!(&par, &seq, "amac threads={} morsel={}", threads, morsel);

            let seq_stats = bulk_rank_coro(mem, &probes, group, &mut seq);
            par.fill(u32::MAX);
            let par_stats = bulk_rank_coro_par(mem, &probes, group, cfg, &mut par);
            prop_assert_eq!(&par, &seq, "coro threads={} morsel={}", threads, morsel);

            // Sink coverage: every output slot was written exactly once
            // (no u32::MAX sentinel survives — ranks are < 12_000).
            prop_assert!(par.iter().all(|&r| r != u32::MAX));

            // Merged stats preserve the totals: every lookup suspends a
            // fixed number of times regardless of partitioning, so
            // lookups/resumes/switches are partition-invariant...
            prop_assert_eq!(par_stats.lookups, seq_stats.lookups);
            prop_assert_eq!(par_stats.resumes, seq_stats.resumes);
            prop_assert_eq!(par_stats.switches, seq_stats.switches);
            // ...while peak_in_flight maxes per worker and is bounded
            // by the effective group (group size, morsel size and
            // input size all cap the slab fill).
            let cap = group.max(1).min(morsel).min(n) as u64;
            prop_assert!(par_stats.peak_in_flight <= cap,
                "peak {} > cap {}", par_stats.peak_in_flight, cap);
        }
    }
}

//! Regression tests: every search variant agrees with `rank_oracle` on
//! the degenerate inputs where off-by-one bugs live — empty tables,
//! single elements, all-duplicate tables, and probes strictly below the
//! minimum or above the maximum value.

use isi_core::mem::DirectMem;
use isi_search::{
    bulk_rank_amac, bulk_rank_coro, bulk_rank_gp, rank_branchfree, rank_branchy, rank_oracle,
};

/// Run all five variants over `table`/`probes` and assert each output
/// equals the oracle's, for a spread of group sizes.
fn assert_all_variants_agree(table: &[u32], probes: &[u32], context: &str) {
    let mem = DirectMem::new(table);
    let expect: Vec<u32> = probes.iter().map(|v| rank_oracle(table, v)).collect();

    for (i, v) in probes.iter().enumerate() {
        assert_eq!(
            rank_branchy(&mem, *v),
            expect[i],
            "{context}: rank_branchy, probe {v}"
        );
        assert_eq!(
            rank_branchfree(&mem, *v),
            expect[i],
            "{context}: rank_branchfree, probe {v}"
        );
    }

    for group in [1, 2, 6, 17] {
        let mut gp = vec![u32::MAX; probes.len()];
        bulk_rank_gp(&mem, probes, group, &mut gp);
        assert_eq!(gp, expect, "{context}: bulk_rank_gp, group {group}");

        let mut amac = vec![u32::MAX; probes.len()];
        bulk_rank_amac(&mem, probes, group, &mut amac);
        assert_eq!(amac, expect, "{context}: bulk_rank_amac, group {group}");

        let mut coro = vec![u32::MAX; probes.len()];
        bulk_rank_coro(mem, probes, group, &mut coro);
        assert_eq!(coro, expect, "{context}: bulk_rank_coro, group {group}");
    }
}

#[test]
fn empty_table() {
    assert_all_variants_agree(&[], &[0, 1, 42, u32::MAX], "empty table");
}

#[test]
fn single_element_table() {
    let table = [7u32];
    assert_all_variants_agree(&table, &[0, 6, 7, 8, u32::MAX], "single element");
}

#[test]
fn all_duplicates_table() {
    let table = [5u32; 64];
    assert_all_variants_agree(&table, &[0, 4, 5, 6, u32::MAX], "all duplicates");
    // A shorter duplicate run whose length is not a power of two.
    let odd = [9u32; 13];
    assert_all_variants_agree(&odd, &[8, 9, 10], "13 duplicates");
}

#[test]
fn probes_below_min_and_above_max() {
    let table: Vec<u32> = (0..100).map(|i| 1000 + i * 10).collect();
    let probes = [0, 999, 1000, 1990, 1991, 5000, u32::MAX];
    assert_all_variants_agree(&table, &probes, "below-min / above-max");

    // Below-min probes must clamp to rank 0 in every variant, exactly
    // like the oracle's saturating_sub.
    let mem = DirectMem::new(&table);
    assert_eq!(rank_oracle(&table, &0), 0);
    assert_eq!(rank_branchy(&mem, 0), 0);
    assert_eq!(rank_branchfree(&mem, 0), 0);

    // Above-max probes must clamp to the last index.
    assert_eq!(rank_oracle(&table, &u32::MAX), 99);
    assert_eq!(rank_branchy(&mem, u32::MAX), 99);
}

#[test]
fn boundary_table_sizes_brute_force() {
    // Exhaustive agreement for every table length 0..=17 (spanning the
    // pow2 / non-pow2 boundaries binary search is sensitive to).
    for len in 0..=17u32 {
        let table: Vec<u32> = (0..len).map(|i| i * 2 + 1).collect();
        let probes: Vec<u32> = (0..=(len * 2 + 2)).collect();
        assert_all_variants_agree(&table, &probes, &format!("len {len}"));
    }
}

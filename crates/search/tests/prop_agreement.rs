//! Property-based tests: all five binary-search implementations compute
//! the identical rank function on arbitrary sorted arrays, lookup values
//! and group sizes. This is the correctness backbone of the whole
//! reproduction — every benchmark compares implementations that are
//! proven interchangeable here.

use proptest::prelude::*;

use isi_core::mem::DirectMem;
use isi_search::key::Str16;
use isi_search::{
    bulk_rank_amac, bulk_rank_coro, bulk_rank_coro_seq, bulk_rank_gp, rank_branchfree,
    rank_branchy, rank_oracle,
};

/// Strategy: a sorted (possibly duplicated) u32 table and probe values
/// drawn from a range that covers hits, misses and extremes.
fn table_and_probes() -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
    (
        proptest::collection::vec(0u32..10_000, 0..300),
        proptest::collection::vec(0u32..12_000, 1..80),
    )
        .prop_map(|(mut t, p)| {
            t.sort_unstable();
            (t, p)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn all_five_implementations_agree((table, probes) in table_and_probes(), group in 1usize..16) {
        let mem = DirectMem::new(&table);
        let expect: Vec<u32> = probes.iter().map(|v| rank_oracle(&table, v)).collect();

        // Sequential implementations.
        for (i, v) in probes.iter().enumerate() {
            prop_assert_eq!(rank_branchy(&mem, *v), expect[i]);
            prop_assert_eq!(rank_branchfree(&mem, *v), expect[i]);
        }

        // Interleaved implementations.
        let mut gp = vec![0u32; probes.len()];
        bulk_rank_gp(&mem, &probes, group, &mut gp);
        prop_assert_eq!(&gp, &expect);

        let mut amac = vec![0u32; probes.len()];
        bulk_rank_amac(&mem, &probes, group, &mut amac);
        prop_assert_eq!(&amac, &expect);

        let mut coro = vec![0u32; probes.len()];
        bulk_rank_coro(mem, &probes, group, &mut coro);
        prop_assert_eq!(&coro, &expect);

        let mut coro_seq = vec![0u32; probes.len()];
        bulk_rank_coro_seq(mem, &probes, &mut coro_seq);
        prop_assert_eq!(&coro_seq, &expect);
    }

    #[test]
    fn string_keys_agree_with_int_ranks(
        indices in proptest::collection::vec(0u64..5_000, 1..150),
        probes in proptest::collection::vec(0u64..6_000, 1..40),
        group in 1usize..12,
    ) {
        // Str16::from_index preserves numeric order, so ranks over the
        // string table must equal ranks over the index table.
        let mut idx = indices.clone();
        idx.sort_unstable();
        let int_table: Vec<u64> = idx.clone();
        let str_table: Vec<Str16> = idx.iter().map(|&i| Str16::from_index(i)).collect();

        let int_mem = DirectMem::new(&int_table);
        let str_mem = DirectMem::new(&str_table);
        let str_probes: Vec<Str16> = probes.iter().map(|&p| Str16::from_index(p)).collect();

        let mut out_int = vec![0u32; probes.len()];
        let mut out_str = vec![0u32; probes.len()];
        bulk_rank_coro(int_mem, &probes, group, &mut out_int);
        bulk_rank_coro(str_mem, &str_probes, group, &mut out_str);
        prop_assert_eq!(out_int, out_str);
    }

    #[test]
    fn locate_iff_value_present(
        (table, probes) in table_and_probes(),
    ) {
        use isi_search::locate;
        let mem = DirectMem::new(&table);
        for v in &probes {
            let found = locate(&mem, *v);
            match found {
                Some(code) => prop_assert_eq!(table[code as usize], *v),
                None => prop_assert!(!table.contains(v)),
            }
        }
    }
}

//! Simulator-backed behavioural tests: the paper's headline
//! microarchitectural claims, asserted as invariants on the machine
//! model. These are the qualitative shapes of Figures 5-7 — the harness
//! binaries in `isi-bench` print the full sweeps.
//!
//! Methodology note: every measured phase uses *fresh* lookup values.
//! Re-measuring with values already looked up would find all their
//! leaf-level lines warm in the 25 MB simulated LLC and hide the very
//! misses the paper studies; with fresh values the hot top levels of the
//! binary search stay warm (as in the paper's steady state) while the
//! leaf-level lines are cold.

use isi_memsim::{MachineStats, SharedMachine, SimArray};
use isi_search::{
    bulk_rank_amac, bulk_rank_coro, bulk_rank_gp, rank_branchfree, rank_branchy, rank_oracle,
};

/// 16 Mi u32 = 64 MB: comfortably larger than the model's 25 MB LLC.
const BIG: usize = 16 << 20;
/// 256 Ki u32 = 1 MB: the paper's cache-resident case.
const SMALL: usize = 256 << 10;
/// Lookups per measured phase.
const PHASE: usize = 400;

/// A simulated machine + sorted table + an endless stream of fresh
/// deterministic lookup values.
struct Bench {
    machine: SharedMachine,
    arr: SimArray<u32>,
    rng: u64,
}

impl Bench {
    fn new(n: usize) -> Self {
        let machine = SharedMachine::haswell();
        let table: Vec<u32> = (0..n as u32).collect();
        let arr = SimArray::new(&machine, table);
        let mut b = Bench {
            machine,
            arr,
            rng: 0x2545_F491_4F6C_DD1D,
        };
        // Warm the hot top levels of the search (paper §2.2: "only the
        // first few binary search iterations are expected to be in a
        // warmed-up cache").
        let warm = b.fresh(PHASE);
        b.baseline(&warm);
        b
    }

    /// `count` fresh lookup values, never produced before.
    fn fresh(&mut self, count: usize) -> Vec<u32> {
        let n = self.arr.len() as u64;
        (0..count)
            .map(|_| {
                self.rng ^= self.rng << 13;
                self.rng ^= self.rng >> 7;
                self.rng ^= self.rng << 17;
                (self.rng % n) as u32
            })
            .collect()
    }

    fn baseline(&self, vals: &[u32]) -> MachineStats {
        self.machine.reset_stats();
        let mem = self.arr.mem();
        for v in vals {
            assert_eq!(rank_branchfree(&mem, *v), rank_oracle(self.arr.raw(), v));
        }
        self.machine.stats()
    }

    fn branchy(&self, vals: &[u32]) -> MachineStats {
        self.machine.reset_stats();
        let mem = self.arr.mem_speculative();
        for v in vals {
            assert_eq!(rank_branchy(&mem, *v), rank_oracle(self.arr.raw(), v));
        }
        self.machine.stats()
    }

    fn coro(&self, vals: &[u32], group: usize) -> MachineStats {
        self.machine.reset_stats();
        let mut out = vec![0u32; vals.len()];
        bulk_rank_coro(self.arr.mem(), vals, group, &mut out);
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(out[i], rank_oracle(self.arr.raw(), v));
        }
        self.machine.stats()
    }

    fn gp(&self, vals: &[u32], group: usize) -> MachineStats {
        self.machine.reset_stats();
        let mut out = vec![0u32; vals.len()];
        bulk_rank_gp(&self.arr.mem(), vals, group, &mut out);
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(out[i], rank_oracle(self.arr.raw(), v));
        }
        self.machine.stats()
    }

    fn amac(&self, vals: &[u32], group: usize) -> MachineStats {
        self.machine.reset_stats();
        let mut out = vec![0u32; vals.len()];
        bulk_rank_amac(&self.arr.mem(), vals, group, &mut out);
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(out[i], rank_oracle(self.arr.raw(), v));
        }
        self.machine.stats()
    }
}

#[test]
fn interleaving_hides_memory_stalls_out_of_cache() {
    let mut b = Bench::new(BIG);
    let v1 = b.fresh(PHASE);
    let v2 = b.fresh(PHASE);
    let base = b.baseline(&v1);
    let coro = b.coro(&v2, 6);

    // Figure 5's shape: baseline is dominated by memory stalls; CORO
    // removes most of them and is substantially faster overall.
    assert!(
        base.memory / base.cycles > 0.5,
        "baseline memory fraction {:.2} should dominate",
        base.memory / base.cycles
    );
    assert!(
        coro.cycles < base.cycles * 0.7,
        "CORO {:.0} vs baseline {:.0} cycles: expected >1.4x speedup",
        coro.cycles,
        base.cycles
    );
    assert!(
        coro.memory < base.memory * 0.6,
        "CORO should eliminate most memory stalls ({:.0} vs {:.0})",
        coro.memory,
        base.memory
    );
    // ...at the price of more retiring work (state management, §5.4.4).
    assert!(coro.retiring > base.retiring);
}

#[test]
fn interleaving_does_not_help_in_cache() {
    let mut b = Bench::new(SMALL);
    // Extra warming: make the whole 1 MB table LLC-resident.
    let w = b.fresh(2000);
    b.baseline(&w);
    let v1 = b.fresh(PHASE);
    let v2 = b.fresh(PHASE);
    let base = b.baseline(&v1);
    let coro = b.coro(&v2, 6);
    // In cache there are few stalls to hide; the switch overhead makes
    // CORO slower (Figure 3a, sizes below the LLC).
    assert!(
        coro.cycles > base.cycles,
        "in-cache CORO {:.0} should not beat baseline {:.0}",
        coro.cycles,
        base.cycles
    );
}

#[test]
fn lfb_hits_replace_demand_misses_under_interleaving() {
    let mut b = Bench::new(BIG);
    let v1 = b.fresh(PHASE);
    let v2 = b.fresh(PHASE);
    let base = b.baseline(&v1);
    let coro = b.coro(&v2, 6);

    // Figure 6's shape: sequential execution takes its misses as
    // L2/L3/DRAM demand loads; interleaved execution converts them into
    // LFB hits on previously prefetched lines.
    assert_eq!(base.lfb_hits, 0);
    assert!(base.dram_loads > 0);
    assert!(
        coro.lfb_hits as f64 > 0.8 * coro.l1_misses() as f64,
        "most CORO L1 misses should be LFB hits: lfb={} l2={} l3={} dram={}",
        coro.lfb_hits,
        coro.l2_hits,
        coro.l3_hits,
        coro.dram_loads
    );
    assert!(
        coro.dram_loads < base.dram_loads / 5,
        "demand DRAM loads should nearly vanish ({} vs {})",
        coro.dram_loads,
        base.dram_loads
    );
}

#[test]
fn group_size_sweep_has_interior_optimum_for_coro() {
    let mut b = Bench::new(BIG);
    let v0 = b.fresh(PHASE);
    let v1 = b.fresh(PHASE);
    let v2 = b.fresh(PHASE);
    let base = b.baseline(&v0).cycles;
    let g1 = b.coro(&v1, 1).cycles;
    let g6 = b.coro(&v2, 6).cycles;

    // Figure 7: group size 1 is *slower* than the sequential baseline
    // (pure switch overhead), while the model-optimal group is much
    // faster than both.
    assert!(
        g1 > base,
        "G=1 CORO ({g1:.0}) must lose to baseline ({base:.0})"
    );
    assert!(
        g6 < base * 0.7,
        "G=6 CORO ({g6:.0}) must beat baseline ({base:.0})"
    );
    assert!(g6 < g1 * 0.6);
}

#[test]
fn gp_is_fastest_with_fewest_instructions() {
    let mut b = Bench::new(BIG);
    let v1 = b.fresh(PHASE);
    let v2 = b.fresh(PHASE);
    let gp = b.gp(&v1, 10);
    let coro = b.coro(&v2, 6);

    // Section 5.4.4: GP shares the loop across streams, so it executes
    // the fewest instructions and runs fastest.
    assert!(
        gp.cycles < coro.cycles,
        "GP {:.0} should beat CORO {:.0}",
        gp.cycles,
        coro.cycles
    );
    assert!(gp.instructions < coro.instructions);
}

#[test]
fn amac_and_coro_are_equivalent() {
    let mut b = Bench::new(BIG);
    let v1 = b.fresh(PHASE);
    let v2 = b.fresh(PHASE);
    let amac = b.amac(&v1, 6);
    let coro = b.coro(&v2, 6);

    // The paper's claim: CORO is the compiler-generated version of
    // AMAC's hand-written state machine, with slightly better
    // performance. Assert equivalence within a tight band, CORO no worse
    // than a whisker.
    let ratio = coro.cycles / amac.cycles;
    assert!(
        (0.70..=1.10).contains(&ratio),
        "CORO/AMAC cycle ratio {ratio:.2} out of expected band"
    );
}

#[test]
fn branchy_speculation_beats_branchfree_out_of_cache_only() {
    // Out of cache: speculation overlaps stalls -> std wins (§5.4.1).
    let mut b = Bench::new(BIG);
    let v1 = b.fresh(PHASE);
    let v2 = b.fresh(PHASE);
    let base = b.baseline(&v1);
    let branchy = b.branchy(&v2);
    assert!(
        branchy.cycles < base.cycles,
        "out-of-cache branchy {:.0} should beat branch-free {:.0}",
        branchy.cycles,
        base.cycles
    );
    assert!(
        branchy.bad_spec / branchy.cycles > 0.08,
        "bad speculation should be visible, got {:.2}",
        branchy.bad_spec / branchy.cycles
    );
    assert!(
        branchy.mispredicts * 3 > branchy.branches,
        "~50% mispredicts"
    );

    // In cache: nothing to hide, mispredicts just cost -> baseline wins.
    let mut s = Bench::new(SMALL);
    let w = s.fresh(2000);
    s.baseline(&w);
    let u1 = s.fresh(PHASE);
    let u2 = s.fresh(PHASE);
    let base2 = s.baseline(&u1);
    let branchy2 = s.branchy(&u2);
    assert!(
        branchy2.cycles > base2.cycles,
        "in-cache branchy {:.0} should lose to branch-free {:.0}",
        branchy2.cycles,
        base2.cycles
    );
}

#[test]
fn cpi_rises_steeply_out_of_cache() {
    // Table 1's shape: CPI grows several-fold from the cache-resident to
    // the out-of-cache case (the paper measures 0.9 -> 6.3 for Main).
    let mut s = Bench::new(SMALL);
    let w = s.fresh(2000);
    s.baseline(&w);
    let vs = s.fresh(PHASE);
    let cpi_small = s.baseline(&vs).cpi();

    let mut b = Bench::new(BIG);
    let vb = b.fresh(PHASE);
    let cpi_big = b.baseline(&vb).cpi();

    assert!(cpi_small < 3.0, "in-cache CPI {cpi_small:.2}");
    assert!(
        cpi_big > 2.5 * cpi_small,
        "CPI should grow several-fold: {cpi_small:.2} -> {cpi_big:.2}"
    );
}

#[test]
fn page_walks_appear_beyond_stlb_reach() {
    // Section 5.4.3: beyond STLB reach (1024 pages = 4 MB), loads start
    // paying page walks that interleaving cannot hide.
    let mut small = Bench::new(512 << 10); // 2 MB: within STLB reach
    let vs = small.fresh(PHASE);
    let s = small.baseline(&vs);
    let walks_small = s.pw_l1 + s.pw_l2 + s.pw_l3 + s.pw_dram;

    let mut big = Bench::new(BIG); // 64 MB: far beyond STLB reach
    let vb = big.fresh(PHASE);
    let bstats = big.baseline(&vb);
    let walks_big = bstats.pw_l1 + bstats.pw_l2 + bstats.pw_l3 + bstats.pw_dram;

    assert!(
        walks_big > walks_small * 10,
        "walks: small={walks_small} big={walks_big}"
    );
    // And interleaved execution still pays them (prefetch blocks on
    // translation): CORO's walk count is in the same ballpark.
    let vc = big.fresh(PHASE);
    let coro = big.coro(&vc, 6);
    let walks_coro = coro.pw_l1 + coro.pw_l2 + coro.pw_l3 + coro.pw_dram;
    assert!(
        walks_coro as f64 > 0.5 * walks_big as f64,
        "interleaving cannot hide translation: {walks_coro} vs {walks_big}"
    );
}

//! The `serve` sweep: load-tests the admission-batched lookup service
//! over {backend × shard count × batch policy × load mode} and writes
//! a machine-readable `BENCH_serve.json` (schema `isi-serve/v1`).
//!
//! Two load modes per cell:
//!
//! * **closed** — each client thread issues its next request the
//!   moment the previous one returns; measures the service's
//!   saturation throughput under the policy.
//! * **open** — each client issues on a fixed schedule (total target
//!   rate split across clients), sleeping until the next slot when
//!   ahead and issuing immediately when behind (paced open loop,
//!   bounded by client concurrency); measures latency at a fixed
//!   offered load, where the `max_wait` deadline rather than batch
//!   fill dominates flushes.
//!
//! Latency quantiles come from the service's own log-bucketed
//! [`LatencyHist`](isi_core::stats::LatencyHist) (admission →
//! response), so the document records the queueing cost of batching,
//! not just engine time.
//!
//! A second, **mixed read/write** sweep (`--mixed`, schema
//! `isi-serve-mixed/v6`) drives closed-loop clients whose operation
//! streams contain a configurable write fraction (puts + removes) and
//! range-scan fraction (`get_range` over a fixed key span) against a
//! writable store, with merges on the background merger thread by
//! default (`bg_merge`, toggleable to foreground for A/B runs). The
//! sweep has a **merge-threshold axis** (`merge_thresholds`): the
//! run-stack delta keeps write cost O(run log run) regardless of how
//! many entries the delta holds, so a large threshold (rare merges,
//! deep delta) should cost write throughput almost nothing — the
//! axis is the regression sentinel for that claim. Cells record merge
//! counts and latency, background-merge counts, published delta runs
//! and stack compactions, residual delta size, plan-stage delta hits
//! and residual fraction, and hot-key-cache hits alongside the usual
//! throughput/latency columns. The **adapt axis** (`--adapt
//! off|auto`, `config.adapts`) reruns every grid point per
//! adaptive-dispatch mode: `off` is the fixed-policy baseline, `auto`
//! closes the density → group-size feedback loop (dispatchers retune
//! every `retune_interval` read runs and pin to shard home cores);
//! each cell records its `retunes` count and per-shard
//! `final_groups`.
//! With the observability layer on (`--obs`) each cell additionally
//! captures the service's per-shard per-stage latency breakdown
//! ([`LookupService::stage_breakdown`]), the end-to-end latency sum
//! (so the verifier can cross-check that request-path stage time never
//! exceeds it) and a chrome://tracing export of the cell's event
//! rings.

use std::time::{Duration, Instant};

use isi_core::par::ParConfig;
use isi_core::policy::Interleave;
use isi_serve::{
    Adapt, Backend, BatchPolicy, FsyncMode, LookupService, ServeConfig, ShardedStore, Stage,
    StoreConfig,
};
use isi_workloads::uniform_indices;

use crate::json::{self, num, obj, str, Json};

/// Schema tag written into (and required from) every result document
/// (defined in the [`crate::schema`] registry).
pub use crate::schema::SERVE as SCHEMA;

/// The two load modes, in sweep order.
pub const MODES: [&str; 2] = ["closed", "open"];

/// One admission-queue flush policy of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicySpec {
    /// Flush at this many queued requests...
    pub max_batch: usize,
    /// ...or when the oldest has waited this many microseconds.
    pub max_wait_us: u64,
}

impl PolicySpec {
    fn to_batch_policy(self) -> BatchPolicy {
        BatchPolicy {
            max_batch: self.max_batch,
            max_wait: Duration::from_micros(self.max_wait_us),
        }
    }
}

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct ServeBenchCfg {
    /// Backends to sweep.
    pub backends: Vec<Backend>,
    /// Shard counts to sweep (powers of two).
    pub shard_counts: Vec<usize>,
    /// Batch policies to sweep.
    pub policies: Vec<PolicySpec>,
    /// Key/value pairs in the store (keys are `0, 2, 4, ...`).
    pub store_keys: usize,
    /// Concurrent client threads per cell.
    pub clients: usize,
    /// Requests each client issues per cell.
    pub requests_per_client: usize,
    /// Total offered arrival rate for open-loop cells (req/s).
    pub open_rate_rps: f64,
    /// Interleave group size for dispatched batches.
    pub group: usize,
    /// Per-shard admission-queue bound.
    pub queue_cap: usize,
}

impl ServeBenchCfg {
    /// Full sweep: a 1M-pair store, all backends, shards {1, 2, 4},
    /// three policies from latency-biased to throughput-biased.
    pub fn full() -> Self {
        Self {
            backends: Backend::ALL.to_vec(),
            shard_counts: vec![1, 2, 4],
            policies: vec![
                PolicySpec {
                    max_batch: 8,
                    max_wait_us: 100,
                },
                PolicySpec {
                    max_batch: 64,
                    max_wait_us: 1_000,
                },
                PolicySpec {
                    max_batch: 256,
                    max_wait_us: 5_000,
                },
            ],
            store_keys: 1 << 20,
            clients: 8,
            requests_per_client: 2_000,
            open_rate_rps: 20_000.0,
            group: 6,
            queue_cap: 1024,
        }
    }

    /// Smoke sweep for CI: tiny store and request counts — seconds,
    /// not minutes — but the same cell grid shape as the full sweep.
    pub fn smoke() -> Self {
        Self {
            backends: Backend::ALL.to_vec(),
            shard_counts: vec![1, 2],
            policies: vec![PolicySpec {
                max_batch: 16,
                max_wait_us: 200,
            }],
            store_keys: 1 << 12,
            clients: 4,
            requests_per_client: 256,
            open_rate_rps: 50_000.0,
            group: 6,
            queue_cap: 256,
        }
    }
}

/// One measured cell of the sweep.
#[derive(Debug, Clone)]
pub struct ServeCell {
    /// Load mode (one of [`MODES`]).
    pub mode: &'static str,
    /// Store backend.
    pub backend: Backend,
    /// Shard count.
    pub shards: usize,
    /// Batch policy used.
    pub policy: PolicySpec,
    /// Requests answered (clients × requests_per_client).
    pub requests: u64,
    /// Requests that found their key.
    pub hits: u64,
    /// Wall time of the whole cell, nanoseconds.
    pub elapsed_ns: f64,
    /// Answered requests per second.
    pub throughput_rps: f64,
    /// Latency quantiles (admission → response), nanoseconds.
    pub p50_ns: u64,
    /// 95th percentile latency.
    pub p95_ns: u64,
    /// 99th percentile latency.
    pub p99_ns: u64,
    /// Mean latency.
    pub mean_ns: f64,
    /// Batches dispatched.
    pub batches: u64,
    /// Mean requests per dispatched batch.
    pub mean_batch: f64,
    /// Batches flushed full vs by deadline.
    pub full_flushes: u64,
    /// Deadline (or drain) flushes.
    pub timeout_flushes: u64,
}

/// Build the store for one (backend, shards) point: `store_keys`
/// pairs with keys `0, 2, 4, ...` so half the probe space misses.
fn build_store(backend: Backend, shards: usize, store_keys: usize) -> ShardedStore {
    let pairs: Vec<(u64, u64)> = (0..store_keys as u64).map(|i| (i * 2, i)).collect();
    ShardedStore::build(backend, shards, &pairs)
}

/// Deterministic per-client probe list over `[0, 2·store_keys)` —
/// uniform mix of hits and misses, distinct stream per client.
fn client_probes(store_keys: usize, count: usize, client: usize) -> Vec<u64> {
    uniform_indices(store_keys * 2, count, client as u64 + 1)
        .into_iter()
        .map(|i| i as u64)
        .collect()
}

/// Run one cell: spin up a fresh service, drive it with `clients`
/// threads in the given mode, and read the service's own metrics.
pub fn measure_cell(
    mode: &'static str,
    store: &std::sync::Arc<ShardedStore>,
    policy: PolicySpec,
    cfg: &ServeBenchCfg,
) -> ServeCell {
    let backend = store.backend();
    let shards = store.num_shards();
    let svc = LookupService::start(
        std::sync::Arc::clone(store),
        ServeConfig {
            policy: Interleave::from_group(cfg.group),
            batch: policy.to_batch_policy(),
            queue_cap: cfg.queue_cap,
            par: ParConfig::with_threads(1),
            hot_cache_slots: 0,
            trace_events: 0,
            ..ServeConfig::default()
        },
    );
    // Open-loop pacing: the total offered rate split across clients.
    let interval = Duration::from_secs_f64(cfg.clients as f64 / cfg.open_rate_rps.max(1.0));
    let t0 = Instant::now();
    let hits: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|c| {
                let svc = &svc;
                let probes = client_probes(cfg.store_keys, cfg.requests_per_client, c);
                scope.spawn(move || {
                    let start = Instant::now();
                    let mut hits = 0u64;
                    for (i, &key) in probes.iter().enumerate() {
                        if mode == "open" {
                            let due = start + interval * i as u32;
                            let now = Instant::now();
                            if now < due {
                                std::thread::sleep(due - now);
                            }
                        }
                        hits += svc.get(key).is_some() as u64;
                    }
                    hits
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let elapsed_ns = t0.elapsed().as_nanos() as f64;
    let stats = svc.stats();
    ServeCell {
        mode,
        backend,
        shards,
        policy,
        requests: stats.requests,
        hits,
        elapsed_ns,
        throughput_rps: stats.requests as f64 / (elapsed_ns * 1e-9),
        p50_ns: stats.latency.p50(),
        p95_ns: stats.latency.p95(),
        p99_ns: stats.latency.p99(),
        mean_ns: stats.latency.mean(),
        batches: stats.batches,
        mean_batch: stats.mean_batch(),
        full_flushes: stats.full_flushes,
        timeout_flushes: stats.timeout_flushes,
    }
}

/// Run the whole sweep. `progress` receives one line per finished
/// cell (pass `|_| {}` to silence).
pub fn run_sweep(cfg: &ServeBenchCfg, mut progress: impl FnMut(&ServeCell)) -> Vec<ServeCell> {
    let mut cells = Vec::new();
    for &backend in &cfg.backends {
        for &shards in &cfg.shard_counts {
            // The store depends only on (backend, shards): build it
            // once and share it across every policy x mode cell.
            let store = std::sync::Arc::new(build_store(backend, shards, cfg.store_keys));
            for &policy in &cfg.policies {
                for mode in MODES {
                    let cell = measure_cell(mode, &store, policy, cfg);
                    progress(&cell);
                    cells.push(cell);
                }
            }
        }
    }
    cells
}

/// Serialize a finished sweep to the `isi-serve/v1` document.
pub fn to_json(cfg: &ServeBenchCfg, cells: &[ServeCell]) -> Json {
    let results: Vec<Json> = cells
        .iter()
        .map(|c| {
            obj(vec![
                ("mode", str(c.mode)),
                ("backend", str(c.backend.name())),
                ("shards", num(c.shards as f64)),
                ("max_batch", num(c.policy.max_batch as f64)),
                ("max_wait_us", num(c.policy.max_wait_us as f64)),
                ("requests", num(c.requests as f64)),
                ("hits", num(c.hits as f64)),
                ("elapsed_ns", num(c.elapsed_ns.round())),
                ("throughput_rps", num(c.throughput_rps.round())),
                ("p50_ns", num(c.p50_ns as f64)),
                ("p95_ns", num(c.p95_ns as f64)),
                ("p99_ns", num(c.p99_ns as f64)),
                ("mean_ns", num(c.mean_ns.round())),
                ("batches", num(c.batches as f64)),
                ("mean_batch", num((c.mean_batch * 100.0).round() / 100.0)),
                ("full_flushes", num(c.full_flushes as f64)),
                ("timeout_flushes", num(c.timeout_flushes as f64)),
            ])
        })
        .collect();
    obj(vec![
        ("schema", str(SCHEMA)),
        (
            "machine",
            obj(vec![
                (
                    "available_parallelism",
                    num(std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1) as f64),
                ),
                ("arch", str(std::env::consts::ARCH)),
                ("os", str(std::env::consts::OS)),
            ]),
        ),
        (
            "config",
            obj(vec![
                (
                    "backends",
                    Json::Arr(cfg.backends.iter().map(|b| str(b.name())).collect()),
                ),
                (
                    "shard_counts",
                    Json::Arr(cfg.shard_counts.iter().map(|&s| num(s as f64)).collect()),
                ),
                (
                    "policies",
                    Json::Arr(
                        cfg.policies
                            .iter()
                            .map(|p| {
                                obj(vec![
                                    ("max_batch", num(p.max_batch as f64)),
                                    ("max_wait_us", num(p.max_wait_us as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("modes", Json::Arr(MODES.map(str).to_vec())),
                ("store_keys", num(cfg.store_keys as f64)),
                ("clients", num(cfg.clients as f64)),
                ("requests_per_client", num(cfg.requests_per_client as f64)),
                ("open_rate_rps", num(cfg.open_rate_rps)),
                ("group", num(cfg.group as f64)),
                ("queue_cap", num(cfg.queue_cap as f64)),
            ]),
        ),
        ("results", Json::Arr(results)),
    ])
}

/// Validate a result document: schema tag, and exactly one cell with
/// positive throughput, full request coverage and monotone latency
/// quantiles for every `mode × backend × shard count × policy`
/// combination the document's own config declares. Used by the CI
/// smoke job and by the binary's self-check after a sweep.
pub fn verify(doc: &Json) -> Result<(), String> {
    if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return Err(format!("schema tag is not {SCHEMA:?}"));
    }
    let config = doc.get("config").ok_or("missing config")?;
    let backends: Vec<&str> = config
        .get("backends")
        .and_then(Json::as_arr)
        .ok_or("missing config.backends")?
        .iter()
        .filter_map(Json::as_str)
        .collect();
    for b in &backends {
        if Backend::from_name(b).is_none() {
            return Err(format!("unknown backend {b:?} in config"));
        }
    }
    let shard_counts: Vec<usize> = config
        .get("shard_counts")
        .and_then(Json::as_arr)
        .ok_or("missing config.shard_counts")?
        .iter()
        .map(|v| v.as_usize().ok_or("non-integer shard count"))
        .collect::<Result<_, _>>()?;
    let policies: Vec<(usize, usize)> = config
        .get("policies")
        .and_then(Json::as_arr)
        .ok_or("missing config.policies")?
        .iter()
        .map(|p| {
            Ok((
                p.get("max_batch")
                    .and_then(Json::as_usize)
                    .ok_or("policy missing max_batch")?,
                p.get("max_wait_us")
                    .and_then(Json::as_usize)
                    .ok_or("policy missing max_wait_us")?,
            ))
        })
        .collect::<Result<_, String>>()?;
    let modes: Vec<&str> = config
        .get("modes")
        .and_then(Json::as_arr)
        .ok_or("missing config.modes")?
        .iter()
        .filter_map(Json::as_str)
        .collect();
    if backends.is_empty() || shard_counts.is_empty() || policies.is_empty() || modes.is_empty() {
        return Err("empty sweep axes".into());
    }
    for required in MODES {
        if !modes.contains(&required) {
            return Err(format!("mode {required:?} missing from sweep"));
        }
    }
    let expected_requests = config
        .get("clients")
        .and_then(Json::as_usize)
        .ok_or("missing config.clients")?
        * config
            .get("requests_per_client")
            .and_then(Json::as_usize)
            .ok_or("missing config.requests_per_client")?;
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("missing results")?;
    for &m in &modes {
        for &b in &backends {
            for &s in &shard_counts {
                for &(batch, wait) in &policies {
                    let matching: Vec<&Json> = results
                        .iter()
                        .filter(|c| {
                            c.get("mode").and_then(Json::as_str) == Some(m)
                                && c.get("backend").and_then(Json::as_str) == Some(b)
                                && c.get("shards").and_then(Json::as_usize) == Some(s)
                                && c.get("max_batch").and_then(Json::as_usize) == Some(batch)
                                && c.get("max_wait_us").and_then(Json::as_usize) == Some(wait)
                        })
                        .collect();
                    let cell_name = format!("{m}/{b}/shards={s}/batch={batch}/wait={wait}us");
                    if matching.len() != 1 {
                        return Err(format!(
                            "expected exactly 1 cell for {cell_name}, found {}",
                            matching.len()
                        ));
                    }
                    let cell = matching[0];
                    let rate = cell
                        .get("throughput_rps")
                        .and_then(Json::as_f64)
                        .unwrap_or(0.0);
                    if !(rate.is_finite() && rate > 0.0) {
                        return Err(format!("non-positive throughput for {cell_name}"));
                    }
                    if cell.get("requests").and_then(Json::as_usize) != Some(expected_requests) {
                        return Err(format!(
                            "cell {cell_name} did not answer all {expected_requests} requests"
                        ));
                    }
                    let q = |key: &str| cell.get(key).and_then(Json::as_f64).unwrap_or(-1.0);
                    let (p50, p95, p99) = (q("p50_ns"), q("p95_ns"), q("p99_ns"));
                    if !(0.0 <= p50 && p50 <= p95 && p95 <= p99) {
                        return Err(format!(
                            "non-monotone latency quantiles for {cell_name}: \
                             p50={p50} p95={p95} p99={p99}"
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Parse and validate a result file's contents.
pub fn verify_text(text: &str) -> Result<(), String> {
    verify(&json::parse(text).map_err(|e| format!("JSON parse error: {e}"))?)
}

// ---------------------------------------------------------------------------
// Mixed read/write sweep
// ---------------------------------------------------------------------------

/// Schema tag of the mixed read/write sweep document (defined in the
/// [`crate::schema`] registry).
pub use crate::schema::SERVE_MIXED as MIXED_SCHEMA;

/// The default write fractions of the mixed sweep.
pub const WRITE_FRACTIONS: [f64; 4] = [0.0, 0.01, 0.10, 0.50];

/// Mixed-sweep configuration.
#[derive(Debug, Clone)]
pub struct MixedBenchCfg {
    /// Backends to sweep.
    pub backends: Vec<Backend>,
    /// Shard counts to sweep (powers of two).
    pub shard_counts: Vec<usize>,
    /// Fraction of operations that are writes (puts + removes).
    pub write_fractions: Vec<f64>,
    /// Key/value pairs seeded into the store (keys are `0, 2, 4, ...`).
    pub store_keys: usize,
    /// Concurrent closed-loop client threads per cell.
    pub clients: usize,
    /// Operations each client issues per cell.
    pub requests_per_client: usize,
    /// Fraction of operations that are range scans (`get_range`).
    pub range_fraction: f64,
    /// Key-space width of each range scan (`[key, key + range_span]`).
    pub range_span: u64,
    /// Run merges on the background merger thread (the default); off
    /// = foreground merges on the write path, for A/B comparison.
    pub bg_merge: bool,
    /// Write-ahead-log durability: on = every cell runs on a fresh
    /// WAL directory with group-commit fsyncs ([`FsyncMode::Group`]),
    /// merges publish snapshots, and the cell's teardown times a full
    /// crash recovery; off (the default) = the in-memory store of the
    /// original sweep.
    pub wal: bool,
    /// Observability capture (`--obs`): run every cell with the event
    /// trace rings enabled and record the per-shard per-stage latency
    /// breakdown, the end-to-end latency sum and a chrome://tracing
    /// export alongside the usual columns. Off (the default) leaves
    /// tracing disabled, which is the configuration the committed
    /// baseline's throughput numbers are measured in.
    pub obs: bool,
    /// Merge thresholds (per-shard delta entries that trigger a
    /// merge) to sweep: every cell grid point runs once per
    /// threshold. A large threshold stresses the deep-delta write
    /// path the run-stack exists for.
    pub merge_thresholds: Vec<usize>,
    /// Per-shard hot-key cache slots (0 disables).
    pub hot_cache_slots: usize,
    /// Flush policy for every cell.
    pub policy: PolicySpec,
    /// Interleave group size for dispatched batches (the calibrated
    /// ceiling under [`Adapt::Auto`]).
    pub group: usize,
    /// Per-shard admission-queue bound.
    pub queue_cap: usize,
    /// Adaptive-dispatch modes to sweep: every cell grid point runs
    /// once per mode. [`Adapt::Off`] is the fixed-policy baseline;
    /// [`Adapt::Auto`] closes the density → group-size feedback loop
    /// (and pins dispatcher + merger threads to shard home cores).
    pub adapts: Vec<Adapt>,
    /// Read runs between retunes for [`Adapt::Auto`] cells.
    pub retune_interval: usize,
    /// Measurements per cell; the best-throughput run is recorded
    /// (standard best-of-N de-noising, so adjacent cells — in
    /// particular the off/auto pairs the adapt axis exists to compare
    /// — are each at their ceiling rather than at the mercy of one
    /// scheduler hiccup). Each repeat is a complete, fresh
    /// store + service run, so every recorded cell is internally
    /// coherent.
    pub repeat: usize,
}

impl MixedBenchCfg {
    /// Full sweep: a 256k-pair store, all backends, write fractions
    /// {0, 1%, 10%, 50%}, 5% range scans, background merges.
    pub fn full() -> Self {
        Self {
            backends: Backend::ALL.to_vec(),
            shard_counts: vec![2],
            write_fractions: WRITE_FRACTIONS.to_vec(),
            store_keys: 1 << 18,
            clients: 8,
            requests_per_client: 2_000,
            range_fraction: 0.05,
            range_span: 512,
            bg_merge: true,
            wal: false,
            obs: false,
            // 16k ops across 2 shards: at threshold 512, 1% writes
            // stay delta-resident, 10% merge about once per shard,
            // 50% merge repeatedly. Threshold 4096 barely merges at
            // all — the deep-delta cell whose write throughput the
            // run-stack keeps within a whisker of the shallow one.
            merge_thresholds: vec![512, 4096],
            hot_cache_slots: 64,
            policy: PolicySpec {
                max_batch: 64,
                max_wait_us: 1_000,
            },
            group: 6,
            queue_cap: 1024,
            // The committed baseline's acceptance check compares these
            // two modes cell-for-cell; a short interval keeps the
            // controller live even in lightly-dispatched cells.
            adapts: vec![Adapt::Off, Adapt::Auto],
            retune_interval: 4,
            repeat: 3,
        }
    }

    /// Smoke sweep for CI: tiny store, a read-only and a 10%-write
    /// cell, low merge threshold so (background) merges actually run,
    /// 10% range scans so the scan path is exercised.
    pub fn smoke() -> Self {
        Self {
            backends: Backend::ALL.to_vec(),
            shard_counts: vec![2],
            write_fractions: vec![0.0, 0.10],
            store_keys: 1 << 12,
            clients: 4,
            requests_per_client: 256,
            range_fraction: 0.10,
            range_span: 128,
            bg_merge: true,
            wal: false,
            obs: false,
            // ~10% of 1024 ops are writes across 2 shards: low enough
            // a threshold of 24 forces real merges in the smoke cell.
            merge_thresholds: vec![24],
            hot_cache_slots: 32,
            policy: PolicySpec {
                max_batch: 16,
                max_wait_us: 200,
            },
            group: 6,
            queue_cap: 256,
            // One mode keeps the existing CI legs' cell counts stable;
            // the adapt smoke leg overrides this via `--adapt auto`.
            adapts: vec![Adapt::Off],
            retune_interval: 4,
            repeat: 1,
        }
    }
}

/// One per-shard per-stage latency row of a cell's breakdown,
/// captured only with [`MixedBenchCfg::obs`] on. Every
/// [`Stage`] gets a row per shard, zero-count stages included, so the
/// document always names the full pipeline.
#[derive(Debug, Clone)]
pub struct StageRow {
    /// Shard the row describes.
    pub shard: usize,
    /// Stage name ([`Stage::name`], e.g. `"admission_wait"`).
    pub stage: &'static str,
    /// Spans recorded for this (shard, stage).
    pub count: u64,
    /// Total span time, nanoseconds.
    pub sum_ns: u64,
    /// Median span, nanoseconds.
    pub p50_ns: u64,
    /// 95th percentile span.
    pub p95_ns: u64,
    /// 99th percentile span.
    pub p99_ns: u64,
}

/// One measured cell of the mixed sweep.
#[derive(Debug, Clone)]
pub struct MixedCell {
    /// Store backend.
    pub backend: Backend,
    /// Shard count.
    pub shards: usize,
    /// Write fraction this cell targeted.
    pub write_fraction: f64,
    /// Merge threshold this cell ran with.
    pub merge_threshold: usize,
    /// Adaptive-dispatch mode this cell ran with.
    pub adapt: Adapt,
    /// Policy retunes published by the shards' controllers (0 unless
    /// `adapt` is auto).
    pub retunes: u64,
    /// Each shard's published interleave group when the cell finished
    /// (= `config.group` with adapt off, within `[1, config.group]`
    /// with it on).
    pub final_groups: Vec<usize>,
    /// Client operations issued (gets incl. cache hits + puts +
    /// removes + range scans).
    pub requests: u64,
    /// Reads issued.
    pub gets: u64,
    /// Upserts issued.
    pub puts: u64,
    /// Removes issued.
    pub removes: u64,
    /// Range scans issued (client calls, not per-shard entries).
    pub range_scans: u64,
    /// Reads answered by the hot-key cache without dispatch.
    pub cache_hits: u64,
    /// Dispatched read keys the plan stage decided from the delta.
    pub delta_hits: u64,
    /// Fraction of dispatched read keys that reached the engine.
    pub residual_frac: f64,
    /// Reads that found their key.
    pub hits: u64,
    /// Wall time of the whole cell, nanoseconds.
    pub elapsed_ns: f64,
    /// Operations per second.
    pub throughput_rps: f64,
    /// Latency quantiles (admission → response), nanoseconds.
    pub p50_ns: u64,
    /// 95th percentile latency.
    pub p95_ns: u64,
    /// 99th percentile latency.
    pub p99_ns: u64,
    /// Mean latency.
    pub mean_ns: f64,
    /// Batches dispatched.
    pub batches: u64,
    /// Mean entries per dispatched batch.
    pub mean_batch: f64,
    /// Delta-to-main merges during the cell.
    pub merges: u64,
    /// Merges performed by the background merger thread (= `merges`
    /// with `bg_merge` on, 0 with it off).
    pub bg_merges: u64,
    /// Immutable delta runs published by the write path (one per
    /// dispatched per-shard write sub-run; ≤ `puts + removes`).
    pub delta_runs: u64,
    /// Run-stack folds past `max_runs` (≤ `delta_runs`).
    pub compactions: u64,
    /// Median merge wall latency, nanoseconds (0 when no merge ran).
    pub merge_p50_ns: u64,
    /// Residual delta entries when the cell finished (post-quiesce).
    pub delta_keys: u64,
    /// WAL records appended (0 with `wal` off; one per dispatched
    /// write run under group commit).
    pub wal_records: u64,
    /// WAL fsyncs issued (≤ `wal_records` under group commit).
    pub wal_syncs: u64,
    /// Wall time of a full crash recovery from the cell's WAL
    /// directory after shutdown, nanoseconds (0 with `wal` off).
    pub recovery_ns: f64,
    /// End-to-end (admission → response) latency sum, nanoseconds —
    /// the denominator of the verifier's stage-coherence check.
    pub latency_sum_ns: u64,
    /// Per-shard per-stage breakdown (empty with `obs` off).
    pub stages: Vec<StageRow>,
    /// Events in the cell's chrome-trace export (0 with `obs` off).
    pub trace_events: u64,
    /// The cell's chrome://tracing JSON (empty with `obs` off). Kept
    /// out of the result document — the binary writes the last cell's
    /// export to `--trace-out`.
    pub trace_json: String,
}

/// Per-client deterministic op stream: `(key, roll)` where `roll` is
/// uniform in `[0, 1e6)`. The roll picks the op kind: below
/// `write_fraction * 1e6` it is a write (every 8th a remove), in the
/// next `range_fraction * 1e6` band a range scan, otherwise a get.
fn client_ops(cfg: &MixedBenchCfg, client: usize) -> Vec<(u64, u64)> {
    let keys = client_probes(cfg.store_keys, cfg.requests_per_client, client);
    let rolls = uniform_indices(
        1_000_000,
        cfg.requests_per_client,
        client as u64 + 0x5EED_0001,
    );
    keys.into_iter()
        .zip(rolls.into_iter().map(|r| r as u64))
        .collect()
}

/// Run one mixed cell: build a fresh writable store (each cell
/// mutates it), drive closed-loop clients with the cell's write and
/// range fractions, quiesce the merger, read the service's metrics.
pub fn measure_mixed_cell(
    backend: Backend,
    shards: usize,
    write_fraction: f64,
    merge_threshold: usize,
    adapt: Adapt,
    cfg: &MixedBenchCfg,
) -> MixedCell {
    let pairs: Vec<(u64, u64)> = (0..cfg.store_keys as u64).map(|i| (i * 2, i)).collect();
    let mut store_cfg = StoreConfig::with_threshold(merge_threshold);
    if !cfg.bg_merge {
        store_cfg = store_cfg.foreground();
    }
    if adapt != Adapt::Off {
        // Adaptive cells get the full placement story: the merger
        // rebuilds each shard's main on that shard's home core, the
        // same core its (pinned) dispatcher reads from.
        store_cfg = store_cfg.pinned();
    }
    let wal_dir = cfg.wal.then(|| {
        std::env::temp_dir().join(format!(
            "isi-bench-wal-{}-{}-{}-{}-{}-{}",
            std::process::id(),
            backend.name(),
            shards,
            (write_fraction * 1e6) as u64,
            merge_threshold,
            adapt.name()
        ))
    });
    if let Some(dir) = &wal_dir {
        let _ = std::fs::remove_dir_all(dir);
        store_cfg = store_cfg.durable(dir, FsyncMode::Group);
    }
    let store = ShardedStore::build_with(backend, shards, &pairs, store_cfg.clone());
    let svc = LookupService::start(
        store,
        ServeConfig {
            policy: Interleave::from_group(cfg.group),
            adapt,
            retune_interval: cfg.retune_interval,
            batch: cfg.policy.to_batch_policy(),
            queue_cap: cfg.queue_cap,
            par: ParConfig::with_threads(1),
            hot_cache_slots: cfg.hot_cache_slots,
            // Bounded rings: big enough to keep the tail of a smoke
            // cell, dropped-not-grown under the full sweep's load.
            trace_events: if cfg.obs { 4096 } else { 0 },
        },
    );
    let write_below = (write_fraction * 1e6) as u64;
    let range_below = write_below + (cfg.range_fraction * 1e6) as u64;
    let t0 = Instant::now();
    // Each client returns (gets, puts, removes, ranges, hits).
    let totals: Vec<(u64, u64, u64, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|c| {
                let svc = &svc;
                let ops = client_ops(cfg, c);
                scope.spawn(move || {
                    let (mut gets, mut puts, mut removes, mut ranges, mut hits) =
                        (0u64, 0u64, 0u64, 0u64, 0u64);
                    for (i, &(key, roll)) in ops.iter().enumerate() {
                        if roll < write_below {
                            if roll % 8 == 0 {
                                svc.remove(key);
                                removes += 1;
                            } else {
                                svc.put(key, i as u64);
                                puts += 1;
                            }
                        } else if roll < range_below {
                            svc.get_range(key, key + cfg.range_span);
                            ranges += 1;
                        } else {
                            hits += svc.get(key).is_some() as u64;
                            gets += 1;
                        }
                    }
                    (gets, puts, removes, ranges, hits)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed_ns = t0.elapsed().as_nanos() as f64;
    // Settle the background merger so delta/merge columns are the
    // cell's fixpoint, not a race with the last write.
    svc.store().quiesce();
    let stats = svc.stats();
    // Snapshot the published policies before the WAL teardown below
    // drops the service for the recovery timing.
    let final_groups = svc.current_groups();
    // Capture the observability columns before the WAL teardown below
    // drops the service (and its trace rings) for the recovery timing.
    let (stages, trace_events, trace_json) = if cfg.obs {
        let rows: Vec<StageRow> = svc
            .stage_breakdown()
            .iter()
            .enumerate()
            .flat_map(|(shard, row)| {
                Stage::ALL.iter().map(move |&stage| {
                    let h = &row[stage.index()];
                    StageRow {
                        shard,
                        stage: stage.name(),
                        count: h.count(),
                        sum_ns: h.sum(),
                        p50_ns: h.p50(),
                        p95_ns: h.p95(),
                        p99_ns: h.p99(),
                    }
                })
            })
            .collect();
        let events =
            (svc.obs().trace().events().len() + svc.store().obs().trace().events().len()) as u64;
        (rows, events, svc.export_chrome_trace())
    } else {
        (Vec::new(), 0, String::new())
    };
    // With the WAL on, the cell's teardown doubles as a recovery
    // benchmark: shut the service down cleanly, time a full
    // snapshot + WAL-tail recovery from the cell's directory, and
    // check it restored every surviving key.
    let recovery_ns = if let Some(dir) = &wal_dir {
        let live = svc.store().len();
        drop(svc);
        let t = Instant::now();
        let recovered = ShardedStore::recover(backend, store_cfg)
            .expect("crash recovery from the bench WAL directory");
        let recovery_ns = t.elapsed().as_nanos() as f64;
        assert_eq!(
            recovered.len(),
            live,
            "recovery restored a different key count"
        );
        drop(recovered);
        let _ = std::fs::remove_dir_all(dir);
        recovery_ns
    } else {
        0.0
    };
    let (gets, puts, removes, range_scans, hits) = totals.into_iter().fold(
        (0u64, 0u64, 0u64, 0u64, 0u64),
        |(g, p, r, s, h), (cg, cp, cr, cs, ch)| (g + cg, p + cp, r + cr, s + cs, h + ch),
    );
    let requests = gets + puts + removes + range_scans;
    MixedCell {
        backend,
        shards,
        write_fraction,
        merge_threshold,
        adapt,
        retunes: stats.retunes,
        final_groups,
        requests,
        gets,
        puts,
        removes,
        range_scans,
        cache_hits: stats.cache_hits,
        delta_hits: stats.delta_hits,
        residual_frac: stats.residual_frac(),
        hits,
        elapsed_ns,
        throughput_rps: requests as f64 / (elapsed_ns * 1e-9),
        p50_ns: stats.latency.p50(),
        p95_ns: stats.latency.p95(),
        p99_ns: stats.latency.p99(),
        mean_ns: stats.latency.mean(),
        batches: stats.batches,
        mean_batch: stats.mean_batch(),
        merges: stats.merges,
        bg_merges: stats.bg_merges,
        delta_runs: stats.delta_runs,
        compactions: stats.compactions,
        merge_p50_ns: stats.merge_latency.p50(),
        delta_keys: stats.delta_keys,
        wal_records: stats.wal_records,
        wal_syncs: stats.wal_syncs,
        recovery_ns,
        latency_sum_ns: stats.latency.sum(),
        stages,
        trace_events,
        trace_json,
    }
}

/// Run the whole mixed sweep. `progress` receives one line per
/// finished cell (pass `|_| {}` to silence).
pub fn run_mixed_sweep(
    cfg: &MixedBenchCfg,
    mut progress: impl FnMut(&MixedCell),
) -> Vec<MixedCell> {
    let mut cells = Vec::new();
    for &backend in &cfg.backends {
        for &shards in &cfg.shard_counts {
            for &wf in &cfg.write_fractions {
                for &threshold in &cfg.merge_thresholds {
                    for &adapt in &cfg.adapts {
                        // Best-of-N: every repeat is a complete fresh
                        // run; keep the one whose throughput hit its
                        // ceiling so paired cells compare policies,
                        // not scheduler luck.
                        let cell = (0..cfg.repeat.max(1))
                            .map(|_| measure_mixed_cell(backend, shards, wf, threshold, adapt, cfg))
                            .max_by(|a, b| a.throughput_rps.total_cmp(&b.throughput_rps))
                            .expect("at least one repeat");
                        progress(&cell);
                        cells.push(cell);
                    }
                }
            }
        }
    }
    cells
}

/// Serialize a finished mixed sweep to the `isi-serve-mixed/v6`
/// document.
pub fn to_mixed_json(cfg: &MixedBenchCfg, cells: &[MixedCell]) -> Json {
    let results: Vec<Json> = cells
        .iter()
        .map(|c| {
            let stages: Vec<Json> = c
                .stages
                .iter()
                .map(|s| {
                    obj(vec![
                        ("shard", num(s.shard as f64)),
                        ("stage", str(s.stage)),
                        ("count", num(s.count as f64)),
                        ("sum_ns", num(s.sum_ns as f64)),
                        ("p50_ns", num(s.p50_ns as f64)),
                        ("p95_ns", num(s.p95_ns as f64)),
                        ("p99_ns", num(s.p99_ns as f64)),
                    ])
                })
                .collect();
            obj(vec![
                ("backend", str(c.backend.name())),
                ("shards", num(c.shards as f64)),
                ("write_fraction", num(c.write_fraction)),
                ("merge_threshold", num(c.merge_threshold as f64)),
                ("adapt", str(c.adapt.name())),
                ("retunes", num(c.retunes as f64)),
                (
                    "final_groups",
                    Json::Arr(c.final_groups.iter().map(|&g| num(g as f64)).collect()),
                ),
                ("requests", num(c.requests as f64)),
                ("gets", num(c.gets as f64)),
                ("puts", num(c.puts as f64)),
                ("removes", num(c.removes as f64)),
                ("range_scans", num(c.range_scans as f64)),
                ("cache_hits", num(c.cache_hits as f64)),
                ("delta_hits", num(c.delta_hits as f64)),
                (
                    "residual_frac",
                    num((c.residual_frac * 10_000.0).round() / 10_000.0),
                ),
                ("hits", num(c.hits as f64)),
                ("elapsed_ns", num(c.elapsed_ns.round())),
                ("throughput_rps", num(c.throughput_rps.round())),
                ("p50_ns", num(c.p50_ns as f64)),
                ("p95_ns", num(c.p95_ns as f64)),
                ("p99_ns", num(c.p99_ns as f64)),
                ("mean_ns", num(c.mean_ns.round())),
                ("batches", num(c.batches as f64)),
                ("mean_batch", num((c.mean_batch * 100.0).round() / 100.0)),
                ("merges", num(c.merges as f64)),
                ("bg_merges", num(c.bg_merges as f64)),
                ("runs", num(c.delta_runs as f64)),
                ("compactions", num(c.compactions as f64)),
                ("merge_p50_ns", num(c.merge_p50_ns as f64)),
                ("delta_keys", num(c.delta_keys as f64)),
                ("wal_records", num(c.wal_records as f64)),
                ("wal_syncs", num(c.wal_syncs as f64)),
                ("recovery_ns", num(c.recovery_ns.round())),
                ("latency_sum_ns", num(c.latency_sum_ns as f64)),
                ("trace_events", num(c.trace_events as f64)),
                ("stages", Json::Arr(stages)),
            ])
        })
        .collect();
    obj(vec![
        ("schema", str(MIXED_SCHEMA)),
        (
            "machine",
            obj(vec![
                (
                    "available_parallelism",
                    num(std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1) as f64),
                ),
                ("arch", str(std::env::consts::ARCH)),
                ("os", str(std::env::consts::OS)),
            ]),
        ),
        (
            "config",
            obj(vec![
                (
                    "backends",
                    Json::Arr(cfg.backends.iter().map(|b| str(b.name())).collect()),
                ),
                (
                    "shard_counts",
                    Json::Arr(cfg.shard_counts.iter().map(|&s| num(s as f64)).collect()),
                ),
                (
                    "write_fractions",
                    Json::Arr(cfg.write_fractions.iter().map(|&f| num(f)).collect()),
                ),
                ("store_keys", num(cfg.store_keys as f64)),
                ("clients", num(cfg.clients as f64)),
                ("requests_per_client", num(cfg.requests_per_client as f64)),
                ("range_fraction", num(cfg.range_fraction)),
                ("range_span", num(cfg.range_span as f64)),
                ("bg_merge", Json::Bool(cfg.bg_merge)),
                ("wal", Json::Bool(cfg.wal)),
                (
                    "fsync",
                    str(if cfg.wal {
                        FsyncMode::Group.name()
                    } else {
                        FsyncMode::Off.name()
                    }),
                ),
                ("obs", Json::Bool(cfg.obs)),
                (
                    "merge_thresholds",
                    Json::Arr(
                        cfg.merge_thresholds
                            .iter()
                            .map(|&t| num(t as f64))
                            .collect(),
                    ),
                ),
                ("hot_cache_slots", num(cfg.hot_cache_slots as f64)),
                (
                    "policy",
                    obj(vec![
                        ("max_batch", num(cfg.policy.max_batch as f64)),
                        ("max_wait_us", num(cfg.policy.max_wait_us as f64)),
                    ]),
                ),
                ("group", num(cfg.group as f64)),
                ("queue_cap", num(cfg.queue_cap as f64)),
                (
                    "adapts",
                    Json::Arr(cfg.adapts.iter().map(|a| str(a.name())).collect()),
                ),
                ("retune_interval", num(cfg.retune_interval as f64)),
                ("repeat", num(cfg.repeat as f64)),
            ]),
        ),
        ("results", Json::Arr(results)),
    ])
}

/// Validate a mixed-sweep document: schema tag, exactly one cell per
/// `backend × shard count × write fraction × merge threshold × adapt
/// mode` the config declares, full op coverage (gets, puts, removes
/// and range scans), coherent op/merge/plan counters
/// (background-merge accounting must match the config's `bg_merge`,
/// `residual_frac` must be a fraction), coherent run-stack counters
/// (`compactions ≤ runs ≤ puts + removes` — every published run
/// carries at least one effective write, and a compaction only ever
/// follows a run push), coherent adapt columns (`retunes` zero
/// exactly when the cell's mode is `off`, positive under `auto`, and
/// every `final_groups` entry inside `group_for_density`'s
/// `[1, config.group]` clamp — pinned at `config.group` with adapt
/// off) and monotone latency quantiles.
///
/// v4 observability checks, per cell: with `config.obs` **off** the
/// stage breakdown must be empty and the trace export zero; with it
/// **on** the breakdown must name every required stage per shard
/// (`admission_wait`, `plan`, `engine`, `wal_fsync`, `merge`), stage
/// counts must reconcile with the cell's own counters (an admission
/// wait per dispatched op — a band, since a range call enqueues one
/// entry per shard it spans, fsync/append spans exactly matching the
/// WAL sync/record counts — so fsync spans are zero whenever the WAL
/// is off — and one merge span per merge), request-path stage time
/// (`admission_wait + plan + engine + writeback`) must not exceed the
/// end-to-end latency sum, and the chrome-trace export must be
/// non-empty.
pub fn verify_mixed(doc: &Json) -> Result<(), String> {
    if doc.get("schema").and_then(Json::as_str) != Some(MIXED_SCHEMA) {
        return Err(format!("schema tag is not {MIXED_SCHEMA:?}"));
    }
    let config = doc.get("config").ok_or("missing config")?;
    let backends: Vec<&str> = config
        .get("backends")
        .and_then(Json::as_arr)
        .ok_or("missing config.backends")?
        .iter()
        .filter_map(Json::as_str)
        .collect();
    for b in &backends {
        if Backend::from_name(b).is_none() {
            return Err(format!("unknown backend {b:?} in config"));
        }
    }
    let shard_counts: Vec<usize> = config
        .get("shard_counts")
        .and_then(Json::as_arr)
        .ok_or("missing config.shard_counts")?
        .iter()
        .map(|v| v.as_usize().ok_or("non-integer shard count"))
        .collect::<Result<_, _>>()?;
    let fractions: Vec<f64> = config
        .get("write_fractions")
        .and_then(Json::as_arr)
        .ok_or("missing config.write_fractions")?
        .iter()
        .map(|v| v.as_f64().ok_or("non-numeric write fraction"))
        .collect::<Result<_, _>>()?;
    let thresholds: Vec<usize> = config
        .get("merge_thresholds")
        .and_then(Json::as_arr)
        .ok_or("missing config.merge_thresholds")?
        .iter()
        .map(|v| v.as_usize().ok_or("non-integer merge threshold"))
        .collect::<Result<_, _>>()?;
    let adapts: Vec<&str> = config
        .get("adapts")
        .and_then(Json::as_arr)
        .ok_or("missing config.adapts")?
        .iter()
        .filter_map(Json::as_str)
        .collect();
    for a in &adapts {
        if Adapt::from_name(a).is_none() {
            return Err(format!("unknown adapt mode {a:?} in config"));
        }
    }
    let retune_interval = config
        .get("retune_interval")
        .and_then(Json::as_usize)
        .ok_or("missing config.retune_interval")?;
    if retune_interval == 0 {
        return Err("config.retune_interval must be positive".into());
    }
    let repeat = config
        .get("repeat")
        .and_then(Json::as_usize)
        .ok_or("missing config.repeat")?;
    if repeat == 0 {
        return Err("config.repeat must be positive".into());
    }
    let group = config
        .get("group")
        .and_then(Json::as_usize)
        .ok_or("missing config.group")?;
    if backends.is_empty()
        || shard_counts.is_empty()
        || fractions.is_empty()
        || thresholds.is_empty()
        || adapts.is_empty()
    {
        return Err("empty sweep axes".into());
    }
    for &f in &fractions {
        if !(0.0..=1.0).contains(&f) {
            return Err(format!("write fraction {f} outside [0, 1]"));
        }
    }
    let expected_requests = config
        .get("clients")
        .and_then(Json::as_usize)
        .ok_or("missing config.clients")?
        * config
            .get("requests_per_client")
            .and_then(Json::as_usize)
            .ok_or("missing config.requests_per_client")?;
    let bg_merge = config
        .get("bg_merge")
        .and_then(Json::as_bool)
        .ok_or("missing config.bg_merge")?;
    let wal = config
        .get("wal")
        .and_then(Json::as_bool)
        .ok_or("missing config.wal")?;
    let fsync = config
        .get("fsync")
        .and_then(Json::as_str)
        .ok_or("missing config.fsync")?;
    if FsyncMode::from_name(fsync).is_none() {
        return Err(format!("unknown fsync mode {fsync:?} in config"));
    }
    if wal && fsync == FsyncMode::Off.name() {
        return Err("wal on but fsync mode is off".into());
    }
    if !wal && fsync != FsyncMode::Off.name() {
        return Err(format!("wal off but fsync mode is {fsync:?}"));
    }
    let range_fraction = config
        .get("range_fraction")
        .and_then(Json::as_f64)
        .ok_or("missing config.range_fraction")?;
    if !(0.0..=1.0).contains(&range_fraction) {
        return Err(format!("range fraction {range_fraction} outside [0, 1]"));
    }
    let obs = config
        .get("obs")
        .and_then(Json::as_bool)
        .ok_or("missing config.obs")?;
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("missing results")?;
    for &b in &backends {
        for &s in &shard_counts {
            for &f in &fractions {
                for &t in &thresholds {
                    for &a in &adapts {
                        let matching: Vec<&Json> = results
                            .iter()
                            .filter(|c| {
                                c.get("backend").and_then(Json::as_str) == Some(b)
                                    && c.get("shards").and_then(Json::as_usize) == Some(s)
                                    && c.get("write_fraction")
                                        .and_then(Json::as_f64)
                                        .is_some_and(|cf| (cf - f).abs() < 1e-9)
                                    && c.get("merge_threshold").and_then(Json::as_usize) == Some(t)
                                    && c.get("adapt").and_then(Json::as_str) == Some(a)
                            })
                            .collect();
                        let cell_name =
                            format!("{b}/shards={s}/writes={f}/threshold={t}/adapt={a}");
                        if matching.len() != 1 {
                            return Err(format!(
                                "expected exactly 1 cell for {cell_name}, found {}",
                                matching.len()
                            ));
                        }
                        let cell = matching[0];
                        let count =
                            |key: &str| cell.get(key).and_then(Json::as_f64).unwrap_or(-1.0);
                        let rate = count("throughput_rps");
                        if !(rate.is_finite() && rate > 0.0) {
                            return Err(format!("non-positive throughput for {cell_name}"));
                        }
                        let (gets, puts, removes, range_scans) = (
                            count("gets"),
                            count("puts"),
                            count("removes"),
                            count("range_scans"),
                        );
                        if count("requests") != expected_requests as f64
                            || gets + puts + removes + range_scans != expected_requests as f64
                        {
                            return Err(format!(
                                "cell {cell_name} did not answer all {expected_requests} requests"
                            ));
                        }
                        if f == 0.0
                            && (puts != 0.0
                                || removes != 0.0
                                || count("merges") != 0.0
                                || count("runs") != 0.0
                                || count("compactions") != 0.0)
                        {
                            return Err(format!(
                                "read-only cell {cell_name} recorded writes, merges or delta runs"
                            ));
                        }
                        // Run-stack coherence: every published run carries at
                        // least one effective write, and a stack compaction
                        // only ever follows a run push.
                        let (runs, compactions) = (count("runs"), count("compactions"));
                        if runs > puts + removes {
                            return Err(format!(
                                "cell {cell_name}: runs ({runs}) exceed writes ({})",
                                puts + removes
                            ));
                        }
                        if compactions > runs {
                            return Err(format!(
                                "cell {cell_name}: compactions ({compactions}) > runs ({runs})"
                            ));
                        }
                        if range_fraction > 0.0 && f < 1.0 && range_scans == 0.0 {
                            return Err(format!(
                                "cell {cell_name} ran no range scans despite range_fraction > 0"
                            ));
                        }
                        if count("hits") > gets || count("cache_hits") > gets {
                            return Err(format!("cell {cell_name} hit counters exceed reads"));
                        }
                        let (merges, bg_merges) = (count("merges"), count("bg_merges"));
                        if bg_merge && bg_merges != merges {
                            return Err(format!(
                                "cell {cell_name}: background mode but bg_merges ({bg_merges}) != \
                         merges ({merges})"
                            ));
                        }
                        if !bg_merge && bg_merges != 0.0 {
                            return Err(format!(
                                "cell {cell_name}: foreground mode but bg_merges = {bg_merges}"
                            ));
                        }
                        let rf = count("residual_frac");
                        if !(0.0..=1.0).contains(&rf) {
                            return Err(format!(
                                "cell {cell_name}: residual_frac {rf} outside [0, 1]"
                            ));
                        }
                        let (wal_records, wal_syncs, recovery) = (
                            count("wal_records"),
                            count("wal_syncs"),
                            count("recovery_ns"),
                        );
                        if wal {
                            // Writes went through the log: records for every
                            // write-bearing cell, group commit never syncing
                            // more than once per record, and a timed recovery.
                            if puts + removes > 0.0 && wal_records <= 0.0 {
                                return Err(format!(
                                    "cell {cell_name}: wal on with writes but no WAL records"
                                ));
                            }
                            if wal_syncs > wal_records {
                                return Err(format!(
                                    "cell {cell_name}: wal_syncs ({wal_syncs}) > wal_records \
                             ({wal_records})"
                                ));
                            }
                            if !(recovery.is_finite() && recovery > 0.0) {
                                return Err(format!(
                                    "cell {cell_name}: wal on but no recovery time recorded"
                                ));
                            }
                        } else if wal_records != 0.0 || wal_syncs != 0.0 || recovery != 0.0 {
                            return Err(format!(
                                "cell {cell_name}: wal off but durability counters are non-zero"
                            ));
                        }
                        let (p50, p95, p99) = (count("p50_ns"), count("p95_ns"), count("p99_ns"));
                        if !(0.0 <= p50 && p50 <= p95 && p95 <= p99) {
                            return Err(format!(
                                "non-monotone latency quantiles for {cell_name}: \
                         p50={p50} p95={p95} p99={p99}"
                            ));
                        }
                        // Adapt coherence: the fixed-policy baseline never
                        // retunes, auto retunes (every cell dispatches far
                        // more than `retune_interval` read runs), and every
                        // published group respects `group_for_density`'s
                        // clamp to [1, calibrated].
                        let retunes = count("retunes");
                        match a {
                            "off" if retunes != 0.0 => {
                                return Err(format!(
                                    "cell {cell_name}: adapt off but {retunes} retunes recorded"
                                ));
                            }
                            "auto" if retunes <= 0.0 => {
                                return Err(format!(
                                    "cell {cell_name}: adapt auto but no retunes recorded"
                                ));
                            }
                            _ => {}
                        }
                        let final_groups: Vec<usize> = cell
                            .get("final_groups")
                            .and_then(Json::as_arr)
                            .ok_or_else(|| format!("cell {cell_name} missing final_groups"))?
                            .iter()
                            .filter_map(Json::as_usize)
                            .collect();
                        if final_groups.len() != s {
                            return Err(format!(
                                "cell {cell_name}: {} final_groups for {s} shards",
                                final_groups.len()
                            ));
                        }
                        for &g in &final_groups {
                            if !(1..=group).contains(&g) {
                                return Err(format!(
                                    "cell {cell_name}: final group {g} outside [1, {group}]"
                                ));
                            }
                            if a == "off" && g != group.max(1) {
                                return Err(format!(
                                    "cell {cell_name}: adapt off but published group {g} \
                                 drifted from the configured {group}"
                                ));
                            }
                        }
                        verify_cell_stages(cell, &cell_name, obs, s)?;
                    }
                }
            }
        }
    }
    Ok(())
}

/// The v4 per-cell observability checks of [`verify_mixed`] (see its
/// doc for the full list).
fn verify_cell_stages(
    cell: &Json,
    cell_name: &str,
    obs: bool,
    shards: usize,
) -> Result<(), String> {
    let count = |key: &str| cell.get(key).and_then(Json::as_f64).unwrap_or(-1.0);
    let stages = cell
        .get("stages")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("cell {cell_name} missing stages"))?;
    let trace_events = count("trace_events");
    if !obs {
        if !stages.is_empty() || trace_events != 0.0 {
            return Err(format!(
                "cell {cell_name}: obs off but stage rows or trace events recorded"
            ));
        }
        return Ok(());
    }
    if trace_events <= 0.0 {
        return Err(format!(
            "cell {cell_name}: obs on but the trace export is empty"
        ));
    }
    // Fold the per-shard rows into per-stage totals, checking each row
    // on the way through.
    let mut counts = std::collections::BTreeMap::<&str, f64>::new();
    let mut sums = std::collections::BTreeMap::<&str, f64>::new();
    let mut rows_per_stage = std::collections::BTreeMap::<&str, usize>::new();
    for row in stages {
        let stage = row
            .get("stage")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("cell {cell_name}: stage row without a stage name"))?;
        let shard = row
            .get("shard")
            .and_then(Json::as_usize)
            .ok_or_else(|| format!("cell {cell_name}: stage row without a shard"))?;
        if shard >= shards {
            return Err(format!(
                "cell {cell_name}: stage row for shard {shard} of {shards}"
            ));
        }
        let field = |key: &str| row.get(key).and_then(Json::as_f64).unwrap_or(-1.0);
        let (c, sum) = (field("count"), field("sum_ns"));
        if c < 0.0 || sum < 0.0 {
            return Err(format!(
                "cell {cell_name}: malformed {stage} row for shard {shard}"
            ));
        }
        let (p50, p95, p99) = (field("p50_ns"), field("p95_ns"), field("p99_ns"));
        if c > 0.0 && !(0.0 <= p50 && p50 <= p95 && p95 <= p99) {
            return Err(format!(
                "cell {cell_name}: non-monotone {stage} quantiles for shard {shard}: \
                 p50={p50} p95={p95} p99={p99}"
            ));
        }
        *counts.entry(stage).or_insert(0.0) += c;
        *sums.entry(stage).or_insert(0.0) += sum;
        *rows_per_stage.entry(stage).or_insert(0) += 1;
    }
    for required in ["admission_wait", "plan", "engine", "wal_fsync", "merge"] {
        if rows_per_stage.get(required) != Some(&shards) {
            return Err(format!(
                "cell {cell_name}: stage {required} is not reported once per shard"
            ));
        }
    }
    let total = |name: &str| counts.get(name).copied().unwrap_or(0.0);
    // Count reconciliation against the cell's own columns: one
    // admission wait per dispatched op (cache hits never enqueue,
    // range scans enqueue one entry per shard they touch, so the
    // client-call column bounds a band), one append/fsync span per WAL
    // record/sync — which pins fsync spans to zero whenever the WAL is
    // off — and one merge span per merge.
    let dispatched = count("requests") - count("cache_hits");
    let admission = total("admission_wait");
    let fan_out = count("range_scans") * (shards as f64 - 1.0);
    if admission < dispatched || admission > dispatched + fan_out {
        return Err(format!(
            "cell {cell_name}: {admission} admission_wait spans outside \
             [{dispatched}, {}]",
            dispatched + fan_out
        ));
    }
    for (stage, column) in [
        ("wal_append", "wal_records"),
        ("wal_fsync", "wal_syncs"),
        ("merge", "merges"),
    ] {
        if total(stage) != count(column) {
            return Err(format!(
                "cell {cell_name}: {} {stage} spans for {column} = {}",
                total(stage),
                count(column)
            ));
        }
    }
    // Request-path stage time is a decomposition of end-to-end
    // latency: the stages that run between a request's admission
    // timestamp and its response can never sum past the latency sum.
    // (Merge, WAL and backpressure spans overlap writeback or run on
    // the background merger, so they stay out of the sum.)
    let sum_of = |name: &str| sums.get(name).copied().unwrap_or(0.0);
    let request_path =
        sum_of("admission_wait") + sum_of("plan") + sum_of("engine") + sum_of("writeback");
    let latency_sum = count("latency_sum_ns");
    if request_path > latency_sum {
        return Err(format!(
            "cell {cell_name}: request-path stage time {request_path}ns exceeds the \
             end-to-end latency sum {latency_sum}ns"
        ));
    }
    Ok(())
}

/// Parse a result file and validate it against whichever of the two
/// serve schemas its tag declares.
pub fn verify_any_text(text: &str) -> Result<(), String> {
    let doc = json::parse(text).map_err(|e| format!("JSON parse error: {e}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(SCHEMA) => verify(&doc),
        Some(MIXED_SCHEMA) => verify_mixed(&doc),
        Some(other) => Err(format!("unknown schema tag {other:?}")),
        None => Err("missing schema tag".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ServeBenchCfg {
        ServeBenchCfg {
            backends: Backend::ALL.to_vec(),
            shard_counts: vec![1, 2],
            policies: vec![PolicySpec {
                max_batch: 8,
                max_wait_us: 100,
            }],
            store_keys: 512,
            clients: 2,
            requests_per_client: 64,
            open_rate_rps: 100_000.0,
            group: 4,
            queue_cap: 64,
        }
    }

    #[test]
    fn sweep_produces_a_cell_per_combination_and_verifies() {
        let cfg = tiny_cfg();
        let cells = run_sweep(&cfg, |_| {});
        assert_eq!(cells.len(), 3 * 2 * MODES.len());
        assert!(cells.iter().all(|c| c.requests == 128));
        let doc = to_json(&cfg, &cells);
        verify(&doc).expect("self-produced document must verify");
        verify_text(&doc.to_pretty()).expect("round-trip verify");
    }

    fn tiny_mixed_cfg() -> MixedBenchCfg {
        MixedBenchCfg {
            backends: Backend::ALL.to_vec(),
            shard_counts: vec![1, 2],
            write_fractions: vec![0.0, 0.25],
            store_keys: 512,
            clients: 2,
            requests_per_client: 64,
            range_fraction: 0.15,
            range_span: 64,
            bg_merge: true,
            wal: false,
            obs: false,
            merge_thresholds: vec![16],
            hot_cache_slots: 16,
            policy: PolicySpec {
                max_batch: 8,
                max_wait_us: 100,
            },
            group: 4,
            queue_cap: 64,
            adapts: vec![Adapt::Off, Adapt::Auto],
            retune_interval: 2,
            repeat: 1,
        }
    }

    #[test]
    fn mixed_sweep_produces_a_cell_per_combination_and_verifies() {
        let cfg = tiny_mixed_cfg();
        let cells = run_mixed_sweep(&cfg, |_| {});
        assert_eq!(cells.len(), 3 * 2 * 2 * 2);
        for c in &cells {
            assert_eq!(c.requests, 128);
            assert_eq!(c.gets + c.puts + c.removes + c.range_scans, 128);
            assert!(c.range_scans > 0);
            assert_eq!(c.bg_merges, c.merges);
            assert!((0.0..=1.0).contains(&c.residual_frac));
            // Run-stack counters: a run per dispatched write sub-run,
            // compactions only ever after a push.
            assert!(c.delta_runs <= c.puts + c.removes);
            assert!(c.compactions <= c.delta_runs);
            if c.write_fraction == 0.0 {
                assert_eq!(c.puts + c.removes, 0);
                assert_eq!(c.merges, 0);
                assert_eq!(c.delta_runs, 0);
                assert_eq!(c.delta_hits, 0);
            } else {
                // A quarter of 128 ops are writes: with threshold 16
                // at least one shard must have merged.
                assert!(c.puts + c.removes > 0);
                assert!(c.delta_runs > 0);
            }
            // Adapt coherence: the baseline never retunes and keeps
            // the configured group; auto retunes and stays clamped.
            assert_eq!(c.final_groups.len(), c.shards);
            match c.adapt {
                Adapt::Off => {
                    assert_eq!(c.retunes, 0);
                    assert!(c.final_groups.iter().all(|&g| g == 4));
                }
                Adapt::Auto => {
                    assert!(c.retunes > 0, "auto cell never retuned");
                    assert!(c.final_groups.iter().all(|&g| (1..=4).contains(&g)));
                }
                Adapt::Fixed(_) => unreachable!("not swept"),
            }
        }
        let doc = to_mixed_json(&cfg, &cells);
        verify_mixed(&doc).expect("self-produced mixed document must verify");
        verify_any_text(&doc.to_pretty()).expect("round-trip verify via schema dispatch");
    }

    #[test]
    fn mixed_sweep_sweeps_the_threshold_axis() {
        let cfg = MixedBenchCfg {
            backends: vec![Backend::Sorted],
            shard_counts: vec![1],
            write_fractions: vec![0.25],
            // A merge-heavy cell and a never-merging deep-delta cell.
            merge_thresholds: vec![8, 1 << 16],
            adapts: vec![Adapt::Off],
            ..tiny_mixed_cfg()
        };
        let cells = run_mixed_sweep(&cfg, |_| {});
        assert_eq!(cells.len(), 2, "one cell per threshold");
        assert_eq!(cells[0].merge_threshold, 8);
        assert_eq!(cells[1].merge_threshold, 1 << 16);
        assert!(cells[0].merges > 0, "threshold 8 must merge");
        assert_eq!(cells[1].merges, 0, "threshold 64k must not merge");
        // The deep delta stacks runs; the bounded stack keeps folding.
        assert!(cells[1].delta_runs > 0);
        let doc = to_mixed_json(&cfg, &cells);
        verify_mixed(&doc).expect("threshold-axis document must verify");
    }

    #[test]
    fn verify_mixed_rejects_incoherent_run_stack_columns() {
        let cfg = tiny_mixed_cfg();
        let cells = run_mixed_sweep(&cfg, |_| {});
        let mut doc = to_mixed_json(&cfg, &cells);
        // Claiming more compactions than writes must fail (the cells
        // sweep 128 ops, so 10_000 exceeds any write count).
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "results" {
                    if let Json::Arr(cells) = v {
                        for cell in cells {
                            let Json::Obj(cell) = cell else { continue };
                            // Leave read-only cells alone: their own
                            // zero-run check fires with a different
                            // message.
                            if cell
                                .iter()
                                .any(|(ck, cv)| ck == "write_fraction" && cv.as_f64() == Some(0.0))
                            {
                                continue;
                            }
                            for (ck, cv) in cell.iter_mut() {
                                if ck == "compactions" {
                                    *cv = num(10_000.0);
                                }
                            }
                        }
                    }
                }
            }
        }
        let err = verify_mixed(&doc).expect_err("compactions beyond writes");
        assert!(err.contains("compactions"), "{err}");
    }

    #[test]
    fn mixed_sweep_with_wal_records_durability_columns() {
        let mut cfg = tiny_mixed_cfg();
        cfg.wal = true;
        cfg.obs = true;
        cfg.backends = vec![Backend::Sorted];
        cfg.shard_counts = vec![2];
        cfg.adapts = vec![Adapt::Off];
        let cells = run_mixed_sweep(&cfg, |_| {});
        assert_eq!(cells.len(), 2);
        let stage_count = |c: &MixedCell, name: &str| {
            c.stages
                .iter()
                .filter(|s| s.stage == name)
                .map(|s| s.count)
                .sum::<u64>()
        };
        for c in &cells {
            // Every cell timed a recovery; only write-bearing cells
            // produced WAL records, and group commit never fsyncs
            // more than once per record.
            assert!(c.recovery_ns > 0.0);
            assert!(c.wal_syncs <= c.wal_records);
            if c.write_fraction == 0.0 {
                assert_eq!(c.wal_records, 0);
            } else {
                assert!(c.wal_records > 0);
                assert!(c.wal_syncs > 0);
            }
            // With obs on the WAL stages mirror the durability
            // counters span for span.
            assert_eq!(stage_count(c, "wal_append"), c.wal_records);
            assert_eq!(stage_count(c, "wal_fsync"), c.wal_syncs);
        }
        let doc = to_mixed_json(&cfg, &cells);
        verify_mixed(&doc).expect("wal mixed document must verify");
    }

    #[test]
    fn mixed_sweep_with_obs_captures_stage_breakdown() {
        let cfg = MixedBenchCfg {
            obs: true,
            backends: vec![Backend::Csb],
            shard_counts: vec![2],
            write_fractions: vec![0.25],
            adapts: vec![Adapt::Off],
            ..tiny_mixed_cfg()
        };
        let cells = run_mixed_sweep(&cfg, |_| {});
        assert_eq!(cells.len(), 1);
        let c = &cells[0];
        // The full stage matrix, a non-empty trace and count
        // reconciliation against the cell's own columns.
        assert_eq!(c.stages.len(), 2 * Stage::COUNT);
        assert!(c.trace_events > 0);
        assert!(c.trace_json.contains("traceEvents"));
        let total = |name: &str| {
            c.stages
                .iter()
                .filter(|s| s.stage == name)
                .map(|s| s.count)
                .sum::<u64>()
        };
        // One admission span per dispatched op; range calls add one
        // entry per extra shard they span.
        assert!(total("admission_wait") >= c.requests - c.cache_hits);
        assert!(total("admission_wait") <= c.requests - c.cache_hits + c.range_scans);
        assert_eq!(total("merge"), c.merges);
        assert_eq!(total("wal_fsync"), 0, "wal off must record no fsync spans");
        let request_path: u64 = ["admission_wait", "plan", "engine", "writeback"]
            .iter()
            .map(|n| {
                c.stages
                    .iter()
                    .filter(|s| &s.stage == n)
                    .map(|s| s.sum_ns)
                    .sum::<u64>()
            })
            .sum();
        assert!(
            request_path <= c.latency_sum_ns,
            "stage time {request_path} exceeds latency sum {}",
            c.latency_sum_ns
        );
        let doc = to_mixed_json(&cfg, &cells);
        verify_mixed(&doc).expect("obs document must verify");

        // Tampering with the breakdown must fail the verifier:
        // claiming fsync spans on a wal-off cell.
        let mut tampered = doc;
        if let Json::Obj(fields) = &mut tampered {
            for (k, v) in fields.iter_mut() {
                if k != "results" {
                    continue;
                }
                let Json::Arr(cells) = v else { continue };
                let Json::Obj(cell) = &mut cells[0] else {
                    continue;
                };
                for (ck, cv) in cell.iter_mut() {
                    if ck != "stages" {
                        continue;
                    }
                    let Json::Arr(rows) = cv else { continue };
                    for row in rows {
                        let Json::Obj(row) = row else { continue };
                        if row
                            .iter()
                            .any(|(rk, rv)| rk == "stage" && rv.as_str() == Some("wal_fsync"))
                        {
                            for (rk, rv) in row.iter_mut() {
                                if rk == "count" {
                                    *rv = num(7.0);
                                }
                            }
                        }
                    }
                }
            }
        }
        let err = verify_mixed(&tampered).expect_err("fsync spans with wal off");
        assert!(err.contains("wal_fsync"), "{err}");
    }

    #[test]
    fn verify_mixed_rejects_stage_rows_without_obs() {
        // An obs-off document claiming trace events must fail.
        let cfg = tiny_mixed_cfg();
        let cells = run_mixed_sweep(&cfg, |_| {});
        let mut doc = to_mixed_json(&cfg, &cells);
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k != "results" {
                    continue;
                }
                let Json::Arr(cells) = v else { continue };
                let Json::Obj(cell) = &mut cells[0] else {
                    continue;
                };
                for (ck, cv) in cell.iter_mut() {
                    if ck == "trace_events" {
                        *cv = num(12.0);
                    }
                }
            }
        }
        let err = verify_mixed(&doc).expect_err("trace events with obs off");
        assert!(err.contains("obs off"), "{err}");
    }

    #[test]
    fn verify_mixed_rejects_incoherent_durability_columns() {
        let cfg = tiny_mixed_cfg();
        let cells = run_mixed_sweep(&cfg, |_| {});
        let mut doc = to_mixed_json(&cfg, &cells);
        // Claiming wal-off cells produced WAL records must fail.
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "results" {
                    if let Json::Arr(cells) = v {
                        if let Json::Obj(cell) = &mut cells[0] {
                            for (ck, cv) in cell.iter_mut() {
                                if ck == "wal_records" {
                                    *cv = num(7.0);
                                }
                            }
                        }
                    }
                }
            }
        }
        let err = verify_mixed(&doc).expect_err("non-zero wal counters with wal off");
        assert!(err.contains("durability counters"), "{err}");
    }

    #[test]
    fn verify_mixed_rejects_incoherent_retune_columns() {
        let cfg = tiny_mixed_cfg();
        let cells = run_mixed_sweep(&cfg, |_| {});
        let mut doc = to_mixed_json(&cfg, &cells);
        // An off-mode cell claiming retunes must fail: the baseline's
        // controller never comes due.
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k != "results" {
                    continue;
                }
                let Json::Arr(cells) = v else { continue };
                for cell in cells {
                    let Json::Obj(cell) = cell else { continue };
                    if !cell
                        .iter()
                        .any(|(ck, cv)| ck == "adapt" && cv.as_str() == Some("off"))
                    {
                        continue;
                    }
                    for (ck, cv) in cell.iter_mut() {
                        if ck == "retunes" {
                            *cv = num(5.0);
                        }
                    }
                }
            }
        }
        let err = verify_mixed(&doc).expect_err("retunes recorded with adapt off");
        assert!(err.contains("adapt off"), "{err}");
    }

    #[test]
    fn verify_mixed_rejects_out_of_clamp_final_groups() {
        let cfg = tiny_mixed_cfg();
        let cells = run_mixed_sweep(&cfg, |_| {});
        let mut doc = to_mixed_json(&cfg, &cells);
        // A published group above the calibrated ceiling must fail:
        // `group_for_density` clamps to [1, config.group] (4 here).
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k != "results" {
                    continue;
                }
                let Json::Arr(cells) = v else { continue };
                for cell in cells {
                    let Json::Obj(cell) = cell else { continue };
                    if !cell
                        .iter()
                        .any(|(ck, cv)| ck == "adapt" && cv.as_str() == Some("auto"))
                    {
                        continue;
                    }
                    for (ck, cv) in cell.iter_mut() {
                        if ck == "final_groups" {
                            if let Json::Arr(groups) = cv {
                                groups[0] = num(9.0);
                            }
                        }
                    }
                }
            }
        }
        let err = verify_mixed(&doc).expect_err("final group beyond the clamp");
        assert!(err.contains("outside [1, 4]"), "{err}");
    }

    #[test]
    fn mixed_sweep_foreground_toggle_verifies() {
        let cfg = MixedBenchCfg {
            bg_merge: false,
            backends: vec![Backend::Csb],
            shard_counts: vec![1],
            write_fractions: vec![0.25],
            adapts: vec![Adapt::Off],
            ..tiny_mixed_cfg()
        };
        let cells = run_mixed_sweep(&cfg, |_| {});
        assert_eq!(cells.len(), 1);
        assert!(cells[0].merges > 0, "foreground merges must still run");
        assert_eq!(cells[0].bg_merges, 0);
        let doc = to_mixed_json(&cfg, &cells);
        verify_mixed(&doc).expect("foreground document must verify");
    }

    #[test]
    fn verify_any_dispatches_on_schema_tag() {
        let cfg = tiny_cfg();
        let cells = run_sweep(&cfg, |_| {});
        let doc = to_json(&cfg, &cells);
        verify_any_text(&doc.to_pretty()).expect("plain serve schema dispatch");
        assert!(verify_mixed(&doc).is_err(), "schema tags must not cross");
        assert!(verify_any_text("{\"schema\": \"bogus/v9\"}").is_err());
    }

    #[test]
    fn verify_rejects_tampered_documents() {
        let cfg = tiny_cfg();
        let cells = run_sweep(&cfg, |_| {});
        let doc = to_json(&cfg, &cells);

        // Drop one result cell.
        let mut truncated = doc.clone();
        if let Json::Obj(pairs) = &mut truncated {
            for (k, v) in pairs.iter_mut() {
                if k == "results" {
                    if let Json::Arr(items) = v {
                        items.pop();
                    }
                }
            }
        }
        assert!(verify(&truncated).is_err());

        // Wrong schema tag.
        let mut wrong = doc;
        if let Json::Obj(pairs) = &mut wrong {
            pairs[0].1 = str("other/v0");
        }
        assert!(verify(&wrong).is_err());

        // Not even JSON.
        assert!(verify_text("{nope").is_err());
    }
}

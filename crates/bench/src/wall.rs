//! Wall-clock measurement of the five search implementations on real
//! memory (Figures 3, 4 and 7 on this machine's hardware).

use std::time::Duration;

use isi_core::mem::DirectMem;
use isi_core::stats::time_avg;
use isi_search::key::SearchKey;
use isi_search::{
    bulk_rank_amac, bulk_rank_branchfree, bulk_rank_branchy, bulk_rank_coro, bulk_rank_gp,
};

/// The five implementations of Section 5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchImpl {
    /// Branchy, speculative (`std`).
    Std,
    /// Branch-free conditional-move baseline.
    Baseline,
    /// Group prefetching at this group size.
    Gp(usize),
    /// AMAC at this group size.
    Amac(usize),
    /// Coroutine interleaving at this group size.
    Coro(usize),
}

impl SearchImpl {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            SearchImpl::Std => "std",
            SearchImpl::Baseline => "Baseline",
            SearchImpl::Gp(_) => "GP",
            SearchImpl::Amac(_) => "AMAC",
            SearchImpl::Coro(_) => "CORO",
        }
    }
}

/// Run one bulk lookup of `lookups` against `table` with `impl_`.
/// The output buffer is supplied by the caller to keep allocation out of
/// the measurement.
pub fn run_bulk<K: SearchKey>(table: &[K], lookups: &[K], impl_: SearchImpl, out: &mut [u32]) {
    let mem = DirectMem::new(table);
    match impl_ {
        SearchImpl::Std => bulk_rank_branchy(&mem, lookups, out),
        SearchImpl::Baseline => bulk_rank_branchfree(&mem, lookups, out),
        SearchImpl::Gp(g) => bulk_rank_gp(&mem, lookups, g, out),
        SearchImpl::Amac(g) => bulk_rank_amac(&mem, lookups, g, out),
        SearchImpl::Coro(g) => {
            bulk_rank_coro(mem, lookups, g, out);
        }
    }
}

/// Average wall time per full bulk run over `reps` repetitions (after
/// one warm-up run), matching the paper's average-of-N methodology.
pub fn measure<K: SearchKey>(
    table: &[K],
    lookups: &[K],
    impl_: SearchImpl,
    reps: usize,
) -> Duration {
    let mut out = vec![0u32; lookups.len()];
    run_bulk(table, lookups, impl_, &mut out); // warm-up
    let d = time_avg(reps, || {
        run_bulk(table, lookups, impl_, &mut out);
        std::hint::black_box(&mut out);
    });
    std::hint::black_box(&out);
    d
}

/// Cycles per individual search, the paper's y-axis unit.
pub fn cycles_per_search<K: SearchKey>(
    table: &[K],
    lookups: &[K],
    impl_: SearchImpl,
    reps: usize,
    cycles_per_ns: f64,
) -> f64 {
    let d = measure(table, lookups, impl_, reps);
    d.as_nanos() as f64 * cycles_per_ns / lookups.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_impls_produce_identical_ranks() {
        let table: Vec<u32> = (0..100_000).collect();
        let lookups: Vec<u32> = (0..500).map(|i| i * 199).collect();
        let mut expect = vec![0u32; lookups.len()];
        run_bulk(&table, &lookups, SearchImpl::Baseline, &mut expect);
        for impl_ in [
            SearchImpl::Std,
            SearchImpl::Gp(10),
            SearchImpl::Amac(6),
            SearchImpl::Coro(6),
        ] {
            let mut out = vec![0u32; lookups.len()];
            run_bulk(&table, &lookups, impl_, &mut out);
            assert_eq!(out, expect, "{impl_:?}");
        }
    }

    #[test]
    fn measure_returns_nonzero_time() {
        let table: Vec<u32> = (0..1 << 16).collect();
        let lookups: Vec<u32> = (0..1000).map(|i| i * 61 % (1 << 16)).collect();
        let d = measure(&table, &lookups, SearchImpl::Coro(6), 2);
        assert!(d > Duration::ZERO);
        let c = cycles_per_search(&table, &lookups, SearchImpl::Baseline, 2, 2.0);
        assert!(c > 0.0);
    }
}

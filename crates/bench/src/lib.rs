//! # isi-bench — harnesses that regenerate every table and figure
//!
//! One binary per paper artifact (see `DESIGN.md` for the full index):
//!
//! | binary | artifact |
//! |---|---|
//! | `fig1` | Fig. 1 — IN-predicate response time vs dictionary size (Main) |
//! | `fig3` | Fig. 3 — cycles/search vs array size, int & string, 5 impls |
//! | `fig4` | Fig. 4 — same with sorted lookup values |
//! | `fig5` | Fig. 5 — TMAM execution-time breakdown (simulator) |
//! | `fig6` | Fig. 6 — L1D-miss breakdown (simulator) |
//! | `fig7` | Fig. 7 — group-size sweep + Inequality-1 estimates |
//! | `fig8` | Fig. 8 — IN-predicate response time, Main & Delta |
//! | `table1` | Table 1 — `locate` runtime share and CPI (simulator) |
//! | `table2` | Table 2 — pipeline-slot breakdown of `locate` (simulator) |
//! | `table3` | Table 3 — qualitative technique properties + measured switch cost |
//! | `table5` | Table 5 — implementation complexity / code footprint (LoC) |
//! | `hash_join` | §6 extension — interleaved hash-join probe |
//! | `tlb_index` | §6 extension — B+-tree over sorted array vs TLB-thrashing binary search |
//! | `throughput` | morsel-parallel lookup throughput sweep → `BENCH_throughput.json` ([`throughput`] module) |
//! | `serve` | admission-batched lookup-service load sweep → `BENCH_serve.json` ([`serve`] module) |
//!
//! Environment knobs (all optional): `ISI_MAX_MB` (top of the size sweep,
//! default 256), `ISI_LOOKUPS` (lookup-list length, default 10000),
//! `ISI_REPS` (wall-clock repetitions, default 3), `ISI_GROUPS`
//! ("gp,amac,coro" group sizes, default "10,6,6").

pub mod json;
pub mod loc;
pub mod schema;
pub mod serve;
pub mod sim;
pub mod throughput;
pub mod wall;

use std::time::Duration;

/// Harness configuration parsed from the environment.
#[derive(Debug, Clone)]
pub struct HarnessCfg {
    /// Largest array/dictionary size in MB for sweeps.
    pub max_mb: usize,
    /// Lookup-list length (the paper's default is 10 K).
    pub lookups: usize,
    /// Wall-clock repetitions per data point (average reported, as in
    /// the paper's methodology of §5.3).
    pub reps: usize,
    /// Group sizes for (GP, AMAC, CORO) — the paper's best: 10, 6, 6.
    pub groups: (usize, usize, usize),
    /// Calibrated TSC frequency in cycles/ns (None if unavailable).
    pub ghz: Option<f64>,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl HarnessCfg {
    /// Parse configuration from `ISI_*` environment variables and
    /// calibrate the cycle counter.
    pub fn from_env() -> Self {
        let groups_raw = std::env::var("ISI_GROUPS").unwrap_or_else(|_| "10,6,6".into());
        let mut it = groups_raw.split(',').filter_map(|s| s.trim().parse().ok());
        let groups = (
            it.next().unwrap_or(10),
            it.next().unwrap_or(6),
            it.next().unwrap_or(6),
        );
        Self {
            max_mb: env_usize("ISI_MAX_MB", 256),
            lookups: env_usize("ISI_LOOKUPS", 10_000),
            reps: env_usize("ISI_REPS", 3),
            groups,
            ghz: isi_core::stats::calibrate_tsc(Duration::from_millis(50)),
        }
    }

    /// Cycles per nanosecond, falling back to the nominal 2.1 GHz of
    /// this machine when the TSC is unavailable.
    pub fn cycles_per_ns(&self) -> f64 {
        self.ghz.unwrap_or(2.1)
    }
}

/// The paper's size ladder: 1, 2, 4, ... MB up to `max_mb`.
pub fn size_sweep_mb(max_mb: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut s = 1;
    while s <= max_mb {
        v.push(s);
        s *= 2;
    }
    v
}

/// Render a harness header with the reproduction context.
pub fn banner(title: &str, cfg: &HarnessCfg) {
    println!("# {title}");
    println!(
        "# lookups={} reps={} groups(GP,AMAC,CORO)=({},{},{}) tsc={:.2} GHz max={} MB",
        cfg.lookups,
        cfg.reps,
        cfg.groups.0,
        cfg.groups.1,
        cfg.groups.2,
        cfg.cycles_per_ns(),
        cfg.max_mb
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_powers_of_two() {
        assert_eq!(size_sweep_mb(8), vec![1, 2, 4, 8]);
        assert_eq!(size_sweep_mb(1), vec![1]);
        assert_eq!(size_sweep_mb(0), Vec::<usize>::new());
        assert_eq!(size_sweep_mb(100), vec![1, 2, 4, 8, 16, 32, 64]);
    }

    #[test]
    fn cfg_has_sane_defaults() {
        let cfg = HarnessCfg::from_env();
        assert!(cfg.max_mb >= 1);
        assert!(cfg.lookups >= 1);
        assert!(cfg.reps >= 1);
        assert!(cfg.cycles_per_ns() > 0.1);
    }
}

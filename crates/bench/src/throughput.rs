//! The `throughput` sweep: {variant × table size × thread count} →
//! lookups/sec, written as machine-readable JSON (`BENCH_throughput.json`)
//! so the perf trajectory has data a tool can diff across commits.
//!
//! Methodology: per cell, one untimed warmup run, then `reps` timed
//! runs of the full bulk lookup; the **median** run is reported
//! (one-sided interference only ever adds time, and the median
//! discards it without the minimum's optimism). All parallel cells go
//! through the morsel engine of [`isi_core::par`]; `threads = 1` uses
//! its no-spawn fast path, so the 1-thread column is the sequential
//! engine, not "parallel with one worker" overhead.

use isi_core::mem::DirectMem;
use isi_core::par::ParConfig;
use isi_core::stats::Stopwatch;
use isi_search::{
    bulk_rank_amac_par, bulk_rank_branchfree_par, bulk_rank_coro_par, bulk_rank_gp_par,
};
use isi_workloads::{int_array, uniform_lookups};

use crate::json::{self, num, obj, str, Json};

/// Schema tag written into (and required from) every result document
/// (defined in the [`crate::schema`] registry).
pub use crate::schema::THROUGHPUT as SCHEMA;

/// The four swept variants: the sequential conditional-move baseline
/// and the three interleaving techniques, each behind its morsel-
/// parallel driver.
pub const VARIANTS: [&str; 4] = ["branchfree", "GP", "AMAC", "CORO"];

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct ThroughputCfg {
    /// Table sizes in elements (u32 keys).
    pub table_sizes: Vec<usize>,
    /// Thread counts to sweep.
    pub thread_counts: Vec<usize>,
    /// Number of lookups per bulk run.
    pub lookups: usize,
    /// Timed repetitions per cell (median reported).
    pub reps: usize,
    /// Group sizes for (GP, AMAC, CORO) — the paper's best: 10, 6, 6.
    pub groups: (usize, usize, usize),
    /// Morsel size for the parallel engine.
    pub morsel_size: usize,
}

/// Thread counts {1, 2, 4, ...} up to the machine's available
/// parallelism — always including a multi-threaded point (at least 2),
/// so the thread-scaling column exists even on single-core CI boxes.
pub fn default_thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2);
    let mut counts = vec![1];
    let mut t = 2;
    while t < max {
        counts.push(t);
        t *= 2;
    }
    counts.push(max);
    counts.dedup();
    counts
}

impl ThroughputCfg {
    /// Full sweep: an in-cache (256 KiB) and an out-of-cache (64 MiB)
    /// table, 1 M lookups, median of 5.
    pub fn full() -> Self {
        Self {
            table_sizes: vec![1 << 16, 1 << 24],
            thread_counts: default_thread_counts(),
            lookups: 1 << 20,
            reps: 5,
            groups: (10, 6, 6),
            morsel_size: 4096,
        }
    }

    /// Smoke sweep for CI: a tiny table and few lookups — seconds, not
    /// minutes — but the same cell grid shape as the full sweep.
    pub fn smoke() -> Self {
        Self {
            table_sizes: vec![1 << 12],
            thread_counts: vec![1, 2],
            lookups: 1 << 13,
            reps: 2,
            groups: (10, 6, 6),
            morsel_size: 1024,
        }
    }

    fn group_for(&self, variant: &str) -> usize {
        match variant {
            "GP" => self.groups.0,
            "AMAC" => self.groups.1,
            "CORO" => self.groups.2,
            _ => 1,
        }
    }
}

/// One measured cell of the sweep.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Variant name (one of [`VARIANTS`]).
    pub variant: &'static str,
    /// Table size in elements.
    pub table_size: usize,
    /// Worker-thread count.
    pub threads: usize,
    /// Interleave group size used (1 for the sequential baseline).
    pub group_size: usize,
    /// Median wall time of one full bulk run, nanoseconds.
    pub median_ns: f64,
    /// Lookups per second derived from the median run.
    pub lookups_per_sec: f64,
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Run one cell: warmup + `reps` timed bulk runs, median reported.
pub fn measure_cell(
    variant: &'static str,
    table: &[u32],
    probes: &[u32],
    threads: usize,
    cfg: &ThroughputCfg,
) -> Cell {
    let mem = DirectMem::new(table);
    let par = ParConfig {
        threads,
        morsel_size: cfg.morsel_size,
    };
    let group = cfg.group_for(variant);
    let mut out = vec![0u32; probes.len()];
    let run = |out: &mut [u32]| match variant {
        "branchfree" => bulk_rank_branchfree_par(&mem, probes, par, out),
        "GP" => bulk_rank_gp_par(&mem, probes, group, par, out),
        "AMAC" => bulk_rank_amac_par(&mem, probes, group, par, out),
        "CORO" => {
            bulk_rank_coro_par(mem, probes, group, par, out);
        }
        other => panic!("unknown variant {other}"),
    };

    run(&mut out); // warmup
    let mut samples: Vec<f64> = (0..cfg.reps.max(1))
        .map(|_| {
            let sw = Stopwatch::start();
            run(&mut out);
            std::hint::black_box(&mut out);
            sw.elapsed().as_nanos() as f64
        })
        .collect();
    let median_ns = median(&mut samples);
    Cell {
        variant,
        table_size: table.len(),
        threads,
        group_size: group,
        median_ns,
        lookups_per_sec: probes.len() as f64 / (median_ns * 1e-9),
    }
}

/// Run the whole sweep. `progress` receives one line per finished cell
/// (pass `|_| {}` to silence).
pub fn run_sweep(cfg: &ThroughputCfg, mut progress: impl FnMut(&Cell)) -> Vec<Cell> {
    let mut cells = Vec::new();
    for &size in &cfg.table_sizes {
        let table: Vec<u32> = int_array(size);
        let probes = uniform_lookups(size, cfg.lookups);
        for variant in VARIANTS {
            for &threads in &cfg.thread_counts {
                let cell = measure_cell(variant, &table, &probes, threads, cfg);
                progress(&cell);
                cells.push(cell);
            }
        }
    }
    cells
}

/// Serialize a finished sweep to the `isi-throughput/v1` document.
pub fn to_json(cfg: &ThroughputCfg, cells: &[Cell]) -> Json {
    let rate_at_1t = |variant: &str, size: usize| {
        cells
            .iter()
            .find(|c| c.variant == variant && c.table_size == size && c.threads == 1)
            .map(|c| c.lookups_per_sec)
    };
    let results: Vec<Json> = cells
        .iter()
        .map(|c| {
            let speedup = rate_at_1t(c.variant, c.table_size)
                .map(|base| c.lookups_per_sec / base)
                .map(|s| num((s * 1000.0).round() / 1000.0))
                .unwrap_or(Json::Null);
            obj(vec![
                ("variant", str(c.variant)),
                ("table_size", num(c.table_size as f64)),
                ("threads", num(c.threads as f64)),
                ("group_size", num(c.group_size as f64)),
                ("median_ns", num(c.median_ns.round())),
                ("lookups_per_sec", num(c.lookups_per_sec.round())),
                ("speedup_vs_1t", speedup),
            ])
        })
        .collect();
    obj(vec![
        ("schema", str(SCHEMA)),
        (
            "machine",
            obj(vec![
                (
                    "available_parallelism",
                    num(std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1) as f64),
                ),
                ("arch", str(std::env::consts::ARCH)),
                ("os", str(std::env::consts::OS)),
            ]),
        ),
        (
            "config",
            obj(vec![
                (
                    "table_sizes",
                    Json::Arr(cfg.table_sizes.iter().map(|&s| num(s as f64)).collect()),
                ),
                (
                    "thread_counts",
                    Json::Arr(cfg.thread_counts.iter().map(|&t| num(t as f64)).collect()),
                ),
                ("variants", Json::Arr(VARIANTS.map(str).to_vec())),
                ("lookups", num(cfg.lookups as f64)),
                ("reps", num(cfg.reps as f64)),
                ("warmup_runs", num(1.0)),
                (
                    "groups",
                    obj(vec![
                        ("GP", num(cfg.groups.0 as f64)),
                        ("AMAC", num(cfg.groups.1 as f64)),
                        ("CORO", num(cfg.groups.2 as f64)),
                    ]),
                ),
                ("morsel_size", num(cfg.morsel_size as f64)),
            ]),
        ),
        ("results", Json::Arr(results)),
    ])
}

/// Validate a result document: schema tag, and exactly one result cell
/// with positive throughput for every `variant × table size × thread
/// count` combination the document's own config declares. Used by the
/// CI smoke job and by the binary's self-check after a sweep.
pub fn verify(doc: &Json) -> Result<(), String> {
    if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return Err(format!("schema tag is not {SCHEMA:?}"));
    }
    let config = doc.get("config").ok_or("missing config")?;
    let usize_list = |key: &str| -> Result<Vec<usize>, String> {
        config
            .get(key)
            .and_then(Json::as_arr)
            .ok_or(format!("missing config.{key}"))?
            .iter()
            .map(|v| v.as_usize().ok_or(format!("non-integer in config.{key}")))
            .collect()
    };
    let sizes = usize_list("table_sizes")?;
    let threads = usize_list("thread_counts")?;
    let variants: Vec<&str> = config
        .get("variants")
        .and_then(Json::as_arr)
        .ok_or("missing config.variants")?
        .iter()
        .filter_map(Json::as_str)
        .collect();
    if sizes.is_empty() || threads.is_empty() || variants.is_empty() {
        return Err("empty sweep axes".into());
    }
    for required in VARIANTS {
        if !variants.contains(&required) {
            return Err(format!("variant {required:?} missing from sweep"));
        }
    }
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("missing results")?;
    for v in &variants {
        for &s in &sizes {
            for &t in &threads {
                let matching: Vec<&Json> = results
                    .iter()
                    .filter(|c| {
                        c.get("variant").and_then(Json::as_str) == Some(v)
                            && c.get("table_size").and_then(Json::as_usize) == Some(s)
                            && c.get("threads").and_then(Json::as_usize) == Some(t)
                    })
                    .collect();
                if matching.len() != 1 {
                    return Err(format!(
                        "expected exactly 1 cell for {v}/size={s}/threads={t}, found {}",
                        matching.len()
                    ));
                }
                let rate = matching[0]
                    .get("lookups_per_sec")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0);
                if !(rate.is_finite() && rate > 0.0) {
                    return Err(format!(
                        "non-positive lookups_per_sec for {v}/size={s}/threads={t}"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Parse and validate a result file's contents.
pub fn verify_text(text: &str) -> Result<(), String> {
    verify(&json::parse(text).map_err(|e| format!("JSON parse error: {e}"))?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ThroughputCfg {
        ThroughputCfg {
            table_sizes: vec![256],
            thread_counts: vec![1, 2],
            lookups: 512,
            reps: 1,
            groups: (4, 4, 4),
            morsel_size: 64,
        }
    }

    #[test]
    fn sweep_produces_a_cell_per_combination_and_verifies() {
        let cfg = tiny_cfg();
        let cells = run_sweep(&cfg, |_| {});
        assert_eq!(cells.len(), VARIANTS.len() * 2);
        assert!(cells.iter().all(|c| c.lookups_per_sec > 0.0));
        let doc = to_json(&cfg, &cells);
        verify(&doc).expect("self-produced document must verify");
        // And it round-trips through the serializer + parser.
        verify_text(&doc.to_pretty()).expect("round-trip verify");
    }

    #[test]
    fn verify_rejects_missing_cells_and_bad_schema() {
        let cfg = tiny_cfg();
        let cells = run_sweep(&cfg, |_| {});
        let doc = to_json(&cfg, &cells);

        // Drop one result cell.
        let mut truncated = doc.clone();
        if let Json::Obj(pairs) = &mut truncated {
            for (k, v) in pairs.iter_mut() {
                if k == "results" {
                    if let Json::Arr(items) = v {
                        items.pop();
                    }
                }
            }
        }
        assert!(verify(&truncated).is_err());

        // Wrong schema tag.
        let mut wrong = doc;
        if let Json::Obj(pairs) = &mut wrong {
            pairs[0].1 = str("other/v0");
        }
        assert!(verify(&wrong).is_err());

        // Not even JSON.
        assert!(verify_text("{nope").is_err());
    }

    #[test]
    fn default_thread_counts_always_include_a_parallel_point() {
        let counts = default_thread_counts();
        assert_eq!(counts[0], 1);
        assert!(counts.iter().any(|&t| t >= 2));
        assert!(counts.windows(2).all(|w| w[0] < w[1]));
    }
}

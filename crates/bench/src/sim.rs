//! Simulator-backed measurement: the same implementations run against
//! the `isi-memsim` model of the paper's Haswell Xeon, producing the
//! microarchitectural breakdowns of Figures 5-6 and Tables 1-2.
//!
//! Methodology: each measured phase uses *fresh* lookup values so the
//! hot top levels of the index stay warm (the paper's steady state)
//! while leaf-level lines are cold — re-measuring previously looked-up
//! values would find everything cached and hide the misses under study.

use isi_columnstore::{delta_locate_coro, DeltaDictionary};
use isi_core::sched::{run_interleaved, run_sequential};
use isi_csb::SimTreeStore;
use isi_memsim::{MachineStats, SharedMachine, SimArray};
use isi_search::{bulk_rank_amac, bulk_rank_coro, bulk_rank_gp, rank_branchfree, rank_branchy};

use crate::wall::SearchImpl;

/// A simulated sorted-array benchmark: machine + table + fresh-value
/// stream.
pub struct SimBench {
    machine: SharedMachine,
    arr: SimArray<u32>,
    rng: u64,
}

impl SimBench {
    /// Build an `mb`-megabyte sorted u32 array on a fresh Haswell-model
    /// machine and warm the hot index levels with `warm` lookups.
    pub fn new(mb: usize, warm: usize) -> Self {
        let n = mb * (1 << 20) / 4;
        let machine = SharedMachine::haswell();
        let arr = SimArray::new(&machine, (0..n as u32).collect());
        let mut b = Self {
            machine,
            arr,
            rng: 0x2545_F491_4F6C_DD1D,
        };
        let w = b.fresh(warm);
        b.run(SearchImpl::Baseline, &w);
        b
    }

    /// `count` fresh lookup values (never produced before).
    pub fn fresh(&mut self, count: usize) -> Vec<u32> {
        let n = self.arr.len() as u64;
        (0..count)
            .map(|_| {
                self.rng ^= self.rng << 13;
                self.rng ^= self.rng >> 7;
                self.rng ^= self.rng << 17;
                (self.rng % n) as u32
            })
            .collect()
    }

    /// The underlying sorted table (for oracle checks).
    pub fn raw(&self) -> &[u32] {
        self.arr.raw()
    }

    /// Run a custom measurement against the simulated array: counters
    /// are reset, `f` runs, and the window's stats are returned.
    pub fn run_custom(&self, f: impl FnOnce(&SimArray<u32>)) -> MachineStats {
        self.machine.reset_stats();
        f(&self.arr);
        self.machine.stats()
    }

    /// Run one implementation over `vals`, returning the stats of just
    /// that window.
    pub fn run(&self, impl_: SearchImpl, vals: &[u32]) -> MachineStats {
        self.machine.reset_stats();
        let mut out = vec![0u32; vals.len()];
        match impl_ {
            SearchImpl::Std => {
                let mem = self.arr.mem_speculative();
                for (o, v) in out.iter_mut().zip(vals) {
                    *o = rank_branchy(&mem, *v);
                }
            }
            SearchImpl::Baseline => {
                let mem = self.arr.mem();
                for (o, v) in out.iter_mut().zip(vals) {
                    *o = rank_branchfree(&mem, *v);
                }
            }
            SearchImpl::Gp(g) => bulk_rank_gp(&self.arr.mem(), vals, g, &mut out),
            SearchImpl::Amac(g) => bulk_rank_amac(&self.arr.mem(), vals, g, &mut out),
            SearchImpl::Coro(g) => {
                bulk_rank_coro(self.arr.mem(), vals, g, &mut out);
            }
        }
        std::hint::black_box(&out);
        self.machine.stats()
    }
}

/// A simulated Delta-dictionary benchmark: unsorted value array +
/// CSB+-tree index, both in the machine's address space, probed with
/// the Section 5.5 lookup (leaf comparisons fetch the dictionary array).
pub struct SimDeltaBench {
    machine: SharedMachine,
    values: SimArray<u32>,
    store: SimTreeStore<u32, u32>,
    domain: u64,
    rng: u64,
}

impl SimDeltaBench {
    /// Build a Delta dictionary of `mb` megabytes of distinct u32 values
    /// (insertion order shuffled) and warm the top tree levels.
    pub fn new(mb: usize, warm: usize) -> Self {
        let n = mb * (1 << 20) / 4;
        let dict = DeltaDictionary::from_values(isi_workloads::shuffled_indices(n, 42));
        let machine = SharedMachine::haswell();
        let values = SimArray::new(&machine, dict.values().to_vec());
        let store = SimTreeStore::from_tree(&machine, dict.index());
        let mut b = Self {
            machine,
            values,
            store,
            domain: n as u64,
            rng: 0x9E37_79B9_7F4A_7C15,
        };
        let w = b.fresh(warm);
        b.run_locate(&w, None);
        b
    }

    /// Fresh lookup values (all present in the dictionary).
    pub fn fresh(&mut self, count: usize) -> Vec<u32> {
        (0..count)
            .map(|_| {
                self.rng ^= self.rng << 13;
                self.rng ^= self.rng >> 7;
                self.rng ^= self.rng << 17;
                (self.rng % self.domain) as u32
            })
            .collect()
    }

    /// Bulk locate; `group = None` runs sequentially, `Some(g)`
    /// interleaved. Returns the stats of the window. Panics if any
    /// value fails to locate (they are all present by construction).
    pub fn run_locate(&self, vals: &[u32], group: Option<usize>) -> MachineStats {
        self.machine.reset_stats();
        let store = &self.store;
        let dict = self.values.mem();
        let mut found = 0usize;
        match group {
            None => {
                run_sequential(
                    vals.iter().copied(),
                    |v| delta_locate_coro::<false, u32, _, _>(store, dict, v),
                    |_, r| found += r.is_some() as usize,
                );
            }
            Some(g) => {
                run_interleaved(
                    g,
                    vals.iter().copied(),
                    |v| delta_locate_coro::<true, u32, _, _>(store, dict, v),
                    |_, r| found += r.is_some() as usize,
                );
            }
        }
        assert_eq!(found, vals.len(), "all generated values exist");
        self.machine.stats()
    }
}

/// Helper for Tables 1-2: an IN-predicate query's non-locate work
/// (code-vector scan, result materialization) modelled as a fixed
/// per-row cost on a hardware-prefetched stream.
pub fn scan_cycles(rows: usize) -> f64 {
    rows as f64 * 2.2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_bench_runs_all_impls() {
        let mut b = SimBench::new(2, 100);
        let v = b.fresh(50);
        for impl_ in [
            SearchImpl::Std,
            SearchImpl::Baseline,
            SearchImpl::Gp(10),
            SearchImpl::Amac(6),
            SearchImpl::Coro(6),
        ] {
            let s = b.run(impl_, &v);
            assert!(s.cycles > 0.0, "{impl_:?}");
            assert!(s.loads > 0);
        }
    }

    #[test]
    fn delta_bench_locates_everything() {
        let mut b = SimDeltaBench::new(1, 100);
        let v = b.fresh(80);
        let seq = b.run_locate(&v, None);
        let v2 = b.fresh(80);
        let inter = b.run_locate(&v2, Some(6));
        assert!(seq.cycles > 0.0 && inter.cycles > 0.0);
        // Interleaving must issue prefetches; sequential must not.
        assert_eq!(seq.prefetches, 0);
        assert!(inter.prefetches > 0);
    }

    #[test]
    fn scan_cost_is_linear() {
        assert!(scan_cycles(1000) > scan_cycles(100));
        assert_eq!(scan_cycles(0), 0.0);
    }
}

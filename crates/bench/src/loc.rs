//! Table 5 — implementation complexity and code footprint, measured on
//! *this repository's own source code*.
//!
//! The paper compares lines of code (LoC) that differ between each
//! interleaved implementation and the original sequential binary search
//! (Diff-to-Original), and the total LoC one must maintain to support
//! both execution modes (Total Code Footprint). We compute both metrics
//! from the marked regions in `isi-search`'s sources:
//!
//! * code lines = non-empty lines that are not pure comments,
//! * Diff-to-Original = code lines of the implementation not textually
//!   present (after whitespace normalization) in the baseline region,
//! * footprint = implementation + baseline for the separate-codepath
//!   techniques (GP, AMAC, CORO-S); the unified CORO-U stands alone.

/// The marked sources, embedded at compile time so the analysis always
/// matches the code actually benchmarked.
const SEQ_SRC: &str = include_str!("../../search/src/seq.rs");
const GP_SRC: &str = include_str!("../../search/src/gp.rs");
const AMAC_SRC: &str = include_str!("../../search/src/amac.rs");
const CORO_SRC: &str = include_str!("../../search/src/coro.rs");

/// Extract the region between `[table5:<name>:begin]` and `:end]`.
///
/// # Panics
/// Panics if the markers are missing (the analysis would silently lie).
pub fn region(src: &str, name: &str) -> Vec<String> {
    let begin = format!("[table5:{name}:begin]");
    let end = format!("[table5:{name}:end]");
    let mut in_region = false;
    let mut out = Vec::new();
    for line in src.lines() {
        if line.contains(&begin) {
            in_region = true;
            continue;
        }
        if line.contains(&end) {
            return out;
        }
        if in_region {
            out.push(line.to_string());
        }
    }
    panic!("table5 markers for {name:?} not found or unterminated");
}

/// Is this a code line (non-empty, not a pure comment)?
fn is_code(line: &str) -> bool {
    let t = line.trim();
    !t.is_empty() && !t.starts_with("//") && !t.starts_with("///") && !t.starts_with("//!")
}

/// Count code lines in a region.
pub fn loc(lines: &[String]) -> usize {
    lines.iter().filter(|l| is_code(l)).count()
}

/// Code lines of `lines` not present in `baseline` (whitespace-
/// normalized multiset difference — re-used lines count once each).
pub fn diff_to_original(lines: &[String], baseline: &[String]) -> usize {
    let mut base: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for l in baseline.iter().filter(|l| is_code(l)) {
        *base.entry(normalize(l)).or_default() += 1;
    }
    let mut diff = 0;
    for l in lines.iter().filter(|l| is_code(l)) {
        let n = normalize(l);
        match base.get_mut(&n) {
            Some(c) if *c > 0 => *c -= 1,
            _ => diff += 1,
        }
    }
    diff
}

fn normalize(line: &str) -> String {
    line.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// One Table 5 row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table5Row {
    /// Technique name as in the paper.
    pub technique: &'static str,
    /// LoC of the interleaved implementation.
    pub interleaved: usize,
    /// LoC differing from the original sequential code.
    pub diff_to_original: usize,
    /// LoC maintained to support both sequential and interleaved modes.
    pub total_footprint: usize,
}

/// Compute all four rows of Table 5 from this repository's sources.
pub fn table5_rows() -> Vec<Table5Row> {
    let baseline = region(SEQ_SRC, "baseline");
    let gp = region(GP_SRC, "gp");
    let amac = region(AMAC_SRC, "amac");
    let coro_u = region(CORO_SRC, "coro-u");
    let coro_s = region(CORO_SRC, "coro-s");

    let base_loc = loc(&baseline);
    vec![
        Table5Row {
            technique: "GP",
            interleaved: loc(&gp),
            diff_to_original: diff_to_original(&gp, &baseline),
            total_footprint: loc(&gp) + base_loc,
        },
        Table5Row {
            technique: "AMAC",
            interleaved: loc(&amac),
            diff_to_original: diff_to_original(&amac, &baseline),
            total_footprint: loc(&amac) + base_loc,
        },
        Table5Row {
            technique: "CORO-U",
            interleaved: loc(&coro_u),
            diff_to_original: diff_to_original(&coro_u, &baseline),
            // Unified: the same code serves both modes.
            total_footprint: loc(&coro_u),
        },
        Table5Row {
            technique: "CORO-S",
            interleaved: loc(&coro_s),
            diff_to_original: diff_to_original(&coro_s, &baseline),
            total_footprint: loc(&coro_s) + base_loc,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_exist_and_are_nonempty() {
        for (src, name) in [
            (SEQ_SRC, "baseline"),
            (GP_SRC, "gp"),
            (AMAC_SRC, "amac"),
            (CORO_SRC, "coro-u"),
            (CORO_SRC, "coro-s"),
        ] {
            let r = region(src, name);
            assert!(loc(&r) > 5, "{name} region too small");
        }
    }

    #[test]
    #[should_panic(expected = "not found")]
    fn missing_region_panics() {
        region("fn main() {}", "nope");
    }

    #[test]
    fn code_line_classifier() {
        assert!(is_code("    let x = 1;"));
        assert!(!is_code("   // comment"));
        assert!(!is_code("/// doc"));
        assert!(!is_code(""));
        assert!(is_code("} // trailing comment is still code"));
    }

    #[test]
    fn table5_reproduces_paper_ordering() {
        let rows = table5_rows();
        let get = |t: &str| rows.iter().find(|r| r.technique == t).unwrap().clone();
        let gp = get("GP");
        let amac = get("AMAC");
        let coro_u = get("CORO-U");
        let coro_s = get("CORO-S");

        // Paper Table 5's qualitative claims:
        // CORO-U requires the fewest modifications and smallest footprint.
        assert!(coro_u.diff_to_original < gp.diff_to_original);
        assert!(coro_u.diff_to_original < amac.diff_to_original);
        assert!(coro_u.total_footprint < gp.total_footprint);
        assert!(coro_u.total_footprint < amac.total_footprint);
        assert!(coro_u.total_footprint <= coro_s.total_footprint);
        // Both CORO variants have less code than GP and AMAC.
        assert!(coro_s.interleaved < gp.interleaved || coro_s.interleaved < amac.interleaved);
        // AMAC is the heavyweight.
        assert!(amac.interleaved > gp.interleaved);
        assert!(amac.diff_to_original > gp.diff_to_original);
    }

    #[test]
    fn diff_counts_are_sane() {
        let baseline = region(SEQ_SRC, "baseline");
        // Diff of the baseline to itself is zero.
        assert_eq!(diff_to_original(&baseline, &baseline), 0);
        // Diff of anything to empty is its own LoC.
        let gp = region(GP_SRC, "gp");
        assert_eq!(diff_to_original(&gp, &[]), loc(&gp));
    }
}

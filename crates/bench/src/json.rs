//! Minimal JSON tree, writer and parser for machine-readable benchmark
//! results (`BENCH_*.json`).
//!
//! The workspace vendors no serde, so this is a tiny self-contained
//! implementation: enough JSON to serialize benchmark sweeps and to
//! re-parse and validate them in CI. Objects preserve insertion order;
//! numbers are `f64` (integers round-trip exactly up to 2^53, far
//! beyond any lookup count or nanosecond total we record).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object as an ordered list of key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as usize, if a non-negative integral number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as usize),
            _ => None,
        }
    }

    /// The value as bool, if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as &str, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize with 2-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                if !n.is_finite() {
                    // JSON has no NaN/inf tokens; null keeps the
                    // document parseable and the bogus cell visible.
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Obj(pairs) if pairs.is_empty() => out.push_str("{}"),
            Json::Obj(pairs) => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Returns the value or a message with the byte
/// offset of the first error. Rejects trailing garbage.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut s = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(s);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        s.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is &str, so boundaries
                // are valid).
                let rest = &b[*pos..];
                let ch_len = std::str::from_utf8(rest)
                    .map_err(|_| "invalid utf-8".to_string())?
                    .chars()
                    .next()
                    .map(|c| c.len_utf8())
                    .unwrap_or(1);
                s.push_str(std::str::from_utf8(&rest[..ch_len]).unwrap());
                *pos += ch_len;
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        pairs.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

/// Convenience constructors for building result documents.
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// A numeric JSON value.
pub fn num(n: f64) -> Json {
    Json::Num(n)
}

/// A string JSON value.
pub fn str(s: impl Into<String>) -> Json {
    Json::Str(s.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let doc = obj(vec![
            ("name", str("throughput")),
            ("threads", Json::Arr(vec![num(1.0), num(2.0)])),
            (
                "nested",
                obj(vec![("ok", Json::Bool(true)), ("x", Json::Null)]),
            ),
            ("rate", num(1234567.25)),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let text = doc.to_pretty();
        let back = parse(&text).expect("reparse");
        assert_eq!(back, doc);
    }

    #[test]
    fn accessors() {
        let doc = parse(r#"{"a": 3, "b": "x", "c": [1, 2.5], "d": -1.5}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_usize(), Some(3));
        assert_eq!(doc.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("c").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(doc.get("d").unwrap().as_f64(), Some(-1.5));
        assert_eq!(doc.get("d").unwrap().as_usize(), None);
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let doc = Json::Str("a\"b\\c\nd\te\u{1}ü".into());
        let text = doc.to_pretty();
        assert_eq!(parse(text.trim()).unwrap(), doc);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1 2",
            "{\"a\" 1}",
            "\"unterminated",
            "nan",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(num(16777216.0).to_pretty().trim(), "16777216");
        assert_eq!(num(0.5).to_pretty().trim(), "0.5");
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        // JSON has no NaN/inf; the writer must not emit unparseable
        // tokens.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let text = num(bad).to_pretty();
            assert_eq!(text.trim(), "null");
            assert!(parse(text.trim()).is_ok());
        }
    }
}

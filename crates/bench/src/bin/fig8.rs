//! Figure 8 — IN-predicate queries with 10 K INTEGER values on both
//! column parts: Main (binary search) and Delta (CSB+-tree with
//! dictionary-array leaf accesses, §5.5), sequential vs interleaved.
//!
//! Usage: `cargo run --release -p isi-bench --bin fig8`
//! (Delta trees are memory-hungry: ~2.5x the dictionary size.)

use isi_columnstore::{
    bits_for, execute_in, BitPackedVec, Column, DeltaDictionary, DeltaPart, Interleave,
    MainDictionary, MainPart,
};
use isi_core::stats::time_avg;

use isi_bench::{banner, size_sweep_mb, HarnessCfg};

fn packed_codes(n: usize, rows: usize, seed: u64) -> BitPackedVec {
    let mut codes = BitPackedVec::with_width(bits_for(n));
    let mut x = seed | 1;
    for _ in 0..rows {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        codes.push((x % n as u64) as u32);
    }
    codes
}

fn main() {
    let cfg = HarnessCfg::from_env();
    let rows: usize = std::env::var("ISI_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4_000_000);
    banner(
        "Figure 8: IN-predicate queries, Main and Delta parts (ms)",
        &cfg,
    );
    println!("# rows={rows}, predicate values={}", cfg.lookups);
    println!(
        "\n{:>8} {:>10} {:>12} {:>10} {:>12}",
        "dict", "Main", "Main-Inter", "Delta", "Delta-Inter"
    );

    let group = cfg.groups.2;
    for mb in size_sweep_mb(cfg.max_mb) {
        let n = mb * (1 << 20) / 4;
        let values: Vec<u32> = isi_workloads::uniform_lookups(n, cfg.lookups);

        // Main-only column.
        let main_col = Column {
            main: MainPart {
                dict: MainDictionary::from_sorted((0..n as u32).collect()),
                codes: packed_codes(n, rows, 7),
            },
            delta: Default::default(),
        };
        let m_seq = time_avg(cfg.reps, || {
            std::hint::black_box(execute_in(&main_col, &values, Interleave::Sequential));
        });
        let m_int = time_avg(cfg.reps, || {
            std::hint::black_box(execute_in(
                &main_col,
                &values,
                Interleave::Interleaved(group),
            ));
        });
        drop(main_col);

        // Delta-only column: unsorted dictionary + CSB+-tree index.
        let delta_col = Column {
            main: MainPart {
                dict: MainDictionary::from_sorted(Vec::new()),
                codes: BitPackedVec::new(),
            },
            delta: DeltaPart {
                dict: DeltaDictionary::from_values(isi_workloads::shuffled_indices(n, 42)),
                codes: packed_codes(n, rows, 9),
            },
        };
        let d_seq = time_avg(cfg.reps, || {
            std::hint::black_box(execute_in(&delta_col, &values, Interleave::Sequential));
        });
        let d_int = time_avg(cfg.reps, || {
            std::hint::black_box(execute_in(
                &delta_col,
                &values,
                Interleave::Interleaved(group),
            ));
        });
        drop(delta_col);

        println!(
            "{:>6}MB {:>10.2} {:>12.2} {:>10.2} {:>12.2}",
            mb,
            m_seq.as_secs_f64() * 1e3,
            m_int.as_secs_f64() * 1e3,
            d_seq.as_secs_f64() * 1e3,
            d_int.as_secs_f64() * 1e3,
        );
    }
    println!("\n# paper shape: interleaving reduces Main runtime past the LLC (up to -40%)");
    println!("# and Delta runtime at every size (-10% at 1 MB to -30% at 2 GB).");
}

//! Figure 6 — breakdown of L1D misses per search by where the load was
//! served (LFB / L2 / L3 / DRAM), on the simulator configured as the
//! paper's machine.
//!
//! Usage: `cargo run --release -p isi-bench --bin fig6`

use isi_bench::sim::SimBench;
use isi_bench::wall::SearchImpl;
use isi_bench::{banner, size_sweep_mb, HarnessCfg};

fn main() {
    let cfg = HarnessCfg::from_env();
    banner("Figure 6: L1D-miss breakdown (loads per search)", &cfg);
    let (g_gp, g_amac, g_coro) = cfg.groups;
    let impls = [
        ("std", SearchImpl::Std),
        ("Baseline", SearchImpl::Baseline),
        ("GP", SearchImpl::Gp(g_gp)),
        ("AMAC", SearchImpl::Amac(g_amac)),
        ("CORO", SearchImpl::Coro(g_coro)),
    ];
    let lookups = cfg.lookups.min(4000);
    println!(
        "\n{:<10} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "impl", "size", "LFB", "L2", "L3", "DRAM", "total-miss"
    );
    for (name, impl_) in impls {
        for mb in size_sweep_mb(cfg.max_mb) {
            let mut b = SimBench::new(mb, lookups);
            let vals = b.fresh(lookups);
            let s = b.run(impl_, &vals);
            let per = |x: u64| x as f64 / lookups as f64;
            println!(
                "{:<10} {:>6}MB {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
                name,
                mb,
                per(s.lfb_hits),
                per(s.l2_hits),
                per(s.l3_hits),
                per(s.dram_loads),
                per(s.l1_misses())
            );
        }
        println!();
    }
    println!("# paper shape: sequential misses are L2/L3/DRAM demand loads; with");
    println!("# interleaving most L1D misses become LFB hits on prefetched lines.");
}

//! Table 1 — execution details of `locate`: its share of total query
//! runtime and its CPI, for Main and Delta at a cache-resident size
//! (1 MB) and an out-of-cache size (default 256 MB; the paper uses 2 GB
//! — set `ISI_BIG_MB=2048` to match, memory permitting).
//!
//! Runs on the simulator configured as the paper's machine. The Main
//! `locate` is the branchy HANA-style search (hence its bad-speculation
//! profile in Table 2); the query's non-locate work (code-vector scan
//! over `ISI_ROWS` rows) is modelled as a fixed per-row cost.
//!
//! Usage: `cargo run --release -p isi-bench --bin table1`

use isi_bench::sim::{scan_cycles, SimBench, SimDeltaBench};
use isi_bench::wall::SearchImpl;
use isi_bench::{banner, HarnessCfg};

fn main() {
    let cfg = HarnessCfg::from_env();
    let big_mb: usize = std::env::var("ISI_BIG_MB")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256);
    let rows: usize = std::env::var("ISI_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4_000_000);
    banner("Table 1: execution details of locate (simulated)", &cfg);
    println!("# sizes: 1 MB vs {big_mb} MB (paper: 1 MB vs 2048 MB); rows={rows}");
    let lookups = cfg.lookups.min(5000);

    // Locate cost is measured per lookup, then scaled to the full
    // predicate-list length (the paper's 10 K values).
    let scale = cfg.lookups as f64 / lookups as f64;
    let mut results: Vec<(String, f64, f64)> = Vec::new(); // (label, runtime %, cpi)
    for mb in [1usize, big_mb] {
        let mut b = SimBench::new(mb, lookups);
        let vals = b.fresh(lookups);
        let s = b.run(SearchImpl::Std, &vals); // HANA Main locate is speculative
        let locate_cycles = s.cycles * scale;
        let pct = 100.0 * locate_cycles / (locate_cycles + scan_cycles(rows));
        results.push((format!("Main {mb}MB"), pct, s.cpi()));
    }
    for mb in [1usize, big_mb] {
        let mut b = SimDeltaBench::new(mb, lookups);
        let vals = b.fresh(lookups);
        let s = b.run_locate(&vals, None);
        let locate_cycles = s.cycles * scale;
        let pct = 100.0 * locate_cycles / (locate_cycles + scan_cycles(rows));
        results.push((format!("Delta {mb}MB"), pct, s.cpi()));
    }

    println!(
        "\n{:<14} {:>12} {:>22}",
        "", "Runtime %", "Cycles per Instruction"
    );
    for (label, pct, cpi) in &results {
        println!("{:<14} {:>11.1}% {:>22.2}", label, pct, cpi);
    }
    println!("\n# paper: Main 21.4% -> 65.7%, CPI 0.9 -> 6.3; Delta 34.3% -> 78.8%,");
    println!("# CPI 0.7 -> 4.2. Expected shape: both shares and CPIs rise several-fold");
    println!("# from the cache-resident to the out-of-cache dictionary.");
}

//! `serve` — load sweep of the sharded, admission-batched lookup
//! service ([`isi_serve`]).
//!
//! Measures throughput and admission-to-response latency quantiles
//! for {backend} × {shard count} × {batch policy} × {closed, open}
//! load modes through concurrent client threads, and writes a
//! machine-readable `BENCH_serve.json` (schema `isi-serve/v1`),
//! self-verifying the document before exiting.
//!
//! ```text
//! serve [--smoke] [--out PATH]        run the sweep
//! serve --verify PATH                 validate an existing file
//! ```
//!
//! Knobs (apply on top of the chosen preset): `--keys N`,
//! `--clients N`, `--requests N` (per client), `--shards a,b,..`,
//! `--rate RPS` (open-loop offered load), `--group N`.

use isi_bench::serve::{run_sweep, to_json, verify, verify_text, ServeBenchCfg};

fn fail(msg: &str) -> ! {
    eprintln!("serve: {msg}");
    std::process::exit(1)
}

fn parse_usize(s: &str, flag: &str) -> usize {
    s.parse()
        .ok()
        .filter(|&v: &usize| v > 0)
        .unwrap_or_else(|| fail(&format!("bad {flag} (need integer >= 1)")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `--smoke` picks the base preset before the knob flags apply, so
    // flag order does not matter.
    let mut cfg = if args.iter().any(|a| a == "--smoke") {
        ServeBenchCfg::smoke()
    } else {
        ServeBenchCfg::full()
    };
    let mut out_path = "BENCH_serve.json".to_string();
    let mut verify_path: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
                .clone()
        };
        match arg.as_str() {
            "--smoke" => {}
            "--out" => out_path = value("--out"),
            "--verify" => verify_path = Some(value("--verify")),
            "--keys" => cfg.store_keys = parse_usize(&value("--keys"), "--keys"),
            "--clients" => cfg.clients = parse_usize(&value("--clients"), "--clients"),
            "--requests" => {
                cfg.requests_per_client = parse_usize(&value("--requests"), "--requests")
            }
            "--group" => cfg.group = parse_usize(&value("--group"), "--group"),
            "--rate" => {
                cfg.open_rate_rps = value("--rate")
                    .parse()
                    .ok()
                    .filter(|&v: &f64| v.is_finite() && v > 0.0)
                    .unwrap_or_else(|| fail("bad --rate (need positive number)"))
            }
            "--shards" => {
                let list: Vec<usize> = value("--shards")
                    .split(',')
                    .map(|p| {
                        p.trim()
                            .parse()
                            .ok()
                            .filter(|&v: &usize| v.is_power_of_two())
                            .unwrap_or_else(|| {
                                fail(&format!("bad --shards entry {p:?} (need power of two)"))
                            })
                    })
                    .collect();
                if list.is_empty() {
                    fail("--shards must be a non-empty list");
                }
                cfg.shard_counts = list;
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
    }

    if let Some(path) = verify_path {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
        match verify_text(&text) {
            Ok(()) => println!("{path}: OK ({} bytes)", text.len()),
            Err(e) => fail(&format!("{path}: INVALID: {e}")),
        }
        return;
    }

    println!(
        "# serve sweep: backends={:?} shards={:?} policies={:?} keys={} clients={} reqs/client={} open-rate={}",
        cfg.backends.iter().map(|b| b.name()).collect::<Vec<_>>(),
        cfg.shard_counts,
        cfg.policies,
        cfg.store_keys,
        cfg.clients,
        cfg.requests_per_client,
        cfg.open_rate_rps,
    );
    let cells = run_sweep(&cfg, |c| {
        println!(
            "{:>6} {:>6} shards={:<2} batch={:<4} wait={:<6}us {:>10.0} req/s  p50={:<9} p99={:<9} mean_batch={:.1}",
            c.mode,
            c.backend.name(),
            c.shards,
            c.policy.max_batch,
            c.policy.max_wait_us,
            c.throughput_rps,
            format!("{}ns", c.p50_ns),
            format!("{}ns", c.p99_ns),
            c.mean_batch,
        );
    });
    let doc = to_json(&cfg, &cells);
    verify(&doc).unwrap_or_else(|e| fail(&format!("produced document failed self-check: {e}")));
    std::fs::write(&out_path, doc.to_pretty())
        .unwrap_or_else(|e| fail(&format!("write {out_path}: {e}")));
    println!("wrote {out_path}");
}

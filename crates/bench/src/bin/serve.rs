//! `serve` — load sweeps of the sharded, admission-batched lookup
//! service ([`isi_serve`]).
//!
//! The default sweep measures read-only throughput and
//! admission-to-response latency quantiles for {backend} × {shard
//! count} × {batch policy} × {closed, open} load modes and writes a
//! machine-readable `BENCH_serve.json` (schema `isi-serve/v1`).
//!
//! `--mixed` instead sweeps {backend} × {shard count} × {write
//! fraction} × {merge threshold} × {adapt mode} over the **writable**
//! store — closed-loop clients whose op streams mix
//! `get`/`put`/`remove`/`get_range` — and writes
//! `BENCH_serve_mixed.json` (schema `isi-serve-mixed/v6`), including
//! merge counts (background vs foreground), merge latency, published
//! delta runs and stack compactions, plan-stage delta hits / residual
//! fraction, range-scan counts, hot-key-cache hits, per-cell retune
//! counts and final per-shard interleave groups, and — with `--wal
//! on` — WAL record/fsync counts plus the timed crash recovery each
//! cell runs at teardown. Both binaries' documents self-verify before
//! exiting.
//!
//! ```text
//! serve [--smoke] [--out PATH]        run the read-only sweep
//! serve --mixed [--smoke] [--out PATH] run the mixed read/write sweep
//! serve --verify PATH                 validate an existing file
//!                                     (either schema, by its tag)
//! ```
//!
//! Knobs (apply on top of the chosen preset): `--keys N`,
//! `--clients N`, `--requests N` (per client), `--shards a,b,..`,
//! `--rate RPS` (open-loop offered load, read-only sweep),
//! `--group N`, `--threshold N` (pin the merge-threshold axis to one
//! value, mixed sweep), `--write-frac F` (pin the write-fraction axis
//! to one value in [0, 1], mixed sweep),
//! `--cache N` (hot-key cache slots, mixed sweep), `--adapt a,b,..`
//! (adaptive-dispatch modes to sweep, from off|auto, mixed sweep),
//! `--repeat N` (measurements per cell, best throughput kept — the
//! full preset's default is 3, mixed sweep),
//! `--range F` (range-scan fraction in [0, 1], mixed sweep),
//! `--bg-merge on|off`
//! (background merger vs inline write-path merges, mixed sweep),
//! `--wal on|off` (per-shard write-ahead log with group-commit fsyncs
//! and snapshot-at-merge; each cell times a full crash recovery at
//! teardown, mixed sweep), `--obs` (capture the observability layer:
//! per-shard per-stage latency rows in the document plus a
//! chrome://tracing export of the last cell, mixed sweep) and
//! `--trace-out PATH` (where `--obs` writes that export; default
//! `BENCH_serve_trace.json`).

use isi_bench::serve::{
    run_mixed_sweep, run_sweep, to_json, to_mixed_json, verify, verify_any_text, verify_mixed,
    MixedBenchCfg, ServeBenchCfg,
};

fn fail(msg: &str) -> ! {
    eprintln!("serve: {msg}");
    std::process::exit(1)
}

fn parse_usize(s: &str, flag: &str) -> usize {
    s.parse()
        .ok()
        .filter(|&v: &usize| v > 0)
        .unwrap_or_else(|| fail(&format!("bad {flag} (need integer >= 1)")))
}

fn parse_shards(s: &str) -> Vec<usize> {
    let list: Vec<usize> = s
        .split(',')
        .map(|p| {
            p.trim()
                .parse()
                .ok()
                .filter(|&v: &usize| v.is_power_of_two())
                .unwrap_or_else(|| fail(&format!("bad --shards entry {p:?} (need power of two)")))
        })
        .collect();
    if list.is_empty() {
        fail("--shards must be a non-empty list");
    }
    list
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Mode flags pick the base preset before the knob flags apply, so
    // flag order does not matter.
    let smoke = args.iter().any(|a| a == "--smoke");
    let mixed = args.iter().any(|a| a == "--mixed");
    let mut cfg = if smoke {
        ServeBenchCfg::smoke()
    } else {
        ServeBenchCfg::full()
    };
    let mut mixed_cfg = if smoke {
        MixedBenchCfg::smoke()
    } else {
        MixedBenchCfg::full()
    };
    let mut out_path = if mixed {
        "BENCH_serve_mixed.json".to_string()
    } else {
        "BENCH_serve.json".to_string()
    };
    let mut verify_path: Option<String> = None;
    let mut trace_out = "BENCH_serve_trace.json".to_string();
    // Mode-specific flags seen, so a flag that only applies to the
    // *other* sweep fails loudly instead of silently steering nothing.
    let mut mixed_only_flags: Vec<&'static str> = Vec::new();
    let mut readonly_only_flags: Vec<&'static str> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
                .clone()
        };
        match arg.as_str() {
            "--smoke" | "--mixed" => {}
            "--out" => out_path = value("--out"),
            "--verify" => verify_path = Some(value("--verify")),
            "--keys" => {
                cfg.store_keys = parse_usize(&value("--keys"), "--keys");
                mixed_cfg.store_keys = cfg.store_keys;
            }
            "--clients" => {
                cfg.clients = parse_usize(&value("--clients"), "--clients");
                mixed_cfg.clients = cfg.clients;
            }
            "--requests" => {
                cfg.requests_per_client = parse_usize(&value("--requests"), "--requests");
                mixed_cfg.requests_per_client = cfg.requests_per_client;
            }
            "--group" => {
                cfg.group = parse_usize(&value("--group"), "--group");
                mixed_cfg.group = cfg.group;
            }
            "--threshold" => {
                mixed_only_flags.push("--threshold");
                mixed_cfg.merge_thresholds =
                    vec![parse_usize(&value("--threshold"), "--threshold")];
            }
            "--write-frac" => {
                mixed_only_flags.push("--write-frac");
                mixed_cfg.write_fractions = vec![value("--write-frac")
                    .parse()
                    .ok()
                    .filter(|&v: &f64| (0.0..=1.0).contains(&v))
                    .unwrap_or_else(|| fail("bad --write-frac (need fraction in [0, 1])"))];
            }
            "--cache" => {
                mixed_only_flags.push("--cache");
                // 0 is meaningful here: it disables the hot-key cache.
                mixed_cfg.hot_cache_slots = value("--cache")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --cache (need integer >= 0)"));
            }
            "--adapt" => {
                mixed_only_flags.push("--adapt");
                let list: Vec<_> = value("--adapt")
                    .split(',')
                    .map(|p| {
                        isi_serve::Adapt::from_name(p.trim()).unwrap_or_else(|| {
                            fail(&format!("bad --adapt entry {p:?} (need off|auto)"))
                        })
                    })
                    .collect();
                if list.is_empty() {
                    fail("--adapt must be a non-empty list");
                }
                mixed_cfg.adapts = list;
            }
            "--repeat" => {
                mixed_only_flags.push("--repeat");
                mixed_cfg.repeat = parse_usize(&value("--repeat"), "--repeat");
            }
            "--range" => {
                mixed_only_flags.push("--range");
                mixed_cfg.range_fraction = value("--range")
                    .parse()
                    .ok()
                    .filter(|&v: &f64| (0.0..=1.0).contains(&v))
                    .unwrap_or_else(|| fail("bad --range (need fraction in [0, 1])"));
            }
            "--bg-merge" => {
                mixed_only_flags.push("--bg-merge");
                mixed_cfg.bg_merge = match value("--bg-merge").as_str() {
                    "on" | "true" | "1" => true,
                    "off" | "false" | "0" => false,
                    other => fail(&format!("bad --bg-merge {other:?} (need on|off)")),
                };
            }
            "--wal" => {
                mixed_only_flags.push("--wal");
                mixed_cfg.wal = match value("--wal").as_str() {
                    "on" | "true" | "1" => true,
                    "off" | "false" | "0" => false,
                    other => fail(&format!("bad --wal {other:?} (need on|off)")),
                };
            }
            "--obs" => {
                mixed_only_flags.push("--obs");
                mixed_cfg.obs = true;
            }
            "--trace-out" => {
                mixed_only_flags.push("--trace-out");
                trace_out = value("--trace-out");
            }
            "--rate" => {
                readonly_only_flags.push("--rate");
                cfg.open_rate_rps = value("--rate")
                    .parse()
                    .ok()
                    .filter(|&v: &f64| v.is_finite() && v > 0.0)
                    .unwrap_or_else(|| fail("bad --rate (need positive number)"))
            }
            "--shards" => {
                cfg.shard_counts = parse_shards(&value("--shards"));
                mixed_cfg.shard_counts = cfg.shard_counts.clone();
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
    }

    // A sweep is about to run: a flag for the other mode would be
    // silently inert, which reads as "I ran that experiment" when
    // nothing happened. (--verify runs no sweep, so it skips this.)
    if verify_path.is_none() {
        if !mixed && !mixed_only_flags.is_empty() {
            fail(&format!(
                "{} only appl{} to --mixed; add --mixed or drop {}",
                mixed_only_flags.join(", "),
                if mixed_only_flags.len() == 1 {
                    "ies"
                } else {
                    "y"
                },
                if mixed_only_flags.len() == 1 {
                    "it"
                } else {
                    "them"
                },
            ));
        }
        if mixed && !readonly_only_flags.is_empty() {
            fail(&format!(
                "{} only applies to the read-only sweep; drop it or drop --mixed",
                readonly_only_flags.join(", "),
            ));
        }
    }

    if let Some(path) = verify_path {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
        match verify_any_text(&text) {
            Ok(()) => println!("{path}: OK ({} bytes)", text.len()),
            Err(e) => fail(&format!("{path}: INVALID: {e}")),
        }
        return;
    }

    let doc = if mixed {
        println!(
            "# mixed serve sweep: backends={:?} shards={:?} write-fractions={:?} range-fraction={} keys={} clients={} reqs/client={} thresholds={:?} cache={} bg-merge={} wal={} obs={} adapts={:?} repeat={}",
            mixed_cfg.backends.iter().map(|b| b.name()).collect::<Vec<_>>(),
            mixed_cfg.shard_counts,
            mixed_cfg.write_fractions,
            mixed_cfg.range_fraction,
            mixed_cfg.store_keys,
            mixed_cfg.clients,
            mixed_cfg.requests_per_client,
            mixed_cfg.merge_thresholds,
            mixed_cfg.hot_cache_slots,
            mixed_cfg.bg_merge,
            mixed_cfg.wal,
            mixed_cfg.obs,
            mixed_cfg
                .adapts
                .iter()
                .map(|a| a.name())
                .collect::<Vec<_>>(),
            mixed_cfg.repeat,
        );
        let cells = run_mixed_sweep(&mixed_cfg, |c| {
            println!(
                "{:>6} shards={:<2} writes={:<4} thr={:<5} adapt={:<4} {:>10.0} op/s  p50={:<9} p99={:<9} merges={:<4} bg={:<4} runs={:<5} folds={:<4} scans={:<4} resid={:.3} delta={:<5} cache_hits={:<5} retunes={:<4} groups={:?}",
                c.backend.name(),
                c.shards,
                format!("{}%", (c.write_fraction * 100.0).round()),
                c.merge_threshold,
                c.adapt.name(),
                c.throughput_rps,
                format!("{}ns", c.p50_ns),
                format!("{}ns", c.p99_ns),
                c.merges,
                c.bg_merges,
                c.delta_runs,
                c.compactions,
                c.range_scans,
                c.residual_frac,
                c.delta_keys,
                c.cache_hits,
                c.retunes,
                c.final_groups,
            );
        });
        let doc = to_mixed_json(&mixed_cfg, &cells);
        verify_mixed(&doc)
            .unwrap_or_else(|e| fail(&format!("produced document failed self-check: {e}")));
        if mixed_cfg.obs {
            // The document carries every cell's stage rows; the chrome
            // trace (one timeline per run) is the last cell's.
            let trace = &cells.last().expect("verified sweep has cells").trace_json;
            if !trace.contains("\"traceEvents\"") {
                fail("obs run produced an empty chrome trace");
            }
            std::fs::write(&trace_out, trace)
                .unwrap_or_else(|e| fail(&format!("write {trace_out}: {e}")));
            println!("wrote {trace_out}");
        }
        doc
    } else {
        println!(
            "# serve sweep: backends={:?} shards={:?} policies={:?} keys={} clients={} reqs/client={} open-rate={}",
            cfg.backends.iter().map(|b| b.name()).collect::<Vec<_>>(),
            cfg.shard_counts,
            cfg.policies,
            cfg.store_keys,
            cfg.clients,
            cfg.requests_per_client,
            cfg.open_rate_rps,
        );
        let cells = run_sweep(&cfg, |c| {
            println!(
                "{:>6} {:>6} shards={:<2} batch={:<4} wait={:<6}us {:>10.0} req/s  p50={:<9} p99={:<9} mean_batch={:.1}",
                c.mode,
                c.backend.name(),
                c.shards,
                c.policy.max_batch,
                c.policy.max_wait_us,
                c.throughput_rps,
                format!("{}ns", c.p50_ns),
                format!("{}ns", c.p99_ns),
                c.mean_batch,
            );
        });
        let doc = to_json(&cfg, &cells);
        verify(&doc).unwrap_or_else(|e| fail(&format!("produced document failed self-check: {e}")));
        doc
    };
    std::fs::write(&out_path, doc.to_pretty())
        .unwrap_or_else(|e| fail(&format!("write {out_path}: {e}")));
    println!("wrote {out_path}");
}

//! Table 5 — implementation complexity and code footprint of the ISI
//! techniques, measured on this repository's own marked sources (see
//! `isi_bench::loc` for the metric definitions).
//!
//! Usage: `cargo run -p isi-bench --bin table5`

use isi_bench::loc::table5_rows;

fn main() {
    println!("# Table 5: implementation complexity and code footprint (LoC)");
    println!("# measured on crates/search/src/{{seq,gp,amac,coro}}.rs marked regions\n");
    println!(
        "{:<22} {:>6} {:>6} {:>8} {:>8}",
        "", "GP", "AMAC", "CORO-U", "CORO-S"
    );
    let rows = table5_rows();
    let get = |t: &str| rows.iter().find(|r| r.technique == t).unwrap();
    let (gp, amac, u, s) = (get("GP"), get("AMAC"), get("CORO-U"), get("CORO-S"));
    println!(
        "{:<22} {:>6} {:>6} {:>8} {:>8}",
        "Interleaved", gp.interleaved, amac.interleaved, u.interleaved, s.interleaved
    );
    println!(
        "{:<22} {:>6} {:>6} {:>8} {:>8}",
        "  Diff-to-original",
        gp.diff_to_original,
        amac.diff_to_original,
        u.diff_to_original,
        s.diff_to_original
    );
    println!(
        "{:<22} {:>6} {:>6} {:>8} {:>8}",
        "Total Code Footprint",
        gp.total_footprint,
        amac.total_footprint,
        u.total_footprint,
        s.total_footprint
    );
    println!("\n# paper (C++): interleaved 24/67/15/18; diff 18/64/6/9; footprint 35/78/16/29.");
    println!("# Expected ordering: CORO-U smallest diff & footprint; AMAC largest; both");
    println!("# CORO variants well below GP and AMAC.");
}

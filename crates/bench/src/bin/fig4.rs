//! Figure 4 — binary searches with **sorted** lookup values: sorting the
//! lookup list adds temporal locality between consecutive searches but
//! cannot remove compulsory misses (paper §5.3).
//!
//! Prints both the sorted-lookup cycles and the speedup factor over the
//! unsorted run (the paper reports up to 2.6x for std, ~1.9x for
//! AMAC/CORO on integers).
//!
//! Usage: `cargo run --release -p isi-bench --bin fig4`

use isi_bench::wall::{cycles_per_search, SearchImpl};
use isi_bench::{banner, size_sweep_mb, HarnessCfg};
use isi_workloads as wl;

fn main() {
    let cfg = HarnessCfg::from_env();
    banner(
        "Figure 4: binary searches with sorted lookup values (cycles per search, x100)",
        &cfg,
    );
    let (g_gp, g_amac, g_coro) = cfg.groups;
    let impls = [
        SearchImpl::Std,
        SearchImpl::Baseline,
        SearchImpl::Gp(g_gp),
        SearchImpl::Amac(g_amac),
        SearchImpl::Coro(g_coro),
    ];

    println!("\n## (a) integer array — sorted lookups (and speedup vs unsorted)");
    println!(
        "{:>8} {:>16} {:>16} {:>16} {:>16} {:>16}",
        "size", "std", "Baseline", "GP", "AMAC", "CORO"
    );
    for mb in size_sweep_mb(cfg.max_mb) {
        let table = wl::int_array(wl::ints_for_mb(mb));
        let unsorted = wl::uniform_lookups(table.len(), cfg.lookups);
        let sorted = wl::sorted_lookups(table.len(), cfg.lookups);
        print!("{:>6}MB", mb);
        for impl_ in impls {
            let c_u = cycles_per_search(&table, &unsorted, impl_, cfg.reps, cfg.cycles_per_ns());
            let c_s = cycles_per_search(&table, &sorted, impl_, cfg.reps, cfg.cycles_per_ns());
            print!(" {:>9.2} ({:>4.2}x)", c_s / 100.0, c_u / c_s.max(1e-9));
        }
        println!();
    }

    println!("\n## (b) string array — sorted lookups (and speedup vs unsorted)");
    println!(
        "{:>8} {:>16} {:>16} {:>16} {:>16} {:>16}",
        "size", "std", "Baseline", "GP", "AMAC", "CORO"
    );
    for mb in size_sweep_mb(cfg.max_mb) {
        let table = wl::string_array(wl::strings_for_mb(mb));
        let idx_unsorted = wl::uniform_indices(table.len(), cfg.lookups, wl::SEED);
        let unsorted: Vec<_> = idx_unsorted
            .iter()
            .map(|&i| isi_search::Str16::from_index(i as u64))
            .collect();
        let mut sorted = unsorted.clone();
        sorted.sort_unstable();
        print!("{:>6}MB", mb);
        for impl_ in impls {
            let c_u = cycles_per_search(&table, &unsorted, impl_, cfg.reps, cfg.cycles_per_ns());
            let c_s = cycles_per_search(&table, &sorted, impl_, cfg.reps, cfg.cycles_per_ns());
            print!(" {:>9.2} ({:>4.2}x)", c_s / 100.0, c_u / c_s.max(1e-9));
        }
        println!();
    }
    println!("\n# paper shape: sorting helps every implementation (temporal locality) but");
    println!("# interleaving still wins out-of-cache — compulsory misses remain.");
}

//! Table 3 — properties of the interleaving techniques, with the
//! qualitative columns of the paper plus *measured* quantities from this
//! reproduction: per-switch overhead cycles (simulator profile) and
//! added code complexity (the Table 5 LoC analysis).
//!
//! Usage: `cargo run --release -p isi-bench --bin table3`

use isi_bench::loc::table5_rows;
use isi_bench::sim::SimBench;
use isi_bench::wall::SearchImpl;
use isi_bench::{banner, HarnessCfg};

fn main() {
    let cfg = HarnessCfg::from_env();
    banner("Table 3: properties of interleaving techniques", &cfg);
    let lookups = cfg.lookups.min(3000);

    // Measure switch overhead: retiring+core cycles per miss at G=1,
    // relative to the branch-free baseline (§5.4.5 methodology).
    let mut b = SimBench::new(64.min(cfg.max_mb.max(16)), lookups);
    let vals = b.fresh(lookups);
    let base = b.run(SearchImpl::Baseline, &vals);
    let misses = base.l1_misses() as f64;
    let base_work = (base.retiring + base.core) / misses;
    let mut switch_cost = |impl_: SearchImpl| -> f64 {
        let vals = b.fresh(lookups);
        let s = b.run(impl_, &vals);
        ((s.retiring + s.core) / s.l1_misses().max(1) as f64 - base_work).max(0.0)
    };
    let gp_sw = switch_cost(SearchImpl::Gp(1));
    let amac_sw = switch_cost(SearchImpl::Amac(1));
    let coro_sw = switch_cost(SearchImpl::Coro(1));

    let loc = table5_rows();
    let diff = |t: &str| {
        loc.iter()
            .find(|r| r.technique == t)
            .map(|r| r.diff_to_original)
            .unwrap_or(0)
    };

    println!(
        "\n{:<12} {:>12} {:>24} {:>26}",
        "Technique", "IS Coupling", "IS Switch Overhead", "Added Code Complexity"
    );
    println!(
        "{:<12} {:>12} {:>17.1} cyc/sw {:>20} LoC",
        "GP",
        "Yes",
        gp_sw,
        diff("GP")
    );
    println!(
        "{:<12} {:>12} {:>17.1} cyc/sw {:>20} LoC",
        "AMAC",
        "No",
        amac_sw,
        diff("AMAC")
    );
    println!(
        "{:<12} {:>12} {:>17.1} cyc/sw {:>20} LoC",
        "Coroutines",
        "No",
        coro_sw,
        diff("CORO-U")
    );
    println!("\n# paper: GP very-low overhead / high complexity; AMAC low / very high;");
    println!("# coroutines low / very low.");
    assert!(
        gp_sw <= amac_sw + 1.0 && gp_sw <= coro_sw + 1.0,
        "GP has least overhead"
    );
}

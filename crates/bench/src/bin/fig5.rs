//! Figure 5 — execution-time breakdown of binary search (TMAM pipeline
//! categories) per implementation and array size, on the simulator
//! configured as the paper's Haswell Xeon (25 MB LLC, 182-cycle DRAM).
//!
//! Usage: `cargo run --release -p isi-bench --bin fig5`
//! (`ISI_MAX_MB=1024` extends the sweep; sizes are simulated, so memory
//! usage is the array itself plus small cache-tag state).

use isi_bench::sim::SimBench;
use isi_bench::wall::SearchImpl;
use isi_bench::{banner, size_sweep_mb, HarnessCfg};

fn main() {
    let cfg = HarnessCfg::from_env();
    banner(
        "Figure 5: execution-time breakdown (simulated cycles per search, x100)",
        &cfg,
    );
    let (g_gp, g_amac, g_coro) = cfg.groups;
    let impls = [
        ("std", SearchImpl::Std),
        ("Baseline", SearchImpl::Baseline),
        ("GP", SearchImpl::Gp(g_gp)),
        ("AMAC", SearchImpl::Amac(g_amac)),
        ("CORO", SearchImpl::Coro(g_coro)),
    ];
    let lookups = cfg.lookups.min(4000); // per-phase; plenty for steady state
    println!(
        "\n{:<10} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "impl", "size", "total", "frontend", "badspec", "memory", "core", "retiring"
    );
    for (name, impl_) in impls {
        let mut b_last: Option<SimBench> = None;
        for mb in size_sweep_mb(cfg.max_mb) {
            // Fresh machine per size (array base addresses differ).
            let mut b = SimBench::new(mb, lookups);
            let vals = b.fresh(lookups);
            let s = b.run(impl_, &vals);
            let per = |x: f64| x / lookups as f64 / 100.0;
            println!(
                "{:<10} {:>6}MB {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
                name,
                mb,
                per(s.cycles),
                per(s.frontend),
                per(s.bad_spec),
                per(s.memory),
                per(s.core),
                per(s.retiring)
            );
            b_last = Some(b);
        }
        drop(b_last);
        println!();
    }
    println!("# paper shape: memory stalls dominate std/Baseline out of cache; GP keeps");
    println!("# some memory stalls; AMAC/CORO trade them for retiring/core cycles; std");
    println!("# carries a large bad-speculation component at every size.");
}

//! SPP ablation — the paper's footnote 2 leaves software-pipelined
//! prefetching unimplemented ("we have not yet investigated how to form
//! a pipeline with variable size"). Our `isi-search::spp` closes the
//! gap, exploiting the same observation the paper uses for GP: all
//! searches over one table run the same number of halving iterations.
//!
//! Compares GP, SPP and CORO on the simulator across pipeline depths /
//! group sizes, at one out-of-cache array size.
//!
//! Usage: `cargo run --release -p isi-bench --bin spp`

use isi_bench::sim::SimBench;
use isi_bench::wall::SearchImpl;
use isi_bench::{banner, HarnessCfg};
use isi_memsim::MachineStats;
use isi_search::{bulk_rank_spp, rank_oracle};

fn main() {
    let cfg = HarnessCfg::from_env();
    banner(
        "SPP ablation: static pipeline vs static group vs coroutines",
        &cfg,
    );
    let mb = 64.min(cfg.max_mb.max(16));
    let lookups = cfg.lookups.min(3000);
    let mut b = SimBench::new(mb, lookups);

    println!(
        "\n{:>8} {:>12} {:>12} {:>12}",
        "G/depth", "GP", "SPP", "CORO"
    );
    for g in [1usize, 2, 4, 6, 8, 10, 12] {
        let vals_gp = b.fresh(lookups);
        let gp = b.run(SearchImpl::Gp(g), &vals_gp);
        let spp = run_spp(&mut b, g, lookups);
        let vals_coro = b.fresh(lookups);
        let coro = b.run(SearchImpl::Coro(g), &vals_coro);
        println!(
            "{:>8} {:>12.0} {:>12.0} {:>12.0}",
            g,
            gp.cycles / lookups as f64,
            spp.cycles / lookups as f64,
            coro.cycles / lookups as f64
        );
    }
    println!("\n# expected shape: SPP tracks GP closely (both static, minimal state);");
    println!("# its constant prefetch distance gives it slightly steadier latency cover.");
}

fn run_spp(b: &mut SimBench, depth: usize, lookups: usize) -> MachineStats {
    let vals = b.fresh(lookups);
    let mut out = vec![0u32; vals.len()];
    let stats = b.run_custom(|arr| {
        bulk_rank_spp(&arr.mem(), &vals, depth, &mut out);
    });
    for (i, v) in vals.iter().enumerate() {
        assert_eq!(out[i], rank_oracle(b.raw(), v));
    }
    stats
}

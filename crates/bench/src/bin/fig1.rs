//! Figure 1 — response time of an IN-predicate query with 10 K INTEGER
//! values against the Main part, sequential vs interleaved, as the
//! dictionary grows from 1 MB to the configured maximum.
//!
//! The column holds `ISI_ROWS` (default 4 M) rows drawn uniformly from
//! the dictionary domain; the encode phase (bulk `locate` = the index
//! join) is what interleaving accelerates, while the code-vector scan is
//! a constant base cost — reproducing the paper's flat-then-rising
//! sequential curve and the much flatter interleaved one.
//!
//! Usage: `cargo run --release -p isi-bench --bin fig1`

use isi_columnstore::{
    bits_for, execute_in, BitPackedVec, Column, Interleave, MainDictionary, MainPart,
};
use isi_core::stats::time_avg;

use isi_bench::{banner, size_sweep_mb, HarnessCfg};

fn main() {
    let cfg = HarnessCfg::from_env();
    let rows: usize = std::env::var("ISI_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4_000_000);
    banner(
        "Figure 1: IN-predicate query response time, Main part",
        &cfg,
    );
    println!("# rows={rows}, predicate values={}", cfg.lookups);
    println!(
        "\n{:>8} {:>14} {:>18} {:>9}",
        "dict", "Main (ms)", "Main-Interleaved", "speedup"
    );

    let group = cfg.groups.2;
    for mb in size_sweep_mb(cfg.max_mb) {
        let n = mb * (1 << 20) / 4;
        let dict = MainDictionary::from_sorted((0..n as u32).collect());
        let mut codes = BitPackedVec::with_width(bits_for(n));
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..rows {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            codes.push((x % n as u64) as u32);
        }
        let column = Column {
            main: MainPart { dict, codes },
            delta: Default::default(),
        };
        let values: Vec<u32> = isi_workloads::uniform_lookups(n, cfg.lookups);

        let seq = time_avg(cfg.reps, || {
            std::hint::black_box(execute_in(&column, &values, Interleave::Sequential));
        });
        let inter = time_avg(cfg.reps, || {
            std::hint::black_box(execute_in(&column, &values, Interleave::Interleaved(group)));
        });
        println!(
            "{:>6}MB {:>14.2} {:>18.2} {:>8.2}x",
            mb,
            seq.as_secs_f64() * 1e3,
            inter.as_secs_f64() * 1e3,
            seq.as_secs_f64() / inter.as_secs_f64().max(1e-12)
        );
    }
    println!("\n# paper shape: both flat while the dictionary fits the LLC; sequential");
    println!("# rises steeply past it, interleaved rises much less (paper: -40% at 2 GB).");
}

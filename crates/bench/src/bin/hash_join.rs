//! Section 6 extension — interleaved hash-join probes: the paper names
//! "the probe phases of hash joins" as the straightforward next target
//! for coroutine interleaving. Sweeps the build-table size and compares
//! sequential, AMAC and coroutine probes (wall clock).
//!
//! Methodology: every repetition probes a *fresh* key set — re-probing
//! the same keys would find their buckets cache-resident and measure
//! nothing but scheduler overhead.
//!
//! Usage: `cargo run --release -p isi-bench --bin hash_join`

use isi_bench::{banner, HarnessCfg};
use isi_core::stats::Stopwatch;
use isi_hash::{bulk_probe_amac, bulk_probe_interleaved, bulk_probe_seq, ChainedHashTable};

fn probe_set(n: u64, count: usize, seed: u64) -> Vec<u64> {
    let mut x = seed | 1;
    (0..count)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % (2 * n)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        })
        .collect()
}

fn main() {
    let cfg = HarnessCfg::from_env();
    banner(
        "Hash-join probe (Section 6 extension): cycles per probe",
        &cfg,
    );
    let group = cfg.groups.2;
    println!(
        "\n{:>12} {:>12} {:>12} {:>12} {:>9}",
        "build size", "Sequential", "AMAC", "CORO", "speedup"
    );

    let max_entries = (cfg.max_mb * (1 << 20) / 16).max(1 << 20);
    let mut n = 1usize << 20;
    while n <= max_entries {
        let mut table = ChainedHashTable::with_capacity(n);
        for i in 0..n as u64 {
            table.insert(i.wrapping_mul(0x9E37_79B9_7F4A_7C15), i);
        }
        let mut out = vec![None; cfg.lookups];
        type ProbeFn<'a> = &'a mut dyn FnMut(&[u64], &mut [Option<u64>]);

        // Average cycles/probe over `reps` runs, each with fresh keys.
        let mut measure = |f: ProbeFn, salt: u64| -> f64 {
            let mut total_ns = 0.0;
            for rep in 0..cfg.reps as u64 {
                let probes = probe_set(n as u64, cfg.lookups, salt * 1000 + rep * 2 + 1);
                let sw = Stopwatch::start();
                f(&probes, &mut out);
                total_ns += sw.elapsed().as_nanos() as f64;
                std::hint::black_box(&mut out);
            }
            total_ns * cfg.cycles_per_ns() / (cfg.reps * cfg.lookups) as f64
        };

        let seq = measure(
            &mut |p, o| {
                bulk_probe_seq(&table, p, o);
            },
            1,
        );
        let amac = measure(&mut |p, o| bulk_probe_amac(&table, p, group, o), 2);
        let coro = measure(
            &mut |p, o| {
                bulk_probe_interleaved(&table, p, group, o);
            },
            3,
        );
        println!(
            "{:>9} MB {:>12.0} {:>12.0} {:>12.0} {:>8.2}x",
            n * 16 / (1 << 20),
            seq,
            amac,
            coro,
            seq / coro.max(1e-9)
        );
        n *= 4;
    }
    // Simulator section: the same probe coroutine on the paper's
    // machine (25 MB LLC, 182-cycle DRAM), where 2-hop chains stall
    // hard enough for interleaving to pay — wall-clock results above
    // depend on this host's (much larger) LLC and (virtualized) memory
    // latency.
    println!("\n## simulated paper machine (cycles per probe)");
    println!(
        "{:>12} {:>12} {:>12} {:>9}",
        "build size", "Sequential", "CORO", "speedup"
    );
    use isi_core::sched::{run_interleaved, run_sequential};
    use isi_hash::probe_coro_on;
    use isi_memsim::{SharedMachine, SimArray};
    for mb in [16usize, 64, 256] {
        let n = mb * (1 << 20) / 16;
        let mut table = ChainedHashTable::with_capacity(n);
        for i in 0..n as u64 {
            table.insert(i.wrapping_mul(0x9E37_79B9_7F4A_7C15), i);
        }
        let machine = SharedMachine::haswell();
        let buckets = SimArray::new(&machine, table.buckets().to_vec());
        let entries = SimArray::new(&machine, table.entries().to_vec());
        let mask = table.mask();
        let lookups = cfg.lookups.min(3000);
        let run = |inter: bool, salt: u64| -> f64 {
            let probes = probe_set(n as u64, lookups, salt);
            machine.reset_stats();
            let mut found = 0usize;
            if inter {
                run_interleaved(
                    group,
                    probes,
                    |k| {
                        probe_coro_on::<true, u64, u64, _, _>(buckets.mem(), entries.mem(), mask, k)
                    },
                    |_, r: Option<u64>| found += r.is_some() as usize,
                );
            } else {
                run_sequential(
                    probes,
                    |k| {
                        probe_coro_on::<false, u64, u64, _, _>(
                            buckets.mem(),
                            entries.mem(),
                            mask,
                            k,
                        )
                    },
                    |_, r: Option<u64>| found += r.is_some() as usize,
                );
            }
            std::hint::black_box(found);
            machine.stats().cycles / lookups as f64
        };
        let _ = run(false, 11); // warm hot buckets
        let seq = run(false, 13);
        let coro = run(true, 17);
        println!(
            "{:>9} MB {:>12.0} {:>12.0} {:>8.2}x",
            mb,
            seq,
            coro,
            seq / coro.max(1e-9)
        );
    }

    println!("\n# expected shape: interleaving wins once the table outsizes the LLC;");
    println!("# CORO tracks AMAC (same dynamic-interleaving capability, no state machine).");
}

//! `throughput` — the morsel-parallel lookup throughput sweep.
//!
//! Measures lookups/sec for {branchfree, GP, AMAC, CORO} × {table
//! size} × {thread count} through the parallel bulk drivers and writes
//! a machine-readable `BENCH_throughput.json` (schema
//! `isi-throughput/v1`), self-verifying the document before exiting.
//!
//! ```text
//! throughput [--smoke] [--out PATH]        run the sweep
//! throughput --verify PATH                 validate an existing file
//! ```
//!
//! Knobs (full mode): `--lookups N`, `--reps N`, `--sizes a,b,..`,
//! `--threads a,b,..`, `--morsel N`.

use isi_bench::throughput::{run_sweep, to_json, verify, verify_text, ThroughputCfg};

fn fail(msg: &str) -> ! {
    eprintln!("throughput: {msg}");
    std::process::exit(1)
}

fn parse_list(s: &str, flag: &str) -> Vec<usize> {
    let list: Vec<usize> = s
        .split(',')
        .map(|p| {
            // Zero would be silently remapped by ParConfig (0 threads =
            // machine parallelism), mislabeling the recorded cells, so
            // the sweep only accepts explicit positive values.
            p.trim()
                .parse()
                .ok()
                .filter(|&v: &usize| v > 0)
                .unwrap_or_else(|| fail(&format!("bad {flag} entry {p:?} (need integer >= 1)")))
        })
        .collect();
    if list.is_empty() {
        fail(&format!("{flag} must be a non-empty list"));
    }
    list
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `--smoke` picks the base preset before the knob flags apply, so
    // `--lookups N --smoke` and `--smoke --lookups N` behave the same.
    let mut cfg = if args.iter().any(|a| a == "--smoke") {
        ThroughputCfg::smoke()
    } else {
        ThroughputCfg::full()
    };
    let mut out_path = "BENCH_throughput.json".to_string();
    let mut verify_path: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
                .clone()
        };
        match arg.as_str() {
            "--smoke" => {}
            "--out" => out_path = value("--out"),
            "--verify" => verify_path = Some(value("--verify")),
            "--lookups" => {
                cfg.lookups = value("--lookups")
                    .parse()
                    .ok()
                    .filter(|&v: &usize| v > 0)
                    .unwrap_or_else(|| fail("bad --lookups (need integer >= 1)"))
            }
            "--reps" => {
                cfg.reps = value("--reps")
                    .parse()
                    .ok()
                    .filter(|&v: &usize| v > 0)
                    .unwrap_or_else(|| fail("bad --reps (need integer >= 1)"))
            }
            "--sizes" => cfg.table_sizes = parse_list(&value("--sizes"), "--sizes"),
            "--threads" => cfg.thread_counts = parse_list(&value("--threads"), "--threads"),
            "--morsel" => {
                cfg.morsel_size = value("--morsel")
                    .parse()
                    .ok()
                    .filter(|&v: &usize| v > 0)
                    .unwrap_or_else(|| fail("bad --morsel (need integer >= 1)"))
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
    }

    if let Some(path) = verify_path {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
        match verify_text(&text) {
            Ok(()) => println!("{path}: OK ({} bytes)", text.len()),
            Err(e) => fail(&format!("{path}: INVALID: {e}")),
        }
        return;
    }

    println!(
        "# throughput sweep: sizes={:?} threads={:?} lookups={} reps={} morsel={}",
        cfg.table_sizes, cfg.thread_counts, cfg.lookups, cfg.reps, cfg.morsel_size
    );
    let cells = run_sweep(&cfg, |c| {
        println!(
            "{:>10} size={:<9} threads={:<2} {:>12.0} lookups/s",
            c.variant, c.table_size, c.threads, c.lookups_per_sec
        );
    });
    let doc = to_json(&cfg, &cells);
    verify(&doc).unwrap_or_else(|e| fail(&format!("produced document failed self-check: {e}")));
    std::fs::write(&out_path, doc.to_pretty())
        .unwrap_or_else(|e| fail(&format!("write {out_path}: {e}")));
    println!("wrote {out_path}");
}

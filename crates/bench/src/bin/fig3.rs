//! Figure 3 — binary searches over a sorted array: cycles per search vs
//! array size, for int (a) and string (b) keys, five implementations.
//!
//! Wall-clock on this machine's real memory hierarchy. Note the LLC
//! here is ~260 MB (vs the paper's 25 MB), so the sequential/interleaved
//! divergence moves right accordingly; run `fig5`/`fig6` for the
//! simulator configured with the paper's cache sizes.
//!
//! Usage: `cargo run --release -p isi-bench --bin fig3`
//! (`ISI_MAX_MB=2048 ISI_LOOKUPS=10000` to reproduce the full sweep).

use isi_bench::wall::{cycles_per_search, SearchImpl};
use isi_bench::{banner, size_sweep_mb, HarnessCfg};
use isi_workloads as wl;

fn main() {
    let cfg = HarnessCfg::from_env();
    banner(
        "Figure 3: binary searches over sorted array (cycles per search, x100)",
        &cfg,
    );
    let (g_gp, g_amac, g_coro) = cfg.groups;
    let impls = [
        SearchImpl::Std,
        SearchImpl::Baseline,
        SearchImpl::Gp(g_gp),
        SearchImpl::Amac(g_amac),
        SearchImpl::Coro(g_coro),
    ];

    println!("\n## (a) integer array");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "size", "std", "Baseline", "GP", "AMAC", "CORO"
    );
    for mb in size_sweep_mb(cfg.max_mb) {
        let table = wl::int_array(wl::ints_for_mb(mb));
        let lookups = wl::uniform_lookups(table.len(), cfg.lookups);
        print!("{:>6}MB", mb);
        for impl_ in impls {
            let c = cycles_per_search(&table, &lookups, impl_, cfg.reps, cfg.cycles_per_ns());
            print!(" {:>10.2}", c / 100.0);
        }
        println!();
    }

    println!("\n## (b) string array (15-char keys)");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "size", "std", "Baseline", "GP", "AMAC", "CORO"
    );
    for mb in size_sweep_mb(cfg.max_mb) {
        let table = wl::string_array(wl::strings_for_mb(mb));
        let lookups = wl::uniform_string_lookups(table.len(), cfg.lookups);
        print!("{:>6}MB", mb);
        for impl_ in impls {
            let c = cycles_per_search(&table, &lookups, impl_, cfg.reps, cfg.cycles_per_ns());
            print!(" {:>10.2}", c / 100.0);
        }
        println!();
    }
    println!(
        "\n# paper shape: interleaved (GP/AMAC/CORO) flat-ish; sequential rises past the LLC;"
    );
    println!("# GP fastest, CORO ~ AMAC; string curves smoother than int.");
}

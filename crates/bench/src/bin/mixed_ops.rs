//! Section 6 extension — "different operations on multiple
//! data-structures can be interleaved": one interleaved group mixing
//! binary-search lookups, CSB+-tree lookups and hash probes, expressed
//! as heterogeneous boxed coroutines driven by the same scheduler.
//!
//! Usage: `cargo run --release -p isi-bench --bin mixed_ops`

use std::future::Future;
use std::pin::Pin;
use std::time::Instant;

use isi_bench::{banner, HarnessCfg};
use isi_core::mem::DirectMem;
use isi_core::sched::run_interleaved;
use isi_csb::{lookup_coro, CsbTree, DirectTreeStore};
use isi_hash::{probe_coro, ChainedHashTable};
use isi_search::rank_coro;

/// One heterogeneous work item.
enum Op {
    /// Rank in the sorted array.
    Search(u32),
    /// Point lookup in the CSB+-tree.
    Tree(u32),
    /// Probe of the chained hash table.
    Hash(u64),
}

fn main() {
    let cfg = HarnessCfg::from_env();
    banner(
        "Section 6 extension: interleaving heterogeneous operations in one group",
        &cfg,
    );
    let n = (cfg.max_mb.min(64) * (1 << 20) / 4).max(1 << 20);

    let array: Vec<u32> = (0..n as u32).collect();
    let tree = CsbTree::from_sorted(&(0..n as u32).map(|i| (i, i)).collect::<Vec<_>>());
    let mut hash = ChainedHashTable::with_capacity(n);
    for i in 0..n as u64 {
        hash.insert(i.wrapping_mul(0x9E37_79B9_7F4A_7C15), i);
    }
    let mem = DirectMem::new(&array);
    let store = DirectTreeStore::new(&tree);
    let hash = &hash; // Copy-able shared reference for the coroutines

    // A shuffled mix of the three operation kinds.
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    let ops: Vec<Op> = (0..cfg.lookups)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % n as u64;
            match x % 3 {
                0 => Op::Search(key as u32),
                1 => Op::Tree(key as u32),
                _ => Op::Hash(key.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        })
        .collect();

    // Each op becomes a boxed coroutine with a unified `u64` result; the
    // ordinary slab scheduler interleaves them all in one group.
    let make = |op: &Op| -> Pin<Box<dyn Future<Output = u64> + '_>> {
        match op {
            Op::Search(v) => {
                let v = *v;
                Box::pin(async move { rank_coro::<true, u32, _>(mem, v).await as u64 })
            }
            Op::Tree(v) => {
                let v = *v;
                Box::pin(async move {
                    lookup_coro::<true, u32, u32, _>(store, v)
                        .await
                        .unwrap_or(u32::MAX) as u64
                })
            }
            Op::Hash(k) => {
                let k = *k;
                Box::pin(async move {
                    probe_coro::<true, u64, u64>(hash, k)
                        .await
                        .unwrap_or(u64::MAX)
                })
            }
        }
    };

    // Sequential reference: drive each op to completion one by one.
    let t = Instant::now();
    let mut seq_sum = 0u64;
    for op in &ops {
        seq_sum = seq_sum.wrapping_add(isi_core::coro::run_to_completion(make(op)));
    }
    let seq = t.elapsed();

    let t = Instant::now();
    let mut int_sum = 0u64;
    run_interleaved(cfg.groups.2, ops.iter(), make, |_, r| {
        int_sum = int_sum.wrapping_add(r);
    });
    let inter = t.elapsed();
    assert_eq!(seq_sum, int_sum, "mixed-mode results must agree");

    println!(
        "\n{} mixed ops (search/tree/hash) over {} MB structures:",
        ops.len(),
        (3 * n * 4) >> 20
    );
    println!("  sequential : {seq:>9.2?}");
    println!(
        "  interleaved: {inter:>9.2?}  (one group of {} heterogeneous coroutines)",
        cfg.groups.2
    );
    println!(
        "  speedup    : {:.2}x",
        seq.as_secs_f64() / inter.as_secs_f64()
    );
    println!("\n# the scheduler never inspects the coroutine type: dynamic interleaving");
    println!("# composes across data structures, as the paper's Section 6 anticipates.");
}

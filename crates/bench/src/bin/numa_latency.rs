//! Section 6 — "Interleaving and NUMA effects": the paper conjectures
//! that interleaving becomes *more* beneficial with remote memory
//! accesses, "assuming there is enough work to hide the increased
//! memory latency" — i.e. the optimal group size grows with latency.
//!
//! We test the conjecture on the simulator by sweeping the DRAM latency
//! from the paper's local 182 cycles to remote-socket territory
//! (~2.3x), measuring baseline vs CORO at several group sizes.
//!
//! Usage: `cargo run --release -p isi-bench --bin numa_latency`

use isi_bench::{banner, HarnessCfg};
use isi_memsim::{MachineConfig, MachineStats, SharedMachine, SimArray};
use isi_search::{bulk_rank_coro, rank_branchfree, rank_oracle};

struct Bench {
    machine: SharedMachine,
    arr: SimArray<u32>,
    rng: u64,
    n: usize,
}

impl Bench {
    fn new(mb: usize, dram_latency: u32, warm: usize) -> Self {
        let mut cfg = MachineConfig::haswell_xeon();
        cfg.dram_latency = dram_latency;
        let machine = SharedMachine::new(isi_memsim::Machine::new(cfg));
        let n = mb * (1 << 20) / 4;
        let arr = SimArray::new(&machine, (0..n as u32).collect());
        let mut b = Self {
            machine,
            arr,
            rng: 0x2545_F491_4F6C_DD1D,
            n,
        };
        let w = b.fresh(warm);
        b.baseline(&w);
        b
    }

    fn fresh(&mut self, count: usize) -> Vec<u32> {
        (0..count)
            .map(|_| {
                self.rng ^= self.rng << 13;
                self.rng ^= self.rng >> 7;
                self.rng ^= self.rng << 17;
                (self.rng % self.n as u64) as u32
            })
            .collect()
    }

    fn baseline(&self, vals: &[u32]) -> MachineStats {
        self.machine.reset_stats();
        let mem = self.arr.mem();
        for v in vals {
            assert_eq!(rank_branchfree(&mem, *v), rank_oracle(self.arr.raw(), v));
        }
        self.machine.stats()
    }

    fn coro(&self, vals: &[u32], group: usize) -> MachineStats {
        self.machine.reset_stats();
        let mut out = vec![0u32; vals.len()];
        bulk_rank_coro(self.arr.mem(), vals, group, &mut out);
        std::hint::black_box(&out);
        self.machine.stats()
    }
}

fn main() {
    let cfg = HarnessCfg::from_env();
    banner(
        "Section 6: interleaving under NUMA-like memory latency (simulated)",
        &cfg,
    );
    let mb = 64.min(cfg.max_mb.max(16));
    let lookups = cfg.lookups.min(3000);
    println!(
        "\n{:>9} {:>10} {:>8} {:>8} {:>8} {:>8} {:>10} {:>7}",
        "DRAM lat", "Baseline", "G=4", "G=6", "G=8", "G=12", "best spdup", "best G"
    );
    // 182 = the paper's local socket; ~300 and ~420 model one- and
    // two-hop remote accesses.
    for lat in [120u32, 182, 300, 420] {
        let mut b = Bench::new(mb, lat, lookups);
        let base_vals = b.fresh(lookups);
        let base = b.baseline(&base_vals).cycles / lookups as f64;
        let mut row = Vec::new();
        let mut best = (0usize, f64::INFINITY);
        for g in [4usize, 6, 8, 12] {
            let vals = b.fresh(lookups);
            let c = b.coro(&vals, g).cycles / lookups as f64;
            if c < best.1 {
                best = (g, c);
            }
            row.push(c);
        }
        println!(
            "{:>6}cyc {:>10.0} {:>8.0} {:>8.0} {:>8.0} {:>8.0} {:>9.2}x {:>7}",
            lat,
            base,
            row[0],
            row[1],
            row[2],
            row[3],
            base / best.1,
            best.0
        );
    }
    println!("\n# paper's conjecture: higher (remote) latency -> larger interleaving win,");
    println!("# provided the group grows to supply the extra cover (best G shifts right).");
}

//! Section 6 ablation — "Hardware support for interleaving": what would
//! the paper's hypothetical *is-this-address-cached?* instruction buy?
//!
//! The simulator implements the instruction
//! (`IndexedMem::probably_cached`), so we can compare plain CORO
//! (suspend at every probe) with adaptive CORO (suspend only on a
//! predicted miss) across array sizes: in-cache levels stop paying the
//! switch overhead, out-of-cache levels still interleave.
//!
//! Usage: `cargo run --release -p isi-bench --bin hwhint`

use isi_bench::{banner, size_sweep_mb, HarnessCfg};
use isi_memsim::{SharedMachine, SimArray};
use isi_search::{bulk_rank_coro, bulk_rank_coro_adaptive, rank_branchfree, rank_oracle};

fn main() {
    let cfg = HarnessCfg::from_env();
    banner(
        "Section 6 ablation: conditional suspension with a cache-residency hint",
        &cfg,
    );
    let lookups = cfg.lookups.min(3000);
    let group = cfg.groups.2;
    println!(
        "\n{:>8} {:>12} {:>12} {:>9} {:>16} {:>16}",
        "size", "CORO", "CORO+hint", "speedup", "switches/lookup", "hint-skipped"
    );

    for mb in size_sweep_mb(cfg.max_mb) {
        let n = mb * (1 << 20) / 4;
        let machine = SharedMachine::haswell();
        let arr = SimArray::new(&machine, (0..n as u32).collect());
        let mut rng = 0x2545_F491_4F6C_DD1Du64;
        let mut fresh = |count: usize| -> Vec<u32> {
            (0..count)
                .map(|_| {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    (rng % n as u64) as u32
                })
                .collect()
        };
        // Warm the hot top levels.
        for v in fresh(lookups) {
            rank_branchfree(&arr.mem(), v);
        }

        let mut out = vec![0u32; lookups];

        machine.reset_stats();
        let vals = fresh(lookups);
        let plain_stats = bulk_rank_coro(arr.mem(), &vals, group, &mut out);
        let plain = machine.stats();
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(out[i], rank_oracle(arr.raw(), v));
        }

        machine.reset_stats();
        let vals = fresh(lookups);
        let hint_stats = bulk_rank_coro_adaptive(arr.mem(), &vals, group, &mut out);
        let hinted = machine.stats();
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(out[i], rank_oracle(arr.raw(), v));
        }

        let skipped = plain_stats.switches.saturating_sub(hint_stats.switches) as f64
            / plain_stats.switches.max(1) as f64;
        println!(
            "{:>6}MB {:>12.0} {:>12.0} {:>8.2}x {:>7.1} -> {:>5.1} {:>15.0}%",
            mb,
            plain.cycles / lookups as f64,
            hinted.cycles / lookups as f64,
            plain.cycles / hinted.cycles.max(1.0),
            plain_stats.switches as f64 / lookups as f64,
            hint_stats.switches as f64 / lookups as f64,
            skipped * 100.0
        );
    }
    println!("\n# expected shape: the hint skips suspensions for the cached top levels —");
    println!("# large savings in cache, smaller but real savings out of cache (the cold");
    println!("# leaf levels still interleave). This is the paper's conjecture, quantified.");
}

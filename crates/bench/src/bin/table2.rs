//! Table 2 — pipeline-slot breakdown for `locate` (TMAM categories),
//! Main and Delta, cache-resident vs out-of-cache, on the simulator.
//!
//! Usage: `cargo run --release -p isi-bench --bin table2`
//! (`ISI_BIG_MB=2048` for the paper's 2 GB point.)

use isi_bench::sim::{SimBench, SimDeltaBench};
use isi_bench::wall::SearchImpl;
use isi_bench::{banner, HarnessCfg};
use isi_memsim::MachineStats;

fn row(label: &str, s: &MachineStats) {
    let (r, m, c, b, f) = s.tmam_fractions();
    println!(
        "{:<14} {:>9.1}% {:>15.1}% {:>8.1}% {:>6.1}% {:>9.1}%",
        label,
        f * 100.0,
        b * 100.0,
        m * 100.0,
        c * 100.0,
        r * 100.0
    );
}

fn main() {
    let cfg = HarnessCfg::from_env();
    let big_mb: usize = std::env::var("ISI_BIG_MB")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256);
    banner(
        "Table 2: pipeline-slot breakdown for locate (simulated)",
        &cfg,
    );
    let lookups = cfg.lookups.min(5000);

    println!(
        "\n{:<14} {:>10} {:>16} {:>9} {:>7} {:>10}",
        "", "Front-End", "Bad speculation", "Memory", "Core", "Retiring"
    );
    for mb in [1usize, big_mb] {
        let mut b = SimBench::new(mb, lookups);
        let vals = b.fresh(lookups);
        let s = b.run(SearchImpl::Std, &vals); // speculative Main locate
        row(&format!("Main {mb}MB"), &s);
    }
    for mb in [1usize, big_mb] {
        let mut b = SimDeltaBench::new(mb, lookups);
        let vals = b.fresh(lookups);
        let s = b.run_locate(&vals, None); // branch-free Delta locate
        row(&format!("Delta {mb}MB"), &s);
    }
    println!("\n# paper: Main has a large bad-speculation share at both sizes (43.3% /");
    println!("# 26.1%) and memory jumps 2.8% -> 46.0%; Delta has no speculation and");
    println!("# memory jumps 30.8% -> 85.9%.");
}

//! Figure 7 — the effect of group size on runtime (256 MB int array),
//! plus the Section 3 / Inequality 1 group-size estimates derived from
//! profile measurements (§5.4.5).
//!
//! Runs on both the simulator (paper cache sizes) and, with
//! `ISI_FIG7_WALL=1`, wall clock on real memory.
//!
//! Usage: `cargo run --release -p isi-bench --bin fig7`

use isi_bench::sim::SimBench;
use isi_bench::wall::{cycles_per_search, SearchImpl};
use isi_bench::{banner, HarnessCfg};
use isi_core::model::{optimal_group_size_capped, params_from_profile};
use isi_workloads as wl;

fn main() {
    let cfg = HarnessCfg::from_env();
    banner(
        "Figure 7: cycles per search vs group size (256 MB int array)",
        &cfg,
    );
    let mb = 256.min(cfg.max_mb.max(16));
    let lookups = cfg.lookups.min(3000);

    println!("\n## simulator (paper cache sizes)");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>12}",
        "G", "GP", "AMAC", "CORO", "Baseline(ref)"
    );
    let mut b = SimBench::new(mb, lookups);
    let base_vals = b.fresh(lookups);
    let base = b.run(SearchImpl::Baseline, &base_vals);
    let base_per = base.cycles / lookups as f64 / 100.0;

    // Profile-derived model estimate (§5.4.5): T_stall from the baseline
    // memory component, T_compute from the rest, T_switch from the
    // retiring delta of each interleaved implementation at G = 1.
    let misses = base.l1_misses() as f64 / lookups as f64;
    let stall_per_miss = base.memory / lookups as f64 / misses;
    let other_per_miss = (base.cycles - base.memory) / lookups as f64 / misses;

    let mut g1_retiring = std::collections::BTreeMap::new();
    for g in 1..=12usize {
        let impls = [SearchImpl::Gp(g), SearchImpl::Amac(g), SearchImpl::Coro(g)];
        print!("{:>6}", g);
        for impl_ in impls {
            let vals = b.fresh(lookups);
            let s = b.run(impl_, &vals);
            if g == 1 {
                g1_retiring.insert(
                    impl_.name(),
                    (s.retiring + s.core) / lookups as f64 / misses,
                );
            }
            print!(" {:>10.2}", s.cycles / lookups as f64 / 100.0);
        }
        println!(" {:>12.2}", base_per);
    }

    println!("\n## Inequality 1 estimates (from the profile, LFB-capped at 10)");
    let base_retiring = (base.retiring + base.core) / lookups as f64 / misses;
    for name in ["GP", "AMAC", "CORO"] {
        let p = params_from_profile(
            stall_per_miss,
            other_per_miss,
            *g1_retiring.get(name).unwrap_or(&base_retiring),
            base_retiring,
        );
        println!(
            "  {:<5} T_compute={:>5.1} T_switch={:>5.1} T_stall={:>6.1}  =>  G* = {}",
            name,
            p.t_compute,
            p.t_switch,
            p.t_stall,
            optimal_group_size_capped(p, 10)
        );
    }

    if std::env::var("ISI_FIG7_WALL").is_ok() {
        println!("\n## wall clock (this machine)");
        let table = wl::int_array(wl::ints_for_mb(mb));
        let lk = wl::uniform_lookups(table.len(), cfg.lookups);
        println!("{:>6} {:>10} {:>10} {:>10}", "G", "GP", "AMAC", "CORO");
        for g in 1..=12usize {
            let gp = cycles_per_search(
                &table,
                &lk,
                SearchImpl::Gp(g),
                cfg.reps,
                cfg.cycles_per_ns(),
            );
            let am = cycles_per_search(
                &table,
                &lk,
                SearchImpl::Amac(g),
                cfg.reps,
                cfg.cycles_per_ns(),
            );
            let co = cycles_per_search(
                &table,
                &lk,
                SearchImpl::Coro(g),
                cfg.reps,
                cfg.cycles_per_ns(),
            );
            println!(
                "{:>6} {:>10.2} {:>10.2} {:>10.2}",
                g,
                gp / 100.0,
                am / 100.0,
                co / 100.0
            );
        }
    }

    println!("\n# paper shape: G=1 slower than Baseline (pure switch overhead); GP keeps");
    println!("# improving to ~10 (LFB-capped); AMAC/CORO flatten at 5-6.");
}

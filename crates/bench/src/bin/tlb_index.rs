//! Section 6 extension — "Interleaving and TLB misses": a B+-tree on top
//! of the sorted array confines each node's accesses to few pages,
//! sparing the page walks that binary search over a huge array incurs
//! (and that interleaving cannot hide, §5.4.3).
//!
//! Compares, on the simulator: binary search (Baseline and CORO) vs
//! CSB+-tree lookups (sequential and CORO) over the same key set —
//! reporting page walks per lookup and cycles per lookup.
//!
//! Usage: `cargo run --release -p isi-bench --bin tlb_index`

use isi_bench::sim::SimBench;
use isi_bench::wall::SearchImpl;
use isi_bench::{banner, HarnessCfg};
use isi_core::sched::{run_interleaved, run_sequential};
use isi_csb::{lookup_coro, CsbTree, SimTreeStore};
use isi_memsim::{MachineStats, SharedMachine};

fn walks(s: &MachineStats) -> f64 {
    (s.pw_l1 + s.pw_l2 + s.pw_l3 + s.pw_dram) as f64
}

fn main() {
    let cfg = HarnessCfg::from_env();
    banner(
        "TLB extension: binary search vs B+-tree over the sorted array (simulated)",
        &cfg,
    );
    let lookups = cfg.lookups.min(3000);
    println!(
        "\n{:>8} {:<18} {:>12} {:>14}",
        "size", "method", "cycles/lkp", "pagewalks/lkp"
    );

    for mb in [64usize, cfg.max_mb.max(128)] {
        // Binary search on the flat array.
        let mut b = SimBench::new(mb, lookups);
        for (name, impl_) in [
            ("binsearch-seq", SearchImpl::Baseline),
            ("binsearch-coro", SearchImpl::Coro(cfg.groups.2)),
        ] {
            let vals = b.fresh(lookups);
            let s = b.run(impl_, &vals);
            println!(
                "{:>6}MB {:<18} {:>12.0} {:>14.2}",
                mb,
                name,
                s.cycles / lookups as f64,
                walks(&s) / lookups as f64
            );
        }
        drop(b);

        // CSB+-tree over the same sorted keys (key -> its index).
        let n = mb * (1 << 20) / 4;
        let pairs: Vec<(u32, u32)> = (0..n as u32).map(|k| (k, k)).collect();
        let tree = CsbTree::from_sorted(&pairs);
        let machine = SharedMachine::haswell();
        let store = SimTreeStore::from_tree(&machine, &tree);
        drop(tree);
        let mut rng = 0x2545_F491_4F6C_DD1Du64;
        let mut fresh = |count: usize| -> Vec<u32> {
            (0..count)
                .map(|_| {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    (rng % n as u64) as u32
                })
                .collect()
        };
        // Warm top levels.
        let warm = fresh(lookups);
        run_sequential(
            warm.iter().copied(),
            |v| lookup_coro::<false, u32, u32, _>(&store, v),
            |_, r| assert!(r.is_some()),
        );
        for (name, group) in [("csbtree-seq", None), ("csbtree-coro", Some(cfg.groups.2))] {
            machine.reset_stats();
            let vals = fresh(lookups);
            match group {
                None => {
                    run_sequential(
                        vals.iter().copied(),
                        |v| lookup_coro::<false, u32, u32, _>(&store, v),
                        |_, r| assert!(r.is_some()),
                    );
                }
                Some(g) => {
                    run_interleaved(
                        g,
                        vals.iter().copied(),
                        |v| lookup_coro::<true, u32, u32, _>(&store, v),
                        |_, r| assert!(r.is_some()),
                    );
                }
            }
            let s = machine.stats();
            println!(
                "{:>6}MB {:<18} {:>12.0} {:>14.2}",
                mb,
                name,
                s.cycles / lookups as f64,
                walks(&s) / lookups as f64
            );
        }
        println!();
    }
    println!("# expected shape: the tree performs far fewer page walks per lookup than");
    println!("# flat binary search (few node touches vs ~log2(n) scattered probes), and");
    println!("# both structures benefit from interleaving on top.");
}

//! The bench JSON schema-tag registry: the **only** place a
//! `"isi-…/vN"` tag literal may be spelled out.
//!
//! Every harness stamps its result document with a schema tag and
//! every verifier dispatches on it; if a writer and a reader each
//! spell the tag themselves, a version bump in one silently orphans
//! the other. `xtask lint` (rule `schema-registry`) therefore rejects
//! tag literals anywhere else in the tree — harnesses import these
//! constants (directly or through the re-exports in [`crate::serve`]
//! and [`crate::throughput`]).
//!
//! Bumping a version is an API change to every consumer of the JSON
//! files: bump the constant here, and grep for the old tag in
//! `README.md`/`ROADMAP.md` prose while you're at it.

/// `BENCH_throughput.json` — morsel-parallel lookup throughput sweep.
pub const THROUGHPUT: &str = "isi-throughput/v1";

/// `BENCH_serve.json` — admission-batched lookup-service load sweep.
pub const SERVE: &str = "isi-serve/v1";

/// `BENCH_serve_mixed.json` — mixed read/write sweep (v2 added the
/// per-policy merge/cache columns; v3 added the durability columns:
/// WAL mode, fsync mode, record/sync counts, recovery time; v4 added
/// the observability columns: `config.obs`, per-cell end-to-end
/// latency sums, per-shard per-stage latency rows and the
/// chrome-trace event count; v5 added the merge-threshold sweep axis
/// — `config.merge_thresholds` replaces the scalar
/// `config.merge_threshold`, each cell records its `merge_threshold`
/// — plus the run-stack columns `runs` (immutable delta runs
/// published) and `compactions` (stack folds past `max_runs`); v6
/// added the adaptive-dispatch axis — `config.adapts` (policy modes
/// swept) and `config.retune_interval`, each cell records its `adapt`
/// mode plus the `retunes` counter and per-shard `final_groups`).
pub const SERVE_MIXED: &str = "isi-serve-mixed/v6";

#[cfg(test)]
mod tests {
    /// The registry is the schema's format contract; keep the tags
    /// well-formed so verifiers can dispatch on `name/version`.
    #[test]
    fn tags_are_well_formed() {
        for tag in [super::THROUGHPUT, super::SERVE, super::SERVE_MIXED] {
            let (name, version) = tag.split_once('/').expect("tag has a /version suffix");
            assert!(name.starts_with("isi-"), "{tag}: registry namespace");
            assert!(
                name.bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-'),
                "{tag}: kebab-case name"
            );
            assert!(
                version
                    .strip_prefix('v')
                    .is_some_and(|v| v.parse::<u32>().is_ok()),
                "{tag}: vN version"
            );
        }
    }
}

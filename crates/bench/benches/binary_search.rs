//! Criterion bench: the five binary-search implementations (Figure 3's
//! comparison at one out-of-cache size), plus the two ablations the
//! paper's Section 4 motivates:
//!
//! * `coro_unified` vs `coro_separate` — the cost of the unified
//!   `const INTERLEAVE` codepath vs a dedicated interleaved-only
//!   implementation (the paper expects zero after compile-time
//!   resolution; monomorphization delivers exactly that in Rust);
//! * `coro_slab` vs `coro_boxed` — frame recycling in the scheduler vs
//!   a heap allocation per coroutine (what a non-eliding compiler does).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use isi_core::mem::DirectMem;
use isi_core::sched::run_interleaved_boxed;
use isi_search::coro::bulk_rank_coro_separate;
use isi_search::{
    bulk_rank_amac, bulk_rank_branchfree, bulk_rank_branchy, bulk_rank_coro, bulk_rank_gp,
    rank_coro,
};
use isi_workloads as wl;

const MB: usize = 64;
const LOOKUPS: usize = 2000;

fn bench_impls(c: &mut Criterion) {
    let table = wl::int_array(wl::ints_for_mb(MB));
    let lookups = wl::uniform_lookups(table.len(), LOOKUPS);
    let mem = DirectMem::new(&table);
    let mut out = vec![0u32; lookups.len()];

    let mut g = c.benchmark_group("binary_search_64MB");
    g.throughput(Throughput::Elements(LOOKUPS as u64));
    g.sample_size(20);

    g.bench_function("std", |b| {
        b.iter(|| bulk_rank_branchy(&mem, &lookups, &mut out))
    });
    g.bench_function("baseline", |b| {
        b.iter(|| bulk_rank_branchfree(&mem, &lookups, &mut out))
    });
    g.bench_function("gp_g10", |b| {
        b.iter(|| bulk_rank_gp(&mem, &lookups, 10, &mut out))
    });
    g.bench_function("amac_g6", |b| {
        b.iter(|| bulk_rank_amac(&mem, &lookups, 6, &mut out))
    });
    g.bench_function("coro_g6", |b| {
        b.iter(|| bulk_rank_coro(mem, &lookups, 6, &mut out))
    });
    g.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let table = wl::int_array(wl::ints_for_mb(MB));
    let lookups = wl::uniform_lookups(table.len(), LOOKUPS);
    let mem = DirectMem::new(&table);
    let mut out = vec![0u32; lookups.len()];

    let mut g = c.benchmark_group("coro_ablations_64MB");
    g.throughput(Throughput::Elements(LOOKUPS as u64));
    g.sample_size(20);

    g.bench_function(BenchmarkId::new("frames", "slab"), |b| {
        b.iter(|| bulk_rank_coro(mem, &lookups, 6, &mut out))
    });
    g.bench_function(BenchmarkId::new("frames", "boxed"), |b| {
        b.iter(|| {
            run_interleaved_boxed(
                6,
                lookups.iter().copied(),
                |v| rank_coro::<true, u32, _>(mem, v),
                |i, r| out[i] = r,
            )
        })
    });
    g.bench_function(BenchmarkId::new("codepath", "unified"), |b| {
        b.iter(|| bulk_rank_coro(mem, &lookups, 6, &mut out))
    });
    g.bench_function(BenchmarkId::new("codepath", "separate"), |b| {
        b.iter(|| bulk_rank_coro_separate(mem, &lookups, 6, &mut out))
    });
    g.finish();
}

criterion_group!(benches, bench_impls, bench_ablations);
criterion_main!(benches);

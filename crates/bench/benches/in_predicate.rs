//! Criterion bench: end-to-end IN-predicate queries (Figures 1/8 at one
//! size) — sequential vs interleaved encode phase on Main and Delta
//! columns.
//!
//! Caveat: Criterion re-runs the *same* predicate list hundreds of
//! times, so its leaf-level lines become cache-resident and the encode
//! phase measures scheduler overhead rather than miss hiding. Treat
//! this as a quick regression check; the `fig1`/`fig8` harness binaries
//! (fresh values per repetition) are the experiment of record.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use isi_columnstore::{
    bits_for, execute_in, BitPackedVec, Column, DeltaDictionary, DeltaPart, Interleave,
    MainDictionary, MainPart,
};

fn packed_codes(n: usize, rows: usize) -> BitPackedVec {
    let mut codes = BitPackedVec::with_width(bits_for(n));
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    for _ in 0..rows {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        codes.push((x % n as u64) as u32);
    }
    codes
}

fn bench_in_predicate(c: &mut Criterion) {
    let n = 16 << 20; // 64 MB dictionary
    let rows = 1 << 20;
    let values: Vec<u32> = isi_workloads::uniform_lookups(n, 2000);

    let main_col = Column {
        main: MainPart {
            dict: MainDictionary::from_sorted((0..n as u32).collect()),
            codes: packed_codes(n, rows),
        },
        delta: Default::default(),
    };
    let delta_col = Column {
        main: MainPart {
            dict: MainDictionary::from_sorted(Vec::new()),
            codes: BitPackedVec::new(),
        },
        delta: DeltaPart {
            dict: DeltaDictionary::from_values(isi_workloads::shuffled_indices(n, 42)),
            codes: packed_codes(n, rows),
        },
    };

    let mut g = c.benchmark_group("in_predicate_64MB_dict");
    g.throughput(Throughput::Elements(values.len() as u64));
    g.sample_size(10);

    g.bench_function("main_sequential", |b| {
        b.iter(|| execute_in(&main_col, &values, Interleave::Sequential))
    });
    g.bench_function("main_interleaved_g6", |b| {
        b.iter(|| execute_in(&main_col, &values, Interleave::Interleaved(6)))
    });
    g.bench_function("delta_sequential", |b| {
        b.iter(|| execute_in(&delta_col, &values, Interleave::Sequential))
    });
    g.bench_function("delta_interleaved_g6", |b| {
        b.iter(|| execute_in(&delta_col, &values, Interleave::Interleaved(6)))
    });
    g.finish();
}

criterion_group!(benches, bench_in_predicate);
criterion_main!(benches);

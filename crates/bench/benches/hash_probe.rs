//! Criterion bench: interleaved hash-table probes (the Section 6
//! extension) — sequential vs AMAC vs coroutine on an out-of-cache
//! chained table.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use isi_hash::{bulk_probe_amac, bulk_probe_interleaved, bulk_probe_seq, ChainedHashTable};

fn bench_probe(c: &mut Criterion) {
    let n: u64 = 8 << 20; // 8M entries ~ 192 MB of buckets+entries
    let mut table = ChainedHashTable::with_capacity(n as usize);
    for i in 0..n {
        table.insert(i.wrapping_mul(0x9E37_79B9_7F4A_7C15), i);
    }
    let probes: Vec<u64> = (0..2000u64)
        .map(|i| (i.wrapping_mul(48271) % (2 * n)).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    let mut out = vec![None; probes.len()];

    let mut g = c.benchmark_group("hash_probe_8M");
    g.throughput(Throughput::Elements(probes.len() as u64));
    g.sample_size(20);

    g.bench_function("sequential", |b| {
        b.iter(|| bulk_probe_seq(&table, &probes, &mut out))
    });
    g.bench_function("amac_g6", |b| {
        b.iter(|| bulk_probe_amac(&table, &probes, 6, &mut out))
    });
    g.bench_function("coro_g6", |b| {
        b.iter(|| bulk_probe_interleaved(&table, &probes, 6, &mut out))
    });
    g.finish();
}

criterion_group!(benches, bench_probe);
criterion_main!(benches);

//! Criterion bench: Figure 7's group-size sweep for the coroutine
//! implementation (wall clock, one out-of-cache size).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use isi_core::mem::DirectMem;
use isi_search::{bulk_rank_branchfree, bulk_rank_coro};
use isi_workloads as wl;

fn bench_group_size(c: &mut Criterion) {
    let table = wl::int_array(wl::ints_for_mb(64));
    let lookups = wl::uniform_lookups(table.len(), 2000);
    let mem = DirectMem::new(&table);
    let mut out = vec![0u32; lookups.len()];

    let mut g = c.benchmark_group("group_size_64MB");
    g.throughput(Throughput::Elements(lookups.len() as u64));
    g.sample_size(15);

    g.bench_function("baseline_ref", |b| {
        b.iter(|| bulk_rank_branchfree(&mem, &lookups, &mut out))
    });
    for group in [1usize, 2, 4, 6, 8, 10, 12] {
        g.bench_function(BenchmarkId::new("coro", group), |b| {
            b.iter(|| bulk_rank_coro(mem, &lookups, group, &mut out))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_group_size);
criterion_main!(benches);

//! Criterion bench: CSB+-tree lookups (the paper's Listing 6) —
//! sequential vs coroutine-interleaved vs the hand-written AMAC state
//! machine, on an out-of-cache tree.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use isi_csb::{
    bulk_lookup_amac, bulk_lookup_interleaved, bulk_lookup_seq, CsbTree, DirectTreeStore,
};

fn bench_csb(c: &mut Criterion) {
    // ~8M entries: nodes + leaves far exceed typical L2, stressing the
    // per-level misses the coroutine hides.
    let n: u32 = 8 << 20;
    let pairs: Vec<(u32, u32)> = (0..n).map(|i| (i * 3, i)).collect();
    let tree = CsbTree::from_sorted(&pairs);
    let store = DirectTreeStore::new(&tree);
    let probes: Vec<u32> = (0..2000u32).map(|i| (i * 7919) % (3 * n)).collect();
    let mut out = vec![None; probes.len()];

    let mut g = c.benchmark_group("csb_lookup_8M");
    g.throughput(Throughput::Elements(probes.len() as u64));
    g.sample_size(20);

    g.bench_function("sequential", |b| {
        b.iter(|| bulk_lookup_seq(store, &probes, &mut out))
    });
    g.bench_function("coro_g6", |b| {
        b.iter(|| bulk_lookup_interleaved(store, &probes, 6, &mut out))
    });
    g.bench_function("amac_g6", |b| {
        b.iter(|| bulk_lookup_amac(&store, &probes, 6, &mut out))
    });
    g.finish();
}

criterion_group!(benches, bench_csb);
criterion_main!(benches);

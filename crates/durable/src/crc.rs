//! CRC-32 (the IEEE 802.3 polynomial), table-driven and
//! dependency-free. Used to checksum WAL records and snapshots so a
//! torn or bit-flipped tail is *detected* rather than replayed.
//!
//! CRC-32 is linear over GF(2): any single-bit flip always changes
//! the checksum, and any burst error shorter than 32 bits is caught —
//! exactly the corruption classes a torn append produces.

/// Reflected polynomial for IEEE CRC-32.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Continue a CRC over `data` from a previous [`crc32_update`] state.
/// Start from `!0` and finish by inverting (see [`crc32`]).
pub fn crc32_update(state: u32, data: &[u8]) -> u32 {
    let mut c = state;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// The CRC-32 of `data` (IEEE, as produced by zlib's `crc32`).
pub fn crc32(data: &[u8]) -> u32 {
    !crc32_update(!0, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_standard_check_value() {
        // The canonical CRC-32 check vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_update_agrees_with_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let whole = crc32(data);
        let mut state = !0u32;
        for chunk in data.chunks(7) {
            state = crc32_update(state, chunk);
        }
        assert_eq!(!state, whole);
    }

    #[test]
    fn single_bit_flips_always_change_the_crc() {
        let data: Vec<u8> = (0..64u8).collect();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "byte {byte} bit {bit}");
            }
        }
    }
}

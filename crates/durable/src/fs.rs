//! The file-system seam: an object-safe [`Fs`] trait over one flat
//! directory of named files, with a real implementation ([`DiskFs`])
//! and an in-memory crash-semantics model ([`MemFs`]).
//!
//! The durability protocol only ever needs eight operations —
//! append, whole-file write, read, fsync, rename, remove, list, and
//! directory fsync — all on names relative to one store directory.
//! Keeping the trait this small is what makes the fault-injection
//! wrapper ([`crate::FaultFs`]) able to intercept *every* point in
//! the protocol.
//!
//! [`MemFs`] models what POSIX guarantees survives a crash, not what
//! usually survives one:
//!
//! * file **content** survives only up to the last [`Fs::sync`] of
//!   that file (the unsynced suffix is gone, or — under fault
//!   injection — torn at an arbitrary byte);
//! * **directory entries** (creates, renames, removes) survive only
//!   once [`Fs::sync_dir`] runs; before that, a crash exposes the old
//!   directory, though a surviving entry always shows its file's
//!   synced content (fsync durability is per-inode).

use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;
use std::sync::Mutex;

use isi_core::sync::MutexExt;

/// One flat directory of named files — the only I/O surface the
/// durability protocol uses. All names are relative (no separators).
pub trait Fs: Send + Sync {
    /// Append `data` to `name`, creating the file if absent.
    fn append(&self, name: &str, data: &[u8]) -> io::Result<()>;
    /// Create or replace `name` with exactly `data`.
    fn write_all(&self, name: &str, data: &[u8]) -> io::Result<()>;
    /// The full current content of `name`.
    fn read(&self, name: &str) -> io::Result<Vec<u8>>;
    /// Make `name`'s content durable (fsync).
    fn sync(&self, name: &str) -> io::Result<()>;
    /// Atomically rename `from` to `to`, replacing `to` if it exists.
    fn rename(&self, from: &str, to: &str) -> io::Result<()>;
    /// Delete `name`.
    fn remove(&self, name: &str) -> io::Result<()>;
    /// All file names in the directory, sorted.
    fn list(&self) -> io::Result<Vec<String>>;
    /// Make the directory's entries durable (fsync the directory).
    fn sync_dir(&self) -> io::Result<()>;
}

/// [`Fs`] over a real directory. `sync` and `sync_dir` issue actual
/// `fsync`s, so the crash-ordering protocol holds on disk, not just
/// in the model.
pub struct DiskFs {
    root: PathBuf,
}

impl DiskFs {
    /// Open `root`, creating the directory (and parents) if needed.
    pub fn create(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Self { root })
    }

    /// Open an existing store directory (recovery entry point).
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        if !root.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("store directory {} does not exist", root.display()),
            ));
        }
        Ok(Self { root })
    }

    /// The directory this store lives in.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    fn path(&self, name: &str) -> PathBuf {
        debug_assert!(
            !name.contains('/') && !name.contains('\\'),
            "flat namespace only: {name}"
        );
        self.root.join(name)
    }
}

impl Fs for DiskFs {
    fn append(&self, name: &str, data: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))?;
        f.write_all(data)
    }

    fn write_all(&self, name: &str, data: &[u8]) -> io::Result<()> {
        std::fs::write(self.path(name), data)
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        std::fs::read(self.path(name))
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        std::fs::File::open(self.path(name))?.sync_all()
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        std::fs::rename(self.path(from), self.path(to))
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        std::fs::remove_file(self.path(name))
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Ok(name) = entry.file_name().into_string() {
                    names.push(name);
                }
            }
        }
        names.sort_unstable();
        Ok(names)
    }

    fn sync_dir(&self) -> io::Result<()> {
        std::fs::File::open(&self.root)?.sync_all()
    }
}

/// One in-memory file: its live content and how much of it is synced.
struct FileBuf {
    data: Vec<u8>,
    /// Bytes of `data` made durable by the last [`Fs::sync`].
    synced: usize,
}

/// Files are identified by index so renames move *names*, not
/// content: a crash-surviving directory entry always resolves to its
/// inode's synced bytes, even if the live directory renamed it since.
struct MemInner {
    files: Vec<FileBuf>,
    /// The live directory: what [`Fs::read`]/[`Fs::list`] see.
    live: BTreeMap<String, usize>,
    /// The durable directory: entries as of the last [`Fs::sync_dir`].
    shadow: BTreeMap<String, usize>,
}

/// In-memory [`Fs`] with crash semantics (see the [module
/// docs](self)): [`MemFs::crash_view`] materializes what a crash at
/// this instant would leave on disk.
pub struct MemFs {
    inner: Mutex<MemInner>,
}

impl Default for MemFs {
    fn default() -> Self {
        Self::new()
    }
}

impl MemFs {
    /// An empty in-memory directory.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(MemInner {
                files: Vec::new(),
                live: BTreeMap::new(),
                shadow: BTreeMap::new(),
            }),
        }
    }

    /// The store a crash right now would leave behind, as a fresh
    /// fully-durable `MemFs`: durable directory entries only, each
    /// file cut to its synced prefix plus `keep_eighths/8` of its
    /// unsynced suffix (a torn append). With `flip_bit`, the last
    /// surviving torn byte gets one bit flipped (media corruption in
    /// the torn region).
    pub fn crash_view(&self, keep_eighths: u8, flip_bit: bool) -> MemFs {
        let inner = self.inner.plock("memfs state");
        let mut files = Vec::new();
        let mut names = BTreeMap::new();
        for (name, &id) in &inner.shadow {
            let f = &inner.files[id];
            let mut data = f.data[..f.synced].to_vec();
            let unsynced = f.data.len() - f.synced;
            let keep = unsynced * usize::from(keep_eighths.min(8)) / 8;
            data.extend_from_slice(&f.data[f.synced..f.synced + keep]);
            if flip_bit && keep > 0 {
                let last = data.len() - 1;
                data[last] ^= 1;
            }
            let new_id = files.len();
            files.push(FileBuf {
                synced: data.len(),
                data,
            });
            names.insert(name.clone(), new_id);
        }
        MemFs {
            inner: Mutex::new(MemInner {
                files,
                live: names.clone(),
                shadow: names,
            }),
        }
    }

    /// Bytes of `name` not yet covered by a [`Fs::sync`] (testing
    /// hook; 0 for unknown files).
    pub fn unsynced_len(&self, name: &str) -> usize {
        let inner = self.inner.plock("memfs state");
        inner
            .live
            .get(name)
            .map(|&id| inner.files[id].data.len() - inner.files[id].synced)
            .unwrap_or(0)
    }
}

fn not_found(name: &str) -> io::Error {
    io::Error::new(io::ErrorKind::NotFound, format!("no such file: {name}"))
}

impl Fs for MemFs {
    fn append(&self, name: &str, data: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.plock("memfs state");
        let id = match inner.live.get(name) {
            Some(&id) => id,
            None => {
                let id = inner.files.len();
                inner.files.push(FileBuf {
                    data: Vec::new(),
                    synced: 0,
                });
                inner.live.insert(name.to_string(), id);
                id
            }
        };
        inner.files[id].data.extend_from_slice(data);
        Ok(())
    }

    fn write_all(&self, name: &str, data: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.plock("memfs state");
        match inner.live.get(name) {
            Some(&id) => {
                // In-place truncate-and-rewrite: the old content is
                // no longer guaranteed durable, and the new content
                // is not durable until the next sync.
                inner.files[id].data = data.to_vec();
                inner.files[id].synced = 0;
            }
            None => {
                let id = inner.files.len();
                inner.files.push(FileBuf {
                    data: data.to_vec(),
                    synced: 0,
                });
                inner.live.insert(name.to_string(), id);
            }
        }
        Ok(())
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        let inner = self.inner.plock("memfs state");
        match inner.live.get(name) {
            Some(&id) => Ok(inner.files[id].data.clone()),
            None => Err(not_found(name)),
        }
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        let mut inner = self.inner.plock("memfs state");
        match inner.live.get(name) {
            Some(&id) => {
                inner.files[id].synced = inner.files[id].data.len();
                Ok(())
            }
            None => Err(not_found(name)),
        }
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        let mut inner = self.inner.plock("memfs state");
        match inner.live.remove(from) {
            Some(id) => {
                inner.live.insert(to.to_string(), id);
                Ok(())
            }
            None => Err(not_found(from)),
        }
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        let mut inner = self.inner.plock("memfs state");
        match inner.live.remove(name) {
            Some(_) => Ok(()),
            None => Err(not_found(name)),
        }
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let inner = self.inner.plock("memfs state");
        Ok(inner.live.keys().cloned().collect())
    }

    fn sync_dir(&self) -> io::Result<()> {
        let mut inner = self.inner.plock("memfs state");
        inner.shadow = inner.live.clone();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crashed(fs: &MemFs) -> Vec<(String, Vec<u8>)> {
        let view = fs.crash_view(0, false);
        let names = view.list().unwrap();
        names
            .into_iter()
            .map(|n| {
                let data = view.read(&n).unwrap();
                (n, data)
            })
            .collect()
    }

    #[test]
    fn append_read_roundtrip_and_listing() {
        let fs = MemFs::new();
        fs.append("a", b"hel").unwrap();
        fs.append("a", b"lo").unwrap();
        fs.write_all("b", b"xyz").unwrap();
        assert_eq!(fs.read("a").unwrap(), b"hello");
        assert_eq!(fs.read("b").unwrap(), b"xyz");
        assert_eq!(fs.list().unwrap(), vec!["a".to_string(), "b".to_string()]);
        assert!(fs.read("missing").is_err());
        assert!(fs.remove("missing").is_err());
        assert!(fs.rename("missing", "x").is_err());
    }

    #[test]
    fn unsynced_content_does_not_survive_a_crash() {
        let fs = MemFs::new();
        fs.append("wal", b"durable").unwrap();
        fs.sync("wal").unwrap();
        fs.sync_dir().unwrap();
        fs.append("wal", b"-lost").unwrap();
        assert_eq!(fs.read("wal").unwrap(), b"durable-lost");
        assert_eq!(crashed(&fs), vec![("wal".to_string(), b"durable".to_vec())]);
    }

    #[test]
    fn unsyncdired_entries_do_not_survive_a_crash() {
        let fs = MemFs::new();
        fs.write_all("tmp", b"snapshot").unwrap();
        fs.sync("tmp").unwrap();
        // Content is synced but the directory entry is not.
        assert_eq!(crashed(&fs), vec![]);
        fs.sync_dir().unwrap();
        assert_eq!(
            crashed(&fs),
            vec![("tmp".to_string(), b"snapshot".to_vec())]
        );
    }

    #[test]
    fn rename_before_sync_dir_exposes_the_old_name_with_synced_content() {
        let fs = MemFs::new();
        fs.write_all("old", b"v1").unwrap();
        fs.sync("old").unwrap();
        fs.sync_dir().unwrap();
        fs.rename("old", "new").unwrap();
        // The rename is not durable yet: a crash shows "old".
        assert_eq!(crashed(&fs), vec![("old".to_string(), b"v1".to_vec())]);
        fs.sync_dir().unwrap();
        assert_eq!(crashed(&fs), vec![("new".to_string(), b"v1".to_vec())]);
    }

    #[test]
    fn rename_over_existing_replaces_it_once_durable() {
        let fs = MemFs::new();
        fs.write_all("wal", b"old-wal").unwrap();
        fs.sync("wal").unwrap();
        fs.sync_dir().unwrap();
        fs.write_all("wal.tmp", b"new-wal").unwrap();
        fs.sync("wal.tmp").unwrap();
        fs.rename("wal.tmp", "wal").unwrap();
        // Crash before sync_dir: the old WAL survives.
        assert_eq!(crashed(&fs), vec![("wal".to_string(), b"old-wal".to_vec())]);
        fs.sync_dir().unwrap();
        assert_eq!(crashed(&fs), vec![("wal".to_string(), b"new-wal".to_vec())]);
        assert_eq!(fs.read("wal").unwrap(), b"new-wal");
        assert!(fs.read("wal.tmp").is_err());
    }

    #[test]
    fn torn_tail_keeps_a_prefix_of_the_unsynced_suffix() {
        let fs = MemFs::new();
        fs.append("wal", b"SYNCED::").unwrap();
        fs.sync("wal").unwrap();
        fs.sync_dir().unwrap();
        fs.append("wal", b"ABCDEFGH").unwrap(); // 8 unsynced bytes
        assert_eq!(fs.unsynced_len("wal"), 8);
        let half = fs.crash_view(4, false);
        assert_eq!(half.read("wal").unwrap(), b"SYNCED::ABCD");
        let full = fs.crash_view(8, false);
        assert_eq!(full.read("wal").unwrap(), b"SYNCED::ABCDEFGH");
        let flipped = fs.crash_view(8, true);
        assert_eq!(flipped.read("wal").unwrap(), b"SYNCED::ABCDEFGI");
        // The synced prefix is never touched by tearing.
        let none = fs.crash_view(0, true);
        assert_eq!(none.read("wal").unwrap(), b"SYNCED::");
    }

    #[test]
    fn disk_fs_roundtrip_in_a_temp_dir() {
        let root = std::env::temp_dir().join(format!("isi-durable-fs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let fs = DiskFs::create(&root).unwrap();
        fs.append("wal", b"one").unwrap();
        fs.append("wal", b"two").unwrap();
        fs.sync("wal").unwrap();
        fs.write_all("snap.tmp", b"pairs").unwrap();
        fs.sync("snap.tmp").unwrap();
        fs.rename("snap.tmp", "snap.1").unwrap();
        fs.sync_dir().unwrap();
        assert_eq!(fs.read("wal").unwrap(), b"onetwo");
        assert_eq!(fs.read("snap.1").unwrap(), b"pairs");
        assert_eq!(
            fs.list().unwrap(),
            vec!["snap.1".to_string(), "wal".to_string()]
        );
        let reopened = DiskFs::open(&root).unwrap();
        assert_eq!(reopened.read("wal").unwrap(), b"onetwo");
        reopened.remove("wal").unwrap();
        assert_eq!(reopened.list().unwrap(), vec!["snap.1".to_string()]);
        assert!(DiskFs::open(root.join("nope")).is_err());
        std::fs::remove_dir_all(&root).unwrap();
    }
}

//! Fault injection: a [`FaultFs`] wrapper over [`MemFs`] that can
//! drop fsyncs, tear records at arbitrary byte offsets, and "kill"
//! the store at any operation in the write/snapshot/recover protocol.
//!
//! Killing is modeled as **crash-image capture** rather than a panic:
//! when the mutating-operation counter reaches
//! [`FaultPlan::kill_at_op`], the wrapper snapshots what a crash at
//! that instant would leave on disk ([`MemFs::crash_view`], with the
//! plan's tear applied to every unsynced tail) and lets the live
//! store continue unharmed. The test then recovers from the captured
//! image and checks it against the oracle — every fs operation index
//! is a samplable crash point, with no unwinding, no poisoned locks,
//! and no special store shutdown path.

use std::io;
use std::sync::Mutex;

use isi_core::sync::MutexExt;

use crate::fs::{Fs, MemFs};

/// What to inject. The default plan injects nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Capture the crash image just before the Nth mutating fs
    /// operation (0-based; appends, writes, syncs, renames, removes
    /// and dir-syncs count; reads and listings do not).
    pub kill_at_op: Option<u64>,
    /// Make [`Fs::sync`] and [`Fs::sync_dir`] silently do nothing —
    /// a lying disk. Acked writes may then be lost at a crash;
    /// recovery must still restore a consistent prefix.
    pub drop_syncs: bool,
    /// How much of each file's unsynced suffix survives into the
    /// crash image, in eighths (0 = none, 8 = all). Intermediate
    /// values tear the tail record at an arbitrary byte offset.
    pub tear_keep_eighths: u8,
    /// Flip one bit in the last surviving torn byte (media corruption
    /// in the torn region; must be caught by the record CRC).
    pub flip_torn_bit: bool,
}

struct FaultState {
    plan: FaultPlan,
    ops: u64,
    image: Option<MemFs>,
}

/// A fault-injecting [`Fs`] over an in-memory store (see the [module
/// docs](self)).
pub struct FaultFs {
    mem: MemFs,
    state: Mutex<FaultState>,
}

impl FaultFs {
    /// An empty in-memory store with `plan` armed.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            mem: MemFs::new(),
            state: Mutex::new(FaultState {
                plan,
                ops: 0,
                image: None,
            }),
        }
    }

    /// Count one mutating operation, capturing the crash image if the
    /// kill point has been reached. Returns whether syncs are being
    /// dropped.
    fn before_op(&self) -> bool {
        let mut st = self.state.plock("fault state");
        if st.image.is_none() && st.plan.kill_at_op == Some(st.ops) {
            st.image = Some(
                self.mem
                    .crash_view(st.plan.tear_keep_eighths, st.plan.flip_torn_bit),
            );
        }
        st.ops += 1;
        st.plan.drop_syncs
    }

    /// Mutating operations performed so far.
    pub fn ops_done(&self) -> u64 {
        self.state.plock("fault state").ops
    }

    /// True once the kill point has been reached and the crash image
    /// captured.
    pub fn killed(&self) -> bool {
        self.state.plock("fault state").image.is_some()
    }

    /// Take the captured crash image (a fully-durable [`MemFs`] of
    /// what survived), if the kill point was reached.
    pub fn take_crash_image(&self) -> Option<MemFs> {
        self.state.plock("fault state").image.take()
    }

    /// The crash image as of *right now* (no kill point needed), with
    /// this plan's tear applied — what pulling the plug at this
    /// instant would leave.
    pub fn crash_now(&self) -> MemFs {
        let st = self.state.plock("fault state");
        self.mem
            .crash_view(st.plan.tear_keep_eighths, st.plan.flip_torn_bit)
    }
}

impl Fs for FaultFs {
    fn append(&self, name: &str, data: &[u8]) -> io::Result<()> {
        self.before_op();
        self.mem.append(name, data)
    }

    fn write_all(&self, name: &str, data: &[u8]) -> io::Result<()> {
        self.before_op();
        self.mem.write_all(name, data)
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        self.mem.read(name)
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        if self.before_op() {
            return Ok(()); // lying disk: report success, persist nothing
        }
        self.mem.sync(name)
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        self.before_op();
        self.mem.rename(from, to)
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.before_op();
        self.mem.remove(name)
    }

    fn list(&self) -> io::Result<Vec<String>> {
        self.mem.list()
    }

    fn sync_dir(&self) -> io::Result<()> {
        if self.before_op() {
            return Ok(());
        }
        self.mem.sync_dir()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_point_freezes_the_image_and_the_live_store_continues() {
        // Ops: 0=append 1=sync 2=sync_dir 3=append 4=sync ...
        let fs = FaultFs::new(FaultPlan {
            kill_at_op: Some(3),
            ..FaultPlan::default()
        });
        fs.append("wal", b"first").unwrap();
        fs.sync("wal").unwrap();
        fs.sync_dir().unwrap();
        assert!(!fs.killed());
        fs.append("wal", b"-second").unwrap(); // op 3: image captured first
        fs.sync("wal").unwrap();
        assert!(fs.killed());
        assert_eq!(fs.ops_done(), 5);
        // Live store kept going...
        assert_eq!(fs.read("wal").unwrap(), b"first-second");
        // ...but the image is frozen at the pre-append durable state.
        let img = fs.take_crash_image().unwrap();
        assert_eq!(img.read("wal").unwrap(), b"first");
        assert!(fs.take_crash_image().is_none());
    }

    #[test]
    fn dropped_syncs_lie_and_lose_data_at_the_crash() {
        let fs = FaultFs::new(FaultPlan {
            drop_syncs: true,
            ..FaultPlan::default()
        });
        fs.append("wal", b"acked").unwrap();
        fs.sync("wal").unwrap(); // reports Ok, persists nothing
        fs.sync_dir().unwrap();
        let img = fs.crash_now();
        assert!(img.list().unwrap().is_empty(), "nothing was truly durable");
    }

    #[test]
    fn tearing_applies_to_the_captured_image() {
        let fs = FaultFs::new(FaultPlan {
            kill_at_op: Some(4),
            tear_keep_eighths: 4,
            ..FaultPlan::default()
        });
        fs.append("wal", b"SYNC").unwrap();
        fs.sync("wal").unwrap();
        fs.sync_dir().unwrap();
        fs.append("wal", b"ABCDEFGH").unwrap();
        fs.sync("wal").unwrap(); // op 4: image captured before this sync
        let img = fs.take_crash_image().unwrap();
        // Half of the 8 unsynced bytes survived the tear.
        assert_eq!(img.read("wal").unwrap(), b"SYNCABCD");
    }
}

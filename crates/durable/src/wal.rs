//! WAL record and snapshot codecs, file naming, and the crash-safe
//! store-directory protocol (init, snapshot publish, WAL truncation,
//! per-shard recovery).
//!
//! ## File formats (all integers little-endian)
//!
//! **WAL record** (`shard-NNNN.wal` is a concatenation of these):
//!
//! ```text
//! [len: u32][crc: u32][seq: u64][count: u32][count × (key: u64, present: u8, val: u64)]
//! ```
//!
//! `len` is the byte length of everything after the `len` field
//! (`16 + 17·count`). `crc` is the CRC-32 of the `len` field plus
//! everything after the `crc` field, so corruption of the length
//! prefix, the sequence number, or any payload byte is detected. An
//! entry with `present == 0` is a tombstone (`val` is then 0).
//!
//! **Snapshot** (`shard-NNNN.snap.<seq>`):
//!
//! ```text
//! ["ISNP"][version: u32][seq: u64][count: u64][count × (key: u64, val: u64)][crc: u32]
//! ```
//!
//! The trailing CRC-32 covers every preceding byte. `seq` stamps the
//! WAL sequence the snapshot covers: recovery replays only records
//! with `seq > snapshot.seq` on top of it.
//!
//! **Meta** (`meta`): `["IMTA"][version: u32][shards: u32][crc: u32]`.
//!
//! ## Crash safety
//!
//! Snapshots and WAL rewrites are published by write-to-temp → fsync
//! → rename → fsync-dir; the WAL is only rewritten *after* its
//! covering snapshot is durable (see the crate docs for the full
//! invariant list). Recovery tolerates any prefix of that protocol:
//! leftover temp files are deleted, stale or invalid snapshots are
//! skipped (newest valid wins) and deleted, and a torn/corrupt WAL
//! tail is discarded and truncated away so future appends extend a
//! valid log.

use std::io;

use crate::crc::{crc32, crc32_update};
use crate::fs::Fs;

/// Cap on operations per record; `len` fields implying more are
/// treated as corruption, bounding what a torn length prefix can make
/// recovery allocate.
pub const MAX_RUN_OPS: usize = 1 << 16;

const ENTRY_BYTES: usize = 17; // key u64 + present u8 + val u64
const BODY_FIXED: usize = 16; // crc u32 + seq u64 + count u32
const MAX_BODY_LEN: usize = BODY_FIXED + MAX_RUN_OPS * ENTRY_BYTES;

const SNAP_MAGIC: &[u8; 4] = b"ISNP";
const SNAP_VERSION: u32 = 1;
const META_MAGIC: &[u8; 4] = b"IMTA";
const META_VERSION: u32 = 1;

/// The store metadata file name.
pub const META_NAME: &str = "meta";

/// The WAL file of `shard`.
pub fn wal_name(shard: usize) -> String {
    format!("shard-{shard:04}.wal")
}

/// The committed snapshot of `shard` covering WAL sequence `seq`.
pub fn snap_name(shard: usize, seq: u64) -> String {
    format!("shard-{shard:04}.snap.{seq:020}")
}

/// The in-flight snapshot temp file of `shard`.
pub fn snap_tmp_name(shard: usize) -> String {
    format!("shard-{shard:04}.snap.tmp")
}

/// The in-flight WAL-rewrite temp file of `shard`.
pub fn wal_tmp_name(shard: usize) -> String {
    format!("shard-{shard:04}.wal.tmp")
}

/// Parse a [`snap_name`] back into `(shard, seq)`.
fn parse_snap_name(name: &str) -> Option<(usize, u64)> {
    let rest = name.strip_prefix("shard-")?;
    let (shard, rest) = rest.split_once(".snap.")?;
    Some((shard.parse().ok()?, rest.parse().ok()?))
}

/// One decoded WAL record: a group-committed write run. Tombstones
/// are `(key, None)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotone per-shard sequence number.
    pub seq: u64,
    /// The run's effective operations, in admission order.
    pub ops: Vec<(u64, Option<u64>)>,
}

/// The result of decoding a WAL byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalDecode {
    /// Every whole, checksum-valid record, in file order.
    pub records: Vec<WalRecord>,
    /// Bytes of valid records; everything past this is a discarded
    /// torn/truncated/corrupt tail.
    pub valid_len: usize,
    /// True when the whole stream decoded (no tail was discarded).
    pub clean: bool,
}

/// Encode one write run as a WAL record.
///
/// # Panics
/// Panics if `ops` exceeds [`MAX_RUN_OPS`] (the dispatcher's batches
/// are orders of magnitude smaller).
pub fn encode_record(seq: u64, ops: &[(u64, Option<u64>)]) -> Vec<u8> {
    assert!(ops.len() <= MAX_RUN_OPS, "run of {} ops", ops.len());
    let len = BODY_FIXED + ops.len() * ENTRY_BYTES;
    let mut buf = Vec::with_capacity(4 + len);
    buf.extend_from_slice(&(len as u32).to_le_bytes());
    buf.extend_from_slice(&[0u8; 4]); // crc patched below
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for &(key, val) in ops {
        buf.extend_from_slice(&key.to_le_bytes());
        buf.push(u8::from(val.is_some()));
        buf.extend_from_slice(&val.unwrap_or(0).to_le_bytes());
    }
    let crc = record_crc(&buf);
    buf[4..8].copy_from_slice(&crc.to_le_bytes());
    buf
}

/// The CRC of one framed record (`buf` = len+crc+seq+payload): covers
/// the `len` field and everything after the `crc` field.
fn record_crc(buf: &[u8]) -> u32 {
    !crc32_update(crc32_update(!0, &buf[..4]), &buf[8..])
}

fn read_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().expect("4 bytes"))
}

fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().expect("8 bytes"))
}

/// Decode a WAL byte stream, stopping (not panicking) at the first
/// torn, truncated, or checksum-invalid record.
pub fn decode_wal(bytes: &[u8]) -> WalDecode {
    let mut records = Vec::new();
    let mut at = 0usize;
    loop {
        let rest = &bytes[at..];
        if rest.len() < 4 {
            break; // truncated length prefix (or exactly consumed)
        }
        let len = read_u32(rest) as usize;
        if !(BODY_FIXED..=MAX_BODY_LEN).contains(&len) || rest.len() - 4 < len {
            break; // nonsense or truncated record
        }
        let frame = &rest[..4 + len];
        let stored = read_u32(&frame[4..]);
        if record_crc(frame) != stored {
            break; // bit flip / torn rewrite
        }
        let seq = read_u64(&frame[8..]);
        let count = read_u32(&frame[16..]) as usize;
        if len != BODY_FIXED + count * ENTRY_BYTES {
            break; // internally inconsistent (CRC collision would be needed)
        }
        let mut ops = Vec::with_capacity(count);
        let mut ok = true;
        for i in 0..count {
            let e = &frame[20 + i * ENTRY_BYTES..];
            let key = read_u64(e);
            let val = read_u64(&e[9..]);
            match e[8] {
                0 => ops.push((key, None)),
                1 => ops.push((key, Some(val))),
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            break;
        }
        records.push(WalRecord { seq, ops });
        at += 4 + len;
    }
    WalDecode {
        records,
        valid_len: at,
        clean: at == bytes.len(),
    }
}

/// Encode a shard snapshot covering WAL sequence `seq`.
pub fn encode_snapshot(seq: u64, pairs: &[(u64, u64)]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(24 + pairs.len() * 16 + 4);
    buf.extend_from_slice(SNAP_MAGIC);
    buf.extend_from_slice(&SNAP_VERSION.to_le_bytes());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&(pairs.len() as u64).to_le_bytes());
    for &(k, v) in pairs {
        buf.extend_from_slice(&k.to_le_bytes());
        buf.extend_from_slice(&v.to_le_bytes());
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Decode and validate a snapshot; `None` if it is truncated, has the
/// wrong magic/version, or fails its checksum.
pub fn decode_snapshot(bytes: &[u8]) -> Option<(u64, Vec<(u64, u64)>)> {
    if bytes.len() < 28 || &bytes[..4] != SNAP_MAGIC {
        return None;
    }
    if read_u32(&bytes[4..]) != SNAP_VERSION {
        return None;
    }
    let seq = read_u64(&bytes[8..]);
    let count = read_u64(&bytes[16..]);
    let body = 24usize.checked_add(usize::try_from(count).ok()?.checked_mul(16)?)?;
    if bytes.len() != body + 4 {
        return None;
    }
    if crc32(&bytes[..body]) != read_u32(&bytes[body..]) {
        return None;
    }
    let mut pairs = Vec::with_capacity(count as usize);
    for i in 0..count as usize {
        let e = &bytes[24 + i * 16..];
        pairs.push((read_u64(e), read_u64(&e[8..])));
    }
    Some((seq, pairs))
}

fn encode_meta(shards: u32) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16);
    buf.extend_from_slice(META_MAGIC);
    buf.extend_from_slice(&META_VERSION.to_le_bytes());
    buf.extend_from_slice(&shards.to_le_bytes());
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Read and validate the store meta file; returns the shard count.
pub fn read_meta(fs: &dyn Fs) -> io::Result<u32> {
    let bytes = fs.read(META_NAME)?;
    if bytes.len() != 16 || &bytes[..4] != META_MAGIC {
        return Err(invalid("store meta corrupt".into()));
    }
    if read_u32(&bytes[4..]) != META_VERSION {
        return Err(invalid("store meta has an unknown version".into()));
    }
    if crc32(&bytes[..12]) != read_u32(&bytes[12..]) {
        return Err(invalid("store meta failed its checksum".into()));
    }
    Ok(read_u32(&bytes[8..]))
}

/// Initialize a fresh store directory: the meta file, one seq-0
/// snapshot per shard holding its seeded pairs, and one empty WAL per
/// shard — all made durable by a single trailing directory sync. A
/// crash before that sync leaves no readable meta, i.e. no store.
pub fn init_store(fs: &dyn Fs, shard_pairs: &[Vec<(u64, u64)>]) -> io::Result<()> {
    let shards = u32::try_from(shard_pairs.len()).expect("shard count fits u32");
    fs.write_all(META_NAME, &encode_meta(shards))?;
    fs.sync(META_NAME)?;
    for (shard, pairs) in shard_pairs.iter().enumerate() {
        let snap = snap_name(shard, 0);
        fs.write_all(&snap, &encode_snapshot(0, pairs))?;
        fs.sync(&snap)?;
        let wal = wal_name(shard);
        fs.write_all(&wal, &[])?;
        fs.sync(&wal)?;
    }
    fs.sync_dir()
}

/// Serialize and fsync a snapshot of `pairs` (covering `seq`) to the
/// shard's temp file, returning the temp name. Run *outside* the
/// shard write lock — this is the bulky part; only
/// [`commit_snapshot`] needs the lock.
pub fn write_snapshot_tmp(
    fs: &dyn Fs,
    shard: usize,
    seq: u64,
    pairs: &[(u64, u64)],
) -> io::Result<String> {
    let tmp = snap_tmp_name(shard);
    fs.write_all(&tmp, &encode_snapshot(seq, pairs))?;
    fs.sync(&tmp)?;
    Ok(tmp)
}

/// Atomically publish a fsynced snapshot temp file as
/// `shard-NNNN.snap.<seq>` and delete superseded snapshots (best
/// effort — recovery also skips and deletes stale ones).
pub fn commit_snapshot(fs: &dyn Fs, shard: usize, seq: u64, tmp: &str) -> io::Result<()> {
    fs.rename(tmp, &snap_name(shard, seq))?;
    fs.sync_dir()?;
    for name in fs.list()? {
        if let Some((s, old)) = parse_snap_name(&name) {
            if s == shard && old < seq {
                let _ = fs.remove(&name);
            }
        }
    }
    Ok(())
}

/// Rewrite the shard's WAL down to `residual` (records at `seq`,
/// chunked to [`MAX_RUN_OPS`]; an empty residual leaves an empty
/// log), via temp + fsync + rename + dir-sync. Call only *after* the
/// covering snapshot committed: a crash before the rename keeps the
/// old WAL, whose extra records the snapshot's `seq` filter makes
/// harmless.
pub fn rewrite_wal(
    fs: &dyn Fs,
    shard: usize,
    seq: u64,
    residual: &[(u64, Option<u64>)],
) -> io::Result<()> {
    let tmp = wal_tmp_name(shard);
    let mut bytes = Vec::new();
    for chunk in residual.chunks(MAX_RUN_OPS) {
        bytes.extend_from_slice(&encode_record(seq, chunk));
    }
    fs.write_all(&tmp, &bytes)?;
    fs.sync(&tmp)?;
    fs.rename(&tmp, &wal_name(shard))?;
    fs.sync_dir()
}

/// One shard's recovered durable state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRecovery {
    /// WAL sequence the chosen snapshot covers.
    pub snap_seq: u64,
    /// The snapshot's sorted, duplicate-free pairs (empty if no valid
    /// snapshot survived — a crash during init).
    pub pairs: Vec<(u64, u64)>,
    /// Valid WAL records with `seq > snap_seq`, in log order; replay
    /// these onto the snapshot.
    pub tail: Vec<WalRecord>,
    /// The sequence to continue appending from (max of snapshot and
    /// tail sequences).
    pub next_seq: u64,
    /// True when recovery had to repair something: a torn WAL tail
    /// truncated away, or stale/invalid snapshot or temp files
    /// deleted.
    pub repaired: bool,
}

/// Recover one shard: pick the newest valid snapshot (deleting stale
/// and invalid ones), decode the WAL and discard its torn tail (also
/// truncating it on disk so future appends extend valid records), and
/// delete leftover temp files.
pub fn recover_shard(fs: &dyn Fs, shard: usize) -> io::Result<ShardRecovery> {
    let mut best: Option<(u64, Vec<(u64, u64)>)> = None;
    let mut doomed: Vec<String> = Vec::new();
    let snap_tmp = snap_tmp_name(shard);
    let wal_tmp = wal_tmp_name(shard);
    for name in fs.list()? {
        if name == snap_tmp || name == wal_tmp {
            doomed.push(name);
            continue;
        }
        let Some((s, seq)) = parse_snap_name(&name) else {
            continue;
        };
        if s != shard {
            continue;
        }
        // A committed snapshot was fsynced before its rename, but a
        // duplicate-seq leftover or external corruption must not take
        // down recovery: validate, newest valid wins.
        let decoded = fs.read(&name).ok().and_then(|b| decode_snapshot(&b));
        match decoded {
            Some((stamped, pairs)) if stamped == seq => {
                if best.as_ref().is_none_or(|&(b, _)| seq > b) {
                    if let Some((old, _)) = best.replace((seq, pairs)) {
                        doomed.push(snap_name(shard, old));
                    }
                } else {
                    doomed.push(name);
                }
            }
            _ => doomed.push(name), // truncated, corrupt, or mis-stamped
        }
    }
    let mut repaired = !doomed.is_empty();
    for name in doomed {
        let _ = fs.remove(&name);
    }
    let (snap_seq, pairs) = best.unwrap_or((0, Vec::new()));
    let wal_bytes = fs.read(&wal_name(shard)).unwrap_or_default();
    let decoded = decode_wal(&wal_bytes);
    if !decoded.clean {
        // Truncate the torn tail away (atomically — a crash here must
        // not lose the valid prefix) so appends resume after valid
        // records.
        fs.write_all(&wal_tmp, &wal_bytes[..decoded.valid_len])?;
        fs.sync(&wal_tmp)?;
        fs.rename(&wal_tmp, &wal_name(shard))?;
        fs.sync_dir()?;
        repaired = true;
    }
    let mut next_seq = snap_seq;
    let mut tail = Vec::new();
    for rec in decoded.records {
        next_seq = next_seq.max(rec.seq);
        if rec.seq > snap_seq {
            tail.push(rec);
        }
    }
    Ok(ShardRecovery {
        snap_seq,
        pairs,
        tail,
        next_seq,
        repaired,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::MemFs;

    fn ops(n: u64) -> Vec<(u64, Option<u64>)> {
        (0..n)
            .map(|i| (i * 3, (i % 4 != 0).then_some(i + 100)))
            .collect()
    }

    #[test]
    fn record_roundtrip_including_tombstones() {
        let run = ops(9);
        let bytes = encode_record(42, &run);
        let dec = decode_wal(&bytes);
        assert!(dec.clean);
        assert_eq!(dec.valid_len, bytes.len());
        assert_eq!(dec.records, vec![WalRecord { seq: 42, ops: run }]);
    }

    #[test]
    fn zero_length_run_records_are_valid() {
        // The store never appends empty runs, but the codec must not
        // choke on them (rewrite_wal uses an empty *file* instead).
        let bytes = encode_record(7, &[]);
        assert_eq!(bytes.len(), 4 + BODY_FIXED);
        let dec = decode_wal(&bytes);
        assert!(dec.clean);
        assert_eq!(
            dec.records,
            vec![WalRecord {
                seq: 7,
                ops: vec![]
            }]
        );
    }

    #[test]
    fn max_size_records_roundtrip_and_larger_lengths_are_rejected() {
        let run = ops(MAX_RUN_OPS as u64);
        let bytes = encode_record(1, &run);
        let dec = decode_wal(&bytes);
        assert!(dec.clean);
        assert_eq!(dec.records[0].ops.len(), MAX_RUN_OPS);
        // A length prefix past the cap is corruption, not an
        // allocation request.
        let mut huge = bytes.clone();
        huge[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let dec = decode_wal(&huge);
        assert!(dec.records.is_empty());
        assert_eq!(dec.valid_len, 0);
        assert!(!dec.clean);
    }

    #[test]
    #[should_panic(expected = "run of")]
    fn encoding_an_oversized_run_panics() {
        encode_record(1, &ops(MAX_RUN_OPS as u64 + 1));
    }

    #[test]
    fn crc_mismatch_discards_the_tail_but_keeps_valid_prefix_records() {
        let mut bytes = encode_record(1, &ops(3));
        let first = bytes.len();
        bytes.extend_from_slice(&encode_record(2, &ops(5)));
        // Flip one payload bit in the second record.
        let n = bytes.len();
        bytes[n - 3] ^= 0x10;
        let dec = decode_wal(&bytes);
        assert_eq!(dec.records.len(), 1);
        assert_eq!(dec.records[0].seq, 1);
        assert_eq!(dec.valid_len, first);
        assert!(!dec.clean);
    }

    #[test]
    fn truncated_length_prefix_and_truncated_body_are_discarded() {
        let whole = encode_record(5, &ops(4));
        for cut in [1usize, 2, 3] {
            let dec = decode_wal(&whole[..cut]);
            assert!(dec.records.is_empty() && !dec.clean, "cut={cut}");
        }
        // A full first record followed by a partial second one.
        let mut bytes = whole.clone();
        bytes.extend_from_slice(&encode_record(6, &ops(4))[..10]);
        let dec = decode_wal(&bytes);
        assert_eq!(dec.records.len(), 1);
        assert_eq!(dec.valid_len, whole.len());
        assert!(!dec.clean);
        // Empty input is a clean, empty log.
        let dec = decode_wal(&[]);
        assert!(dec.clean && dec.records.is_empty());
    }

    #[test]
    fn corrupt_length_that_still_frames_is_caught_by_the_crc() {
        let mut bytes = encode_record(9, &ops(8));
        // Shrink the length so the frame still fits in the buffer:
        // the CRC covers the length field, so this cannot reframe.
        let len = read_u32(&bytes) - ENTRY_BYTES as u32;
        bytes[..4].copy_from_slice(&len.to_le_bytes());
        let dec = decode_wal(&bytes);
        assert!(dec.records.is_empty());
        assert!(!dec.clean);
    }

    #[test]
    fn snapshot_roundtrip_and_corruption_detection() {
        let pairs: Vec<(u64, u64)> = (0..100).map(|i| (i * 7, i)).collect();
        let bytes = encode_snapshot(33, &pairs);
        assert_eq!(decode_snapshot(&bytes), Some((33, pairs.clone())));
        assert_eq!(decode_snapshot(&bytes[..bytes.len() - 1]), None);
        assert_eq!(decode_snapshot(b"ISNPxxxx"), None);
        let mut flipped = bytes.clone();
        flipped[40] ^= 1;
        assert_eq!(decode_snapshot(&flipped), None);
        let empty = encode_snapshot(0, &[]);
        assert_eq!(decode_snapshot(&empty), Some((0, vec![])));
    }

    #[test]
    fn meta_roundtrip_and_validation() {
        let fs = MemFs::new();
        init_store(&fs, &[vec![(1, 2)], vec![]]).unwrap();
        assert_eq!(read_meta(&fs).unwrap(), 2);
        fs.write_all(META_NAME, b"IMTAgarbagegarb").unwrap();
        assert!(read_meta(&fs).is_err());
        fs.remove(META_NAME).unwrap();
        assert!(read_meta(&fs).is_err());
    }

    #[test]
    fn init_recover_roundtrip_with_wal_tail() {
        let fs = MemFs::new();
        let seeded = vec![vec![(10, 1), (20, 2)], vec![(15, 3)]];
        init_store(&fs, &seeded).unwrap();
        // Shard 0 gets two more runs.
        fs.append(&wal_name(0), &encode_record(1, &[(10, Some(9))]))
            .unwrap();
        fs.append(
            &wal_name(0),
            &encode_record(2, &[(20, None), (30, Some(5))]),
        )
        .unwrap();
        let rec = recover_shard(&fs, 0).unwrap();
        assert_eq!(rec.snap_seq, 0);
        assert_eq!(rec.pairs, vec![(10, 1), (20, 2)]);
        assert_eq!(rec.tail.len(), 2);
        assert_eq!(rec.next_seq, 2);
        assert!(!rec.repaired);
        let rec1 = recover_shard(&fs, 1).unwrap();
        assert_eq!(rec1.pairs, vec![(15, 3)]);
        assert!(rec1.tail.is_empty());
    }

    #[test]
    fn snapshot_commit_filters_already_covered_records() {
        let fs = MemFs::new();
        init_store(&fs, &[vec![]]).unwrap();
        fs.append(&wal_name(0), &encode_record(1, &[(1, Some(1))]))
            .unwrap();
        fs.append(&wal_name(0), &encode_record(2, &[(2, Some(2))]))
            .unwrap();
        // Snapshot covering seq 1 commits, but the crash hits before
        // the WAL rewrite: both records remain, replay must skip seq 1.
        let tmp = write_snapshot_tmp(&fs, 0, 1, &[(1, 1)]).unwrap();
        commit_snapshot(&fs, 0, 1, &tmp).unwrap();
        let rec = recover_shard(&fs, 0).unwrap();
        assert_eq!(rec.snap_seq, 1);
        assert_eq!(rec.pairs, vec![(1, 1)]);
        assert_eq!(rec.tail.len(), 1);
        assert_eq!(rec.tail[0].seq, 2);
        // After the rewrite, only the residual record remains.
        rewrite_wal(&fs, 0, 2, &[(2, Some(2))]).unwrap();
        let rec = recover_shard(&fs, 0).unwrap();
        assert_eq!(rec.tail.len(), 1);
        assert_eq!(rec.tail[0].ops, vec![(2, Some(2))]);
        assert_eq!(rec.next_seq, 2);
    }

    #[test]
    fn duplicate_snapshots_pick_newest_valid_and_delete_stale() {
        let fs = MemFs::new();
        init_store(&fs, &[vec![]]).unwrap();
        // Three snapshots: seq 5 (valid), seq 9 (corrupt — the newest
        // must NOT win), seq 7 (valid — the newest valid).
        fs.write_all(&snap_name(0, 5), &encode_snapshot(5, &[(5, 5)]))
            .unwrap();
        let mut bad = encode_snapshot(9, &[(9, 9)]);
        bad[10] ^= 0xFF;
        fs.write_all(&snap_name(0, 9), &bad).unwrap();
        fs.write_all(&snap_name(0, 7), &encode_snapshot(7, &[(7, 7)]))
            .unwrap();
        // Plus leftover temp files from an interrupted publish.
        fs.write_all(&snap_tmp_name(0), b"half").unwrap();
        fs.write_all(&wal_tmp_name(0), b"half").unwrap();
        let rec = recover_shard(&fs, 0).unwrap();
        assert_eq!(rec.snap_seq, 7);
        assert_eq!(rec.pairs, vec![(7, 7)]);
        assert!(rec.repaired);
        // Stale, invalid, seq-0 and temp files are all gone.
        let mut expect = vec![META_NAME.to_string(), snap_name(0, 7), wal_name(0)];
        expect.sort();
        assert_eq!(fs.list().unwrap(), expect);
    }

    #[test]
    fn mis_stamped_snapshot_is_treated_as_invalid() {
        let fs = MemFs::new();
        init_store(&fs, &[vec![(1, 1)]]).unwrap();
        // A file named seq 9 whose payload says seq 3: invalid.
        fs.write_all(&snap_name(0, 9), &encode_snapshot(3, &[(9, 9)]))
            .unwrap();
        let rec = recover_shard(&fs, 0).unwrap();
        assert_eq!(rec.snap_seq, 0);
        assert_eq!(rec.pairs, vec![(1, 1)]);
        assert!(rec.repaired);
    }

    #[test]
    fn torn_wal_tail_is_discarded_and_truncated_on_disk() {
        let fs = MemFs::new();
        init_store(&fs, &[vec![]]).unwrap();
        let good = encode_record(1, &[(1, Some(1))]);
        fs.append(&wal_name(0), &good).unwrap();
        let torn = encode_record(2, &[(2, Some(2))]);
        fs.append(&wal_name(0), &torn[..torn.len() - 5]).unwrap();
        let rec = recover_shard(&fs, 0).unwrap();
        assert!(rec.repaired);
        assert_eq!(rec.tail.len(), 1);
        assert_eq!(rec.next_seq, 1);
        // The file itself was cut back to the valid prefix.
        assert_eq!(fs.read(&wal_name(0)).unwrap(), good);
        let again = recover_shard(&fs, 0).unwrap();
        assert!(!again.repaired);
    }

    #[test]
    fn missing_snapshot_and_missing_wal_recover_to_empty() {
        let fs = MemFs::new();
        // No init at all (crash before the init dir-sync): recovery
        // sees an empty shard rather than failing.
        let rec = recover_shard(&fs, 3).unwrap();
        assert_eq!(rec.snap_seq, 0);
        assert!(rec.pairs.is_empty() && rec.tail.is_empty());
        assert_eq!(rec.next_seq, 0);
    }
}

//! Durability for the sharded store: per-shard write-ahead logs with
//! group commit, epoch-stamped shard snapshots, crash recovery, and a
//! fault-injecting file system for testing all of it.
//!
//! The serving layer (`isi_serve`) batches writes into *runs* — the
//! dispatcher drains its admission queue and applies consecutive
//! writes in one store call. This crate turns that batching into
//! **group commit**: one checksummed, length-prefixed WAL record per
//! run, fsynced once per run (in [`FsyncMode::Group`]) before any
//! ticket in the run is acknowledged. Merges publish **snapshots**:
//! the merger already rebuilds a shard's main index, so the rebuilt
//! pairs are serialized to a temp file, fsynced, atomically renamed,
//! and the WAL is rewritten down to the residual delta. **Recovery**
//! is newest-valid-snapshot + WAL-tail replay, per shard; torn,
//! truncated or bit-flipped tail records are detected by CRC and
//! cleanly discarded, never panicked on.
//!
//! Everything goes through the object-safe [`Fs`] trait so tests can
//! swap the real directory-backed [`DiskFs`] for the in-memory
//! [`MemFs`] (which models what survives a crash: synced bytes and
//! sync-dir'd directory entries) or the [`FaultFs`] wrapper (which
//! drops fsyncs, tears unsynced tails at arbitrary byte offsets, and
//! captures a crash image at any chosen operation in the protocol).
//!
//! ## Crash-ordering invariants
//!
//! 1. **Ack ⇒ durable** (modes [`FsyncMode::On`]/[`FsyncMode::Group`]):
//!    a write run's WAL record is appended *and fsynced* before the
//!    run returns, so an acknowledged write survives any later crash.
//! 2. **Snapshot before truncate**: the WAL is only rewritten after
//!    the covering snapshot is fsynced and its rename is sync-dir'd.
//!    A crash between the two leaves the old WAL, whose records are
//!    filtered by snapshot sequence on replay (replay is idempotent).
//! 3. **Records are atomic**: a record either replays whole or is
//!    discarded whole — the CRC covers the length prefix, sequence
//!    and payload, so a torn append can never half-apply.
//! 4. **Recovery sequence is monotone**: the recovered write frontier
//!    (snapshot seq ⊔ last valid WAL record seq) never moves backwards
//!    across crash/recover cycles, because nothing durable is deleted
//!    until its replacement is durable.

pub mod crc;
pub mod fault;
pub mod fs;
pub mod wal;

pub use crc::crc32;
pub use fault::{FaultFs, FaultPlan};
pub use fs::{DiskFs, Fs, MemFs};
pub use wal::{commit_snapshot, snap_tmp_name, wal_tmp_name};
pub use wal::{
    decode_snapshot, decode_wal, encode_record, encode_snapshot, init_store, read_meta,
    recover_shard, rewrite_wal, snap_name, wal_name, write_snapshot_tmp, ShardRecovery, WalDecode,
    WalRecord, MAX_RUN_OPS,
};

/// When WAL appends are fsynced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsyncMode {
    /// Never fsync on the write path: appends reach the OS but a
    /// crash may lose acknowledged writes. Recovery still restores a
    /// consistent prefix (records are atomic).
    Off,
    /// One record **per operation** — op-granular replay and crash
    /// tears, for A/B comparison against group commit. The records of
    /// one write run are encoded in a single pass, appended together
    /// and fsynced **once per run** (ack ⇒ durable is unchanged; only
    /// the record granularity differs from [`Group`](Self::Group)).
    On,
    /// One record and one fsync **per dispatched write run** — group
    /// commit; batching amortizes the fsync exactly like it amortizes
    /// the interleaved read engine.
    Group,
}

impl FsyncMode {
    /// All modes, in sweep order.
    pub const ALL: [FsyncMode; 3] = [FsyncMode::Off, FsyncMode::On, FsyncMode::Group];

    /// Stable lowercase name (used in benchmark documents and CLI
    /// flags).
    pub fn name(self) -> &'static str {
        match self {
            FsyncMode::Off => "off",
            FsyncMode::On => "on",
            FsyncMode::Group => "group",
        }
    }

    /// Parse a [`Self::name`] back into a mode.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|m| m.name() == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsync_mode_names_roundtrip() {
        for m in FsyncMode::ALL {
            assert_eq!(FsyncMode::from_name(m.name()), Some(m));
        }
        assert_eq!(FsyncMode::from_name("sometimes"), None);
    }
}

//! # isi-workloads — data and workload generators
//!
//! Reproduces the paper's experimental inputs (Section 5.3):
//!
//! * **Sorted arrays** whose values are derived from the array index —
//!   integers are the indices themselves, strings are 15-character
//!   renderings of the index ([`int_array`], [`string_array`]).
//! * **Lookup lists**: uniform random subsets of the array values,
//!   generated from a fixed seed (the paper uses `std::mt19937` with
//!   seed 0; any deterministic uniform source plays the same role), with
//!   an optionally sorted variant for the temporal-locality experiment
//!   of Figure 4 ([`uniform_lookups`], [`sorted_lookups`]).
//! * **Skewed lookups** (Zipf) for robustness experiments beyond the
//!   paper ([`zipf_lookups`]).
//! * **IN-predicate lists** in the style of TPC-DS Q8's 400 zip codes
//!   ([`tpcds_q8_zipcodes`]).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use isi_search::key::Str16;

/// The fixed seed used throughout the evaluation (the paper seeds
/// `std::mt19937` with 0).
pub const SEED: u64 = 0;

/// Number of `u32` elements that make a sorted array of `mb` megabytes.
pub fn ints_for_mb(mb: usize) -> usize {
    mb * (1 << 20) / std::mem::size_of::<u32>()
}

/// Number of `Str16` elements that make a sorted array of `mb` megabytes.
pub fn strings_for_mb(mb: usize) -> usize {
    mb * (1 << 20) / std::mem::size_of::<Str16>()
}

/// Sorted integer array: value = index (paper §5.3).
pub fn int_array(len: usize) -> Vec<u32> {
    (0..len as u32).collect()
}

/// Sorted 64-bit integer array for sizes beyond `u32` range.
pub fn int64_array(len: usize) -> Vec<u64> {
    (0..len as u64).collect()
}

/// Sorted string array: value = 15-character rendering of the index.
pub fn string_array(len: usize) -> Vec<Str16> {
    (0..len as u64).map(Str16::from_index).collect()
}

/// `count` uniform lookup indices in `[0, len)`, deterministic in `seed`.
pub fn uniform_indices(len: usize, count: usize, seed: u64) -> Vec<usize> {
    assert!(len > 0, "cannot sample from an empty array");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| rng.gen_range(0..len)).collect()
}

/// Uniform lookup *values* for an index-derived integer array: the
/// lookup list is a subset of the array values (paper §5.3).
pub fn uniform_lookups(len: usize, count: usize) -> Vec<u32> {
    uniform_indices(len, count, SEED)
        .into_iter()
        .map(|i| i as u32)
        .collect()
}

/// Uniform string lookups (values present in [`string_array`]).
pub fn uniform_string_lookups(len: usize, count: usize) -> Vec<Str16> {
    uniform_indices(len, count, SEED)
        .into_iter()
        .map(|i| Str16::from_index(i as u64))
        .collect()
}

/// The Figure 4 variant: the same lookup list, sorted ascending
/// ("sorting small lists is a cheap operation, and thus a valid
/// preprocessing step").
pub fn sorted_lookups(len: usize, count: usize) -> Vec<u32> {
    let mut v = uniform_lookups(len, count);
    v.sort_unstable();
    v
}

/// Zipf-distributed lookup indices with exponent `theta` in `[0, 1)`
/// (0 = uniform; 0.99 = heavily skewed), after Gray et al.'s quick Zipf
/// sampler ("Quickly generating billion-record synthetic databases",
/// SIGMOD 1994).
pub fn zipf_lookups(len: usize, count: usize, theta: f64, seed: u64) -> Vec<u32> {
    assert!(len > 0, "cannot sample from an empty array");
    assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = len as f64;
    let zetan: f64 = if len <= 1_000_000 {
        (1..=len).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    } else {
        // Integral approximation of the generalized harmonic for large n.
        (n.powf(1.0 - theta) - 1.0) / (1.0 - theta) + 0.577 + 0.5
    };
    let alpha = 1.0 / (1.0 - theta);
    let eta =
        (1.0 - (2.0 / n).powf(1.0 - theta)) / (1.0 - (1.0 / zetan) * (1.0 + 0.5f64.powf(theta)));
    (0..count)
        .map(|_| {
            let u: f64 = rng.gen();
            let uz = u * zetan;
            let v = if uz < 1.0 {
                0.0
            } else if uz < 1.0 + 0.5f64.powf(theta) {
                1.0
            } else {
                (n * (eta * u - eta + 1.0).powf(alpha)).floor()
            };
            (v as usize).min(len - 1) as u32
        })
        .collect()
}

/// A TPC-DS-Q8-flavoured IN list: `count` distinct 5-digit zip codes as
/// strings (Q8 uses 400 of them).
pub fn tpcds_q8_zipcodes(count: usize, seed: u64) -> Vec<Str16> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::BTreeSet::new();
    while seen.len() < count.min(90_000) {
        let zip: u32 = rng.gen_range(10_000..100_000);
        seen.insert(zip);
    }
    seen.iter()
        .map(|z| Str16::from_str_lossy(&z.to_string()))
        .collect()
}

/// Deterministic pseudo-random permutation of `0..len` (used to build
/// *unsorted* Delta dictionaries whose insertion order is shuffled).
pub fn shuffled_indices(len: usize, seed: u64) -> Vec<u32> {
    let mut v: Vec<u32> = (0..len as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    // Fisher-Yates.
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_helpers() {
        assert_eq!(ints_for_mb(1), 262_144);
        assert_eq!(strings_for_mb(1), 65_536);
    }

    #[test]
    fn arrays_are_sorted_and_index_derived() {
        let a = int_array(1000);
        assert_eq!(a[0], 0);
        assert_eq!(a[999], 999);
        let s = string_array(100);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(s[42], Str16::from_index(42));
    }

    #[test]
    fn lookups_are_deterministic_and_in_range() {
        let a = uniform_lookups(10_000, 500);
        let b = uniform_lookups(10_000, 500);
        assert_eq!(a, b, "same seed, same list");
        assert!(a.iter().all(|&v| (v as usize) < 10_000));
        // Different seeds differ.
        let c = uniform_indices(10_000, 500, 1);
        assert_ne!(a.iter().map(|&x| x as usize).collect::<Vec<_>>(), c);
    }

    #[test]
    fn sorted_variant_is_sorted_same_multiset() {
        let plain = uniform_lookups(5_000, 300);
        let sorted = sorted_lookups(5_000, 300);
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        let mut p = plain;
        p.sort_unstable();
        assert_eq!(p, sorted);
    }

    #[test]
    fn zipf_is_skewed_and_uniform_at_zero() {
        let len = 10_000;
        let skewed = zipf_lookups(len, 20_000, 0.99, 7);
        let head = skewed.iter().filter(|&&v| (v as usize) < len / 100).count();
        assert!(
            head > 20_000 / 4,
            "top 1% should draw >25% of skewed lookups, got {head}"
        );
        let uniform = zipf_lookups(len, 20_000, 0.0, 7);
        let head_u = uniform
            .iter()
            .filter(|&&v| (v as usize) < len / 100)
            .count();
        assert!(head_u < 20_000 / 20, "uniform head too heavy: {head_u}");
        assert!(uniform.iter().all(|&v| (v as usize) < len));
    }

    #[test]
    fn zipcodes_are_distinct_five_digit() {
        let zips = tpcds_q8_zipcodes(400, 3);
        assert_eq!(zips.len(), 400);
        let set: std::collections::BTreeSet<_> = zips.iter().collect();
        assert_eq!(set.len(), 400, "distinct");
        for z in &zips {
            let txt = z.to_string();
            assert_eq!(txt.len(), 5);
            assert!(txt.chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let p = shuffled_indices(1000, 9);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<u32>>());
        assert_ne!(p, (0..1000).collect::<Vec<u32>>(), "actually shuffled");
        assert_eq!(p, shuffled_indices(1000, 9), "deterministic");
    }

    #[test]
    #[should_panic(expected = "empty array")]
    fn sampling_empty_panics() {
        uniform_indices(0, 1, 0);
    }

    #[test]
    fn every_generator_is_deterministic_across_calls() {
        // The paper seeds mt19937 with 0 so experiments are replayable;
        // every generator here must likewise yield identical output on
        // repeated calls with the same explicit seed.
        assert_eq!(
            uniform_indices(8_192, 1_000, SEED),
            uniform_indices(8_192, 1_000, SEED)
        );
        assert_eq!(uniform_lookups(8_192, 1_000), uniform_lookups(8_192, 1_000));
        assert_eq!(
            uniform_string_lookups(4_096, 500),
            uniform_string_lookups(4_096, 500)
        );
        assert_eq!(sorted_lookups(8_192, 1_000), sorted_lookups(8_192, 1_000));
        assert_eq!(
            zipf_lookups(8_192, 1_000, 0.99, SEED),
            zipf_lookups(8_192, 1_000, 0.99, SEED)
        );
        assert_eq!(tpcds_q8_zipcodes(400, SEED), tpcds_q8_zipcodes(400, SEED));
        assert_eq!(shuffled_indices(4_096, SEED), shuffled_indices(4_096, SEED));

        // And a different seed must actually change the stream.
        assert_ne!(
            uniform_indices(8_192, 1_000, SEED),
            uniform_indices(8_192, 1_000, SEED + 1)
        );
    }
}

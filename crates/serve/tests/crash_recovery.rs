//! Kill-and-revive crash-recovery tests: the durable store is run on
//! a fault-injecting in-memory file system ([`FaultFs`]) that captures
//! the crash image — what a power cut would leave on disk — at an
//! arbitrary point in the WAL/snapshot protocol, optionally tearing
//! unsynced tails at arbitrary byte offsets, flipping a bit in the
//! torn region, or dropping fsyncs entirely (a lying disk).
//!
//! The invariant checked after every crash is the **per-shard atomic
//! prefix property**. Writes reach a shard as *runs* (one WAL record
//! each, atomic by CRC), appended in order, so whatever survives a
//! crash must be the state after some *prefix* of the ops routed to
//! that shard — never a half-applied record, never a reordering — and
//! when fsyncs are honored, at least the prefix covering every run
//! that was **acknowledged** before the crash (ack ⇒ durable). With
//! `FsyncMode::Off` or dropped fsyncs the guaranteed prefix shrinks
//! to zero, but it must still be *a* prefix.
//!
//! Three angles:
//!
//! * a deterministic **fault matrix** — one fixed schedule, killed at
//!   *every* file-system operation index × tear/bit-flip variants;
//! * a **proptest** over random schedules, kill points, fsync modes
//!   and fault plans;
//! * a **real-directory round trip** (DiskFs) covering clean shutdown
//!   and recovery-then-serve through a live `LookupService`.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use isi_durable::{FaultFs, FaultPlan, Fs, FsyncMode, MemFs};
use isi_serve::{
    Backend, BatchPolicy, LookupService, MergeMode, ServeConfig, ShardedStore, StoreConfig,
};

const SHARDS: usize = 2;

/// A schedule is a list of write runs; each run is applied with one
/// `apply_write_run` call (the group-commit unit).
type Schedule = Vec<Vec<(u64, Option<u64>)>>;

fn store_cfg(fsync: FsyncMode, mode: MergeMode) -> StoreConfig {
    StoreConfig {
        merge_threshold: 4,
        max_delta: 16,
        merge_mode: mode,
        // A tiny stack bound keeps crash images exercising run-stack
        // folds between the kill points.
        max_runs: 2,
        wal_dir: None,
        fsync,
        pin_threads: false,
    }
}

/// Run `schedule` against a fresh durable store on `fault`, returning
/// how many runs were acknowledged (returned) strictly before the
/// kill point was reached. The store is dropped un-cleanly ignored —
/// the crash image was already captured.
fn run_until_crash(
    fault: &Arc<FaultFs>,
    seed: &[(u64, u64)],
    cfg: StoreConfig,
    schedule: &Schedule,
) -> usize {
    let fs: Arc<dyn Fs> = Arc::clone(fault) as Arc<dyn Fs>;
    let store = ShardedStore::build_with_fs(Backend::Sorted, SHARDS, seed, cfg, fs);
    let mut prevs = Vec::new();
    let mut acked = 0usize;
    for run in schedule {
        store.apply_write_run(run, &mut prevs);
        if !fault.killed() {
            acked += 1;
        }
    }
    store.quiesce();
    acked
}

/// The visible map after applying the first `j` ops of `ops`.
fn oracle_states(seed: &HashMap<u64, u64>, ops: &[(u64, Option<u64>)]) -> Vec<Vec<(u64, u64)>> {
    let mut state = seed.clone();
    let mut out = Vec::with_capacity(ops.len() + 1);
    let snap = |s: &HashMap<u64, u64>| {
        let mut v: Vec<(u64, u64)> = s.iter().map(|(&k, &v)| (k, v)).collect();
        v.sort_unstable();
        v
    };
    out.push(snap(&state));
    for &(k, val) in ops {
        match val {
            Some(v) => {
                state.insert(k, v);
            }
            None => {
                state.remove(&k);
            }
        }
        out.push(snap(&state));
    }
    out
}

/// Check the per-shard atomic prefix property of `recovered` against
/// the schedule, given how many runs were acked before the crash and
/// whether acked runs were really made durable (`fsync_honored`).
/// Returns an error description instead of panicking so proptest can
/// report the failing case.
fn check_prefix_property(
    recovered: &ShardedStore,
    seed: &[(u64, u64)],
    schedule: &Schedule,
    acked_runs: usize,
    fsync_honored: bool,
) -> Result<(), String> {
    assert_eq!(recovered.num_shards(), SHARDS);
    for shard in 0..SHARDS {
        // Ops and seed pairs routed to this shard, in schedule order,
        // tagged with the index of the run each op belongs to.
        let seed_s: HashMap<u64, u64> = seed
            .iter()
            .copied()
            .filter(|&(k, _)| recovered.shard_of(k) == shard)
            .collect();
        let mut ops_s: Vec<(u64, Option<u64>)> = Vec::new();
        let mut run_of_op: Vec<usize> = Vec::new();
        for (r, run) in schedule.iter().enumerate() {
            for &(k, val) in run {
                if recovered.shard_of(k) == shard {
                    ops_s.push((k, val));
                    run_of_op.push(r);
                }
            }
        }
        let states = oracle_states(&seed_s, &ops_s);
        // Guaranteed durable: every op of every acked run (ack ⇒
        // durable) — unless fsyncs were off or dropped, where only
        // the empty prefix is promised.
        let j_min = if fsync_honored {
            run_of_op.iter().filter(|&&r| r < acked_runs).count()
        } else {
            0
        };
        let got = recovered.scan_range(shard, 0, u64::MAX);
        let ok = (j_min..states.len()).any(|j| states[j] == got);
        if !ok {
            return Err(format!(
                "shard {shard}: recovered state is not an op prefix ≥ {j_min}: got {:?}, \
                 nearest candidates {:?} .. {:?}",
                got,
                states[j_min],
                states.last().unwrap(),
            ));
        }
    }
    Ok(())
}

/// Recover from a crash image, check the prefix property, and verify
/// the revived store accepts new writes. Recovery failure is only
/// acceptable when the crash predates the store's init completing
/// (nothing was ever acked).
fn recover_and_check(
    image: MemFs,
    seed: &[(u64, u64)],
    cfg: StoreConfig,
    schedule: &Schedule,
    acked_runs: usize,
    fsync_honored: bool,
) -> Result<(), String> {
    let image = Arc::new(image);
    let fs: Arc<dyn Fs> = Arc::clone(&image) as Arc<dyn Fs>;
    let recovered = match ShardedStore::recover_with_fs(Backend::Sorted, cfg.clone(), fs) {
        Ok(store) => store,
        Err(e) if acked_runs == 0 || !fsync_honored => {
            // Killed before init's directory sync (or on a lying disk
            // that dropped it): no meta, no store — and in either case
            // nothing durable was promised. A clean failure is correct.
            let _ = e;
            return Ok(());
        }
        Err(e) => {
            return Err(format!(
                "recovery failed after {acked_runs} acked runs: {e}"
            ))
        }
    };
    check_prefix_property(&recovered, seed, schedule, acked_runs, fsync_honored)?;
    // Repair must be stable: recovering the repaired image again
    // reproduces the same state (recover_shard truncated torn tails
    // and deleted stale snapshots in place).
    drop(recovered);
    let fs2: Arc<dyn Fs> = Arc::clone(&image) as Arc<dyn Fs>;
    let again = ShardedStore::recover_with_fs(Backend::Sorted, cfg, fs2)
        .map_err(|e| format!("second recovery failed: {e}"))?;
    check_prefix_property(&again, seed, schedule, acked_runs, fsync_honored)?;
    // The revived store keeps working: a fresh write round-trips.
    again.put(999_983, 42);
    if again.get(999_983) != Some(42) {
        return Err("revived store dropped a fresh write".into());
    }
    Ok(())
}

/// One end-to-end crash case: run `schedule` with `plan` armed, crash
/// (at the kill point, or at end-of-run power loss if the kill point
/// was never reached), recover, check.
fn crash_case(
    seed: &[(u64, u64)],
    fsync: FsyncMode,
    mode: MergeMode,
    schedule: &Schedule,
    plan: FaultPlan,
) -> Result<(), String> {
    let fault = Arc::new(FaultFs::new(plan));
    let cfg = store_cfg(fsync, mode);
    let acked = run_until_crash(&fault, seed, cfg.clone(), schedule);
    let (image, acked) = match fault.take_crash_image() {
        Some(image) => (image, acked),
        // Kill point past the schedule: pull the plug after the final
        // run instead. Every run was acked by then.
        None => (fault.crash_now(), schedule.len()),
    };
    let fsync_honored = fsync != FsyncMode::Off && !plan.drop_syncs;
    recover_and_check(image, seed, cfg, schedule, acked, fsync_honored)
}

fn fixed_seed() -> Vec<(u64, u64)> {
    (0..40u64).map(|i| (i * 7, i + 100)).collect()
}

/// A fixed mixed schedule: overwrites, fresh keys, removes (present,
/// absent and repeated), single-op runs and multi-op runs — enough to
/// cross the merge threshold several times on both shards.
fn fixed_schedule() -> Schedule {
    let mut runs: Schedule = Vec::new();
    for r in 0..12u64 {
        let mut run = Vec::new();
        for i in 0..(1 + (r % 4)) {
            let k = (r * 31 + i * 13) % 300;
            match (r + i) % 5 {
                0 => run.push((k, None)),
                _ => run.push((k, Some(1000 * r + i))),
            }
        }
        runs.push(run);
    }
    runs.push(vec![(7, None), (7, None), (7, Some(5)), (7, None)]);
    runs
}

/// Count the file-system operations the fixed schedule performs, so
/// the matrix can kill at every single one.
fn fixed_schedule_ops(fsync: FsyncMode, mode: MergeMode) -> u64 {
    let fault = Arc::new(FaultFs::new(FaultPlan::default()));
    let seed = fixed_seed();
    run_until_crash(&fault, &seed, store_cfg(fsync, mode), &fixed_schedule());
    fault.ops_done()
}

/// Deterministic fault matrix: the fixed schedule killed at **every**
/// fs-operation index, for the interesting tear variants. Covers each
/// protocol point — mid-append, between append and fsync, between
/// snapshot rename and WAL rewrite, mid-init — without sampling.
#[test]
fn kill_at_every_protocol_point_foreground() {
    let seed = fixed_seed();
    let schedule = fixed_schedule();
    let total = fixed_schedule_ops(FsyncMode::Group, MergeMode::Foreground);
    assert!(total > 50, "schedule too small to be interesting: {total}");
    for kill in 0..total {
        for (tear, flip) in [(0u8, false), (4, false), (4, true), (8, false)] {
            let plan = FaultPlan {
                kill_at_op: Some(kill),
                drop_syncs: false,
                tear_keep_eighths: tear,
                flip_torn_bit: flip,
            };
            crash_case(
                &seed,
                FsyncMode::Group,
                MergeMode::Foreground,
                &schedule,
                plan,
            )
            .unwrap_or_else(|e| panic!("kill@{kill} tear={tear} flip={flip}: {e}"));
        }
    }
}

/// The same matrix with per-op fsyncs (`FsyncMode::On`) — different
/// op counts, different kill alignments, every acked op durable.
#[test]
fn kill_at_every_protocol_point_fsync_per_op() {
    let seed = fixed_seed();
    let schedule = fixed_schedule();
    let total = fixed_schedule_ops(FsyncMode::On, MergeMode::Foreground);
    for kill in (0..total).step_by(3) {
        let plan = FaultPlan {
            kill_at_op: Some(kill),
            drop_syncs: false,
            tear_keep_eighths: 2,
            flip_torn_bit: true,
        };
        crash_case(&seed, FsyncMode::On, MergeMode::Foreground, &schedule, plan)
            .unwrap_or_else(|e| panic!("kill@{kill}: {e}"));
    }
}

/// A lying disk (dropped fsyncs) still recovers to *a* prefix — acked
/// writes may be lost, but nothing is ever half-applied.
#[test]
fn dropped_fsyncs_still_recover_a_consistent_prefix() {
    let seed = fixed_seed();
    let schedule = fixed_schedule();
    let total = fixed_schedule_ops(FsyncMode::Group, MergeMode::Foreground);
    for kill in (0..total).step_by(5) {
        let plan = FaultPlan {
            kill_at_op: Some(kill),
            drop_syncs: true,
            tear_keep_eighths: 3,
            flip_torn_bit: true,
        };
        crash_case(
            &seed,
            FsyncMode::Group,
            MergeMode::Foreground,
            &schedule,
            plan,
        )
        .unwrap_or_else(|e| panic!("kill@{kill}: {e}"));
    }
}

/// Background-merge mode: the merger thread's snapshot/truncate ops
/// interleave with write-path appends, so kill points land inside the
/// concurrent protocol too. (Kill indices are sampled; exact op
/// counts vary run to run with merge timing.)
#[test]
fn kill_points_with_background_merges() {
    let seed = fixed_seed();
    let schedule = fixed_schedule();
    for kill in (0..120u64).step_by(7) {
        let plan = FaultPlan {
            kill_at_op: Some(kill),
            drop_syncs: false,
            tear_keep_eighths: 4,
            flip_torn_bit: false,
        };
        crash_case(
            &seed,
            FsyncMode::Group,
            MergeMode::Background,
            &schedule,
            plan,
        )
        .unwrap_or_else(|e| panic!("kill@{kill}: {e}"));
    }
}

fn schedule_strategy() -> impl Strategy<Value = Schedule> {
    proptest::collection::vec(
        proptest::collection::vec(
            (
                (0u64..200),
                prop_oneof![Just(None), (0u64..10_000).prop_map(Some)],
            ),
            1..6,
        ),
        1..20,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(if cfg!(miri) { 2 } else { 48 }))]

    /// Random schedules × random kill points × random fault plans ×
    /// all fsync modes: every acked write survives (when fsyncs are
    /// honored) and no crash image ever recovers to a non-prefix.
    #[test]
    fn kill_and_revive_matches_an_oracle_prefix(
        schedule in schedule_strategy(),
        kill in 0u64..400,
        tear in 0u8..=8,
        flip in prop_oneof![Just(false), Just(true)],
        drop_syncs in prop_oneof![Just(false), Just(true)],
        mode_fg in prop_oneof![Just(false), Just(true)],
        fsync_pick in 0u8..3,
    ) {
        let seed = fixed_seed();
        let fsync = FsyncMode::ALL[fsync_pick as usize];
        let mode = if mode_fg { MergeMode::Foreground } else { MergeMode::Background };
        let plan = FaultPlan {
            kill_at_op: Some(kill),
            drop_syncs,
            tear_keep_eighths: tear,
            flip_torn_bit: flip,
        };
        if let Err(e) = crash_case(&seed, fsync, mode, &schedule, plan) {
            prop_assert!(false, "{e}");
        }
    }
}

/// Real-directory round trip: build durable on a DiskFs, write
/// through a live service, shut down cleanly, recover, and serve
/// again — values intact, including under `FsyncMode::Off` (clean
/// shutdown flushes the WAL on drop).
#[test]
fn disk_roundtrip_through_the_service() {
    for fsync in FsyncMode::ALL {
        let dir = std::env::temp_dir().join(format!(
            "isi-crash-recovery-{}-{}",
            std::process::id(),
            fsync.name()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = StoreConfig {
            merge_threshold: 8,
            max_delta: 32,
            ..StoreConfig::default()
        }
        .durable(&dir, fsync);
        let seed: Vec<(u64, u64)> = (0..100u64).map(|i| (i * 3, i)).collect();
        let serve_cfg = ServeConfig {
            batch: BatchPolicy {
                max_batch: 8,
                max_wait: Duration::from_micros(100),
            },
            ..ServeConfig::default()
        };
        {
            let store = ShardedStore::build_with(Backend::Csb, SHARDS, &seed, cfg.clone());
            assert!(store.is_durable());
            let svc = LookupService::start(store, serve_cfg);
            for i in 0..50u64 {
                svc.put(1000 + i, i);
            }
            svc.remove(0);
            svc.put(3, 777);
            let (records, syncs) = svc.store().wal_stats();
            assert!(records > 0, "writes must hit the WAL");
            match fsync {
                FsyncMode::Off => assert_eq!(syncs, 0),
                _ => assert!(syncs > 0),
            }
            // svc (and with it the store) drops here: clean shutdown.
        }
        let recovered = ShardedStore::recover(Backend::Csb, cfg).expect("recover from disk");
        assert_eq!(recovered.get(0), None);
        assert_eq!(recovered.get(3), Some(777));
        for i in 0..50u64 {
            assert_eq!(recovered.get(1000 + i), Some(i), "fsync={}", fsync.name());
        }
        // 100 seeded + 50 fresh puts − removed key 0 (the put of 3
        // overwrites a seeded key).
        assert_eq!(recovered.len(), 100 + 50 - 1);
        // And the revived store serves.
        let svc = LookupService::start(recovered, serve_cfg);
        assert_eq!(svc.get(1000), Some(0));
        svc.put(5000, 1);
        assert_eq!(svc.get(5000), Some(1));
        drop(svc);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Durable group commit through the service: a burst of writes from
/// concurrent clients lands in far fewer fsyncs than records under
/// `FsyncMode::Group` (that is the point), while `FsyncMode::On`
/// keeps one record per op but still fsyncs once per write run.
#[test]
fn group_commit_amortizes_fsyncs_through_the_service() {
    for (fsync, expect_amortized) in [(FsyncMode::Group, true), (FsyncMode::On, false)] {
        let fs: Arc<dyn Fs> = Arc::new(MemFs::new());
        let store = ShardedStore::build_with_fs(
            Backend::Sorted,
            1,
            &[],
            store_cfg(fsync, MergeMode::Background),
            fs,
        );
        let svc = LookupService::start(
            store,
            ServeConfig {
                batch: BatchPolicy {
                    max_batch: 64,
                    max_wait: Duration::from_millis(2),
                },
                ..ServeConfig::default()
            },
        );
        std::thread::scope(|scope| {
            for c in 0..4u64 {
                let svc = &svc;
                scope.spawn(move || {
                    for i in 0..64u64 {
                        svc.put(c * 1000 + i, i);
                    }
                });
            }
        });
        let (records, syncs) = svc.store().wal_stats();
        if expect_amortized {
            // Group commit: concurrent writers coalesce into shared
            // records; at minimum the accounting holds, and with 4
            // concurrent clients batching must beat one-sync-per-op.
            assert!(syncs <= records);
            assert!(
                records < 256,
                "4×64 puts should coalesce into fewer records, got {records}"
            );
        } else {
            assert_eq!(records, 256, "FsyncMode::On is one record per op");
            // One fsync per effective write run, not per record: the
            // per-op records of a run are encoded in one pass and hit
            // the disk together.
            assert!(syncs <= records);
            assert_eq!(
                syncs,
                svc.store().delta_runs(),
                "FsyncMode::On is one fsync per published run"
            );
        }
    }
}

/// `FsyncMode::On` accounting on multi-op runs applied directly to
/// the store: one WAL record per **effective** op (elided ops are
/// never logged), one fsync per shard sub-run — and the per-op
/// records recover exactly like one grouped record.
#[test]
fn fsync_on_logs_one_record_per_effective_op() {
    let fs = Arc::new(MemFs::new());
    let store = ShardedStore::build_with_fs(
        Backend::Sorted,
        1,
        &[],
        StoreConfig::with_threshold(1 << 20).durable("ignored", FsyncMode::On),
        Arc::clone(&fs) as Arc<dyn Fs>,
    );
    let mut prevs = Vec::new();
    let mut effective = 0u64;
    for run in 0..16u64 {
        // 8 ops per run: 7 distinct puts plus one remove of a key
        // that is nowhere — the remove is elided, the rest count.
        let mut ops: Vec<(u64, Option<u64>)> = (0..7)
            .map(|i| (run * 16 + i, Some(run * 100 + i)))
            .collect();
        ops.push((900_000 + run, None));
        store.apply_write_run(&ops, &mut prevs);
        effective += 7;
    }
    let (records, syncs) = store.wal_stats();
    assert_eq!(records, effective, "one record per effective op");
    assert_eq!(syncs, store.delta_runs(), "one fsync per published run");
    assert_eq!(syncs, 16);
    drop(store);
    let recovered = ShardedStore::recover_with_fs(
        Backend::Sorted,
        StoreConfig::with_threshold(1 << 20).durable("ignored", FsyncMode::On),
        fs,
    )
    .expect("recover");
    for run in 0..16u64 {
        for i in 0..7 {
            assert_eq!(recovered.get(run * 16 + i), Some(run * 100 + i));
        }
    }
    assert_eq!(recovered.len(), 16 * 7);
}

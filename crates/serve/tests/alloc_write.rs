//! Steady-state allocation discipline of the store's write path.
//!
//! A dispatched write run should cost a small, constant number of
//! heap allocations: the run buffer, its published `Arc` run, the
//! cloned run-list and the new `ShardVersion` — never anything
//! proportional to the delta's size (the old clone-the-whole-delta
//! write path) and never fresh per-shard grouping buffers (the old
//! `vec![Vec::new(); num_shards]` in `apply_write_run`). This test
//! pins both with a counting global allocator: per-run allocations
//! are bounded by a small constant and do not grow as the delta
//! accumulates hundreds of runs.

#![deny(unsafe_op_in_unsafe_fn)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use isi_serve::{Backend, ShardedStore, StoreConfig, WriteScratch};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

// SAFETY: pure pass-through to the `System` allocator (which upholds
// the GlobalAlloc contract); the only addition is a relaxed counter
// bump, which allocates nothing and cannot unwind.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: same contract as ours; layout is forwarded verbatim.
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` came from our `alloc`, which forwarded
        // to `System`, so returning them to `System` is well-paired.
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: `ptr`/`layout` came from our pass-through `alloc`;
        // the caller guarantees `new_size` per the trait contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The counter is process-global, so tests in this binary must not
/// overlap: each one holds this lock around its counted sections.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Count allocations during `f`.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let r = f();
    COUNTING.store(false, Ordering::SeqCst);
    (ALLOCS.load(Ordering::SeqCst), r)
}

/// Write-run cost per shard sub-run: the run `Vec`, its `Arc` run,
/// the cloned run-list `Vec`, the `ShardVersion` `Arc`, plus slack
/// for allocator-internal bookkeeping.
const PER_SUB_RUN: u64 = 8;

/// Apply `n_runs` runs of `ops_per_run` distinct-key ops each through
/// a reusable scratch, returning the allocation count.
fn run_block(
    store: &ShardedStore,
    scratch: &mut WriteScratch,
    prevs: &mut Vec<Option<u64>>,
    key_base: u64,
    n_runs: u64,
    ops_per_run: u64,
) -> u64 {
    // Op buffers are prepared outside the counted section: the cost
    // under test is the store's, not the test harness's.
    let runs: Vec<Vec<(u64, Option<u64>)>> = (0..n_runs)
        .map(|r| {
            (0..ops_per_run)
                .map(|i| (key_base + r * ops_per_run + i, Some(r * 1_000 + i)))
                .collect()
        })
        .collect();
    let (allocs, ()) = count_allocs(|| {
        for ops in &runs {
            store.apply_write_run_with(ops, prevs, scratch);
        }
    });
    allocs
}

/// Per-run allocations are a small constant — independent of how many
/// runs the delta has already stacked (the old write path cloned the
/// whole delta per run) and free of per-call grouping buffers (the
/// reusable `WriteScratch`).
#[test]
fn write_runs_allocate_a_small_constant() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // Foreground mode: no background merger thread to race the global
    // allocation counter. The huge threshold and unbounded run stack
    // mean no merges and no folds — pure run-publish cost.
    let cfg = StoreConfig::with_threshold(1 << 20)
        .with_max_runs(usize::MAX)
        .foreground();
    let store = ShardedStore::build_with(Backend::Sorted, 1, &[], cfg);
    let mut scratch = WriteScratch::default();
    let mut prevs = Vec::new();

    // Warm up: establishes the scratch's shard buckets and `prevs`.
    run_block(&store, &mut scratch, &mut prevs, 0, 8, 8);

    let early = run_block(&store, &mut scratch, &mut prevs, 1_000_000, 64, 8);
    assert!(
        early <= 64 * PER_SUB_RUN,
        "64 single-shard runs took {early} allocations \
         (> {PER_SUB_RUN} per run): write dispatch is not \
         allocation-disciplined"
    );

    // Stack up several hundred more runs, then measure again: the
    // per-run cost must not have grown with the delta (the clone-on-
    // write delta would now copy hundreds of runs' entries per write;
    // an entry-cloning regression would also show up as realloc
    // traffic).
    run_block(&store, &mut scratch, &mut prevs, 2_000_000, 400, 8);
    let late = run_block(&store, &mut scratch, &mut prevs, 3_000_000, 64, 8);
    assert!(
        late <= 64 * PER_SUB_RUN,
        "after 400 stacked runs, 64 runs took {late} allocations: \
         per-run cost grew with delta size"
    );

    store.quiesce();
    assert_eq!(store.len(), (8 + 64 + 400 + 64) * 8);
}

/// Multi-shard grouping through the scratch adds no per-call buffers:
/// runs spanning 8 shards stay within the per-sub-run budget.
#[test]
fn grouping_scratch_is_reused_across_shards() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = StoreConfig::with_threshold(1 << 20)
        .with_max_runs(usize::MAX)
        .foreground();
    let store = ShardedStore::build_with(Backend::Sorted, 8, &[], cfg);
    let mut scratch = WriteScratch::default();
    let mut prevs = Vec::new();

    run_block(&store, &mut scratch, &mut prevs, 0, 8, 16);
    let allocs = run_block(&store, &mut scratch, &mut prevs, 1_000_000, 64, 16);
    // 16 ops scatter over at most 8 sub-runs per call.
    assert!(
        allocs <= 64 * 8 * PER_SUB_RUN,
        "64 eight-shard runs took {allocs} allocations: the grouping \
         scratch is not being reused"
    );
}

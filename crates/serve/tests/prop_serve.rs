//! Property test for the serving layer: under concurrent clients,
//! every backend × shard count × batch policy answers every request
//! exactly as the sequential oracle does.
//!
//! The three policies cover the three dispatch regimes:
//! * tiny `max_batch` — batches flush full, constantly;
//! * tiny `max_wait` — batches flush ragged, on the deadline;
//! * large both — everything coalesces into few big batches, with the
//!   queue bound exercising backpressure.
//!
//! Each policy runs with the hot-key cache off and on: repeated keys
//! in the probe list then answer from the cache (no dispatch), which
//! must never change an answer — only shift counts from `requests`
//! to `cache_hits`.

use std::time::Duration;

use proptest::prelude::*;

use isi_serve::{Backend, BatchPolicy, LookupService, ServeConfig, ShardedStore};

/// Strategy: distinct key/value pairs plus a probe list mixing hits,
/// misses and extremes.
fn pairs_and_probes() -> impl Strategy<Value = (Vec<(u64, u64)>, Vec<u64>)> {
    (
        proptest::collection::btree_map(0u64..5_000, 0u64..1_000_000, 1..400),
        proptest::collection::vec(0u64..6_000, 1..200),
    )
        .prop_map(|(map, probes)| (map.into_iter().collect(), probes))
}

fn policies() -> [BatchPolicy; 3] {
    [
        // Tiny max_batch: flushes are driven by batch fill.
        BatchPolicy {
            max_batch: 2,
            max_wait: Duration::from_millis(5),
        },
        // Tiny max_wait: flushes are driven by the deadline.
        BatchPolicy {
            max_batch: 4096,
            max_wait: Duration::from_micros(50),
        },
        // Large both: requests coalesce into few big batches.
        BatchPolicy {
            max_batch: 1024,
            max_wait: Duration::from_millis(2),
        },
    ]
}

proptest! {
    // One case under Miri: each case spins up the full threaded
    // service, which the interpreter executes ~100x slower.
    #![proptest_config(ProptestConfig::with_cases(if cfg!(miri) { 1 } else { 6 }))]

    #[test]
    fn concurrent_clients_match_sequential_oracle(
        (pairs, probes) in pairs_and_probes(),
    ) {
        // Oracle: the store's own sequential point lookup, validated
        // independently in the store's unit tests.
        let oracle: std::collections::BTreeMap<u64, u64> = pairs.iter().copied().collect();
        for backend in Backend::ALL {
            for shards in [1usize, 2, 4] {
                for (p, policy) in policies().into_iter().enumerate() {
                    for hot_cache_slots in [0usize, 32] {
                    let store = ShardedStore::build(backend, shards, &pairs);
                    let svc = LookupService::start(
                        store,
                        ServeConfig {
                            batch: policy,
                            queue_cap: 8,
                            hot_cache_slots,
                            ..ServeConfig::default()
                        },
                    );
                    // 4 concurrent clients, each issuing an
                    // interleaved quarter of the probe list.
                    let results: Vec<Vec<(u64, Option<u64>)>> =
                        std::thread::scope(|scope| {
                            let handles: Vec<_> = (0..4usize)
                                .map(|c| {
                                    let svc = &svc;
                                    let probes = &probes;
                                    scope.spawn(move || {
                                        probes
                                            .iter()
                                            .skip(c)
                                            .step_by(4)
                                            .map(|&k| (k, svc.get(k)))
                                            .collect()
                                    })
                                })
                                .collect();
                            handles.into_iter().map(|h| h.join().unwrap()).collect()
                        });
                    for client in &results {
                        for &(k, got) in client {
                            prop_assert_eq!(
                                got,
                                oracle.get(&k).copied(),
                                "backend={} shards={} policy={} key={}",
                                backend.name(),
                                shards,
                                p,
                                k
                            );
                        }
                    }
                    let stats = svc.stats();
                    // Every probe is either dispatched (counted in
                    // requests and engine lookups) or a cache hit;
                    // with the cache disabled the split is trivial.
                    prop_assert_eq!(
                        stats.requests + stats.cache_hits,
                        probes.len() as u64
                    );
                    prop_assert_eq!(stats.latency.count(), stats.requests);
                    prop_assert!(stats.batches >= 1);
                    prop_assert!(
                        stats.engine.lookups + stats.cache_hits == probes.len() as u64
                    );
                    if hot_cache_slots == 0 {
                        prop_assert_eq!(stats.cache_hits, 0);
                        prop_assert_eq!(stats.requests, probes.len() as u64);
                    }
                    }
                }
            }
        }
    }
}

//! Property tests for range scans: `get_range` through the live
//! service agrees with a `BTreeMap` oracle — on every backend, shard
//! count, delta-merge threshold (including threshold 1 =
//! merge-constantly and the 4096 default) and run-stack depth bound
//! (`max_runs` 1, 4, unbounded), interleaved with writes that keep
//! keys moving between delta runs and main.
//!
//! Two angles:
//!
//! * **Sequential agreement** — one client interleaves
//!   `put`/`remove`/`get_range`; per-shard FIFO makes every scan's
//!   answer deterministic, so it must equal the oracle's
//!   `range(lo..=hi)` exactly — wherever the background merger
//!   happens to be.
//! * **Scans racing background merges (and compactions)** — a writer
//!   churns a disjoint key region through constant merges — or, in a
//!   second configuration, through constant run-stack folds with no
//!   merges at all — while a scanner reads a static region (exact
//!   agreement required) and the full range (sortedness and
//!   static-subset agreement required).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use proptest::prelude::*;

use isi_serve::{Backend, BatchPolicy, LookupService, ServeConfig, ShardedStore, StoreConfig};

/// Key space small enough that ranges routinely straddle written,
/// removed and untouched keys across every shard.
const KEYSPACE: u64 = 600;

#[derive(Clone, Debug)]
enum RangeOp {
    Put(u64, u64),
    Remove(u64),
    Range(u64, u64),
}

fn ops_strategy() -> impl Strategy<Value = Vec<RangeOp>> {
    proptest::collection::vec(
        prop_oneof![
            ((0u64..KEYSPACE), (0u64..1_000_000)).prop_map(|(k, v)| RangeOp::Put(k, v)),
            (0u64..KEYSPACE).prop_map(RangeOp::Remove),
            ((0u64..KEYSPACE), (0u64..KEYSPACE)).prop_map(|(a, b)| RangeOp::Range(a, b)),
        ],
        1..80,
    )
}

fn initial_pairs() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::btree_map(0u64..KEYSPACE, 0u64..1_000_000, 1..150)
        .prop_map(|map| map.into_iter().collect())
}

fn service(store: ShardedStore) -> LookupService {
    LookupService::start(
        store,
        ServeConfig {
            batch: BatchPolicy {
                max_batch: 4,
                max_wait: Duration::from_micros(50),
            },
            queue_cap: 8,
            ..ServeConfig::default()
        },
    )
}

fn oracle_range(oracle: &BTreeMap<u64, u64>, lo: u64, hi: u64) -> Vec<(u64, u64)> {
    if lo > hi {
        return Vec::new();
    }
    oracle.range(lo..=hi).map(|(&k, &v)| (k, v)).collect()
}

proptest! {
    // One case under Miri (threaded store under an interpreter).
    #![proptest_config(ProptestConfig::with_cases(if cfg!(miri) { 1 } else { 4 }))]

    #[test]
    fn get_range_matches_btreemap_oracle(
        pairs in initial_pairs(),
        ops in ops_strategy(),
    ) {
        for backend in Backend::ALL {
            for shards in [1usize, 2, 4] {
                // (merge threshold, run-stack bound), covering
                // fold-every-write, the 4096 default and an unbounded
                // stack that neither merges nor folds.
                for (threshold, max_runs) in
                    [(1usize, 4usize), (3, 1), (4096, 4), (1 << 16, usize::MAX)]
                {
                    let store = ShardedStore::build_with(
                        backend,
                        shards,
                        &pairs,
                        StoreConfig::with_threshold(threshold).with_max_runs(max_runs),
                    );
                    let svc = service(store);
                    let mut oracle: BTreeMap<u64, u64> = pairs.iter().copied().collect();
                    for (step, op) in ops.iter().enumerate() {
                        let tag = || format!(
                            "backend={} shards={shards} threshold={threshold} \
                             max_runs={max_runs} step={step} op={op:?}",
                            backend.name()
                        );
                        match op {
                            RangeOp::Put(k, v) => {
                                prop_assert_eq!(
                                    svc.put(*k, *v), oracle.insert(*k, *v), "{}", tag()
                                );
                            }
                            RangeOp::Remove(k) => {
                                prop_assert_eq!(
                                    svc.remove(*k), oracle.remove(k), "{}", tag()
                                );
                            }
                            RangeOp::Range(a, b) => {
                                prop_assert_eq!(
                                    svc.get_range(*a, *b),
                                    oracle_range(&oracle, *a, *b),
                                    "{}", tag()
                                );
                            }
                        }
                    }
                    // Full-keyspace scan: final state agrees
                    // everywhere, not just on probed ranges.
                    prop_assert_eq!(
                        svc.get_range(0, u64::MAX),
                        oracle_range(&oracle, 0, u64::MAX)
                    );
                    svc.store().quiesce();
                    let stats = svc.stats();
                    // One admission entry per shard per scan.
                    let scans = 1 + ops.iter().filter(|o| matches!(o, RangeOp::Range(a, b) if a <= b)).count() as u64;
                    prop_assert_eq!(stats.range_scans, scans * shards as u64);
                    prop_assert_eq!(stats.merge_backlog, 0);
                }
            }
        }
    }

    #[test]
    fn scans_race_background_merges(
        pairs in initial_pairs(),
        writes in proptest::collection::vec((0u64..200, 0u64..1_000_000), 50..200),
    ) {
        // The writer churns keys >= 10_000 — through merge-every-write
        // in the first configuration, and through constant run-stack
        // folds with no merges at all in the second (every second
        // write exceeds max_runs = 2) — so scans race both publish
        // paths. The scanner's static-region scans must be exact
        // throughout, and full scans must stay sorted with the static
        // region embedded.
        for backend in Backend::ALL {
            for (threshold, max_runs) in [(1usize, 8usize), (1 << 16, 2)] {
            let store = ShardedStore::build_with(
                backend,
                2,
                &pairs,
                StoreConfig::with_threshold(threshold).with_max_runs(max_runs),
            );
            let svc = service(store);
            let want_static: Vec<(u64, u64)> = pairs.clone();
            let done = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                let svc = &svc;
                let done = &done;
                let writes = &writes;
                scope.spawn(move || {
                    for &(k, v) in writes {
                        if v % 5 == 0 {
                            svc.remove(10_000 + k);
                        } else {
                            svc.put(10_000 + k, v);
                        }
                    }
                    done.store(1, Ordering::Release);
                });
                let want = &want_static;
                scope.spawn(move || {
                    loop {
                        let finished = done.load(Ordering::Acquire) == 1;
                        assert_eq!(&svc.get_range(0, KEYSPACE - 1), want, "static region moved");
                        let all = svc.get_range(0, u64::MAX);
                        assert!(
                            all.windows(2).all(|w| w[0].0 < w[1].0),
                            "full scan unsorted or duplicated"
                        );
                        assert_eq!(&all[..want.len()], &want[..], "static prefix moved");
                        if finished {
                            break;
                        }
                    }
                });
            });
            // Final state: static region plus the writer's survivors.
            let mut oracle: BTreeMap<u64, u64> = pairs.iter().copied().collect();
            for &(k, v) in &writes {
                if v % 5 == 0 {
                    oracle.remove(&(10_000 + k));
                } else {
                    oracle.insert(10_000 + k, v);
                }
            }
            svc.store().quiesce();
            prop_assert_eq!(
                svc.get_range(0, u64::MAX),
                oracle_range(&oracle, 0, u64::MAX),
                "backend={} threshold={} max_runs={}",
                backend.name(),
                threshold,
                max_runs
            );
            let stats = svc.stats();
            if threshold == 1 << 16 {
                // The no-merge configuration exercised folds instead.
                prop_assert_eq!(stats.merges, 0);
                prop_assert!(stats.compactions <= stats.delta_runs);
            }
            }
        }
    }
}

//! Property tests for the *writable* serving layer: any mixed
//! `put`/`remove`/`get`/`get_many` schedule through the live service
//! agrees with a sequential `HashMap` oracle — on every backend,
//! shard count, delta-merge threshold (including threshold 1 =
//! merge-every-write and the 4096 default) and run-stack depth bound
//! (`max_runs` 1 = fold-every-write, 4, and unbounded), with and
//! without the hot-key cache.
//!
//! Two angles:
//!
//! * **Sequential agreement** — one client issues the whole schedule;
//!   per-shard FIFO makes the service's answers (including each
//!   write's returned previous value) deterministic, so they must
//!   match `HashMap` exactly, merge or no merge.
//! * **Concurrent disjoint-key clients** — four clients run the same
//!   schedule shape on disjoint key sets; each client's own results
//!   must match an oracle restricted to its keys (read-your-writes
//!   under concurrency), and the final state must match the union.

use std::collections::HashMap;
use std::time::Duration;

use proptest::prelude::*;

use isi_serve::{
    Adapt, Backend, BatchPolicy, LookupService, ServeConfig, ShardedStore, StoreConfig,
};

/// Key space small enough that overwrites, removes of present keys
/// and tombstone-hiding merges all happen constantly.
const KEYSPACE: u64 = 400;

#[derive(Clone, Debug)]
enum MixedOp {
    Get(u64),
    Put(u64, u64),
    Remove(u64),
    GetMany(Vec<u64>),
}

fn ops_strategy() -> impl Strategy<Value = Vec<MixedOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..KEYSPACE).prop_map(MixedOp::Get),
            ((0u64..KEYSPACE), (0u64..1_000_000)).prop_map(|(k, v)| MixedOp::Put(k, v)),
            (0u64..KEYSPACE).prop_map(MixedOp::Remove),
            proptest::collection::vec(0u64..KEYSPACE, 1..16).prop_map(MixedOp::GetMany),
        ],
        1..120,
    )
}

fn initial_pairs() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::btree_map(0u64..KEYSPACE, 0u64..1_000_000, 1..100)
        .prop_map(|map| map.into_iter().collect())
}

fn service(store: ShardedStore, hot_cache_slots: usize) -> LookupService {
    service_with_adapt(store, hot_cache_slots, Adapt::Off)
}

/// Same shape as [`service`], with the dispatch mode swept: a tiny
/// `retune_interval` makes `Auto` republish the policy constantly, so
/// adaptive runs exercise mid-schedule group changes.
fn service_with_adapt(store: ShardedStore, hot_cache_slots: usize, adapt: Adapt) -> LookupService {
    LookupService::start(
        store,
        ServeConfig {
            batch: BatchPolicy {
                max_batch: 4,
                max_wait: Duration::from_micros(50),
            },
            queue_cap: 8,
            hot_cache_slots,
            adapt,
            retune_interval: 2,
            ..ServeConfig::default()
        },
    )
}

proptest! {
    // One case under Miri (threaded store under an interpreter).
    #![proptest_config(ProptestConfig::with_cases(if cfg!(miri) { 1 } else { 4 }))]

    #[test]
    fn mixed_schedule_matches_hashmap_oracle(
        pairs in initial_pairs(),
        ops in ops_strategy(),
    ) {
        for backend in Backend::ALL {
            for shards in [1usize, 2, 4] {
                // (merge threshold, run-stack bound): fold-every-write
                // under a tiny threshold, the 4096 default threshold
                // with an unbounded stack, and a never-merging
                // threshold with a shallow stack (compactions without
                // merges).
                for (threshold, max_runs) in
                    [(1usize, 4usize), (3, 1), (4096, usize::MAX), (1 << 16, 4)]
                {
                    for cache in [0usize, 16] {
                        let store = ShardedStore::build_with(
                            backend,
                            shards,
                            &pairs,
                            StoreConfig::with_threshold(threshold).with_max_runs(max_runs),
                        );
                        let svc = service(store, cache);
                        let mut oracle: HashMap<u64, u64> = pairs.iter().copied().collect();
                        let mut puts = 0u64;
                        for (step, op) in ops.iter().enumerate() {
                            let tag = || format!(
                                "backend={} shards={shards} threshold={threshold} \
                                 max_runs={max_runs} cache={cache} step={step} op={op:?}",
                                backend.name()
                            );
                            match op {
                                MixedOp::Get(k) => {
                                    prop_assert_eq!(
                                        svc.get(*k), oracle.get(k).copied(), "{}", tag()
                                    );
                                }
                                MixedOp::Put(k, v) => {
                                    puts += 1;
                                    prop_assert_eq!(
                                        svc.put(*k, *v), oracle.insert(*k, *v), "{}", tag()
                                    );
                                }
                                MixedOp::Remove(k) => {
                                    prop_assert_eq!(
                                        svc.remove(*k), oracle.remove(k), "{}", tag()
                                    );
                                }
                                MixedOp::GetMany(keys) => {
                                    let want: Vec<Option<u64>> =
                                        keys.iter().map(|k| oracle.get(k).copied()).collect();
                                    prop_assert_eq!(svc.get_many(keys), want, "{}", tag());
                                }
                            }
                        }
                        // Full-keyspace sweep through get_many: the
                        // final state matches the oracle everywhere,
                        // not just on probed keys.
                        let all: Vec<u64> = (0..KEYSPACE).collect();
                        let want: Vec<Option<u64>> =
                            all.iter().map(|k| oracle.get(k).copied()).collect();
                        prop_assert_eq!(svc.get_many(&all), want);
                        prop_assert_eq!(svc.store().len(), oracle.len());

                        // Merges run on the background thread; settle
                        // before asserting on maintenance state.
                        svc.store().quiesce();
                        let stats = svc.stats();
                        // Once quiesced, no shard's residual delta
                        // holds a full threshold (the merger would
                        // have been re-kicked).
                        prop_assert!(
                            stats.delta_keys < (threshold * shards) as u64 + 1
                        );
                        prop_assert_eq!(stats.merge_backlog, 0);
                        if threshold == 1 {
                            // Merge-every-write: the drained delta is
                            // empty; background merges coalesce, so
                            // "some merge ran" is the strongest count
                            // claim that survives timing.
                            prop_assert_eq!(stats.delta_keys, 0);
                            if puts > 0 {
                                prop_assert!(stats.merges >= 1);
                            }
                            prop_assert_eq!(stats.bg_merges, stats.merges);
                        }
                        prop_assert_eq!(stats.merge_latency.count(), stats.merges);
                        // Run-stack accounting: every fold needed a
                        // pushed run, and a bound of 1 folds on every
                        // multi-run publish.
                        prop_assert!(stats.compactions <= stats.delta_runs);
                        if max_runs == usize::MAX {
                            prop_assert_eq!(stats.compactions, 0);
                        }
                    }
                }
            }
        }
    }

    /// Adaptive dispatch is a pure execution-policy change: with
    /// merges racing (threshold 2) and the controller retuning every
    /// other read run, `Auto` must answer every schedule exactly as
    /// `Off` does — i.e. both match the `HashMap` oracle — while the
    /// retune counters prove the loop actually ran (`Auto`) or
    /// provably stayed out of the way (`Off`).
    #[test]
    fn adaptive_dispatch_agrees_with_fixed_policy(
        pairs in initial_pairs(),
        ops in ops_strategy(),
    ) {
        for adapt in [Adapt::Off, Adapt::Auto, Adapt::Fixed(2)] {
            for shards in [1usize, 4] {
                let store = ShardedStore::build_with(
                    Backend::Sorted,
                    shards,
                    &pairs,
                    StoreConfig::with_threshold(2),
                );
                let svc = service_with_adapt(store, 16, adapt);
                let mut oracle: HashMap<u64, u64> = pairs.iter().copied().collect();
                for (step, op) in ops.iter().enumerate() {
                    let tag = || format!("adapt={} shards={shards} step={step} op={op:?}", adapt.name());
                    match op {
                        MixedOp::Get(k) => {
                            prop_assert_eq!(svc.get(*k), oracle.get(k).copied(), "{}", tag());
                        }
                        MixedOp::Put(k, v) => {
                            prop_assert_eq!(svc.put(*k, *v), oracle.insert(*k, *v), "{}", tag());
                        }
                        MixedOp::Remove(k) => {
                            prop_assert_eq!(svc.remove(*k), oracle.remove(k), "{}", tag());
                        }
                        MixedOp::GetMany(keys) => {
                            let want: Vec<Option<u64>> =
                                keys.iter().map(|k| oracle.get(k).copied()).collect();
                            prop_assert_eq!(svc.get_many(keys), want, "{}", tag());
                        }
                    }
                }
                // The full-keyspace sweep guarantees at least one read
                // run per populated shard — enough for the interval-2
                // controller to have come due somewhere.
                let all: Vec<u64> = (0..KEYSPACE).collect();
                let want: Vec<Option<u64>> =
                    all.iter().map(|k| oracle.get(k).copied()).collect();
                prop_assert_eq!(svc.get_many(&all), want);
                prop_assert_eq!(svc.get_many(&all), want);

                svc.store().quiesce();
                let stats = svc.stats();
                let groups = svc.current_groups();
                prop_assert_eq!(groups.len(), shards);
                match adapt {
                    Adapt::Off => {
                        // Off is the pre-adaptive service, bit for bit:
                        // no retunes, every shard pinned at the
                        // configured default group.
                        prop_assert_eq!(stats.retunes, 0);
                        prop_assert!(groups.iter().all(|&g| g == 6), "{:?}", groups);
                    }
                    Adapt::Fixed(f) => {
                        prop_assert_eq!(stats.retunes, 0);
                        prop_assert!(groups.iter().all(|&g| g == f), "{:?}", groups);
                    }
                    Adapt::Auto => {
                        prop_assert!(stats.retunes > 0, "controller never came due");
                        prop_assert!(
                            groups.iter().all(|&g| (1..=6).contains(&g)),
                            "{:?}",
                            groups
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn concurrent_disjoint_clients_keep_read_your_writes(
        pairs in initial_pairs(),
        ops in ops_strategy(),
    ) {
        const CLIENTS: u64 = 4;
        for backend in Backend::ALL {
            for shards in [1usize, 4] {
                let store = ShardedStore::build_with(
                    backend,
                    shards,
                    &pairs,
                    StoreConfig::with_threshold(2),
                );
                let svc = service(store, 16);
                // Client c owns exactly the keys ≡ c (mod CLIENTS);
                // remap every key of the shared schedule into the
                // client's residue class so schedules never collide.
                let own = |c: u64, k: u64| k - (k % CLIENTS) + c;
                std::thread::scope(|scope| {
                    for c in 0..CLIENTS {
                        let svc = &svc;
                        let ops = &ops;
                        let mut oracle: HashMap<u64, u64> = pairs
                            .iter()
                            .copied()
                            .filter(|(k, _)| k % CLIENTS == c)
                            .collect();
                        scope.spawn(move || {
                            for op in ops {
                                match op {
                                    MixedOp::Get(k) => {
                                        let k = own(c, *k);
                                        assert_eq!(svc.get(k), oracle.get(&k).copied());
                                    }
                                    MixedOp::Put(k, v) => {
                                        let k = own(c, *k);
                                        assert_eq!(svc.put(k, *v), oracle.insert(k, *v));
                                    }
                                    MixedOp::Remove(k) => {
                                        let k = own(c, *k);
                                        assert_eq!(svc.remove(k), oracle.remove(&k));
                                    }
                                    MixedOp::GetMany(keys) => {
                                        let keys: Vec<u64> =
                                            keys.iter().map(|&k| own(c, k)).collect();
                                        let want: Vec<Option<u64>> = keys
                                            .iter()
                                            .map(|k| oracle.get(k).copied())
                                            .collect();
                                        assert_eq!(svc.get_many(&keys), want);
                                    }
                                }
                            }
                            oracle
                        });
                    }
                });
                // Final state equals the union of what each client
                // left behind: replay all clients' schedules on one
                // map (disjoint keys make the interleaving immaterial).
                let mut union: HashMap<u64, u64> = pairs.iter().copied().collect();
                for c in 0..CLIENTS {
                    for op in &ops {
                        match op {
                            MixedOp::Put(k, v) => {
                                union.insert(own(c, *k), *v);
                            }
                            MixedOp::Remove(k) => {
                                union.remove(&own(c, *k));
                            }
                            _ => {}
                        }
                    }
                }
                let all: Vec<u64> = (0..KEYSPACE).collect();
                let want: Vec<Option<u64>> =
                    all.iter().map(|k| union.get(k).copied()).collect();
                prop_assert_eq!(
                    svc.get_many(&all),
                    want,
                    "backend={} shards={}",
                    backend.name(),
                    shards
                );
                prop_assert_eq!(svc.store().len(), union.len());
            }
        }
    }
}

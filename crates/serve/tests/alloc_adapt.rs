//! Steady-state allocation discipline of the adaptive retune path.
//!
//! A retune is supposed to disappear into the dispatch loop: the
//! controller's window is two integer accumulators, the residency
//! hint walks probe paths over a bounded sample of the run's own key
//! buffer, the density blend is arithmetic, and the publish is one
//! atomic store into the shard's `PolicyCell`. None of that may touch
//! the heap — a retune that allocates would put a malloc on the
//! dispatcher's per-run critical path every `retune_interval` runs.
//! This test pins the whole computation with a counting global
//! allocator: after warm-up, hundreds of hint-sample → density-blend
//! → clamp → publish → snapshot cycles perform **zero** allocations.

#![deny(unsafe_op_in_unsafe_fn)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use isi_core::policy::{Interleave, PolicyCell};
use isi_search::autotune::{density_for_counts, group_for_density};
use isi_serve::{Backend, ShardedStore, StoreConfig};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

// SAFETY: pure pass-through to the `System` allocator (which upholds
// the GlobalAlloc contract); the only addition is a relaxed counter
// bump, which allocates nothing and cannot unwind.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: same contract as ours; layout is forwarded verbatim.
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` came from our `alloc`, which forwarded
        // to `System`, so returning them to `System` is well-paired.
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: `ptr`/`layout` came from our pass-through `alloc`;
        // the caller guarantees `new_size` per the trait contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The counter is process-global, so tests in this binary must not
/// overlap: each one holds this lock around its counted sections.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Count allocations during `f`.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let r = f();
    COUNTING.store(false, Ordering::SeqCst);
    (ALLOCS.load(Ordering::SeqCst), r)
}

/// One retune, exactly as the dispatcher performs it: sample the
/// backend's residency hint over a prefix of the run's key buffer,
/// blend with the window's delta density, clamp to the calibrated
/// ceiling, publish through the cell, and snapshot it back (the next
/// run's load).
fn retune_once(
    store: &ShardedStore,
    cell: &PolicyCell,
    sample: &[u64],
    delta_hits: u64,
    lookups: u64,
    calibrated: usize,
) -> usize {
    let hint = store.hint_density(0, sample).clamp(0.0, 1.0);
    let d_delta = density_for_counts(delta_hits, lookups);
    let density = d_delta + (1.0 - d_delta) * hint;
    let group = group_for_density(calibrated, density);
    cell.store(Interleave::from_group(group));
    cell.load().group_or_one()
}

/// Hundreds of steady-state retunes over a populated shard perform
/// zero heap allocations: the hint walk, the density math and the
/// `PolicyCell` publish/snapshot are all on-stack.
#[test]
fn steady_state_retunes_allocate_nothing() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // Foreground mode: no background merger thread to race the global
    // allocation counter; the huge threshold means no merges at all.
    let cfg = StoreConfig::with_threshold(1 << 20).foreground();
    let pairs: Vec<(u64, u64)> = (0..4096).map(|i| (i * 2, i)).collect();
    let store = ShardedStore::build_with(Backend::Sorted, 1, &pairs, cfg);
    let cell = PolicyCell::new(Interleave::from_group(8));
    // A dispatcher samples a bounded prefix of its run's key buffer;
    // 16 keys matches the controller's HINT_SAMPLE bound.
    let sample: Vec<u64> = (0..16u64).map(|i| i * 509).collect();

    // Warm up once: first touches of the shard's epoch snapshot and
    // any lazy allocator state happen outside the counted section.
    retune_once(&store, &cell, &sample, 1, 10, 8);

    let (allocs, ()) = count_allocs(|| {
        for round in 0..512u64 {
            // Sweep the whole density range so every clamp outcome
            // (calibrated ceiling down to sequential) is exercised.
            let g = retune_once(&store, &cell, &sample, round % 11, 10, 8);
            assert!((1..=8).contains(&g), "group {g} escaped the clamps");
        }
    });
    assert_eq!(
        allocs, 0,
        "512 steady-state retunes performed {allocs} heap allocations; \
         the retune path must stay off the heap"
    );
}

/// The degenerate inputs the controller can feed the same machinery —
/// an empty sample (a writes-only window) and a zero-lookup window —
/// stay allocation-free too, and degrade to the calibrated group.
#[test]
fn degenerate_windows_stay_allocation_free() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = StoreConfig::with_threshold(1 << 20).foreground();
    let store = ShardedStore::build_with(Backend::Sorted, 1, &[], cfg);
    let cell = PolicyCell::new(Interleave::from_group(6));

    retune_once(&store, &cell, &[], 0, 0, 6);

    let (allocs, ()) = count_allocs(|| {
        for _ in 0..64 {
            // Empty main, empty sample, 0/0 window: the blend must
            // keep the calibrated group without NaN or heap traffic.
            let g = retune_once(&store, &cell, &[], 0, 0, 6);
            assert_eq!(g, 6, "zero-traffic window drifted off calibration");
        }
    });
    assert_eq!(
        allocs, 0,
        "degenerate retunes performed {allocs} heap allocations"
    );
}

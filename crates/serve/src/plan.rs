//! The **plan layer**: resolve an admitted read batch against the
//! shard's delta overlay *before* anything reaches the interleaved
//! engine.
//!
//! The paper's interleaving only pays when the engine is fed dense
//! batches of *memory-bound* probes. A key the delta already decides —
//! upserted or tombstoned since the last merge — would spend a full
//! engine descent just to have the overlay rewrite its result
//! afterwards. Planning splits each batch up front:
//!
//! * **decided** — keys with a delta override; answered from the
//!   (cache-resident, merge-bounded) run-stack with one binary search
//!   per run, newest run first, no engine slot spent;
//! * **residual** — keys the main index must decide; these form the
//!   dense batch the engine actually runs.
//!
//! The split is observable as `delta_hits` and `residual_frac` in the
//! service stats: a write-heavy shard with a warm delta sends
//! measurably fewer probes to the engine (`residual_frac < 1`).

/// One dispatched batch, resolved against the delta: which slots the
/// overlay decided, and which keys still need the engine.
///
/// The buffers are reusable — [`resolve`](Self::resolve) clears them —
/// so a dispatcher can keep one `BatchPlan` per thread and plan every
/// batch allocation-free in the steady state.
#[derive(Debug, Default)]
pub struct BatchPlan {
    /// `(input index, result)` for keys the delta decided:
    /// `Some(v)` = upserted to `v`, `None` = tombstoned.
    pub decided: Vec<(u32, Option<u64>)>,
    /// Keys the main index must probe, batch-dense (parallel to
    /// [`residual_idx`](Self::residual_idx)).
    pub residual_keys: Vec<u64>,
    /// `residual_idx[j]` = input index of `residual_keys[j]`.
    pub residual_idx: Vec<u32>,
}

impl BatchPlan {
    /// Split `keys` against a delta **run-stack** (each run `(key,
    /// override)` pairs, strictly sorted by key; `None` = tombstone;
    /// runs ordered oldest → newest), reusing this plan's buffers.
    /// The newest run holding a key decides it.
    pub fn resolve<R: AsRef<[(u64, Option<u64>)]>>(&mut self, runs: &[R], keys: &[u64]) {
        self.decided.clear();
        self.residual_keys.clear();
        self.residual_idx.clear();
        for (i, &k) in keys.iter().enumerate() {
            let hit = runs.iter().rev().find_map(|run| {
                let run = run.as_ref();
                run.binary_search_by_key(&k, |e| e.0).ok().map(|d| run[d].1)
            });
            match hit {
                Some(over) => self.decided.push((i as u32, over)),
                None => {
                    self.residual_idx.push(i as u32);
                    self.residual_keys.push(k);
                }
            }
        }
    }

    /// Keys the delta decided.
    pub fn delta_hits(&self) -> u64 {
        self.decided.len() as u64
    }

    /// Keys that must reach the engine.
    pub fn residual(&self) -> u64 {
        self.residual_keys.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_decided_from_residual() {
        let delta = [(2u64, Some(20u64)), (5, None), (9, Some(90))];
        let mut plan = BatchPlan::default();
        plan.resolve(&[&delta[..]], &[1, 2, 5, 7, 9, 10]);
        assert_eq!(plan.decided, vec![(1, Some(20)), (2, None), (4, Some(90))]);
        assert_eq!(plan.residual_keys, vec![1, 7, 10]);
        assert_eq!(plan.residual_idx, vec![0, 3, 5]);
        assert_eq!(plan.delta_hits(), 3);
        assert_eq!(plan.residual(), 3);

        // Buffers are reused, not appended to.
        let no_runs: [&[(u64, Option<u64>)]; 0] = [];
        plan.resolve(&no_runs, &[4, 4]);
        assert!(plan.decided.is_empty());
        assert_eq!(plan.residual_keys, vec![4, 4]);
        assert_eq!(plan.residual_idx, vec![0, 1]);
    }

    #[test]
    fn newest_run_wins_across_the_stack() {
        // Oldest run upserts 2 and 5; a newer run tombstones 2 and
        // upserts 7; the newest run resurrects 5. Resolution must take
        // each key from the newest run that holds it.
        let old = [(2u64, Some(20u64)), (5, Some(50))];
        let mid = [(2u64, None), (7, Some(70))];
        let new = [(5u64, Some(51u64))];
        let runs: [&[(u64, Option<u64>)]; 3] = [&old, &mid, &new];
        let mut plan = BatchPlan::default();
        plan.resolve(&runs, &[1, 2, 5, 7]);
        assert_eq!(plan.decided, vec![(1, None), (2, Some(51)), (3, Some(70))]);
        assert_eq!(plan.residual_keys, vec![1]);
        assert_eq!(plan.residual_idx, vec![0]);
    }
}

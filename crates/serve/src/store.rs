//! [`ShardedStore`]: a hash-partitioned key/value store whose shards
//! are served by the existing bulk index drivers.
//!
//! The serving layer needs two things from its storage: a way to route
//! a key to the one shard that owns it, and a way to run a *batch* of
//! same-shard lookups through the morsel-parallel interleaved engine.
//! Each shard is one of the three index structures the workspace
//! already knows how to drive in bulk:
//!
//! * a **sorted column** (binary-search rank + equality resolve, the
//!   paper's dictionary `locate`),
//! * a **CSB+-tree** (Listing 6 traversal coroutines),
//! * a **chained hash table** (Section 6 probe coroutines).
//!
//! Shard routing uses the *top* bits of the key's Fibonacci hash. The
//! hash-table backend buckets on bits 32 and up of the same hash
//! (`(hash64 >> 32) & mask`), so the two partitions stay independent
//! as long as a shard's bucket count stays below
//! 2^(32 − shard_bits); sharing bits with the bucket index would
//! leave every shard's table using only a fraction of its buckets.

use isi_core::mem::DirectMem;
use isi_core::par::ParConfig;
use isi_core::policy::Interleave;
use isi_core::sched::RunStats;
use isi_csb::{CsbTree, DirectTreeStore};
use isi_hash::table::{ChainedHashTable, HashKey};

/// Which index structure backs every shard of a [`ShardedStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Sorted key column + aligned value column; lookups are
    /// interleaved binary-search ranks resolved by an equality check.
    Sorted,
    /// A CSB+-tree per shard; lookups are interleaved tree descents.
    Csb,
    /// A chained hash table per shard; lookups are interleaved probes.
    Hash,
}

impl Backend {
    /// All backends, in sweep order.
    pub const ALL: [Backend; 3] = [Backend::Sorted, Backend::Csb, Backend::Hash];

    /// Stable lowercase name (used in benchmark documents).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Sorted => "sorted",
            Backend::Csb => "csb",
            Backend::Hash => "hash",
        }
    }

    /// Parse a [`Self::name`] back into a backend.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|b| b.name() == name)
    }
}

/// One shard's index structure (private: the store picks per backend).
enum ShardIndex {
    Sorted { keys: Vec<u64>, vals: Vec<u64> },
    Csb(CsbTree<u64, u64>),
    Hash(ChainedHashTable<u64, u64>),
}

/// A key/value store hash-partitioned into power-of-two shards, each
/// shard an independent index servable by the bulk interleaved drivers.
pub struct ShardedStore {
    backend: Backend,
    shard_bits: u32,
    shards: Vec<ShardIndex>,
    len: usize,
}

impl ShardedStore {
    /// Build from key/value pairs.
    ///
    /// # Panics
    /// Panics if `num_shards` is not a power of two (including 0) or if
    /// `pairs` contains duplicate keys.
    pub fn build(backend: Backend, num_shards: usize, pairs: &[(u64, u64)]) -> Self {
        assert!(
            num_shards.is_power_of_two(),
            "num_shards must be a power of two, got {num_shards}"
        );
        let shard_bits = num_shards.trailing_zeros();
        let mut parts: Vec<Vec<(u64, u64)>> = (0..num_shards).map(|_| Vec::new()).collect();
        for &(k, v) in pairs {
            parts[shard_route(k, shard_bits)].push((k, v));
        }
        let shards = parts
            .into_iter()
            .map(|mut part| {
                part.sort_unstable_by_key(|&(k, _)| k);
                for w in part.windows(2) {
                    assert!(w[0].0 < w[1].0, "duplicate key {} in store input", w[0].0);
                }
                match backend {
                    Backend::Sorted => ShardIndex::Sorted {
                        keys: part.iter().map(|&(k, _)| k).collect(),
                        vals: part.iter().map(|&(_, v)| v).collect(),
                    },
                    Backend::Csb => ShardIndex::Csb(CsbTree::from_sorted(&part)),
                    Backend::Hash => {
                        let mut t = ChainedHashTable::with_capacity(part.len());
                        for &(k, v) in &part {
                            t.insert(k, v);
                        }
                        ShardIndex::Hash(t)
                    }
                }
            })
            .collect();
        Self {
            backend,
            shard_bits,
            shards,
            len: pairs.len(),
        }
    }

    /// The backend every shard uses.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Number of shards (a power of two).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total number of key/value pairs across all shards.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the store holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The shard that owns `key`.
    #[inline]
    pub fn shard_of(&self, key: u64) -> usize {
        shard_route(key, self.shard_bits)
    }

    /// Sequential point lookup — the oracle the batched path must
    /// agree with, and the baseline the service's batching is measured
    /// against.
    pub fn get(&self, key: u64) -> Option<u64> {
        match &self.shards[self.shard_of(key)] {
            ShardIndex::Sorted { keys, vals } => keys.binary_search(&key).ok().map(|i| vals[i]),
            ShardIndex::Csb(tree) => tree.get(&key),
            ShardIndex::Hash(table) => table.get(&key),
        }
    }

    /// Run a batch of lookups that all route to `shard` through the
    /// morsel-parallel interleaved engine, scattering `out[i]` =
    /// lookup result of `keys[i]`. Returns the engine's merged
    /// [`RunStats`].
    ///
    /// `scratch` is caller-owned rank scratch space (used by the
    /// sorted backend); reusing one vector across calls keeps the
    /// steady-state dispatch path allocation-free, matching the
    /// engine's frame-slab discipline.
    ///
    /// # Panics
    /// Panics if `out.len() != keys.len()` or if some key does not
    /// route to `shard` (batch formation bug in the caller).
    pub fn lookup_batch(
        &self,
        shard: usize,
        keys: &[u64],
        policy: Interleave,
        par: ParConfig,
        scratch: &mut Vec<u32>,
        out: &mut [Option<u64>],
    ) -> RunStats {
        assert_eq!(keys.len(), out.len(), "output length mismatch");
        debug_assert!(
            keys.iter().all(|&k| self.shard_of(k) == shard),
            "batch contains keys routed to another shard"
        );
        let group = policy.group_or_one();
        match &self.shards[shard] {
            ShardIndex::Sorted { keys: col, vals } => {
                // Rank via the interleaved binary-search coroutines,
                // then resolve rank -> value with one equality check
                // (the rank position is cache-hot right after the
                // search touched it).
                if col.is_empty() {
                    out.fill(None);
                    return RunStats::default();
                }
                let mem = DirectMem::new(col);
                scratch.clear();
                scratch.resize(keys.len(), 0);
                let stats = isi_search::bulk_rank_coro_par(mem, keys, group, par, scratch);
                for ((o, &r), &k) in out.iter_mut().zip(scratch.iter()).zip(keys) {
                    *o = (col[r as usize] == k).then(|| vals[r as usize]);
                }
                stats
            }
            ShardIndex::Csb(tree) => {
                isi_csb::bulk_lookup_par(DirectTreeStore::new(tree), keys, group, par, out)
            }
            ShardIndex::Hash(table) => isi_hash::bulk_probe_par(table, keys, group, par, out),
        }
    }
}

/// Top-bits shard routing: shard = high `bits` bits of the Fibonacci
/// hash (0 when `bits == 0`).
#[inline]
fn shard_route(key: u64, bits: u32) -> usize {
    if bits == 0 {
        0
    } else {
        (key.hash64() >> (64 - bits)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(n: u64) -> Vec<(u64, u64)> {
        (0..n).map(|i| (i * 3, i + 1000)).collect()
    }

    #[test]
    fn routing_covers_all_shards_and_is_stable() {
        let store = ShardedStore::build(Backend::Sorted, 4, &pairs(4096));
        let mut per_shard = [0usize; 4];
        for i in 0..4096u64 {
            let s = store.shard_of(i * 3);
            per_shard[s] += 1;
        }
        // Fibonacci hashing spreads uniformly: no shard is empty or
        // grossly overloaded on 4k keys.
        for (s, &n) in per_shard.iter().enumerate() {
            assert!(n > 512, "shard {s} underloaded: {n}");
        }
        assert_eq!(per_shard.iter().sum::<usize>(), 4096);
    }

    #[test]
    fn get_agrees_across_backends_and_shard_counts() {
        let data = pairs(2000);
        for backend in Backend::ALL {
            for shards in [1, 2, 4, 8] {
                let store = ShardedStore::build(backend, shards, &data);
                assert_eq!(store.len(), 2000);
                assert_eq!(store.num_shards(), shards);
                for probe in 0..3100u64 {
                    let expect = (probe % 3 == 0 && probe < 6000).then(|| probe / 3 + 1000);
                    assert_eq!(
                        store.get(probe),
                        expect,
                        "{}/{shards} probe={probe}",
                        backend.name()
                    );
                }
            }
        }
    }

    #[test]
    fn batch_lookup_matches_get() {
        let data = pairs(5000);
        let probes: Vec<u64> = (0..2500).map(|i| i * 7 % 16_000).collect();
        for backend in Backend::ALL {
            for shards in [1, 4] {
                let store = ShardedStore::build(backend, shards, &data);
                // Form per-shard batches exactly as the service does.
                let mut batches: Vec<Vec<u64>> = vec![Vec::new(); shards];
                for &p in &probes {
                    batches[store.shard_of(p)].push(p);
                }
                let mut scratch = Vec::new();
                for (s, batch) in batches.iter().enumerate() {
                    let mut out = vec![None; batch.len()];
                    for policy in [Interleave::Sequential, Interleave::Interleaved(6)] {
                        let stats = store.lookup_batch(
                            s,
                            batch,
                            policy,
                            ParConfig::with_threads(2),
                            &mut scratch,
                            &mut out,
                        );
                        assert_eq!(stats.lookups, batch.len() as u64);
                        for (k, r) in batch.iter().zip(&out) {
                            assert_eq!(*r, store.get(*k), "{}/{shards}", backend.name());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn empty_store_and_empty_batches() {
        for backend in Backend::ALL {
            let store = ShardedStore::build(backend, 2, &[]);
            assert!(store.is_empty());
            assert_eq!(store.get(7), None);
            let mut out = vec![None; 2];
            // Keys must route to the queried shard; find two that do.
            let ks: Vec<u64> = (0..100)
                .filter(|&k| store.shard_of(k) == 0)
                .take(2)
                .collect();
            let mut scratch = Vec::new();
            store.lookup_batch(
                0,
                &ks,
                Interleave::Interleaved(4),
                ParConfig::default(),
                &mut scratch,
                &mut out,
            );
            assert_eq!(out, [None, None]);
            let stats = store.lookup_batch(
                1,
                &[],
                Interleave::Sequential,
                ParConfig::default(),
                &mut scratch,
                &mut out[..0],
            );
            assert_eq!(stats, RunStats::default());
        }
    }

    #[test]
    fn backend_names_roundtrip() {
        for b in Backend::ALL {
            assert_eq!(Backend::from_name(b.name()), Some(b));
        }
        assert_eq!(Backend::from_name("nope"), None);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_shards() {
        ShardedStore::build(Backend::Sorted, 3, &[]);
    }

    #[test]
    #[should_panic(expected = "duplicate key")]
    fn rejects_duplicate_keys() {
        ShardedStore::build(Backend::Csb, 1, &[(5, 1), (5, 2)]);
    }
}

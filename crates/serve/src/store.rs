//! [`ShardedStore`]: a writable, hash-partitioned key/value store
//! whose shards are served by the [`ShardBackend`] index drivers.
//!
//! Each shard is a **Main/Delta pair**, the columnstore resolution of
//! the read-optimized vs write-optimized tension:
//!
//! * the **main** is an immutable [`ShardBackend`] — a **sorted
//!   column** ([`isi_search::SortedShard`]), a **CSB+-tree**
//!   ([`isi_csb::CsbShard`], Listing 6 traversal coroutines), or a
//!   **chained hash table** ([`isi_hash::HashShard`], Section 6 probe
//!   coroutines) — probed in bulk through the morsel-parallel
//!   interleaved engine and scanned in key order;
//! * the **delta** is a small **stack of immutable sorted runs** of
//!   `(key, Option<value>)` overrides (`None` = tombstone) with
//!   last-write-wins semantics — each write run is sorted once and
//!   pushed as one shared run, reads resolve newest-run-first, and
//!   the stack folds into a single run past
//!   [`StoreConfig::max_runs`].
//!
//! **Reads are planned.** A batch is first resolved against the delta
//! into a [`BatchPlan`](crate::plan::BatchPlan): delta-decided keys
//! never reach the engine, so the engine always runs a dense batch of
//! genuinely memory-bound probes (see [`crate::plan`]). Range scans
//! ([`ShardedStore::scan_range`]) merge-join the backend's ordered
//! scan with the sorted delta run, overrides winning and tombstones
//! eliding their keys.
//!
//! **Maintenance is decoupled from serving.** Writes go to the delta;
//! when a shard's delta reaches [`StoreConfig::merge_threshold`]
//! entries, the writer *enqueues a merge job* and returns — a
//! per-store **background merger thread** rebuilds that shard's main
//! (via [`ShardBackend::rebuild`]) and publishes `(new main, residual
//! delta)` through an [`EpochCell`] swap. While the merge runs the
//! delta keeps absorbing writes up to the hard
//! [`StoreConfig::max_delta`] bound; writers to that shard block past
//! it until the merger catches up. Readers snapshot one
//! `Arc<ShardVersion>` per operation, so they always see a
//! *consistent* main+delta pair: an in-flight dispatch batch keeps
//! reading the version it started on while a merge publishes the next
//! one, and a merge can never tear a read (the swap is a single
//! pointer store). [`MergeMode::Foreground`] retains the old inline
//! behavior (the triggering write performs the rebuild) for A/B
//! comparison and deterministic tests.
//!
//! Shard routing uses the *top* bits of the key's Fibonacci hash. The
//! hash-table backend buckets on bits 32 and up of the same hash
//! (`(hash64 >> 32) & mask`), so the two partitions stay independent
//! as long as a shard's bucket count stays below
//! 2^(32 − shard_bits); sharing bits with the bucket index would
//! leave every shard's table using only a fraction of its buckets.

use std::collections::VecDeque;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use isi_core::backend::ShardBackend;
use isi_core::epoch::EpochCell;
use isi_core::par::ParConfig;
use isi_core::policy::Interleave;
use isi_core::sched::RunStats;
use isi_core::stats::LatencyHist;
use isi_core::sync::{CondvarExt, MutexExt};
use isi_core::topo::Topology;
use isi_csb::CsbShard;
use isi_durable::{self as durable, DiskFs, Fs, FsyncMode};
use isi_hash::table::HashKey;
use isi_hash::HashShard;
use isi_obs::{Counter, Obs, SpanTimer, Stage, TraceKind};
use isi_search::SortedShard;

use crate::plan::BatchPlan;

/// Which index structure backs every shard's main of a [`ShardedStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Sorted key column + aligned value column; lookups are
    /// interleaved binary-search ranks resolved by an equality check.
    Sorted,
    /// A CSB+-tree per shard; lookups are interleaved tree descents.
    Csb,
    /// A chained hash table per shard; lookups are interleaved probes
    /// and range scans sort the arena on demand.
    Hash,
}

impl Backend {
    /// All backends, in sweep order.
    pub const ALL: [Backend; 3] = [Backend::Sorted, Backend::Csb, Backend::Hash];

    /// Stable lowercase name (used in benchmark documents).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Sorted => "sorted",
            Backend::Csb => "csb",
            Backend::Hash => "hash",
        }
    }

    /// Parse a [`Self::name`] back into a backend.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|b| b.name() == name)
    }

    /// Build one shard's main from strictly-sorted, duplicate-free
    /// pairs. This is the only place the backend choice is matched on;
    /// everything after construction dispatches through the
    /// [`ShardBackend`] trait.
    pub fn build_shard(self, pairs: &[(u64, u64)]) -> Arc<dyn ShardBackend> {
        match self {
            Backend::Sorted => Arc::new(SortedShard::build(pairs)),
            Backend::Csb => Arc::new(CsbShard::build(pairs)),
            Backend::Hash => Arc::new(HashShard::build(pairs)),
        }
    }
}

/// Where delta-to-main merges run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeMode {
    /// The default: a threshold-crossing write enqueues a merge job
    /// for the store's background merger thread and returns
    /// immediately; the delta keeps absorbing writes up to
    /// [`StoreConfig::max_delta`] while the merge is in flight.
    Background,
    /// The pre-refactor behavior: the threshold-crossing write
    /// performs the rebuild inline (its latency absorbs the merge).
    /// Kept for A/B benchmarking and deterministic tests.
    Foreground,
}

/// Store tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreConfig {
    /// Delta entries (upserts + tombstones) in one shard that trigger
    /// a merge of that shard. `1` requests a merge on every write;
    /// large values batch more writes per rebuild at the cost of a
    /// larger overlay on the read path.
    pub merge_threshold: usize,
    /// Hard per-shard delta bound in [`MergeMode::Background`]:
    /// writers to a shard whose delta holds this many entries block
    /// until the merger drains it. Must be ≥ `merge_threshold`.
    /// Irrelevant in foreground mode (the delta never outlives the
    /// triggering write).
    pub max_delta: usize,
    /// Where merges run.
    pub merge_mode: MergeMode,
    /// Published delta runs a shard may stack before the write path
    /// folds them into one (the fold is amortized O(delta) total).
    /// `1` restores a single always-folded run (every write pays the
    /// fold); `usize::MAX` never folds outside merges. Must be ≥ 1.
    pub max_runs: usize,
    /// Directory for the per-shard write-ahead logs and snapshots.
    /// `None` (the default) disables durability entirely — no WAL, no
    /// snapshots, no recovery, zero write-path I/O. `Some(dir)` makes
    /// [`ShardedStore::build_with`] initialize a fresh store there
    /// (clobbering any previous one) and
    /// [`ShardedStore::recover`] reload the store that directory holds.
    pub wal_dir: Option<PathBuf>,
    /// When WAL appends are fsynced. Ignored unless `wal_dir` is set
    /// (or an [`Fs`] is injected via the `_with_fs` constructors).
    pub fsync: FsyncMode,
    /// Pin the background merger to each shard's home core (the same
    /// `shard % cores` mapping the adaptive dispatchers use) for the
    /// duration of that shard's rebuild, so the merged arrays are
    /// first-touched — and on a NUMA host, placed — where the shard's
    /// dispatcher reads them. Off by default; a silent no-op on
    /// single-core hosts or where affinity is unsupported.
    pub pin_threads: bool,
}

impl StoreConfig {
    /// Background merges with the given threshold and a `4×` headroom
    /// bound (`max_delta = 4 * merge_threshold`); durability off.
    pub fn with_threshold(merge_threshold: usize) -> Self {
        Self {
            merge_threshold,
            max_delta: merge_threshold.saturating_mul(4),
            merge_mode: MergeMode::Background,
            max_runs: 8,
            wal_dir: None,
            fsync: FsyncMode::Group,
            pin_threads: false,
        }
    }

    /// This configuration with merger-thread core pinning on (see
    /// [`pin_threads`](Self::pin_threads)).
    pub fn pinned(mut self) -> Self {
        self.pin_threads = true;
        self
    }

    /// This configuration with merges forced inline on the write path.
    pub fn foreground(mut self) -> Self {
        self.merge_mode = MergeMode::Foreground;
        self
    }

    /// This configuration with the given delta run-stack depth bound.
    pub fn with_max_runs(mut self, max_runs: usize) -> Self {
        self.max_runs = max_runs;
        self
    }

    /// This configuration with durability on: per-shard WALs and
    /// snapshots under `dir`, fsynced per `fsync`.
    pub fn durable(mut self, dir: impl Into<PathBuf>, fsync: FsyncMode) -> Self {
        self.wal_dir = Some(dir.into());
        self.fsync = fsync;
        self
    }
}

impl Default for StoreConfig {
    /// Background merges after 4096 delta entries, hard bound 16384.
    fn default() -> Self {
        Self::with_threshold(4096)
    }
}

/// One immutable sorted run of per-key overrides: `Some(v)` upserts
/// the key to `v`, `None` is a tombstone. Strictly sorted by key.
type DeltaRun = Arc<[(u64, Option<u64>)]>;

/// The append-friendly overlay: an immutable **run-stack** of sorted
/// override runs, newest run last. Each dispatched write run is sorted
/// once (last-write-wins within the run, O(run log run)) and pushed as
/// one shared [`DeltaRun`]; publishing a new [`ShardVersion`] clones
/// only the small `Vec` of `Arc` handles, never the entries — prior
/// runs are shared, which is what kills the old per-write
/// clone-the-whole-delta quadratic. Reads consult runs newest-first.
/// When the stack exceeds [`StoreConfig::max_runs`] the write path
/// folds it into a single run (amortized O(delta) total, not
/// per-write).
#[derive(Clone, Default)]
struct Delta {
    /// Override runs, oldest first / newest last.
    runs: Vec<DeltaRun>,
    /// Sum of run lengths — an upper bound on distinct overridden
    /// keys (a key rewritten in a newer run counts twice until a fold
    /// collapses it). Threshold and backpressure checks use this
    /// conservative count; folds and merges restore exactness.
    entries: usize,
}

impl Delta {
    /// The override for `key`: `Some(Some(v))` = upserted to `v`,
    /// `Some(None)` = tombstoned, `None` = no override (fall through
    /// to the main). Newest run wins.
    fn get(&self, key: u64) -> Option<Option<u64>> {
        self.runs.iter().rev().find_map(|run| {
            run.binary_search_by_key(&key, |e| e.0)
                .ok()
                .map(|i| run[i].1)
        })
    }

    /// Wrap one already-sorted, duplicate-free run (empty input → the
    /// empty delta). The count is exact by construction.
    fn from_sorted(entries: Vec<(u64, Option<u64>)>) -> Self {
        if entries.is_empty() {
            return Self::default();
        }
        Self {
            entries: entries.len(),
            runs: vec![entries.into()],
        }
    }

    /// Cheap copy sharing every immutable run: O(runs) `Arc` handle
    /// clones, never the entries. This is the write path's whole
    /// point — the old clone-the-entries delta copied O(delta) pairs
    /// per write run (quadratic over a write burst), and the xtask
    /// lint (`serve-run-stack`) now rejects that shape outright.
    fn share(&self) -> Self {
        self.clone()
    }

    /// Push a freshly sorted run on top of the stack (newest).
    fn push_run(&mut self, run: DeltaRun) {
        self.entries += run.len();
        self.runs.push(run);
    }

    /// Fold the whole stack into one sorted, duplicate-free run,
    /// newest run winning each key. O(delta × runs) worst case; the
    /// stack depth is bounded by [`StoreConfig::max_runs`].
    fn fold(&self) -> Vec<(u64, Option<u64>)> {
        let mut it = self.runs.iter();
        let mut acc: Vec<(u64, Option<u64>)> = match it.next() {
            Some(run) => run.to_vec(),
            None => return Vec::new(),
        };
        for run in it {
            acc = merge_overrides(run, &acc);
        }
        acc
    }

    /// Fold only the overrides with `lo <= key <= hi` (the range-scan
    /// slice), newest run winning.
    fn fold_range(&self, lo: u64, hi: u64) -> Vec<(u64, Option<u64>)> {
        let mut acc: Vec<(u64, Option<u64>)> = Vec::new();
        for run in &self.runs {
            let a = run.partition_point(|e| e.0 < lo);
            let b = run.partition_point(|e| e.0 <= hi);
            if a == b {
                continue;
            }
            acc = if acc.is_empty() {
                run[a..b].to_vec()
            } else {
                merge_overrides(&run[a..b], &acc)
            };
        }
        acc
    }

    /// Number of overrides (upserts + tombstones), counted per run —
    /// an upper bound on distinct overridden keys.
    fn len(&self) -> usize {
        self.entries
    }

    fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }
}

/// One published, immutable version of a shard: the main index plus
/// the delta overlay that has accumulated on top of it. Readers
/// snapshot the whole pair atomically through the shard's
/// [`EpochCell`].
struct ShardVersion {
    /// Shared with successor versions until a merge replaces it.
    main: Arc<dyn ShardBackend>,
    delta: Delta,
}

/// Per-shard write-side state (serialized by the shard's write lock).
#[derive(Default)]
struct WriteState {
    /// A merge job for this shard is queued or running; gates
    /// duplicate enqueues.
    pending: bool,
    /// Sequence of the last WAL record appended for this shard (0 =
    /// none since the covering snapshot at build). Monotone; holding
    /// the write lock across append + publish keeps WAL order equal
    /// to publication order.
    wal_seq: u64,
}

/// Per-shard merge and run-stack counters, registered in the store's
/// [`Obs`] so monitoring reads ([`ShardedStore::merges`] and friends)
/// are lock-free snapshots that never wait behind a rebuild.
/// Registration order is the ≤ side of each invariant first
/// (`bg_merges` before `merges`, `compactions` before `delta_runs`)
/// and every bump hits the ≥ side first, so `bg_merges ≤ merges` and
/// `compactions ≤ delta_runs` hold in *every* snapshot (the registry's
/// coherence contract). Merge wall latency lands in the shard's
/// [`Stage::Merge`] histogram.
struct MergeCounters {
    merges: Counter,
    bg_merges: Counter,
    /// Delta runs published by the write path (one per effective
    /// shard sub-run).
    delta_runs: Counter,
    /// Run-stack folds the write path performed past
    /// [`StoreConfig::max_runs`] (each fold needs at least one
    /// published run, so `compactions ≤ delta_runs`).
    compactions: Counter,
}

struct Shard {
    version: EpochCell<ShardVersion>,
    /// Serializes writers to this shard.
    write: Mutex<WriteState>,
    /// Writers blocked on [`StoreConfig::max_delta`] wait here; the
    /// merger notifies after publishing a drained version.
    delta_space: Condvar,
}

/// The background merger's work queue (guarded by `StoreInner::merge_q`).
#[derive(Default)]
struct MergeQueue {
    /// Shard indices with a merge due, in trigger order.
    queue: VecDeque<usize>,
    /// The merger popped a job and has not finished it yet.
    in_flight: bool,
    /// Set by `Drop`: finish the queue, then exit.
    shutdown: bool,
}

/// The store's attached durability layer: the file system holding the
/// per-shard WALs and snapshots, plus write-path I/O accounting.
/// I/O errors on the write and merge paths panic with context (the
/// store is crash-only: an inconsistent log is worse than no store),
/// while [`ShardedStore::recover`] returns errors — recovery runs
/// before anything was promised to callers.
struct DurableState {
    fs: Arc<dyn Fs>,
    fsync: FsyncMode,
    /// WAL records appended by the write path. Registered *after*
    /// `wal_syncs` and bumped *before* it, so `wal_syncs ≤
    /// wal_records` holds in every registry snapshot.
    wal_records: Counter,
    /// Write-path fsyncs issued (excludes merge-time snapshot syncs).
    wal_syncs: Counter,
}

impl DurableState {
    /// Append one record to `shard`'s WAL and fsync it per the mode
    /// (no sync in [`FsyncMode::Off`]). Caller holds the shard write
    /// lock, which orders appends by sequence. Append and fsync time
    /// land in the shard's [`Stage::WalAppend`] / [`Stage::WalFsync`]
    /// histograms; each fsync emits a [`TraceKind::WalSync`] event.
    fn log_run(&self, obs: &Obs, shard: usize, seq: u64, ops: &[(u64, Option<u64>)]) {
        let name = durable::wal_name(shard);
        let rec = durable::encode_record(seq, ops);
        let t = SpanTimer::start();
        self.fs
            .append(&name, &rec)
            .unwrap_or_else(|e| panic!("WAL append failed for shard {shard}: {e}"));
        obs.record_stage(shard, Stage::WalAppend, t.elapsed_ns());
        self.wal_records.inc();
        if self.fsync != FsyncMode::Off {
            let t = SpanTimer::start();
            self.fs
                .sync(&name)
                .unwrap_or_else(|e| panic!("WAL fsync failed for shard {shard}: {e}"));
            let dur = t.elapsed_ns();
            obs.record_stage(shard, Stage::WalFsync, dur);
            obs.trace().emit(
                shard,
                TraceKind::WalSync,
                t.start_ns(),
                dur,
                ops.len() as u64,
                0,
            );
            self.wal_syncs.inc();
        }
    }

    /// [`FsyncMode::On`]'s record granularity without its old
    /// quadratic overhead: encode one record **per op** (each at its
    /// own sequence) into a single buffer in one pass, append once,
    /// fsync once — the span/trace machinery runs once per run, not
    /// once per op. Returns the last sequence consumed. Caller holds
    /// the shard write lock.
    fn log_run_per_op(
        &self,
        obs: &Obs,
        shard: usize,
        mut seq: u64,
        ops: &[(u64, Option<u64>)],
    ) -> u64 {
        let name = durable::wal_name(shard);
        let mut buf = Vec::new();
        for op in ops {
            seq += 1;
            buf.extend_from_slice(&durable::encode_record(seq, std::slice::from_ref(op)));
        }
        let t = SpanTimer::start();
        self.fs
            .append(&name, &buf)
            .unwrap_or_else(|e| panic!("WAL append failed for shard {shard}: {e}"));
        obs.record_stage(shard, Stage::WalAppend, t.elapsed_ns());
        self.wal_records.add(ops.len() as u64);
        let t = SpanTimer::start();
        self.fs
            .sync(&name)
            .unwrap_or_else(|e| panic!("WAL fsync failed for shard {shard}: {e}"));
        let dur = t.elapsed_ns();
        obs.record_stage(shard, Stage::WalFsync, dur);
        obs.trace().emit(
            shard,
            TraceKind::WalSync,
            t.start_ns(),
            dur,
            ops.len() as u64,
            0,
        );
        self.wal_syncs.inc();
        seq
    }

    /// Serialize and fsync a snapshot of `merged` (covering WAL
    /// sequence `seq`) to the shard's temp file. The bulky half of a
    /// durable merge publish — the background merger runs it *outside*
    /// the shard write lock.
    fn stage_snapshot(&self, shard: usize, seq: u64, merged: &[(u64, u64)]) -> String {
        durable::write_snapshot_tmp(&*self.fs, shard, seq, merged)
            .unwrap_or_else(|e| panic!("snapshot write failed for shard {shard}: {e}"))
    }

    /// Commit a staged snapshot and rewrite the WAL down to `residual`
    /// (one record at `wal_seq`) — strictly in that order, so a crash
    /// between the two replays the old WAL's extra records
    /// idempotently on top of the new snapshot. Caller holds the shard
    /// write lock: nothing may append between the truncation decision
    /// and the rewrite.
    fn commit_and_truncate(
        &self,
        shard: usize,
        snap_seq: u64,
        tmp: &str,
        wal_seq: u64,
        residual: &[(u64, Option<u64>)],
    ) {
        durable::commit_snapshot(&*self.fs, shard, snap_seq, tmp)
            .unwrap_or_else(|e| panic!("snapshot commit failed for shard {shard}: {e}"));
        durable::rewrite_wal(&*self.fs, shard, wal_seq, residual)
            .unwrap_or_else(|e| panic!("WAL rewrite failed for shard {shard}: {e}"));
    }
}

/// State shared between the store handle and its merger thread.
struct StoreInner {
    backend: Backend,
    shard_bits: u32,
    cfg: StoreConfig,
    shards: Vec<Shard>,
    /// Live key count (upserts − tombstoned keys), maintained by the
    /// write path.
    live: AtomicUsize,
    /// `Some` when the store logs to a WAL directory (or injected fs).
    durable: Option<DurableState>,
    merge_q: Mutex<MergeQueue>,
    /// Merger waits here for jobs.
    merge_work: Condvar,
    /// [`ShardedStore::quiesce`] waits here for the queue to drain.
    merge_done: Condvar,
    /// Store-side observability: `store_*` metrics, per-shard stage
    /// histograms (plan/engine/range scan/WAL/merge) and trace rings.
    /// Cumulative for the store's lifetime, like the counters it
    /// replaced.
    obs: Obs,
    /// Per-shard merge counters registered in `obs` (see
    /// [`MergeCounters`]).
    merge_counters: Vec<MergeCounters>,
}

/// Reusable scratch for [`ShardedStore::lookup_batch`]: rank space for
/// the sorted backend, the batch plan's buffers, and the residual
/// result staging area. Keeping one per dispatcher thread makes the
/// steady-state dispatch path allocation-free, matching the engine's
/// frame-slab discipline.
#[derive(Default)]
pub struct LookupScratch {
    ranks: Vec<u32>,
    plan: BatchPlan,
    residual_out: Vec<Option<u64>>,
}

/// Reusable scratch for [`ShardedStore::apply_write_run_with`]: the
/// per-shard op-index buckets a multi-op run is grouped into. Keeping
/// one per dispatcher thread makes steady-state write dispatch
/// allocation-free outside the run publish itself.
#[derive(Default)]
pub struct WriteScratch {
    by_shard: Vec<Vec<usize>>,
}

/// What one planned batch did: engine counters for the residual run,
/// plus how the plan split the batch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Merged interleaved-engine counters for the residual probe run
    /// (`engine.lookups == residual`).
    pub engine: RunStats,
    /// Keys the delta decided without touching the engine.
    pub delta_hits: u64,
    /// Keys that reached the engine.
    pub residual: u64,
}

/// A writable key/value store hash-partitioned into power-of-two
/// shards, each shard a Main/Delta pair behind a [`ShardBackend`]
/// (see the [module docs](self)).
///
/// Point reads, batch lookups and range scans take `&self` and never
/// block behind writes or merges; `put`/`remove` also take `&self`
/// (interior mutability), serialize per shard, and block only at the
/// [`StoreConfig::max_delta`] bound.
pub struct ShardedStore {
    inner: Arc<StoreInner>,
    /// `Some` in background mode; joined (after a drain) on drop.
    merger: Option<JoinHandle<()>>,
}

impl ShardedStore {
    /// Build with the default [`StoreConfig`].
    ///
    /// Duplicate keys in `pairs` resolve **last-write-wins** (the
    /// later pair in slice order supersedes the earlier), matching the
    /// upsert path.
    ///
    /// # Panics
    /// Panics if `num_shards` is not a power of two (including 0).
    pub fn build(backend: Backend, num_shards: usize, pairs: &[(u64, u64)]) -> Self {
        Self::build_with(backend, num_shards, pairs, StoreConfig::default())
    }

    /// Build from key/value pairs with explicit tuning knobs. With
    /// [`StoreConfig::wal_dir`] set, this **initializes a fresh
    /// durable store** in that directory (creating it if needed and
    /// superseding whatever store it held); use [`recover`](Self::recover)
    /// to reload an existing one instead.
    ///
    /// # Panics
    /// Panics if `num_shards` is not a power of two (including 0), if
    /// `cfg.merge_threshold` is 0, if `cfg.max_delta <
    /// cfg.merge_threshold`, or if the WAL directory cannot be
    /// created or initialized.
    pub fn build_with(
        backend: Backend,
        num_shards: usize,
        pairs: &[(u64, u64)],
        cfg: StoreConfig,
    ) -> Self {
        let fs: Option<Arc<dyn Fs>> = cfg.wal_dir.as_ref().map(|dir| {
            let disk = DiskFs::create(dir)
                .unwrap_or_else(|e| panic!("create WAL dir {}: {e}", dir.display()));
            Arc::new(disk) as Arc<dyn Fs>
        });
        Self::build_inner(backend, num_shards, pairs, cfg, fs)
    }

    /// [`build_with`](Self::build_with), but durable onto an injected
    /// [`Fs`] (tests use [`isi_durable::MemFs`] / [`isi_durable::FaultFs`])
    /// instead of a real directory; `cfg.wal_dir` is ignored.
    pub fn build_with_fs(
        backend: Backend,
        num_shards: usize,
        pairs: &[(u64, u64)],
        cfg: StoreConfig,
        fs: Arc<dyn Fs>,
    ) -> Self {
        Self::build_inner(backend, num_shards, pairs, cfg, Some(fs))
    }

    fn build_inner(
        backend: Backend,
        num_shards: usize,
        pairs: &[(u64, u64)],
        cfg: StoreConfig,
        fs: Option<Arc<dyn Fs>>,
    ) -> Self {
        assert!(
            num_shards.is_power_of_two(),
            "num_shards must be a power of two, got {num_shards}"
        );
        Self::validate(&cfg);
        let shard_bits = num_shards.trailing_zeros();
        let mut parts: Vec<Vec<(u64, u64)>> = (0..num_shards).map(|_| Vec::new()).collect();
        for &(k, v) in pairs {
            parts[shard_route(k, shard_bits)].push((k, v));
        }
        let mut live = 0usize;
        let parts: Vec<Vec<(u64, u64)>> = parts
            .into_iter()
            .map(|mut part| {
                // Stable sort keeps equal keys in input order; the
                // last occurrence of each key wins.
                part.sort_by_key(|&(k, _)| k);
                let mut dedup: Vec<(u64, u64)> = Vec::with_capacity(part.len());
                for &(k, v) in &part {
                    match dedup.last_mut() {
                        Some(last) if last.0 == k => last.1 = v,
                        _ => dedup.push((k, v)),
                    }
                }
                live += dedup.len();
                dedup
            })
            .collect();
        if let Some(fs) = &fs {
            // Meta + one seq-0 snapshot and empty WAL per shard; a
            // crash mid-init leaves no recoverable meta, i.e. no store.
            durable::init_store(&**fs, &parts)
                .unwrap_or_else(|e| panic!("initialize durable store: {e}"));
        }
        let shards = parts
            .iter()
            .map(|dedup| Shard {
                version: EpochCell::new(ShardVersion {
                    main: backend.build_shard(dedup),
                    delta: Delta::default(),
                }),
                write: Mutex::new(WriteState::default()),
                delta_space: Condvar::new(),
            })
            .collect();
        Self::assemble(backend, shard_bits, cfg, shards, live, fs)
    }

    /// Reload the durable store in [`StoreConfig::wal_dir`]: per
    /// shard, the newest valid snapshot plus a replay of the WAL tail
    /// into the delta. Torn or corrupt WAL tails are repaired (cleanly
    /// discarded), stale snapshots and temp files deleted. The shard
    /// count comes from the store's meta file, not from `cfg`.
    ///
    /// # Panics
    /// Panics if `cfg.wal_dir` is `None` or `cfg` is invalid.
    pub fn recover(backend: Backend, cfg: StoreConfig) -> io::Result<Self> {
        let dir = cfg.wal_dir.as_ref().expect("recover requires cfg.wal_dir");
        let fs: Arc<dyn Fs> = Arc::new(DiskFs::open(dir)?);
        Self::recover_with_fs(backend, cfg, fs)
    }

    /// [`recover`](Self::recover) from an injected [`Fs`] (tests
    /// recover from a [`isi_durable::MemFs`] crash image).
    pub fn recover_with_fs(
        backend: Backend,
        cfg: StoreConfig,
        fs: Arc<dyn Fs>,
    ) -> io::Result<Self> {
        Self::validate(&cfg);
        let num_shards = durable::read_meta(&*fs)? as usize;
        if !num_shards.is_power_of_two() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("store meta names {num_shards} shards (not a power of two)"),
            ));
        }
        let shard_bits = num_shards.trailing_zeros();
        let mut live = 0usize;
        let mut shards = Vec::with_capacity(num_shards);
        let mut refill = Vec::new();
        for si in 0..num_shards {
            let rec = durable::recover_shard(&*fs, si)?;
            // Replay the WAL tail in append order into one folded run
            // (records replay absolute upserts, later records win).
            let mut tail: Vec<(u64, Option<u64>)> = Vec::new();
            for record in &rec.tail {
                tail.extend_from_slice(&record.ops);
            }
            sort_lww(&mut tail);
            live += merge_pairs(&rec.pairs, &tail).len();
            let delta = Delta::from_sorted(tail);
            if delta.len() >= cfg.merge_threshold {
                refill.push(si);
            }
            shards.push(Shard {
                version: EpochCell::new(ShardVersion {
                    main: backend.build_shard(&rec.pairs),
                    delta,
                }),
                write: Mutex::new(WriteState {
                    pending: false,
                    wal_seq: rec.next_seq,
                }),
                delta_space: Condvar::new(),
            });
        }
        let store = Self::assemble(backend, shard_bits, cfg, shards, live, Some(fs));
        // Shards whose replayed delta already crossed the threshold
        // get their merge queued now rather than on the next write.
        if store.inner.cfg.merge_mode == MergeMode::Background {
            for si in refill {
                let mut w = store.inner.shards[si].write.plock("shard write state");
                w.pending = true;
                let mut q = store.inner.merge_q.plock("merge queue");
                q.queue.push_back(si);
                store.inner.merge_work.notify_one();
            }
        }
        Ok(store)
    }

    fn validate(cfg: &StoreConfig) {
        assert!(cfg.merge_threshold > 0, "merge_threshold must be positive");
        assert!(
            cfg.max_delta >= cfg.merge_threshold,
            "max_delta ({}) must be >= merge_threshold ({})",
            cfg.max_delta,
            cfg.merge_threshold
        );
        assert!(cfg.max_runs >= 1, "max_runs must be >= 1");
    }

    fn assemble(
        backend: Backend,
        shard_bits: u32,
        cfg: StoreConfig,
        shards: Vec<Shard>,
        live: usize,
        fs: Option<Arc<dyn Fs>>,
    ) -> Self {
        let merge_mode = cfg.merge_mode;
        let obs = Obs::new("store", shards.len());
        // Coherent-snapshot registration order: the ≤ side of each
        // invariant first (wal_syncs ≤ wal_records, bg_merges ≤
        // merges); see the isi_obs registry docs.
        let durable = fs.map(|fs| {
            let wal_syncs = obs.registry().counter("store_wal_syncs", &[]);
            let wal_records = obs.registry().counter("store_wal_records", &[]);
            DurableState {
                fsync: cfg.fsync,
                fs,
                wal_records,
                wal_syncs,
            }
        });
        let merge_counters = (0..shards.len())
            .map(|si| {
                let shard = si.to_string();
                let labels = [("shard", shard.as_str())];
                let bg_merges = obs.registry().counter("store_bg_merges", &labels);
                let merges = obs.registry().counter("store_merges", &labels);
                let compactions = obs.registry().counter("store_compactions", &labels);
                let delta_runs = obs.registry().counter("store_delta_runs", &labels);
                MergeCounters {
                    merges,
                    bg_merges,
                    delta_runs,
                    compactions,
                }
            })
            .collect();
        let inner = Arc::new(StoreInner {
            backend,
            shard_bits,
            cfg,
            shards,
            live: AtomicUsize::new(live),
            durable,
            merge_q: Mutex::new(MergeQueue::default()),
            merge_work: Condvar::new(),
            merge_done: Condvar::new(),
            obs,
            merge_counters,
        });
        let merger = (merge_mode == MergeMode::Background).then(|| {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("isi-merger".into())
                .spawn(move || inner.merger_loop())
                .expect("spawn merger thread")
        });
        Self { inner, merger }
    }

    /// The backend every shard's main uses.
    pub fn backend(&self) -> Backend {
        self.inner.backend
    }

    /// The tuning knobs the store was built with.
    pub fn config(&self) -> &StoreConfig {
        &self.inner.cfg
    }

    /// True when the store logs writes to a WAL (a
    /// [`StoreConfig::wal_dir`] or an injected [`Fs`]).
    pub fn is_durable(&self) -> bool {
        self.inner.durable.is_some()
    }

    /// Write-path durability counters: `(WAL records appended, WAL
    /// fsyncs issued)` since build. `(0, 0)` when durability is off —
    /// and under [`FsyncMode::Group`] the sync count per record is
    /// what group commit amortizes. Read through one coherent registry
    /// snapshot, so `syncs ≤ records` always (the old field-by-field
    /// reads could observe the sync of a record they hadn't counted).
    pub fn wal_stats(&self) -> (u64, u64) {
        if self.inner.durable.is_none() {
            return (0, 0);
        }
        let snap = self.inner.obs.snapshot();
        (
            snap.counter_sum("store_wal_records"),
            snap.counter_sum("store_wal_syncs"),
        )
    }

    /// The store's observability bundle: `store_*` metrics, per-shard
    /// stage histograms, and the store-side trace rings (merges, WAL
    /// syncs, delta backpressure).
    pub fn obs(&self) -> &Obs {
        &self.inner.obs
    }

    /// Number of shards (a power of two).
    pub fn num_shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// Number of live keys (pairs minus tombstoned keys).
    pub fn len(&self) -> usize {
        self.inner.live.load(Ordering::Relaxed)
    }

    /// True if the store holds no live keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The shard that owns `key`.
    #[inline]
    pub fn shard_of(&self, key: u64) -> usize {
        shard_route(key, self.inner.shard_bits)
    }

    /// Current delta entries across all shards (each `< merge_threshold`
    /// per shard once [`quiesce`](Self::quiesce)d).
    pub fn delta_len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.version.load().delta.len())
            .sum()
    }

    /// Merges performed since build, across all shards (both modes).
    pub fn merges(&self) -> u64 {
        self.inner.obs.snapshot().counter_sum("store_merges")
    }

    /// Merges performed by the background merger thread (≤
    /// [`merges`](Self::merges); the difference is foreground-mode
    /// inline merges).
    pub fn bg_merges(&self) -> u64 {
        self.inner.obs.snapshot().counter_sum("store_bg_merges")
    }

    /// Delta runs published by the write path since build, across all
    /// shards (one per effective shard sub-run of a write run).
    pub fn delta_runs(&self) -> u64 {
        self.inner.obs.snapshot().counter_sum("store_delta_runs")
    }

    /// Run-stack folds performed by the write path since build (≤
    /// [`delta_runs`](Self::delta_runs); each fold collapses a stack
    /// that exceeded [`StoreConfig::max_runs`] into one run).
    pub fn compactions(&self) -> u64 {
        self.inner.obs.snapshot().counter_sum("store_compactions")
    }

    /// Merge jobs queued or in flight right now (a point-in-time
    /// gauge; 0 once [`quiesce`](Self::quiesce)d).
    pub fn merge_backlog(&self) -> usize {
        let q = self.inner.merge_q.plock("merge queue");
        q.queue.len() + q.in_flight as usize
    }

    /// Merge wall-latency histogram (nanoseconds), across all shards
    /// (the union of the per-shard [`Stage::Merge`] histograms).
    pub fn merge_latency(&self) -> LatencyHist {
        let mut hist = LatencyHist::new();
        for si in 0..self.inner.shards.len() {
            hist.merge(&self.inner.obs.stage_hist(si, Stage::Merge));
        }
        hist
    }

    /// Version-swap count of `shard` (one per write, since every write
    /// publishes a new version; background merges add one more swap
    /// each when they publish the rebuilt main).
    pub fn shard_epoch(&self, shard: usize) -> u64 {
        self.inner.shards[shard].version.epoch()
    }

    /// Block until every queued merge job (including jobs enqueued by
    /// merges re-triggering themselves) has been published. Writers
    /// racing `quiesce` can enqueue more work; this waits for the
    /// queue observed drain, which is the fixpoint once writers stop.
    /// Returns immediately in foreground mode.
    pub fn quiesce(&self) {
        let mut q = self.inner.merge_q.plock("merge queue");
        while !q.queue.is_empty() || q.in_flight {
            q = self.inner.merge_done.pwait(q, "merge queue (drain)");
        }
    }

    /// Sequential point lookup — the oracle the batched path must
    /// agree with. Reads one consistent [`ShardVersion`] snapshot:
    /// delta override first, main otherwise.
    pub fn get(&self, key: u64) -> Option<u64> {
        let v = self.inner.shards[self.shard_of(key)].version.load();
        match v.delta.get(key) {
            Some(over) => over,
            None => v.main.get(key),
        }
    }

    /// Upsert `key = val`; returns the previously visible value
    /// (last-write-wins). May enqueue (background) or perform
    /// (foreground) a merge of the owning shard. A one-op
    /// [`apply_write_run`](Self::apply_write_run).
    pub fn put(&self, key: u64, val: u64) -> Option<u64> {
        let mut prevs = [None];
        self.write_shard_run(self.shard_of(key), &[(key, Some(val))], &[0], &mut prevs);
        prevs[0]
    }

    /// Remove `key`; returns the value it held, if any. A miss is a
    /// no-op (no tombstone is recorded for a key that is nowhere).
    pub fn remove(&self, key: u64) -> Option<u64> {
        let mut prevs = [None];
        self.write_shard_run(self.shard_of(key), &[(key, None)], &[0], &mut prevs);
        prevs[0]
    }

    /// Apply one dispatched **write run** — the group-commit unit.
    /// `ops[i]` is an upsert (`Some`) or remove (`None`); `prevs` is
    /// cleared and receives, per op, the value visible immediately
    /// before it (last-write-wins *within* the run, so a duplicate key
    /// sees its predecessor's value).
    ///
    /// Ops are grouped by owning shard (ops to different shards
    /// commute; per-shard admission order is preserved). Each shard's
    /// sub-run holds the write lock once, sorts its ops into **one**
    /// immutable delta run (last-write-wins within the run), appends
    /// **one** WAL record fsynced **once** ([`FsyncMode::Group`];
    /// [`FsyncMode::On`] logs a record per op but still appends and
    /// fsyncs once per run) and publishes **one** new version — when
    /// this returns, every op in the run is durable and visible, so
    /// callers may acknowledge the whole run.
    ///
    /// Allocates per-shard grouping buffers; dispatch loops should
    /// prefer [`apply_write_run_with`](Self::apply_write_run_with)
    /// with a long-lived [`WriteScratch`].
    pub fn apply_write_run(&self, ops: &[(u64, Option<u64>)], prevs: &mut Vec<Option<u64>>) {
        self.apply_write_run_with(ops, prevs, &mut WriteScratch::default());
    }

    /// [`apply_write_run`](Self::apply_write_run), grouping ops by
    /// shard through a caller-held reusable [`WriteScratch`] so the
    /// steady-state dispatch path performs no grouping allocations.
    pub fn apply_write_run_with(
        &self,
        ops: &[(u64, Option<u64>)],
        prevs: &mut Vec<Option<u64>>,
        scratch: &mut WriteScratch,
    ) {
        prevs.clear();
        prevs.resize(ops.len(), None);
        match ops.len() {
            0 => return,
            1 => {
                self.write_shard_run(self.shard_of(ops[0].0), ops, &[0], prevs);
                return;
            }
            _ => {}
        }
        scratch.by_shard.resize_with(self.num_shards(), Vec::new);
        for bucket in &mut scratch.by_shard {
            bucket.clear();
        }
        for (i, &(key, _)) in ops.iter().enumerate() {
            scratch.by_shard[self.shard_of(key)].push(i);
        }
        for (si, idxs) in scratch.by_shard.iter().enumerate() {
            if !idxs.is_empty() {
                self.write_shard_run(si, ops, idxs, prevs);
            }
        }
    }

    /// The shared write path: apply `ops[idxs]` (all routed to `si`)
    /// to the shard's delta and publish one new version. At
    /// `merge_threshold` the run requests maintenance — a job for the
    /// background merger, or an inline rebuild in foreground mode. In
    /// background mode the run blocks only when the shard's delta has
    /// hit the hard `max_delta` bound. With durability on, the run's
    /// WAL record is appended and fsynced *before* the publish.
    fn write_shard_run(
        &self,
        si: usize,
        ops: &[(u64, Option<u64>)],
        idxs: &[usize],
        prevs: &mut [Option<u64>],
    ) {
        let inner = &*self.inner;
        let shard = &inner.shards[si];
        let mut w = shard.write.plock("shard write state");
        if inner.cfg.merge_mode == MergeMode::Background
            && shard.version.load().delta.len() >= inner.cfg.max_delta
        {
            // Hard bound: past max_delta this shard's writers wait for
            // the merger (which never needs this lock to make
            // progress... it does take it to publish, but we release
            // it while waiting on the condvar). A run may overshoot
            // the bound by its own length — bounded by the dispatcher
            // batch size.
            let t = SpanTimer::start();
            while shard.version.load().delta.len() >= inner.cfg.max_delta {
                w = shard
                    .delta_space
                    .pwait(w, "shard write state (delta backpressure)");
            }
            let dur = t.elapsed_ns();
            inner.obs.record_stage(si, Stage::Backpressure, dur);
            inner
                .obs
                .trace()
                .emit(si, TraceKind::Backpressure, t.start_ns(), dur, 1, 0);
        }
        let cur = shard.version.load();
        // Build this sub-run as its own sorted run instead of cloning
        // the delta: O(run log run) per publish, independent of how
        // full the delta is (the old clone + per-op sorted insert was
        // ~delta²/2 entry copies per threshold fill).
        let mut run: Vec<(u64, Option<u64>)> = Vec::with_capacity(idxs.len());
        let mut live_delta = 0isize;
        for &i in idxs {
            let (key, val) = ops[i];
            // Within the pending run the latest op for the key wins;
            // runs are dispatcher-batch sized, so the backwards scan
            // is short.
            let pending = run.iter().rev().find(|e| e.0 == key).map(|e| e.1);
            let prev = match pending {
                Some(over) => over,
                None => match cur.delta.get(key) {
                    Some(over) => over,
                    None => cur.main.get(key),
                },
            };
            prevs[i] = prev;
            // Removing an invisible key needs no tombstone (and must
            // not grow the delta, or idempotent removes would force
            // merges) — and nothing to make durable either. If an
            // override exists it is already a tombstone (that is the
            // only way `prev` is `None` with an override present), so
            // the elision never loses a deletion.
            if val.is_none() && prev.is_none() {
                continue;
            }
            run.push((key, val));
            match (prev.is_some(), val.is_some()) {
                (false, true) => live_delta += 1,
                (true, false) => live_delta -= 1,
                _ => {}
            }
        }
        if run.is_empty() {
            return; // fully elided: no record, no epoch bump
        }
        // Last-write-wins within the run: stable sort keeps equal keys
        // in op order, dedup keeps the last.
        sort_lww(&mut run);
        // Ack ⇒ durable: the WAL record hits disk before the publish,
        // and the publish happens before any caller acknowledges.
        // Replay is absolute upserts, so logging the deduped run is
        // state-equivalent to logging every op.
        if let Some(d) = &inner.durable {
            if d.fsync == FsyncMode::On {
                w.wal_seq = d.log_run_per_op(&inner.obs, si, w.wal_seq, &run);
            } else {
                w.wal_seq += 1;
                d.log_run(&inner.obs, si, w.wal_seq, &run);
            }
        }
        let counters = &inner.merge_counters[si];
        let mut delta = cur.delta.share();
        delta.push_run(run.into());
        // `delta_runs` before `compactions` (the registry registers
        // compactions first), so compactions ≤ delta_runs in every
        // snapshot.
        counters.delta_runs.inc();
        if delta.runs.len() > inner.cfg.max_runs {
            delta = Delta::from_sorted(delta.fold());
            counters.compactions.inc();
        }
        let crossed = delta.len() >= inner.cfg.merge_threshold;
        match inner.cfg.merge_mode {
            MergeMode::Background => {
                shard.version.store(Arc::new(ShardVersion {
                    main: Arc::clone(&cur.main),
                    delta,
                }));
                if crossed && !w.pending {
                    w.pending = true;
                    let mut q = inner.merge_q.plock("merge queue");
                    q.queue.push_back(si);
                    inner.merge_work.notify_one();
                }
            }
            MergeMode::Foreground if crossed => {
                // Inline merge: rebuild this shard's main from
                // main+delta and publish (new main, empty delta) in
                // one epoch swap. The shard write lock is held
                // throughout, so only same-shard *writers* wait. The
                // snapshot covers every record up to wal_seq, so the
                // WAL truncates to empty.
                let t0 = SpanTimer::start();
                let folded = delta.len() as u64;
                inner
                    .obs
                    .trace()
                    .emit(si, TraceKind::MergeStart, t0.start_ns(), 0, folded, 0);
                let merged = merge_pairs(&cur.main.pairs(), &delta.fold());
                if let Some(d) = &inner.durable {
                    let tmp = d.stage_snapshot(si, w.wal_seq, &merged);
                    d.commit_and_truncate(si, w.wal_seq, &tmp, w.wal_seq, &[]);
                }
                shard.version.store(Arc::new(ShardVersion {
                    main: cur.main.rebuild(&merged),
                    delta: Delta::default(),
                }));
                let dur = t0.elapsed_ns();
                counters.merges.inc();
                inner.obs.record_stage(si, Stage::Merge, dur);
                inner
                    .obs
                    .trace()
                    .emit(si, TraceKind::MergePublish, t0.start_ns(), dur, folded, 0);
            }
            MergeMode::Foreground => {
                shard.version.store(Arc::new(ShardVersion {
                    main: Arc::clone(&cur.main),
                    delta,
                }));
            }
        }
        match live_delta.cmp(&0) {
            std::cmp::Ordering::Greater => {
                inner.live.fetch_add(live_delta as usize, Ordering::Relaxed);
            }
            std::cmp::Ordering::Less => {
                inner
                    .live
                    .fetch_sub(live_delta.unsigned_abs(), Ordering::Relaxed);
            }
            std::cmp::Ordering::Equal => {}
        }
    }

    /// Run a batch of lookups that all route to `shard`, scattering
    /// `out[i]` = lookup result of `keys[i]`.
    ///
    /// The whole batch reads **one** [`ShardVersion`] snapshot and is
    /// **planned** first (see [`crate::plan`]): keys the delta decides
    /// are answered from the sorted run, and only the residual reaches
    /// the morsel-parallel interleaved engine. A merge publishing
    /// mid-batch cannot produce torn results — this batch finishes on
    /// the version it started with.
    ///
    /// # Panics
    /// Panics if `out.len() != keys.len()` or if some key does not
    /// route to `shard` (batch formation bug in the caller).
    pub fn lookup_batch(
        &self,
        shard: usize,
        keys: &[u64],
        policy: Interleave,
        par: ParConfig,
        scratch: &mut LookupScratch,
        out: &mut [Option<u64>],
    ) -> BatchOutcome {
        assert_eq!(keys.len(), out.len(), "output length mismatch");
        debug_assert!(
            keys.iter().all(|&k| self.shard_of(k) == shard),
            "batch contains keys routed to another shard"
        );
        let v = self.inner.shards[shard].version.load();
        let obs = &self.inner.obs;
        if v.delta.is_empty() {
            // Every key is residual: probe straight into `out` without
            // a scatter pass.
            let t = SpanTimer::start();
            let engine = v
                .main
                .probe_batch(keys, policy, par, &mut scratch.ranks, out);
            obs.record_stage(shard, Stage::Engine, t.elapsed_ns());
            return BatchOutcome {
                engine,
                delta_hits: 0,
                residual: keys.len() as u64,
            };
        }
        let t = SpanTimer::start();
        scratch.plan.resolve(&v.delta.runs, keys);
        for &(i, res) in &scratch.plan.decided {
            out[i as usize] = res;
        }
        obs.record_stage(shard, Stage::Plan, t.elapsed_ns());
        let residual = scratch.plan.residual();
        let engine = if residual == 0 {
            RunStats::default()
        } else {
            let t = SpanTimer::start();
            scratch.residual_out.clear();
            scratch.residual_out.resize(residual as usize, None);
            let engine = v.main.probe_batch(
                &scratch.plan.residual_keys,
                policy,
                par,
                &mut scratch.ranks,
                &mut scratch.residual_out,
            );
            for (&i, &r) in scratch
                .plan
                .residual_idx
                .iter()
                .zip(scratch.residual_out.iter())
            {
                out[i as usize] = r;
            }
            obs.record_stage(shard, Stage::Engine, t.elapsed_ns());
            engine
        };
        BatchOutcome {
            engine,
            delta_hits: scratch.plan.delta_hits(),
            residual,
        }
    }

    /// The current main backend's cache-residency estimate for
    /// `sample` (see [`ShardBackend::hint_density`]): the fraction of
    /// probe-path touches already resident, in `[0, 1]`; `0.0` on
    /// backends without a residency signal. Reads the shard's current
    /// version snapshot; does not allocate.
    pub fn hint_density(&self, shard: usize, sample: &[u64]) -> f64 {
        self.inner.shards[shard]
            .version
            .load()
            .main
            .hint_density(sample)
    }

    /// All live pairs of `shard` with `lo <= key <= hi`, in ascending
    /// key order: the backend's ordered scan merge-joined with the
    /// sorted delta run (overrides win, tombstones elide their keys).
    /// Reads one consistent [`ShardVersion`] snapshot; an inverted
    /// range returns nothing.
    pub fn scan_range(&self, shard: usize, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        if lo > hi {
            return Vec::new();
        }
        let t = SpanTimer::start();
        let v = self.inner.shards[shard].version.load();
        let mut main = Vec::new();
        v.main.scan_range(lo, hi, &mut main);
        let out = if v.delta.is_empty() {
            main
        } else {
            // Fold the run-stack's [lo, hi] slices (newest wins) into
            // one sorted run, then merge-join with the backend scan.
            let d = v.delta.fold_range(lo, hi);
            if d.is_empty() {
                main
            } else {
                merge_pairs(&main, &d)
            }
        };
        self.inner
            .obs
            .record_stage(shard, Stage::RangeScan, t.elapsed_ns());
        out
    }

    /// All live pairs with `lo <= key <= hi` across every shard, in
    /// ascending key order. Each shard contributes one consistent
    /// snapshot; the cross-shard cut is not atomic (same contract as
    /// issuing one `get` per shard).
    pub fn get_range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for shard in 0..self.num_shards() {
            out.extend(self.scan_range(shard, lo, hi));
        }
        // Hash partitioning interleaves shard key sets arbitrarily, so
        // the per-shard sorted runs need one global reorder.
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }
}

impl Drop for ShardedStore {
    fn drop(&mut self) {
        if let Some(handle) = self.merger.take() {
            {
                let mut q = self.inner.merge_q.plock("merge queue");
                q.shutdown = true;
                self.inner.merge_work.notify_all();
            }
            handle.join().expect("merger thread panicked");
        }
        // Clean-shutdown durability: flush every WAL so even
        // FsyncMode::Off loses nothing on an orderly exit (only on a
        // crash). Best effort — Drop must not panic.
        if let Some(d) = &self.inner.durable {
            for si in 0..self.inner.shards.len() {
                let _ = d.fs.sync(&durable::wal_name(si));
            }
            let _ = d.fs.sync_dir();
        }
    }
}

impl StoreInner {
    /// The background merger: drain merge jobs until shutdown (then
    /// finish what is queued and exit).
    fn merger_loop(&self) {
        loop {
            let si = {
                let mut q = self.merge_q.plock("merge queue");
                loop {
                    if let Some(si) = q.queue.pop_front() {
                        q.in_flight = true;
                        break si;
                    }
                    if q.shutdown {
                        return;
                    }
                    q = self.merge_work.pwait(q, "merge queue (worker idle)");
                }
            };
            self.merge_shard(si);
            let mut q = self.merge_q.plock("merge queue");
            q.in_flight = false;
            self.merge_done.notify_all();
        }
    }

    /// Merge one shard: rebuild its main from a snapshot, then publish
    /// `(new main, residual delta)` — the writes that landed during
    /// the rebuild survive as the residual. With durability on, the
    /// merged pairs become the shard's on-disk snapshot and the WAL is
    /// truncated down to the residual.
    fn merge_shard(&self, si: usize) {
        let shard = &self.shards[si];
        let t0 = SpanTimer::start();
        // Snapshot outside the write lock: the rebuild is the long
        // part, and writers must keep landing in the delta meanwhile.
        // The brief lock pins (version, wal_seq) to a consistent cut —
        // every record with seq ≤ seq0 is reflected in v0 (records
        // append and publish in order under this lock), so a snapshot
        // of v0 stamped seq0 over-covers nothing. Replay may *re*-apply
        // a record that raced in between the two loads; replay upserts
        // are absolute, so over-replay is idempotent.
        let (v0, seq0) = {
            let w = shard.write.plock("shard write state");
            (shard.version.load(), w.wal_seq)
        };
        if v0.delta.is_empty() {
            let mut w = shard.write.plock("shard write state");
            w.pending = false;
            shard.delta_space.notify_all();
            return;
        }
        self.obs.trace().emit(
            si,
            TraceKind::MergeStart,
            t0.start_ns(),
            0,
            v0.delta.len() as u64,
            0,
        );
        if self.cfg.pin_threads {
            // Rebuild on the shard's home core: the merged arrays are
            // allocated and first-touched here, so on a NUMA host they
            // land on the node whose dispatcher will read them. The
            // merger re-pins per job — it serves every shard in turn.
            let topo = Topology::probe();
            topo.pin_current(topo.core_for_shard(si));
        }
        let merged = merge_pairs(&v0.main.pairs(), &v0.delta.fold());
        let main = v0.main.rebuild(&merged);
        // The bulky snapshot serialization also runs outside the write
        // lock; only the single merger thread touches the temp file.
        let staged = self
            .durable
            .as_ref()
            .map(|d| d.stage_snapshot(si, seq0, &merged));
        let mut w = shard.write.plock("shard write state");
        let cur = shard.version.load();
        // Residual by **run identity**: a run of the current stack is
        // already reflected in the new main iff it is one of the runs
        // the snapshot folded (runs are immutable and shared, so `Arc`
        // pointer equality decides membership). Runs pushed — or
        // compacted into fresh runs — during the rebuild survive;
        // their overrides are the per-key newest, so re-applying any
        // snapshot-era override they carry on top of the new main is
        // idempotent. The surviving runs fold into one residual run,
        // making the published count exact again.
        let residual: Vec<(u64, Option<u64>)> = Delta {
            entries: 0,
            runs: cur
                .delta
                .runs
                .iter()
                .filter(|r| !v0.delta.runs.iter().any(|r0| Arc::ptr_eq(r, r0)))
                .cloned()
                .collect(),
        }
        .fold();
        if let (Some(d), Some(tmp)) = (&self.durable, &staged) {
            // Snapshot first, truncate second — and the WAL rewrite
            // holds the residual at the *current* frontier, so a
            // crash+recover replays exactly it on top of the snapshot.
            d.commit_and_truncate(si, seq0, tmp, w.wal_seq, &residual);
        }
        let rekick = residual.len() >= self.cfg.merge_threshold;
        let residual_len = residual.len() as u64;
        shard.version.store(Arc::new(ShardVersion {
            main,
            delta: Delta::from_sorted(residual),
        }));
        // `merges` before `bg_merges`: with bg_merges registered
        // first, every snapshot sees bg_merges ≤ merges.
        self.merge_counters[si].merges.inc();
        self.merge_counters[si].bg_merges.inc();
        let dur = t0.elapsed_ns();
        self.obs.record_stage(si, Stage::Merge, dur);
        self.obs.trace().emit(
            si,
            TraceKind::MergePublish,
            t0.start_ns(),
            dur,
            v0.delta.len() as u64,
            residual_len,
        );
        if rekick {
            // Still over threshold (writers were busy): merge again.
            // `pending` stays true to keep gating duplicate enqueues.
            let mut q = self.merge_q.plock("merge queue");
            q.queue.push_back(si);
            self.merge_work.notify_one();
        } else {
            w.pending = false;
        }
        shard.delta_space.notify_all();
    }
}

/// Sort a freshly built override run by key and resolve duplicates
/// last-write-wins: the stable sort keeps equal keys in op order, the
/// in-place dedup keeps the last of each group. O(run log run).
fn sort_lww(run: &mut Vec<(u64, Option<u64>)>) {
    run.sort_by_key(|e| e.0);
    let mut w = 0;
    for r in 0..run.len() {
        if r + 1 == run.len() || run[r + 1].0 != run[r].0 {
            run[w] = run[r];
            w += 1;
        }
    }
    run.truncate(w);
}

/// Merge two strictly-sorted override runs into one, the `newer` run
/// winning every shared key (tombstones are overrides too and are
/// kept). The run-stack fold applies this pairwise, oldest to newest.
fn merge_overrides(
    newer: &[(u64, Option<u64>)],
    older: &[(u64, Option<u64>)],
) -> Vec<(u64, Option<u64>)> {
    let mut out = Vec::with_capacity(newer.len() + older.len());
    let (mut i, mut j) = (0, 0);
    while i < newer.len() && j < older.len() {
        match newer[i].0.cmp(&older[j].0) {
            std::cmp::Ordering::Less => {
                out.push(newer[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(older[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(newer[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&newer[i..]);
    out.extend_from_slice(&older[j..]);
    out
}

/// Merge-join a shard's sorted main pairs with its sorted delta run:
/// delta overrides win, tombstones drop the key. Both inputs are
/// strictly sorted by key; so is the output.
fn merge_pairs(main: &[(u64, u64)], delta: &[(u64, Option<u64>)]) -> Vec<(u64, u64)> {
    let mut out = Vec::with_capacity(main.len() + delta.len());
    let (mut i, mut j) = (0, 0);
    while i < main.len() && j < delta.len() {
        let (mk, mv) = main[i];
        let (dk, dv) = delta[j];
        if mk < dk {
            out.push((mk, mv));
            i += 1;
        } else {
            if let Some(v) = dv {
                out.push((dk, v));
            }
            j += 1;
            if mk == dk {
                i += 1;
            }
        }
    }
    out.extend_from_slice(&main[i..]);
    for &(k, v) in &delta[j..] {
        if let Some(v) = v {
            out.push((k, v));
        }
    }
    out
}

/// Top-bits shard routing: shard = high `bits` bits of the Fibonacci
/// hash (0 when `bits == 0`).
#[inline]
fn shard_route(key: u64, bits: u32) -> usize {
    if bits == 0 {
        0
    } else {
        (key.hash64() >> (64 - bits)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeMap, HashMap};

    fn pairs(n: u64) -> Vec<(u64, u64)> {
        (0..n).map(|i| (i * 3, i + 1000)).collect()
    }

    /// Both merge modes, for tests whose invariants hold in each.
    const MODES: [MergeMode; 2] = [MergeMode::Background, MergeMode::Foreground];

    fn cfg(threshold: usize, mode: MergeMode) -> StoreConfig {
        let base = StoreConfig::with_threshold(threshold);
        match mode {
            MergeMode::Background => base,
            MergeMode::Foreground => base.foreground(),
        }
    }

    #[test]
    fn routing_covers_all_shards_and_is_stable() {
        let store = ShardedStore::build(Backend::Sorted, 4, &pairs(4096));
        let mut per_shard = [0usize; 4];
        for i in 0..4096u64 {
            let s = store.shard_of(i * 3);
            per_shard[s] += 1;
        }
        // Fibonacci hashing spreads uniformly: no shard is empty or
        // grossly overloaded on 4k keys.
        for (s, &n) in per_shard.iter().enumerate() {
            assert!(n > 512, "shard {s} underloaded: {n}");
        }
        assert_eq!(per_shard.iter().sum::<usize>(), 4096);
    }

    #[test]
    fn get_agrees_across_backends_and_shard_counts() {
        let data = pairs(2000);
        for backend in Backend::ALL {
            for shards in [1, 2, 4, 8] {
                let store = ShardedStore::build(backend, shards, &data);
                assert_eq!(store.len(), 2000);
                assert_eq!(store.num_shards(), shards);
                for probe in 0..3100u64 {
                    let expect = (probe % 3 == 0 && probe < 6000).then(|| probe / 3 + 1000);
                    assert_eq!(
                        store.get(probe),
                        expect,
                        "{}/{shards} probe={probe}",
                        backend.name()
                    );
                }
            }
        }
    }

    #[test]
    fn batch_lookup_matches_get() {
        let data = pairs(5000);
        let probes: Vec<u64> = (0..2500).map(|i| i * 7 % 16_000).collect();
        for backend in Backend::ALL {
            for shards in [1, 4] {
                let store = ShardedStore::build(backend, shards, &data);
                // Form per-shard batches exactly as the service does.
                let mut batches: Vec<Vec<u64>> = vec![Vec::new(); shards];
                for &p in &probes {
                    batches[store.shard_of(p)].push(p);
                }
                let mut scratch = LookupScratch::default();
                for (s, batch) in batches.iter().enumerate() {
                    let mut out = vec![None; batch.len()];
                    for policy in [Interleave::Sequential, Interleave::from_group(6)] {
                        let outcome = store.lookup_batch(
                            s,
                            batch,
                            policy,
                            ParConfig::with_threads(2),
                            &mut scratch,
                            &mut out,
                        );
                        // Read-only store: nothing is delta-decided.
                        assert_eq!(outcome.engine.lookups, batch.len() as u64);
                        assert_eq!(outcome.delta_hits, 0);
                        assert_eq!(outcome.residual, batch.len() as u64);
                        for (k, r) in batch.iter().zip(&out) {
                            assert_eq!(*r, store.get(*k), "{}/{shards}", backend.name());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn lookup_batch_skips_delta_decided_keys() {
        for backend in Backend::ALL {
            let store = ShardedStore::build_with(
                backend,
                1,
                &pairs(500),
                StoreConfig::with_threshold(1 << 20),
            );
            // Override / tombstone a slice of the probe space; these
            // keys must be answered by the plan, not the engine.
            for k in 0..40u64 {
                if k % 4 == 0 {
                    store.remove(k * 3);
                } else {
                    store.put(k * 3, 7_000 + k);
                }
            }
            let probes: Vec<u64> = (0..200u64).map(|i| i * 3).collect();
            let mut out = vec![None; probes.len()];
            let mut scratch = LookupScratch::default();
            let outcome = store.lookup_batch(
                0,
                &probes,
                Interleave::from_group(6),
                ParConfig::with_threads(1),
                &mut scratch,
                &mut out,
            );
            assert_eq!(outcome.delta_hits, 40, "{}", backend.name());
            assert_eq!(outcome.residual, 160);
            assert_eq!(outcome.engine.lookups, 160);
            for (&k, &r) in probes.iter().zip(&out) {
                assert_eq!(r, store.get(k), "{} key={k}", backend.name());
            }
        }
    }

    #[test]
    fn empty_store_and_empty_batches() {
        for backend in Backend::ALL {
            let store = ShardedStore::build(backend, 2, &[]);
            assert!(store.is_empty());
            assert_eq!(store.get(7), None);
            let mut out = vec![None; 2];
            // Keys must route to the queried shard; find two that do.
            let ks: Vec<u64> = (0..100)
                .filter(|&k| store.shard_of(k) == 0)
                .take(2)
                .collect();
            let mut scratch = LookupScratch::default();
            store.lookup_batch(
                0,
                &ks,
                Interleave::from_group(4),
                ParConfig::default(),
                &mut scratch,
                &mut out,
            );
            assert_eq!(out, [None, None]);
            let outcome = store.lookup_batch(
                1,
                &[],
                Interleave::Sequential,
                ParConfig::default(),
                &mut scratch,
                &mut out[..0],
            );
            assert_eq!(outcome.engine, RunStats::default());
            assert_eq!(store.get_range(0, u64::MAX), Vec::new());
        }
    }

    #[test]
    fn backend_names_roundtrip() {
        for b in Backend::ALL {
            assert_eq!(Backend::from_name(b.name()), Some(b));
        }
        assert_eq!(Backend::from_name("nope"), None);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_shards() {
        ShardedStore::build(Backend::Sorted, 3, &[]);
    }

    #[test]
    #[should_panic(expected = "merge_threshold must be positive")]
    fn rejects_zero_merge_threshold() {
        ShardedStore::build_with(Backend::Sorted, 1, &[], StoreConfig::with_threshold(0));
    }

    #[test]
    #[should_panic(expected = "max_delta")]
    fn rejects_max_delta_below_threshold() {
        ShardedStore::build_with(
            Backend::Sorted,
            1,
            &[],
            StoreConfig {
                merge_threshold: 8,
                max_delta: 4,
                ..StoreConfig::default()
            },
        );
    }

    #[test]
    fn build_duplicates_resolve_last_write_wins() {
        for backend in Backend::ALL {
            let store = ShardedStore::build(
                backend,
                2,
                &[(5, 1), (9, 7), (5, 2), (5, 3), (11, 4), (9, 8)],
            );
            assert_eq!(store.len(), 3, "{}", backend.name());
            assert_eq!(store.get(5), Some(3));
            assert_eq!(store.get(9), Some(8));
            assert_eq!(store.get(11), Some(4));
        }
    }

    #[test]
    fn put_remove_agree_with_oracle_across_thresholds_and_modes() {
        // A deterministic mixed schedule over a small key space,
        // checked op-by-op against a HashMap, across all backends,
        // merge thresholds (including merge-every-write) and both
        // merge modes. Visible state never depends on merge timing.
        for backend in Backend::ALL {
            for threshold in [1usize, 4, 1 << 20] {
                for mode in MODES {
                    let store =
                        ShardedStore::build_with(backend, 2, &pairs(300), cfg(threshold, mode));
                    let mut oracle: HashMap<u64, u64> = pairs(300).into_iter().collect();
                    for i in 0..1200u64 {
                        let key = i * 17 % 1000;
                        let tag = format!("{}/t{threshold}/{mode:?} i={i}", backend.name());
                        match i % 5 {
                            0 | 1 => {
                                assert_eq!(store.put(key, i), oracle.insert(key, i), "{tag}");
                            }
                            2 => {
                                assert_eq!(store.remove(key), oracle.remove(&key), "{tag}");
                            }
                            _ => {
                                assert_eq!(store.get(key), oracle.get(&key).copied(), "{tag}");
                            }
                        }
                        assert_eq!(store.len(), oracle.len(), "{tag}");
                    }
                    // Once quiesced, every shard's residual delta is
                    // below the threshold.
                    store.quiesce();
                    assert!(store.delta_len() < threshold.max(1) * store.num_shards());
                    if threshold == 1 {
                        // Merge-every-write: the drained delta is
                        // empty. Foreground merges synchronously, so
                        // every effective write merged; background
                        // merges coalesce but must have run.
                        assert_eq!(store.delta_len(), 0);
                        match mode {
                            MergeMode::Foreground => {
                                assert!(store.merges() >= 480, "merges={}", store.merges());
                                assert_eq!(store.bg_merges(), 0);
                            }
                            MergeMode::Background => {
                                assert!(store.merges() >= 1);
                                assert_eq!(store.bg_merges(), store.merges());
                            }
                        }
                        assert_eq!(store.merge_latency().count(), store.merges());
                        assert_eq!(store.merge_backlog(), 0);
                    }
                    // Full scan agreement after the schedule.
                    for probe in 0..1000u64 {
                        assert_eq!(store.get(probe), oracle.get(&probe).copied());
                    }
                    let mut want: Vec<(u64, u64)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
                    want.sort_unstable();
                    assert_eq!(store.get_range(0, u64::MAX), want);
                }
            }
        }
    }

    #[test]
    fn batch_lookups_see_writes_and_tombstones() {
        for backend in Backend::ALL {
            let store =
                ShardedStore::build_with(backend, 2, &pairs(500), StoreConfig::with_threshold(64));
            store.put(0, 999); // overwrite
            store.put(7, 123); // fresh key (7 % 3 != 0)
            store.remove(3); // tombstone an existing key
            let probes: Vec<u64> = (0..600u64).collect();
            let mut batches: Vec<Vec<u64>> = vec![Vec::new(); 2];
            for &p in &probes {
                batches[store.shard_of(p)].push(p);
            }
            let mut scratch = LookupScratch::default();
            let mut delta_hits = 0;
            for (s, batch) in batches.iter().enumerate() {
                let mut out = vec![None; batch.len()];
                let outcome = store.lookup_batch(
                    s,
                    batch,
                    Interleave::from_group(6),
                    ParConfig::with_threads(1),
                    &mut scratch,
                    &mut out,
                );
                delta_hits += outcome.delta_hits;
                for (&k, &r) in batch.iter().zip(&out) {
                    assert_eq!(r, store.get(k), "{} key={k}", backend.name());
                }
            }
            // The three written keys are each probed exactly once and
            // decided by the plan, not the engine.
            assert_eq!(delta_hits, 3, "{}", backend.name());
            assert_eq!(store.get(0), Some(999));
            assert_eq!(store.get(7), Some(123));
            assert_eq!(store.get(3), None);
        }
    }

    #[test]
    fn scan_range_merges_delta_and_elides_tombstones() {
        for backend in Backend::ALL {
            for shards in [1usize, 4] {
                let store = ShardedStore::build_with(
                    backend,
                    shards,
                    &pairs(400),
                    StoreConfig::with_threshold(1 << 20),
                );
                let mut oracle: BTreeMap<u64, u64> = pairs(400).into_iter().collect();
                // Overrides, fresh keys and tombstones, delta-resident.
                for k in 0..120u64 {
                    match k % 3 {
                        0 => {
                            store.put(k * 2, 50_000 + k);
                            oracle.insert(k * 2, 50_000 + k);
                        }
                        1 => {
                            store.remove(k * 3);
                            oracle.remove(&(k * 3));
                        }
                        _ => {
                            store.put(100_000 + k, k);
                            oracle.insert(100_000 + k, k);
                        }
                    }
                }
                for (lo, hi) in [
                    (0u64, 0u64),
                    (0, 100),
                    (37, 613),
                    (99_990, 100_200),
                    (0, u64::MAX),
                    (500, 400),
                ] {
                    let want: Vec<(u64, u64)> = oracle
                        .range(lo..=hi.max(lo))
                        .map(|(&k, &v)| (k, v))
                        .collect();
                    let want = if lo > hi { Vec::new() } else { want };
                    assert_eq!(
                        store.get_range(lo, hi),
                        want,
                        "{}/{shards} [{lo}, {hi}]",
                        backend.name()
                    );
                }
                // Per-shard scans partition the global range.
                let mut union: Vec<(u64, u64)> = (0..shards)
                    .flat_map(|s| store.scan_range(s, 0, u64::MAX))
                    .collect();
                union.sort_unstable();
                let want: Vec<(u64, u64)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
                assert_eq!(union, want);
            }
        }
    }

    #[test]
    fn run_stack_folds_past_max_runs_and_preserves_overrides() {
        // max_runs 2, never merging: the 3rd push folds the stack into
        // one run. Overwrites and tombstones straddle run boundaries
        // and must resolve newest-run-first before and after the fold.
        let store = ShardedStore::build_with(
            Backend::Sorted,
            1,
            &pairs(10),
            StoreConfig::with_threshold(1 << 20)
                .with_max_runs(2)
                .foreground(),
        );
        assert_eq!(store.put(0, 1), Some(1000)); // run 1 overrides main
        assert_eq!(store.put(3, 2), Some(1001)); // run 2
        assert_eq!(store.delta_runs(), 2);
        assert_eq!(store.compactions(), 0);
        assert_eq!(store.delta_len(), 2);
        assert_eq!(store.remove(0), Some(1)); // run 3 → fold
        assert_eq!(store.delta_runs(), 3);
        assert_eq!(store.compactions(), 1);
        // Folded: one run, exact count (tombstones still count).
        assert_eq!(store.delta_len(), 2);
        assert_eq!(store.get(0), None);
        assert_eq!(store.get(3), Some(2));
        // A re-override after the fold double-counts until the next
        // fold collapses it back to the distinct-key count.
        assert_eq!(store.put(0, 9), None);
        assert_eq!(store.delta_len(), 3);
        assert_eq!(store.get(0), Some(9));
        assert_eq!(store.put(6, 7), Some(1002)); // 3rd run again → fold
        assert_eq!(store.compactions(), 2);
        assert_eq!(store.delta_len(), 3); // (0, 9), (3, 2), (6, 7)
        assert_eq!(store.get(0), Some(9));
        assert_eq!(store.get_range(0, 8), vec![(0, 9), (3, 2), (6, 7)]);
        assert_eq!(store.merges(), 0);
    }

    #[test]
    fn foreground_merges_swap_epochs_and_drain_the_delta() {
        // Foreground mode keeps the old deterministic accounting:
        // every write swaps the version, every 8th write merges
        // inline.
        let store = ShardedStore::build_with(
            Backend::Csb,
            1,
            &pairs(100),
            StoreConfig::with_threshold(8).foreground(),
        );
        assert_eq!(store.shard_epoch(0), 0);
        for i in 0..64u64 {
            store.put(10_000 + i, i);
        }
        assert_eq!(store.shard_epoch(0), 64);
        assert_eq!(store.merges(), 8);
        assert_eq!(store.bg_merges(), 0);
        assert_eq!(store.delta_len(), 0);
        assert_eq!(store.len(), 164);
        for i in 0..64u64 {
            assert_eq!(store.get(10_000 + i), Some(i));
        }
    }

    #[test]
    fn background_merges_run_off_the_write_path_and_drain() {
        let store =
            ShardedStore::build_with(Backend::Csb, 1, &pairs(100), StoreConfig::with_threshold(8));
        for i in 0..64u64 {
            store.put(10_000 + i, i);
        }
        store.quiesce();
        // Coalescing makes the exact count timing-dependent, but the
        // merger must have run, drained the delta below the threshold,
        // and left every write visible.
        assert!(store.merges() >= 1);
        assert_eq!(store.bg_merges(), store.merges());
        assert!(store.delta_len() < 8, "delta={}", store.delta_len());
        assert_eq!(store.merge_backlog(), 0);
        assert_eq!(store.len(), 164);
        for i in 0..64u64 {
            assert_eq!(store.get(10_000 + i), Some(i));
        }
    }

    #[test]
    fn writers_block_at_max_delta_but_make_progress() {
        // Tiny threshold and hard bound: concurrent writers must hit
        // the max_delta wall constantly and still complete with the
        // right final state (the merger keeps draining under them).
        let store = ShardedStore::build_with(
            Backend::Sorted,
            1,
            &pairs(50),
            StoreConfig {
                merge_threshold: 2,
                max_delta: 4,
                ..StoreConfig::default()
            },
        );
        std::thread::scope(|scope| {
            for t in 0..2u64 {
                let store = &store;
                scope.spawn(move || {
                    for i in 0..150u64 {
                        store.put(20_000 + t * 1000 + i, i);
                    }
                });
            }
        });
        store.quiesce();
        assert!(store.delta_len() < 2);
        assert_eq!(store.len(), 350);
        for t in 0..2u64 {
            for i in 0..150u64 {
                assert_eq!(store.get(20_000 + t * 1000 + i), Some(i));
            }
        }
    }

    #[test]
    fn concurrent_reads_during_merges_are_consistent() {
        // A writer bumps one key through merge-every-write while
        // readers hammer point gets and batch lookups. Reads must be
        // monotone for the hot key (versions publish in order) and
        // rock-stable for an untouched key — across merges, never torn.
        // Background mode adds the merger thread as a second publisher
        // racing the writer.
        const N: u64 = 300;
        for backend in Backend::ALL {
            for mode in MODES {
                let store =
                    ShardedStore::build_with(backend, 1, &[(2, 1_000_000), (4, 42)], cfg(1, mode));
                std::thread::scope(|scope| {
                    let writer = scope.spawn(|| {
                        for v in 1_000_001..=1_000_000 + N {
                            store.put(2, v);
                        }
                    });
                    for _ in 0..2 {
                        scope.spawn(|| {
                            let mut scratch = LookupScratch::default();
                            let mut out = [None, None];
                            let mut last = 1_000_000u64;
                            while last < 1_000_000 + N {
                                let got = store.get(2).expect("hot key must always exist");
                                assert!(got >= last, "hot key went backwards: {got} < {last}");
                                last = got;
                                store.lookup_batch(
                                    0,
                                    &[2, 4],
                                    Interleave::from_group(4),
                                    ParConfig::with_threads(1),
                                    &mut scratch,
                                    &mut out,
                                );
                                let batch_hot = out[0].expect("hot key must always exist");
                                assert!(batch_hot >= last, "batch read went backwards");
                                assert_eq!(out[1], Some(42), "cold key must never move");
                                last = last.max(batch_hot);
                            }
                        });
                    }
                    writer.join().unwrap();
                });
                store.quiesce();
                assert_eq!(store.get(2), Some(1_000_000 + N));
                match mode {
                    MergeMode::Foreground => {
                        assert_eq!(store.merges(), N, "{}", backend.name());
                    }
                    MergeMode::Background => {
                        assert!(store.merges() >= 1, "{}", backend.name());
                        assert_eq!(store.delta_len(), 0);
                    }
                }
            }
        }
    }

    #[test]
    fn scans_race_background_merges_without_tearing() {
        // A writer churns keys ≥ 10_000 through constant background
        // merges; scans over the untouched region must return exactly
        // the static pairs every time, and full-range scans must stay
        // sorted and duplicate-free (one consistent snapshot per
        // shard).
        let base = pairs(200); // keys 0..600
        let store =
            ShardedStore::build_with(Backend::Sorted, 2, &base, StoreConfig::with_threshold(1));
        let want_static: Vec<(u64, u64)> = base.clone();
        let done = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for i in 0..300u64 {
                    store.put(10_000 + (i % 40), i);
                }
                done.store(1, Ordering::Release);
            });
            scope.spawn(|| {
                while done.load(Ordering::Acquire) == 0 {
                    assert_eq!(store.get_range(0, 599), want_static);
                    let all = store.get_range(0, u64::MAX);
                    assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "unsorted or dup");
                }
            });
        });
        store.quiesce();
        let all = store.get_range(0, u64::MAX);
        assert_eq!(all.len(), 240);
    }
}

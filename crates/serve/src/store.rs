//! [`ShardedStore`]: a writable, hash-partitioned key/value store
//! whose shards are served by the existing bulk index drivers.
//!
//! Each shard is a **Main/Delta pair**, the columnstore resolution of
//! the read-optimized vs write-optimized tension:
//!
//! * the **main** is one of the three immutable index structures the
//!   workspace drives in bulk through the interleaved engine — a
//!   **sorted column** (binary-search rank + equality resolve), a
//!   **CSB+-tree** (Listing 6 traversal coroutines), or a **chained
//!   hash table** (Section 6 probe coroutines);
//! * the **delta** is a small sorted run of `(key, Option<value>)`
//!   overrides (`None` = tombstone) consulted *after* the main batch
//!   resolves, with last-write-wins semantics.
//!
//! Writes go to the delta; when a shard's delta reaches
//! [`StoreConfig::merge_threshold`] entries, a **merge** rebuilds that
//! shard's main from main+delta and publishes `(new main, empty
//! delta)` through an [`EpochCell`] swap. Readers snapshot one
//! `Arc<ShardVersion>` per operation, so they always see a *consistent*
//! main+delta pair: an in-flight dispatch batch keeps reading the
//! version it started on while a merge publishes the next one, and a
//! merge can never tear a read (the swap is a single pointer store).
//! Writers to the *same* shard serialize on a per-shard write lock;
//! writers never block readers.
//!
//! Shard routing uses the *top* bits of the key's Fibonacci hash. The
//! hash-table backend buckets on bits 32 and up of the same hash
//! (`(hash64 >> 32) & mask`), so the two partitions stay independent
//! as long as a shard's bucket count stays below
//! 2^(32 − shard_bits); sharing bits with the bucket index would
//! leave every shard's table using only a fraction of its buckets.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use isi_core::epoch::EpochCell;
use isi_core::mem::DirectMem;
use isi_core::par::ParConfig;
use isi_core::policy::Interleave;
use isi_core::sched::RunStats;
use isi_core::stats::LatencyHist;
use isi_csb::{CsbTree, DirectTreeStore};
use isi_hash::table::{ChainedHashTable, HashKey};

/// Which index structure backs every shard's main of a [`ShardedStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Sorted key column + aligned value column; lookups are
    /// interleaved binary-search ranks resolved by an equality check.
    Sorted,
    /// A CSB+-tree per shard; lookups are interleaved tree descents.
    Csb,
    /// A chained hash table per shard; lookups are interleaved probes.
    Hash,
}

impl Backend {
    /// All backends, in sweep order.
    pub const ALL: [Backend; 3] = [Backend::Sorted, Backend::Csb, Backend::Hash];

    /// Stable lowercase name (used in benchmark documents).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Sorted => "sorted",
            Backend::Csb => "csb",
            Backend::Hash => "hash",
        }
    }

    /// Parse a [`Self::name`] back into a backend.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|b| b.name() == name)
    }
}

/// Store tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Delta entries (upserts + tombstones) in one shard that trigger
    /// a merge of that shard. `1` merges on every write (the delta
    /// never survives a write); large values batch more writes per
    /// rebuild at the cost of a larger overlay on the read path.
    pub merge_threshold: usize,
}

impl Default for StoreConfig {
    /// Merge a shard after 4096 delta entries.
    fn default() -> Self {
        Self {
            merge_threshold: 4096,
        }
    }
}

/// One shard's immutable main index (private: the store picks per
/// backend).
enum MainIndex {
    Sorted { keys: Vec<u64>, vals: Vec<u64> },
    Csb(CsbTree<u64, u64>),
    Hash(ChainedHashTable<u64, u64>),
}

impl MainIndex {
    /// Build from strictly-sorted, duplicate-free pairs.
    fn build(backend: Backend, pairs: &[(u64, u64)]) -> Self {
        debug_assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0));
        match backend {
            Backend::Sorted => MainIndex::Sorted {
                keys: pairs.iter().map(|&(k, _)| k).collect(),
                vals: pairs.iter().map(|&(_, v)| v).collect(),
            },
            Backend::Csb => MainIndex::Csb(CsbTree::from_sorted(pairs)),
            Backend::Hash => {
                let mut t = ChainedHashTable::with_capacity(pairs.len());
                for &(k, v) in pairs {
                    t.insert(k, v);
                }
                MainIndex::Hash(t)
            }
        }
    }

    /// Sequential point lookup.
    fn get(&self, key: u64) -> Option<u64> {
        match self {
            MainIndex::Sorted { keys, vals } => keys.binary_search(&key).ok().map(|i| vals[i]),
            MainIndex::Csb(tree) => tree.get(&key),
            MainIndex::Hash(table) => table.get(&key),
        }
    }

    /// Every pair, sorted by key (merge input).
    fn pairs(&self) -> Vec<(u64, u64)> {
        match self {
            MainIndex::Sorted { keys, vals } => {
                keys.iter().copied().zip(vals.iter().copied()).collect()
            }
            MainIndex::Csb(tree) => tree.items(),
            MainIndex::Hash(table) => {
                let mut out: Vec<(u64, u64)> =
                    table.entries().iter().map(|e| (e.key, e.val)).collect();
                out.sort_unstable_by_key(|&(k, _)| k);
                out
            }
        }
    }

    /// Batch lookup through the morsel-parallel interleaved engine.
    fn lookup_batch(
        &self,
        keys: &[u64],
        policy: Interleave,
        par: ParConfig,
        scratch: &mut Vec<u32>,
        out: &mut [Option<u64>],
    ) -> RunStats {
        let group = policy.group_or_one();
        match self {
            MainIndex::Sorted { keys: col, vals } => {
                // Rank via the interleaved binary-search coroutines,
                // then resolve rank -> value with one equality check
                // (the rank position is cache-hot right after the
                // search touched it).
                if col.is_empty() {
                    out.fill(None);
                    return RunStats::default();
                }
                let mem = DirectMem::new(col);
                scratch.clear();
                scratch.resize(keys.len(), 0);
                let stats = isi_search::bulk_rank_coro_par(mem, keys, group, par, scratch);
                for ((o, &r), &k) in out.iter_mut().zip(scratch.iter()).zip(keys) {
                    *o = (col[r as usize] == k).then(|| vals[r as usize]);
                }
                stats
            }
            MainIndex::Csb(tree) => {
                isi_csb::bulk_lookup_par(DirectTreeStore::new(tree), keys, group, par, out)
            }
            MainIndex::Hash(table) => isi_hash::bulk_probe_par(table, keys, group, par, out),
        }
    }
}

/// The append-friendly overlay: a sorted run of per-key overrides.
/// `Some(v)` upserts the key to `v`; `None` is a tombstone. The run is
/// small (bounded by the merge threshold), so writes clone it — that
/// keeps every published [`ShardVersion`] immutable, which is what
/// makes reader snapshots consistent without any read-side locking
/// order.
#[derive(Clone, Default)]
struct Delta {
    entries: Vec<(u64, Option<u64>)>,
}

impl Delta {
    /// The override for `key`: `Some(Some(v))` = upserted to `v`,
    /// `Some(None)` = tombstoned, `None` = no override (fall through
    /// to the main).
    fn get(&self, key: u64) -> Option<Option<u64>> {
        self.entries
            .binary_search_by_key(&key, |e| e.0)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// A copy of this delta with `key` overridden (last write wins).
    fn with_upsert(&self, key: u64, val: Option<u64>) -> Delta {
        let mut entries = self.entries.clone();
        match entries.binary_search_by_key(&key, |e| e.0) {
            Ok(i) => entries[i].1 = val,
            Err(i) => entries.insert(i, (key, val)),
        }
        Delta { entries }
    }

    /// Number of overrides (upserts + tombstones).
    fn len(&self) -> usize {
        self.entries.len()
    }

    fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One published, immutable version of a shard: the main index plus
/// the delta overlay that has accumulated on top of it. Readers
/// snapshot the whole pair atomically through the shard's
/// [`EpochCell`].
struct ShardVersion {
    /// Shared with successor versions until a merge replaces it.
    main: Arc<MainIndex>,
    delta: Delta,
}

/// Per-shard write-side state (serialized by the shard's write lock).
#[derive(Default)]
struct WriteStats {
    merges: u64,
    merge_ns: LatencyHist,
}

struct Shard {
    version: EpochCell<ShardVersion>,
    /// Serializes writers to this shard and guards the merge counters.
    write: Mutex<WriteStats>,
}

/// A writable key/value store hash-partitioned into power-of-two
/// shards, each shard a Main/Delta pair servable by the bulk
/// interleaved drivers (see the [module docs](self)).
///
/// Point reads and batch lookups take `&self` and never block behind
/// writes or merges; `put`/`remove` also take `&self` (interior
/// mutability) and serialize per shard.
pub struct ShardedStore {
    backend: Backend,
    shard_bits: u32,
    cfg: StoreConfig,
    shards: Vec<Shard>,
    /// Live key count (upserts − tombstoned keys), maintained by the
    /// write path.
    live: AtomicUsize,
}

impl ShardedStore {
    /// Build with the default [`StoreConfig`].
    ///
    /// Duplicate keys in `pairs` resolve **last-write-wins** (the
    /// later pair in slice order supersedes the earlier), matching the
    /// upsert path.
    ///
    /// # Panics
    /// Panics if `num_shards` is not a power of two (including 0).
    pub fn build(backend: Backend, num_shards: usize, pairs: &[(u64, u64)]) -> Self {
        Self::build_with(backend, num_shards, pairs, StoreConfig::default())
    }

    /// Build from key/value pairs with explicit tuning knobs.
    ///
    /// # Panics
    /// Panics if `num_shards` is not a power of two (including 0) or
    /// if `cfg.merge_threshold` is 0.
    pub fn build_with(
        backend: Backend,
        num_shards: usize,
        pairs: &[(u64, u64)],
        cfg: StoreConfig,
    ) -> Self {
        assert!(
            num_shards.is_power_of_two(),
            "num_shards must be a power of two, got {num_shards}"
        );
        assert!(cfg.merge_threshold > 0, "merge_threshold must be positive");
        let shard_bits = num_shards.trailing_zeros();
        let mut parts: Vec<Vec<(u64, u64)>> = (0..num_shards).map(|_| Vec::new()).collect();
        for &(k, v) in pairs {
            parts[shard_route(k, shard_bits)].push((k, v));
        }
        let mut live = 0usize;
        let shards = parts
            .into_iter()
            .map(|mut part| {
                // Stable sort keeps equal keys in input order; the
                // last occurrence of each key wins.
                part.sort_by_key(|&(k, _)| k);
                let mut dedup: Vec<(u64, u64)> = Vec::with_capacity(part.len());
                for &(k, v) in &part {
                    match dedup.last_mut() {
                        Some(last) if last.0 == k => last.1 = v,
                        _ => dedup.push((k, v)),
                    }
                }
                live += dedup.len();
                Shard {
                    version: EpochCell::new(ShardVersion {
                        main: Arc::new(MainIndex::build(backend, &dedup)),
                        delta: Delta::default(),
                    }),
                    write: Mutex::new(WriteStats::default()),
                }
            })
            .collect();
        Self {
            backend,
            shard_bits,
            cfg,
            shards,
            live: AtomicUsize::new(live),
        }
    }

    /// The backend every shard's main uses.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The tuning knobs the store was built with.
    pub fn config(&self) -> StoreConfig {
        self.cfg
    }

    /// Number of shards (a power of two).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of live keys (pairs minus tombstoned keys).
    pub fn len(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// True if the store holds no live keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The shard that owns `key`.
    #[inline]
    pub fn shard_of(&self, key: u64) -> usize {
        shard_route(key, self.shard_bits)
    }

    /// Current delta entries across all shards (each `< merge_threshold`
    /// per shard at rest).
    pub fn delta_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.version.load().delta.len())
            .sum()
    }

    /// Merges performed since build, across all shards.
    pub fn merges(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.write.lock().unwrap().merges)
            .sum()
    }

    /// Merge wall-latency histogram (nanoseconds), across all shards.
    pub fn merge_latency(&self) -> LatencyHist {
        let mut hist = LatencyHist::new();
        for s in &self.shards {
            hist.merge(&s.write.lock().unwrap().merge_ns);
        }
        hist
    }

    /// Version-swap count of `shard` (one per write, since every write
    /// publishes a new version; merges are the swaps that also replace
    /// the main).
    pub fn shard_epoch(&self, shard: usize) -> u64 {
        self.shards[shard].version.epoch()
    }

    /// Sequential point lookup — the oracle the batched path must
    /// agree with. Reads one consistent [`ShardVersion`] snapshot:
    /// delta override first, main otherwise.
    pub fn get(&self, key: u64) -> Option<u64> {
        let v = self.shards[self.shard_of(key)].version.load();
        match v.delta.get(key) {
            Some(over) => over,
            None => v.main.get(key),
        }
    }

    /// Upsert `key = val`; returns the previously visible value
    /// (last-write-wins). May trigger a merge of the owning shard.
    pub fn put(&self, key: u64, val: u64) -> Option<u64> {
        self.write(key, Some(val))
    }

    /// Remove `key`; returns the value it held, if any. A miss is a
    /// no-op (no tombstone is recorded for a key that is nowhere).
    pub fn remove(&self, key: u64) -> Option<u64> {
        self.write(key, None)
    }

    /// The shared write path: record the override in the owning
    /// shard's delta (publishing a new version), merging the shard
    /// when the delta reaches the threshold.
    fn write(&self, key: u64, val: Option<u64>) -> Option<u64> {
        let shard = &self.shards[self.shard_of(key)];
        let mut w = shard.write.lock().unwrap();
        let cur = shard.version.load();
        let prev = match cur.delta.get(key) {
            Some(over) => over,
            None => cur.main.get(key),
        };
        // Removing a key that is nowhere needs no tombstone (and must
        // not grow the delta, or idempotent removes would force
        // merges).
        if val.is_none() && prev.is_none() && cur.delta.get(key).is_none() {
            return None;
        }
        let delta = cur.delta.with_upsert(key, val);
        if delta.len() >= self.cfg.merge_threshold {
            // Merge: rebuild this shard's main from main+delta and
            // publish (new main, empty delta) in one epoch swap.
            // Readers holding the old version keep reading it; new
            // readers see the merged main. The shard write lock is
            // held throughout, so only same-shard *writers* wait.
            let t0 = Instant::now();
            let merged = merge_pairs(&cur.main.pairs(), &delta.entries);
            let main = Arc::new(MainIndex::build(self.backend, &merged));
            shard.version.store(Arc::new(ShardVersion {
                main,
                delta: Delta::default(),
            }));
            w.merges += 1;
            w.merge_ns.record(t0.elapsed().as_nanos() as u64);
        } else {
            shard.version.store(Arc::new(ShardVersion {
                main: Arc::clone(&cur.main),
                delta,
            }));
        }
        match (prev.is_some(), val.is_some()) {
            (false, true) => {
                self.live.fetch_add(1, Ordering::Relaxed);
            }
            (true, false) => {
                self.live.fetch_sub(1, Ordering::Relaxed);
            }
            _ => {}
        }
        prev
    }

    /// Run a batch of lookups that all route to `shard` through the
    /// morsel-parallel interleaved engine, scattering `out[i]` =
    /// lookup result of `keys[i]`. Returns the engine's merged
    /// [`RunStats`].
    ///
    /// The whole batch reads **one** [`ShardVersion`] snapshot: the
    /// main resolves through the engine, then the delta overlay
    /// rewrites the overridden slots. A merge publishing mid-batch
    /// cannot produce torn results — this batch finishes on the
    /// version it started with.
    ///
    /// `scratch` is caller-owned rank scratch space (used by the
    /// sorted backend); reusing one vector across calls keeps the
    /// steady-state dispatch path allocation-free, matching the
    /// engine's frame-slab discipline.
    ///
    /// # Panics
    /// Panics if `out.len() != keys.len()` or if some key does not
    /// route to `shard` (batch formation bug in the caller).
    pub fn lookup_batch(
        &self,
        shard: usize,
        keys: &[u64],
        policy: Interleave,
        par: ParConfig,
        scratch: &mut Vec<u32>,
        out: &mut [Option<u64>],
    ) -> RunStats {
        assert_eq!(keys.len(), out.len(), "output length mismatch");
        debug_assert!(
            keys.iter().all(|&k| self.shard_of(k) == shard),
            "batch contains keys routed to another shard"
        );
        let v = self.shards[shard].version.load();
        let stats = v.main.lookup_batch(keys, policy, par, scratch, out);
        if !v.delta.is_empty() {
            for (o, &k) in out.iter_mut().zip(keys) {
                if let Some(over) = v.delta.get(k) {
                    *o = over;
                }
            }
        }
        stats
    }
}

/// Merge-join a shard's sorted main pairs with its sorted delta run:
/// delta overrides win, tombstones drop the key. Both inputs are
/// strictly sorted by key; so is the output.
fn merge_pairs(main: &[(u64, u64)], delta: &[(u64, Option<u64>)]) -> Vec<(u64, u64)> {
    let mut out = Vec::with_capacity(main.len() + delta.len());
    let (mut i, mut j) = (0, 0);
    while i < main.len() && j < delta.len() {
        let (mk, mv) = main[i];
        let (dk, dv) = delta[j];
        if mk < dk {
            out.push((mk, mv));
            i += 1;
        } else {
            if let Some(v) = dv {
                out.push((dk, v));
            }
            j += 1;
            if mk == dk {
                i += 1;
            }
        }
    }
    out.extend_from_slice(&main[i..]);
    for &(k, v) in &delta[j..] {
        if let Some(v) = v {
            out.push((k, v));
        }
    }
    out
}

/// Top-bits shard routing: shard = high `bits` bits of the Fibonacci
/// hash (0 when `bits == 0`).
#[inline]
fn shard_route(key: u64, bits: u32) -> usize {
    if bits == 0 {
        0
    } else {
        (key.hash64() >> (64 - bits)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn pairs(n: u64) -> Vec<(u64, u64)> {
        (0..n).map(|i| (i * 3, i + 1000)).collect()
    }

    #[test]
    fn routing_covers_all_shards_and_is_stable() {
        let store = ShardedStore::build(Backend::Sorted, 4, &pairs(4096));
        let mut per_shard = [0usize; 4];
        for i in 0..4096u64 {
            let s = store.shard_of(i * 3);
            per_shard[s] += 1;
        }
        // Fibonacci hashing spreads uniformly: no shard is empty or
        // grossly overloaded on 4k keys.
        for (s, &n) in per_shard.iter().enumerate() {
            assert!(n > 512, "shard {s} underloaded: {n}");
        }
        assert_eq!(per_shard.iter().sum::<usize>(), 4096);
    }

    #[test]
    fn get_agrees_across_backends_and_shard_counts() {
        let data = pairs(2000);
        for backend in Backend::ALL {
            for shards in [1, 2, 4, 8] {
                let store = ShardedStore::build(backend, shards, &data);
                assert_eq!(store.len(), 2000);
                assert_eq!(store.num_shards(), shards);
                for probe in 0..3100u64 {
                    let expect = (probe % 3 == 0 && probe < 6000).then(|| probe / 3 + 1000);
                    assert_eq!(
                        store.get(probe),
                        expect,
                        "{}/{shards} probe={probe}",
                        backend.name()
                    );
                }
            }
        }
    }

    #[test]
    fn batch_lookup_matches_get() {
        let data = pairs(5000);
        let probes: Vec<u64> = (0..2500).map(|i| i * 7 % 16_000).collect();
        for backend in Backend::ALL {
            for shards in [1, 4] {
                let store = ShardedStore::build(backend, shards, &data);
                // Form per-shard batches exactly as the service does.
                let mut batches: Vec<Vec<u64>> = vec![Vec::new(); shards];
                for &p in &probes {
                    batches[store.shard_of(p)].push(p);
                }
                let mut scratch = Vec::new();
                for (s, batch) in batches.iter().enumerate() {
                    let mut out = vec![None; batch.len()];
                    for policy in [Interleave::Sequential, Interleave::Interleaved(6)] {
                        let stats = store.lookup_batch(
                            s,
                            batch,
                            policy,
                            ParConfig::with_threads(2),
                            &mut scratch,
                            &mut out,
                        );
                        assert_eq!(stats.lookups, batch.len() as u64);
                        for (k, r) in batch.iter().zip(&out) {
                            assert_eq!(*r, store.get(*k), "{}/{shards}", backend.name());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn empty_store_and_empty_batches() {
        for backend in Backend::ALL {
            let store = ShardedStore::build(backend, 2, &[]);
            assert!(store.is_empty());
            assert_eq!(store.get(7), None);
            let mut out = vec![None; 2];
            // Keys must route to the queried shard; find two that do.
            let ks: Vec<u64> = (0..100)
                .filter(|&k| store.shard_of(k) == 0)
                .take(2)
                .collect();
            let mut scratch = Vec::new();
            store.lookup_batch(
                0,
                &ks,
                Interleave::Interleaved(4),
                ParConfig::default(),
                &mut scratch,
                &mut out,
            );
            assert_eq!(out, [None, None]);
            let stats = store.lookup_batch(
                1,
                &[],
                Interleave::Sequential,
                ParConfig::default(),
                &mut scratch,
                &mut out[..0],
            );
            assert_eq!(stats, RunStats::default());
        }
    }

    #[test]
    fn backend_names_roundtrip() {
        for b in Backend::ALL {
            assert_eq!(Backend::from_name(b.name()), Some(b));
        }
        assert_eq!(Backend::from_name("nope"), None);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_shards() {
        ShardedStore::build(Backend::Sorted, 3, &[]);
    }

    #[test]
    #[should_panic(expected = "merge_threshold must be positive")]
    fn rejects_zero_merge_threshold() {
        ShardedStore::build_with(Backend::Sorted, 1, &[], StoreConfig { merge_threshold: 0 });
    }

    #[test]
    fn build_duplicates_resolve_last_write_wins() {
        for backend in Backend::ALL {
            let store = ShardedStore::build(
                backend,
                2,
                &[(5, 1), (9, 7), (5, 2), (5, 3), (11, 4), (9, 8)],
            );
            assert_eq!(store.len(), 3, "{}", backend.name());
            assert_eq!(store.get(5), Some(3));
            assert_eq!(store.get(9), Some(8));
            assert_eq!(store.get(11), Some(4));
        }
    }

    #[test]
    fn put_remove_agree_with_oracle_across_thresholds() {
        // A deterministic mixed schedule over a small key space,
        // checked op-by-op against a HashMap, across all backends and
        // merge thresholds including merge-every-write.
        for backend in Backend::ALL {
            for threshold in [1usize, 4, 1 << 20] {
                let store = ShardedStore::build_with(
                    backend,
                    2,
                    &pairs(300),
                    StoreConfig {
                        merge_threshold: threshold,
                    },
                );
                let mut oracle: HashMap<u64, u64> = pairs(300).into_iter().collect();
                for i in 0..1200u64 {
                    let key = i * 17 % 1000;
                    let tag = format!("{}/t{threshold} i={i}", backend.name());
                    match i % 5 {
                        0 | 1 => {
                            assert_eq!(store.put(key, i), oracle.insert(key, i), "{tag}");
                        }
                        2 => {
                            assert_eq!(store.remove(key), oracle.remove(&key), "{tag}");
                        }
                        _ => {
                            assert_eq!(store.get(key), oracle.get(&key).copied(), "{tag}");
                        }
                    }
                    assert_eq!(store.len(), oracle.len(), "{tag}");
                }
                // At rest every shard's delta is below the threshold.
                assert!(store.delta_len() < threshold.max(1) * store.num_shards());
                if threshold == 1 {
                    // Merge-every-write: the delta never survives.
                    assert_eq!(store.delta_len(), 0);
                    assert!(store.merges() >= 480, "merges={}", store.merges());
                    assert_eq!(store.merge_latency().count(), store.merges());
                }
                // Full scan agreement after the schedule.
                for probe in 0..1000u64 {
                    assert_eq!(store.get(probe), oracle.get(&probe).copied());
                }
            }
        }
    }

    #[test]
    fn batch_lookups_see_writes_and_tombstones() {
        for backend in Backend::ALL {
            let store = ShardedStore::build_with(
                backend,
                2,
                &pairs(500),
                StoreConfig {
                    merge_threshold: 64,
                },
            );
            store.put(0, 999); // overwrite
            store.put(7, 123); // fresh key (7 % 3 != 0)
            store.remove(3); // tombstone an existing key
            let probes: Vec<u64> = (0..600u64).collect();
            let mut batches: Vec<Vec<u64>> = vec![Vec::new(); 2];
            for &p in &probes {
                batches[store.shard_of(p)].push(p);
            }
            let mut scratch = Vec::new();
            for (s, batch) in batches.iter().enumerate() {
                let mut out = vec![None; batch.len()];
                store.lookup_batch(
                    s,
                    batch,
                    Interleave::Interleaved(6),
                    ParConfig::with_threads(1),
                    &mut scratch,
                    &mut out,
                );
                for (&k, &r) in batch.iter().zip(&out) {
                    assert_eq!(r, store.get(k), "{} key={k}", backend.name());
                }
            }
            assert_eq!(store.get(0), Some(999));
            assert_eq!(store.get(7), Some(123));
            assert_eq!(store.get(3), None);
        }
    }

    #[test]
    fn merges_swap_epochs_and_drain_the_delta() {
        let store = ShardedStore::build_with(
            Backend::Csb,
            1,
            &pairs(100),
            StoreConfig { merge_threshold: 8 },
        );
        assert_eq!(store.shard_epoch(0), 0);
        for i in 0..64u64 {
            store.put(10_000 + i, i);
        }
        // Every write swaps the version; every 8th write merged.
        assert_eq!(store.shard_epoch(0), 64);
        assert_eq!(store.merges(), 8);
        assert_eq!(store.delta_len(), 0);
        assert_eq!(store.len(), 164);
        for i in 0..64u64 {
            assert_eq!(store.get(10_000 + i), Some(i));
        }
    }

    #[test]
    fn concurrent_reads_during_merges_are_consistent() {
        // A writer bumps one key through merge-every-write while
        // readers hammer point gets and batch lookups. Reads must be
        // monotone for the hot key (versions publish in order) and
        // rock-stable for an untouched key — across merges, never torn.
        const N: u64 = 300;
        for backend in Backend::ALL {
            let store = ShardedStore::build_with(
                backend,
                1,
                &[(2, 1_000_000), (4, 42)],
                StoreConfig { merge_threshold: 1 },
            );
            std::thread::scope(|scope| {
                let writer = scope.spawn(|| {
                    for v in 1_000_001..=1_000_000 + N {
                        store.put(2, v);
                    }
                });
                for _ in 0..2 {
                    scope.spawn(|| {
                        let mut scratch = Vec::new();
                        let mut out = [None, None];
                        let mut last = 1_000_000u64;
                        while last < 1_000_000 + N {
                            let got = store.get(2).expect("hot key must always exist");
                            assert!(got >= last, "hot key went backwards: {got} < {last}");
                            last = got;
                            store.lookup_batch(
                                0,
                                &[2, 4],
                                Interleave::Interleaved(4),
                                ParConfig::with_threads(1),
                                &mut scratch,
                                &mut out,
                            );
                            let batch_hot = out[0].expect("hot key must always exist");
                            assert!(batch_hot >= last, "batch read went backwards");
                            assert_eq!(out[1], Some(42), "cold key must never move");
                            last = last.max(batch_hot);
                        }
                    });
                }
                writer.join().unwrap();
            });
            assert_eq!(store.get(2), Some(1_000_000 + N));
            assert_eq!(store.merges(), N, "{}", backend.name());
        }
    }
}

//! [`LookupService`]: the request lifecycle — admission, batching,
//! dispatch, response routing, metrics.
//!
//! The paper's interleaving only pays off when lookups arrive in
//! batches large enough to keep a miss in flight per stream; a serving
//! workload instead delivers many small concurrent requests. This
//! module closes that gap with **admission batching**: each shard owns
//! a bounded queue; client threads enqueue one key and block on a
//! ticket; a per-shard dispatcher thread coalesces queued requests and
//! flushes a batch when either `max_batch` requests are waiting or the
//! oldest has waited `max_wait` — whichever comes first — then drives
//! the whole batch through the morsel-parallel interleaved engine and
//! routes results back through the tickets.
//!
//! The flush policy is the latency/throughput dial: large `max_batch`
//! with generous `max_wait` amortizes interleaving best (high
//! throughput, queueing latency); tiny `max_wait` bounds tail latency
//! but dispatches ragged batches the engine can't fill its group with.
//! Per-request latency (enqueue → response) is recorded into a
//! log-bucketed [`LatencyHist`] so that trade-off is observable.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use isi_core::par::ParConfig;
use isi_core::policy::Interleave;
use isi_core::sched::RunStats;
use isi_core::stats::LatencyHist;

use crate::store::ShardedStore;

/// When a shard's dispatcher flushes its admission queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Flush as soon as this many requests are queued.
    pub max_batch: usize,
    /// Flush when the oldest queued request has waited this long.
    pub max_wait: Duration,
}

impl Default for BatchPolicy {
    /// 64-request batches, 1 ms ceiling on queueing delay.
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_wait: Duration::from_millis(1),
        }
    }
}

/// Service configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Interleave policy for dispatched batches.
    pub policy: Interleave,
    /// Flush policy for each shard's admission queue.
    pub batch: BatchPolicy,
    /// Per-shard admission-queue bound; `get` blocks when the owning
    /// shard's queue is full (backpressure).
    pub queue_cap: usize,
    /// Morsel-engine configuration for each dispatched batch. The
    /// default is one worker per dispatch (the dispatcher thread
    /// itself); raise `threads` only when shards outnumber cores.
    pub par: ParConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            policy: Interleave::default(),
            batch: BatchPolicy::default(),
            queue_cap: 1024,
            par: ParConfig::with_threads(1),
        }
    }
}

/// One queued request: the key, its admission time, and the ticket the
/// caller is blocked on.
struct Request {
    key: u64,
    enqueued: Instant,
    ticket: Arc<Ticket>,
}

/// A one-shot response slot; the caller blocks on `wait`, the
/// dispatcher fills it with `fulfill`.
struct Ticket {
    slot: Mutex<Option<Option<u64>>>,
    ready: Condvar,
}

impl Ticket {
    fn new() -> Self {
        Self {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn fulfill(&self, result: Option<u64>) {
        *self.slot.lock().unwrap() = Some(result);
        self.ready.notify_one();
    }

    fn wait(&self) -> Option<u64> {
        let mut slot = self.slot.lock().unwrap();
        loop {
            if let Some(result) = *slot {
                return result;
            }
            slot = self.ready.wait(slot).unwrap();
        }
    }
}

/// Mutable queue state behind each shard's mutex.
struct QueueState {
    reqs: VecDeque<Request>,
    open: bool,
}

/// One shard's admission queue and its wakeup channels.
struct ShardState {
    q: Mutex<QueueState>,
    /// Dispatcher waits here for work / the flush deadline.
    work: Condvar,
    /// Producers wait here for queue space (backpressure).
    space: Condvar,
    metrics: Mutex<ShardMetrics>,
}

#[derive(Default)]
struct ShardMetrics {
    hist: LatencyHist,
    requests: u64,
    batches: u64,
    full_flushes: u64,
    timeout_flushes: u64,
    engine: RunStats,
}

/// Aggregated service metrics (summed over shards).
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Requests answered.
    pub requests: u64,
    /// Batches dispatched to the engine.
    pub batches: u64,
    /// Batches flushed because `max_batch` was reached.
    pub full_flushes: u64,
    /// Batches flushed by the `max_wait` deadline (or drained at
    /// close).
    pub timeout_flushes: u64,
    /// Per-request latency (enqueue → response routed), nanoseconds.
    pub latency: LatencyHist,
    /// Merged interleaved-engine counters across all dispatches.
    pub engine: RunStats,
}

impl ServeStats {
    /// Mean requests per dispatched batch.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }
}

/// A multi-tenant point-lookup service over a [`ShardedStore`].
///
/// `get` is safe to call from any number of threads; each call blocks
/// until its batch is dispatched and answered. Dropping the service
/// drains queued requests, answers them, and joins the dispatchers.
///
/// # Panics
/// `get` panics if called after [`close`](Self::close); callers must
/// not race `get` against `close`.
pub struct LookupService {
    store: Arc<ShardedStore>,
    shards: Vec<Arc<ShardState>>,
    cfg: ServeConfig,
    dispatchers: Vec<JoinHandle<()>>,
}

impl LookupService {
    /// Start one dispatcher thread per shard of `store`. Accepts the
    /// store by value or as an `Arc` (so one immutable store can back
    /// several service instances, e.g. across benchmark cells).
    ///
    /// # Panics
    /// Panics if `queue_cap` or `max_batch` is 0.
    pub fn start(store: impl Into<Arc<ShardedStore>>, cfg: ServeConfig) -> Self {
        assert!(cfg.queue_cap > 0, "queue_cap must be positive");
        assert!(cfg.batch.max_batch > 0, "max_batch must be positive");
        let store = store.into();
        let shards: Vec<Arc<ShardState>> = (0..store.num_shards())
            .map(|_| {
                Arc::new(ShardState {
                    q: Mutex::new(QueueState {
                        reqs: VecDeque::new(),
                        open: true,
                    }),
                    work: Condvar::new(),
                    space: Condvar::new(),
                    metrics: Mutex::new(ShardMetrics::default()),
                })
            })
            .collect();
        let dispatchers = shards
            .iter()
            .enumerate()
            .map(|(shard, state)| {
                let store = Arc::clone(&store);
                let state = Arc::clone(state);
                std::thread::Builder::new()
                    .name(format!("isi-serve-{shard}"))
                    .spawn(move || dispatch_loop(&store, shard, &state, cfg))
                    .expect("spawn dispatcher thread")
            })
            .collect();
        Self {
            store,
            shards,
            cfg,
            dispatchers,
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &ShardedStore {
        &self.store
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Look up one key: enqueue on the owning shard, block until the
    /// dispatcher answers. Applies backpressure — blocks while the
    /// shard's queue holds `queue_cap` requests.
    pub fn get(&self, key: u64) -> Option<u64> {
        let state = &self.shards[self.store.shard_of(key)];
        let ticket = Arc::new(Ticket::new());
        {
            let mut q = state.q.lock().unwrap();
            loop {
                assert!(q.open, "LookupService::get on a closed service");
                if q.reqs.len() < self.cfg.queue_cap {
                    break;
                }
                q = state.space.wait(q).unwrap();
            }
            q.reqs.push_back(Request {
                key,
                enqueued: Instant::now(),
                ticket: Arc::clone(&ticket),
            });
            // Wake the dispatcher when the batch fills, and on the
            // first request so it arms the max_wait deadline.
            if q.reqs.len() == 1 || q.reqs.len() >= self.cfg.batch.max_batch {
                state.work.notify_one();
            }
        }
        ticket.wait()
    }

    /// Aggregated metrics over all shards (latency histograms merged).
    pub fn stats(&self) -> ServeStats {
        let mut total = ServeStats::default();
        for state in &self.shards {
            let m = state.metrics.lock().unwrap();
            total.requests += m.requests;
            total.batches += m.batches;
            total.full_flushes += m.full_flushes;
            total.timeout_flushes += m.timeout_flushes;
            total.latency.merge(&m.hist);
            total.engine.merge(&m.engine);
        }
        total
    }

    /// Stop accepting requests, answer everything still queued, and
    /// join the dispatchers. Idempotent; also run by `Drop`.
    pub fn close(&mut self) {
        for state in &self.shards {
            let mut q = state.q.lock().unwrap();
            q.open = false;
            state.work.notify_all();
            state.space.notify_all();
        }
        for handle in self.dispatchers.drain(..) {
            handle.join().expect("dispatcher thread panicked");
        }
    }
}

impl Drop for LookupService {
    fn drop(&mut self) {
        self.close();
    }
}

/// The per-shard dispatcher: wait for work, flush on `max_batch` or
/// `max_wait`, run the batch through the interleaved engine, route
/// responses, record latency.
fn dispatch_loop(store: &ShardedStore, shard: usize, state: &ShardState, cfg: ServeConfig) {
    let mut batch: Vec<Request> = Vec::with_capacity(cfg.batch.max_batch);
    let mut keys: Vec<u64> = Vec::with_capacity(cfg.batch.max_batch);
    let mut scratch: Vec<u32> = Vec::new();
    let mut out: Vec<Option<u64>> = Vec::with_capacity(cfg.batch.max_batch);
    let mut q = state.q.lock().unwrap();
    loop {
        if q.reqs.is_empty() {
            if !q.open {
                return;
            }
            q = state.work.wait(q).unwrap();
            continue;
        }
        let full = q.reqs.len() >= cfg.batch.max_batch;
        if !full && q.open {
            // Ragged batch on an open queue: wait out the residual
            // max_wait of the oldest request (more requests may land
            // and fill the batch; a closed queue drains immediately).
            let deadline = q.reqs[0].enqueued + cfg.batch.max_wait;
            let now = Instant::now();
            if now < deadline {
                (q, _) = state.work.wait_timeout(q, deadline - now).unwrap();
                continue;
            }
        }
        let n = q.reqs.len().min(cfg.batch.max_batch);
        batch.clear();
        batch.extend(q.reqs.drain(..n));
        state.space.notify_all();
        drop(q);

        keys.clear();
        keys.extend(batch.iter().map(|r| r.key));
        out.clear();
        out.resize(n, None);
        let engine = store.lookup_batch(shard, &keys, cfg.policy, cfg.par, &mut scratch, &mut out);

        let mut m = state.metrics.lock().unwrap();
        for (req, &result) in batch.iter().zip(&out) {
            req.ticket.fulfill(result);
            m.hist.record(req.enqueued.elapsed().as_nanos() as u64);
        }
        m.requests += n as u64;
        m.batches += 1;
        if full {
            m.full_flushes += 1;
        } else {
            m.timeout_flushes += 1;
        }
        m.engine.merge(&engine);
        drop(m);

        q = state.q.lock().unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Backend;

    fn pairs(n: u64) -> Vec<(u64, u64)> {
        (0..n).map(|i| (i * 2, i)).collect()
    }

    fn expect(key: u64) -> Option<u64> {
        (key.is_multiple_of(2) && key < 4000).then_some(key / 2)
    }

    #[test]
    fn single_client_hits_and_misses_all_backends() {
        for backend in Backend::ALL {
            let store = ShardedStore::build(backend, 2, &pairs(2000));
            let svc = LookupService::start(
                store,
                ServeConfig {
                    batch: BatchPolicy {
                        max_batch: 8,
                        max_wait: Duration::from_micros(200),
                    },
                    ..ServeConfig::default()
                },
            );
            for key in [0u64, 2, 3, 1998, 3998, 4000, 9999] {
                assert_eq!(svc.get(key), expect(key), "{} key={key}", backend.name());
            }
            let stats = svc.stats();
            assert_eq!(stats.requests, 7);
            assert!(stats.batches >= 1);
            assert_eq!(stats.latency.count(), 7);
            assert!(stats.latency.p99() >= stats.latency.p50());
        }
    }

    #[test]
    fn full_batches_flush_without_waiting() {
        // max_wait far beyond the test timeout: only max_batch flushes
        // can answer. Exactly max_batch clients with one outstanding
        // request each make every flush self-synchronizing — a batch
        // dispatches precisely when all four have enqueued — so
        // completion proves the full-batch path with no deadline help.
        let store = ShardedStore::build(Backend::Hash, 1, &pairs(512));
        let svc = LookupService::start(
            store,
            ServeConfig {
                batch: BatchPolicy {
                    max_batch: 4,
                    max_wait: Duration::from_secs(3600),
                },
                ..ServeConfig::default()
            },
        );
        std::thread::scope(|scope| {
            for c in 0..4u64 {
                let svc = &svc;
                scope.spawn(move || {
                    for i in 0..8u64 {
                        let key = (c * 8 + i) * 7 % 1100;
                        assert_eq!(svc.get(key), expect(key));
                    }
                });
            }
        });
        let stats = svc.stats();
        assert_eq!(stats.requests, 32);
        assert_eq!(stats.batches, 8);
        assert_eq!(stats.full_flushes, 8);
        assert!((stats.mean_batch() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn lone_request_is_flushed_by_the_deadline() {
        let store = ShardedStore::build(Backend::Csb, 1, &pairs(100));
        let svc = LookupService::start(
            store,
            ServeConfig {
                batch: BatchPolicy {
                    max_batch: 1_000_000,
                    max_wait: Duration::from_millis(2),
                },
                ..ServeConfig::default()
            },
        );
        let t0 = Instant::now();
        assert_eq!(svc.get(42), Some(21));
        // Generous bound: the flush must come from the deadline, not
        // from a full batch, and must not hang.
        assert!(t0.elapsed() < Duration::from_secs(10));
        assert_eq!(svc.stats().timeout_flushes, 1);
    }

    #[test]
    fn tiny_queue_cap_applies_backpressure_without_deadlock() {
        let store = ShardedStore::build(Backend::Sorted, 2, &pairs(1000));
        let svc = LookupService::start(
            store,
            ServeConfig {
                queue_cap: 1,
                batch: BatchPolicy {
                    max_batch: 2,
                    max_wait: Duration::from_micros(100),
                },
                ..ServeConfig::default()
            },
        );
        std::thread::scope(|scope| {
            for c in 0..6u64 {
                let svc = &svc;
                scope.spawn(move || {
                    for i in 0..50u64 {
                        let key = (c * 50 + i) % 2100;
                        assert_eq!(svc.get(key), expect(key));
                    }
                });
            }
        });
        assert_eq!(svc.stats().requests, 300);
    }

    #[test]
    fn drop_drains_and_joins() {
        let store = ShardedStore::build(Backend::Hash, 4, &pairs(100));
        let svc = LookupService::start(store, ServeConfig::default());
        assert_eq!(svc.get(4), Some(2));
        drop(svc); // must not hang
    }

    #[test]
    fn stats_engine_counters_flow_through() {
        let store = ShardedStore::build(Backend::Csb, 1, &pairs(5000));
        let svc = LookupService::start(
            store,
            ServeConfig {
                policy: Interleave::Interleaved(6),
                batch: BatchPolicy {
                    max_batch: 16,
                    max_wait: Duration::from_micros(100),
                },
                ..ServeConfig::default()
            },
        );
        for key in 0..64u64 {
            svc.get(key * 2);
        }
        let stats = svc.stats();
        assert_eq!(stats.engine.lookups, 64);
        // Interleaved tree descents switch at least once per lookup.
        assert!(stats.engine.switches >= 64);
    }

    #[test]
    #[should_panic(expected = "queue_cap must be positive")]
    fn rejects_zero_queue_cap() {
        let store = ShardedStore::build(Backend::Sorted, 1, &[]);
        LookupService::start(
            store,
            ServeConfig {
                queue_cap: 0,
                ..ServeConfig::default()
            },
        );
    }
}
